//! Ablation studies of Themis's design choices (DESIGN.md experiment
//! index; not a paper figure).
//!
//! 1. **NACK filtering** — PSN spraying with vs without Themis-D: how
//!    much of the win is the filter rather than deterministic spraying.
//! 2. **Compensation** — Themis with vs without §3.4 under real loss:
//!    recovery latency with compensation vs waiting for the RTO.
//! 3. **Deployment mode** — direct egress selection vs PathMap sport
//!    rewriting (must be equivalent on a 2-tier fabric).
//! 4. **Queue capacity factor F** — paper sizes the ring queue at
//!    1.5 × BDP; smaller queues cause scan misses (conservative
//!    forwards), larger waste SRAM.
//! 5. **Transport generation** — Go-Back-N (CX-4/5) vs NIC-SR (CX-6/7)
//!    vs NIC-SR + Themis under the same sprayed workload: the paper's
//!    reason for targeting the NIC-SR generation.
//! 6. **Flowlet switching** — §2.3: RNIC pacing opens no flowlet gaps,
//!    so flowlet LB degenerates to per-flow placement.
//! 7. **Control-packet priority** — strict-priority ACK/NACK/CNP class.
//!    A deliberately honest (mostly negative) result: with incast the
//!    reverse path is idle, so priority changes nothing; on the
//!    bidirectional ring the feedback loops tighten slightly.

use netsim::switch::Switch;
use themis_core::config::ThemisConfig;
use themis_core::ThemisMiddleware;
use themis_harness::report::{fmt_ms, Table};
use themis_harness::{run_collective, Collective, ExperimentConfig, Scheme};

fn main() {
    let bytes = themis_bench::bench_bytes();

    // ---- 1. Filtering ablation -------------------------------------
    let mut t1 = Table::new(
        "Ablation 1: NACK filtering (ring collective, motivation fabric)",
        &["scheme", "ct(ms)", "retx", "nacks@sender"],
    );
    for scheme in [
        Scheme::SprayNoFilter,
        Scheme::ThemisNoCompensation,
        Scheme::Themis,
    ] {
        let cfg = ExperimentConfig::motivation_small(scheme, 9);
        let r = run_collective(&cfg, Collective::RingOnce, bytes * 2);
        t1.row(&[
            scheme.label().into(),
            fmt_ms(r.tail_ct),
            r.nics.retx_packets.to_string(),
            r.nics.nacks_received.to_string(),
        ]);
    }
    t1.print();
    println!();

    // ---- 2. Compensation under real loss ---------------------------
    let mut t2 = Table::new(
        "Ablation 2: compensation under 0.05% random loss (point-to-point)",
        &["variant", "ct(ms)", "rto_fires", "compensations"],
    );
    for (label, scheme) in [
        ("with compensation", Scheme::Themis),
        ("without compensation", Scheme::ThemisNoCompensation),
    ] {
        let cfg = ExperimentConfig::motivation_small(scheme, 13);
        let mut cluster = themis_harness::build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
        // Inject random loss on every leaf uplink.
        for &leaf in &cluster.leaves.clone() {
            let sw = cluster.world.get_mut::<Switch>(leaf).expect("leaf");
            for i in 0..sw.num_ports() {
                if sw.uplinks().contains(&i) {
                    sw.set_port_loss_rate(i, 0.0005);
                }
            }
        }
        let r = run_p2p_probe(cluster, &cfg, bytes * 4);
        t2.row(&[
            label.into(),
            fmt_ms(r.ct),
            r.rto_fires.to_string(),
            r.compensations.to_string(),
        ]);
    }
    t2.print();
    println!();

    // ---- 3. Deployment mode ----------------------------------------
    let mut t3 = Table::new(
        "Ablation 3: deployment mode (2-tier fabric)",
        &["mode", "ct(ms)", "blocked", "sprayed"],
    );
    for scheme in [Scheme::Themis, Scheme::ThemisPathMap] {
        let cfg = ExperimentConfig::motivation_small(scheme, 17);
        let r = run_collective(&cfg, Collective::RingOnce, bytes * 2);
        t3.row(&[
            scheme.label().into(),
            fmt_ms(r.tail_ct),
            r.themis.nacks_blocked.to_string(),
            r.themis.sprayed.to_string(),
        ]);
    }
    t3.print();
    println!();

    // ---- 4. Queue capacity factor ----------------------------------
    let mut t4 = Table::new(
        "Ablation 4: PSN queue expansion factor F (scan-miss forwards)",
        &["F", "capacity", "blocked", "fwd_unknown"],
    );
    for f in [50u32, 100, 150, 300] {
        let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 21);
        let mut cluster = themis_harness::build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
        // Re-install middleware with the modified factor on every ToR.
        let line = cfg.fabric.host_link.bandwidth_bps;
        let rtt =
            simcore::time::TimeDelta::from_nanos(2 * cfg.fabric.host_link.latency.as_nanos() + 250);
        let capacity = themis_core::psn_queue::PsnQueue::capacity_for(line, rtt, 1500, f);
        let tc = ThemisConfig {
            queue_capacity: capacity.clamp(1, 127),
            ..ThemisConfig::for_fabric(cluster.n_paths, line, rtt, 1500)
        };
        for &leaf in &cluster.leaves.clone() {
            let sw = cluster.world.get_mut::<Switch>(leaf).expect("leaf");
            sw.set_hook(Box::new(ThemisMiddleware::new(tc)));
        }
        let stats = run_p2p_probe(cluster, &cfg, bytes * 4);
        t4.row(&[
            format!("{:.1}", f as f64 / 100.0),
            tc.queue_capacity.to_string(),
            stats.blocked.to_string(),
            stats.fwd_unknown.to_string(),
        ]);
    }
    t4.print();
    println!();

    // ---- 5. Transport generations under spraying --------------------
    let mut t5 = Table::new(
        "Ablation 5: transport generation x spraying (ring collective)",
        &["configuration", "ct(ms)", "retx", "nacks@sender"],
    );
    for (label, scheme, transport) in [
        (
            "GBN + spray",
            Scheme::SprayNoFilter,
            rnic::TransportMode::GoBackN,
        ),
        (
            "NIC-SR + spray",
            Scheme::SprayNoFilter,
            rnic::TransportMode::SelectiveRepeat,
        ),
        (
            "NIC-SR + Themis",
            Scheme::Themis,
            rnic::TransportMode::SelectiveRepeat,
        ),
    ] {
        let mut cfg = ExperimentConfig::motivation_small(scheme, 33);
        cfg.nic = rnic::NicConfig {
            transport,
            ..rnic::NicConfig::nic_sr(cfg.fabric.host_link.bandwidth_bps)
        };
        let r = run_collective(&cfg, Collective::RingOnce, bytes * 2);
        t5.row(&[
            label.into(),
            fmt_ms(r.tail_ct),
            r.nics.retx_packets.to_string(),
            r.nics.nacks_received.to_string(),
        ]);
    }
    t5.print();
    println!();

    // ---- 6. Flowlet switching ---------------------------------------
    let mut t6 = Table::new(
        "Ablation 6: flowlet LB vs packet spraying (ring collective)",
        &["scheme", "ct(ms)", "ooo", "flowlet re-picks"],
    );
    for scheme in [Scheme::Ecmp, Scheme::Flowlet, Scheme::Themis] {
        let cfg = ExperimentConfig::motivation_small(scheme, 23);
        let (r, cluster) = themis_harness::run_collective_on(&cfg, Collective::RingOnce, bytes * 2);
        let repicks: u64 = cluster
            .leaves
            .iter()
            .filter_map(|&l| cluster.world.get::<Switch>(l))
            .map(|sw| sw.lb_state().flowlet_switches)
            .sum();
        t6.row(&[
            scheme.label().into(),
            fmt_ms(r.tail_ct),
            r.nics.ooo_packets.to_string(),
            repicks.to_string(),
        ]);
    }
    t6.print();
    println!();

    // ---- 7. Control-packet priority ----------------------------------
    let mut t7 = Table::new(
        "Ablation 7: control-priority class (incast: idle reverse path; \
ring: bidirectional contention)",
        &["workload", "ctrl prio", "ct(ms)", "drops", "retx"],
    );
    for (label, collective, scheme, buffer) in [
        ("incast", Collective::Incast, Scheme::Themis, 256 * 1024u64),
        (
            "ring",
            Collective::RingOnce,
            Scheme::SprayNoFilter,
            64 << 20,
        ),
    ] {
        for ctrl_priority in [false, true] {
            let fabric = netsim::topology::LeafSpineConfig {
                buffer_bytes: buffer,
                ctrl_priority,
                ..netsim::topology::LeafSpineConfig::motivation()
            };
            let cfg = ExperimentConfig {
                nic: rnic::NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
                fabric,
                scheme,
                seed: 77,
                horizon: simcore::time::Nanos::from_secs(5),
                shards: 1,
            };
            let r = run_collective(&cfg, collective, bytes * 4);
            t7.row(&[
                label.into(),
                if ctrl_priority { "on" } else { "off" }.into(),
                fmt_ms(r.tail_ct),
                r.fabric.total_drops().to_string(),
                r.nics.retx_packets.to_string(),
            ]);
        }
    }
    t7.print();
    println!("\n(incast rows are identical by design: the reverse path carrying");
    println!("ACK/CNP traffic is uncongested there, so priority has nothing to do)");
}

/// Metrics from a point-to-point probe on a pre-built cluster.
struct ProbeStats {
    ct: Option<simcore::time::TimeDelta>,
    rto_fires: u64,
    compensations: u64,
    blocked: u64,
    fwd_unknown: u64,
}

/// Run a single point-to-point message on a pre-built (possibly lossy or
/// re-hooked) cluster and collect the metrics the ablations report.
fn run_p2p_probe(
    mut cluster: themis_harness::Cluster,
    cfg: &ExperimentConfig,
    bytes: u64,
) -> ProbeStats {
    use collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
    use collectives::schedule::{Schedule, Transfer};
    use themis_core::ThemisMiddleware as TM;
    let src = cluster.hosts[0];
    let dst = cluster.hosts[cfg.fabric.hosts_per_leaf];
    let schedule = Schedule {
        name: "p2p",
        n_ranks: 2,
        transfers: vec![Transfer {
            src: 0,
            dst: 1,
            bytes,
            deps: vec![],
        }],
    };
    let mut alloc = QpAllocator::new(cfg.seed);
    let mut driver = Driver::new();
    let spec = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &[src, dst],
        schedule,
        &mut alloc,
    );
    driver.add_instance(spec);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        simcore::time::Nanos::ZERO,
        cluster.driver,
        netsim::event::Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);
    let driver: &Driver = cluster.world.get(cluster.driver).expect("driver");
    let ct = driver
        .tail_completion()
        .map(|t| t.since(driver.started_at().unwrap_or(simcore::time::Nanos::ZERO)));
    let nics = themis_harness::experiment::aggregate_nics(&cluster);
    let mut blocked = 0;
    let mut fwd_unknown = 0;
    let mut compensations = 0;
    for &leaf in &cluster.leaves {
        if let Some(m) = cluster
            .world
            .get::<Switch>(leaf)
            .and_then(|sw| sw.hook())
            .and_then(|h| h.as_any().downcast_ref::<TM>())
        {
            if let Some(d) = &m.d {
                blocked += d.stats.nacks_blocked;
                fwd_unknown += d.stats.nacks_forwarded_unknown;
                compensations += d.stats.compensations;
            }
        }
    }
    ProbeStats {
        ct,
        rto_fires: nics.rto_fires,
        compensations,
        blocked,
        fwd_unknown,
    }
}
