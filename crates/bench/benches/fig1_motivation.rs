//! Figure 1 regeneration: the cost of combining packet spraying with
//! commodity NIC-SR (§2.2 motivation experiment).
//!
//! Prints the Fig 1b retransmission-ratio series, the Fig 1c sending-rate
//! series (chosen flow, node 0 → node 2) and the Fig 1d NIC-SR vs Ideal
//! throughput bars. Paper reference values: average retransmission ratio
//! ≈ 0.16, average rate ≈ 86 Gbps, throughput 68.09 vs 95.43 Gbps.

use simcore::time::TimeDelta;
use themis_harness::fig1::{run_fig1, Fig1Transport};
use themis_harness::report::render_series;

fn main() {
    let per_flow = themis_bench::bench_bytes().max(8 << 20) * 4;
    println!("Figure 1 — motivation: random spraying + NIC-SR on the 8-host fabric");
    println!("per-flow message = {} MB (paper: 100 MB)\n", per_flow >> 20);

    let sr = run_fig1(
        Fig1Transport::NicSr,
        per_flow,
        TimeDelta::from_micros(20),
        42,
    );
    let ideal = run_fig1(
        Fig1Transport::Ideal,
        per_flow,
        TimeDelta::from_micros(20),
        42,
    );
    assert!(sr.completed && ideal.completed, "flows must complete");

    println!(
        "{}",
        render_series(
            "Fig 1b: retransmission ratio over time (chosen flow)",
            &sr.retx_ratio_series,
            24
        )
    );
    println!(
        "  average spurious-retransmission ratio (all flows): {:.3}   [paper ~0.16]\n",
        sr.avg_retx_ratio
    );

    println!(
        "{}",
        render_series(
            "Fig 1c: sending rate over time, Gbps (chosen flow)",
            &sr.rate_series,
            24
        )
    );
    println!(
        "  average sending rate: {:.1} Gbps of 100 Gbps line rate   [paper ~86]\n",
        sr.avg_rate_gbps
    );

    println!("Fig 1d: average per-flow throughput");
    println!(
        "  NIC-SR : {:>6.2} Gbps   [paper 68.09]",
        sr.mean_flow_throughput_gbps
    );
    println!(
        "  Ideal  : {:>6.2} Gbps   [paper 95.43]",
        ideal.mean_flow_throughput_gbps
    );
    println!(
        "  ratio  : {:>6.2}        [paper 0.71]",
        sr.mean_flow_throughput_gbps / ideal.mean_flow_throughput_gbps
    );
    println!(
        "\n  diagnostics: {} data pkts, {} spurious retx, {} drops (expected 0)",
        sr.data_packets, sr.retx_packets, sr.drops
    );
}
