//! Figure 5b regeneration: Alltoall tail completion time across DCQCN
//! configurations for ECMP / Adaptive Routing / Themis.
//!
//! Paper claims: Themis 11.5%–40.7% lower completion time than AR.

use themis_harness::fig5::{improvement_pct, run_fig5, Fig5Config};
use themis_harness::report::{fmt_ms, Table};
use themis_harness::{Collective, Scheme};

fn main() {
    let bytes = themis_bench::bench_bytes();
    println!("Figure 5b — Alltoall tail completion time");
    println!(
        "16x16 leaf-spine @400 Gbps, 16 groups x 16 NICs; {}\n",
        themis_bench::scale_banner()
    );

    let cfg = Fig5Config::paper(Collective::Alltoall, bytes, 1);
    let points = run_fig5(&cfg);

    let mut table = Table::new(
        "Alltoall tail CT (ms) per DCQCN (T_I, T_D) us",
        &["(TI,TD)", "ECMP", "AR", "Themis", "Themis vs AR"],
    );
    for chunk in points.chunks(3) {
        let find = |s: Scheme| chunk.iter().find(|p| p.scheme == s).expect("present");
        let ecmp = find(Scheme::Ecmp);
        let ar = find(Scheme::AdaptiveRouting);
        let th = find(Scheme::Themis);
        let vs = match (th.tail_ct, ar.tail_ct) {
            (Some(t), Some(a)) => format!("{:+.1}%", improvement_pct(t, a)),
            _ => "-".into(),
        };
        table.row(&[
            format!("({},{})", ecmp.ti_us, ecmp.td_us),
            fmt_ms(ecmp.tail_ct),
            fmt_ms(ar.tail_ct),
            fmt_ms(th.tail_ct),
            vs,
        ]);
    }
    table.print();
    println!("\npositive % = Themis faster than AR  [paper: 11.5%..40.7%]");
}
