//! Micro-benchmarks of the hot paths.
//!
//! These quantify the per-packet costs a Tofino pipeline (or this
//! simulator) pays for Themis: ring-queue push/scan, Eq. 3 validation,
//! PathMap construction, the GF(2)-linear hash, and the raw event-engine
//! throughput that bounds simulation speed.

use netsim::hash::{ecmp_hash, FiveTuple};
use netsim::types::HostId;
use simcore::engine::{Control, Engine};
use simcore::time::{Nanos, TimeDelta};
use themis_bench::harness::Bench;
use themis_core::pathmap::PathMap;
use themis_core::policy::nack_valid;
use themis_core::psn_queue::PsnQueue;

fn bench_event_engine(b: &mut Bench) {
    b.run("event_engine/schedule_dispatch_100k", "events", || {
        let mut e: Engine<u64> = Engine::new();
        for i in 0..100_000u64 {
            e.schedule_at(Nanos(i), i);
        }
        let mut sum = 0u64;
        e.run_with(|_, ev| {
            sum = sum.wrapping_add(ev.payload);
            Control::Continue
        });
        std::hint::black_box(sum);
        100_000
    });
    b.run(
        "event_engine/self_rescheduling_timer_100k",
        "events",
        || {
            let mut e: Engine<u64> = Engine::new();
            e.schedule_at(Nanos(0), 0);
            e.run_with(|eng, ev| {
                if ev.payload < 100_000 {
                    eng.schedule_in(TimeDelta(5), ev.payload + 1);
                }
                Control::Continue
            });
            e.dispatched()
        },
    );
}

fn bench_psn_queue(b: &mut Bench) {
    b.run("psn_queue/push_100k", "ops", || {
        let mut q = PsnQueue::with_capacity(100);
        let mut psn = 0u32;
        for _ in 0..100_000 {
            q.push(psn);
            psn = psn.wrapping_add(1) & 0xFF_FFFF;
        }
        std::hint::black_box(&q);
        100_000
    });
    b.run("psn_queue/scan_hit_depth_50_x10k", "scans", || {
        let mut hits = 0u64;
        for _ in 0..10_000 {
            let mut q = PsnQueue::with_capacity(100);
            for psn in 0..100u32 {
                q.push(psn);
            }
            if q.scan_for_tpsn(49).tpsn.is_some() {
                hits += 1;
            }
        }
        hits
    });
    b.run("psn_queue/contains_miss_100_x100k", "probes", || {
        let mut q = PsnQueue::with_capacity(100);
        for psn in 0..100u32 {
            q.push(psn);
        }
        let mut found = 0u64;
        for _ in 0..100_000 {
            if std::hint::black_box(&q).contains(200) {
                found += 1;
            }
        }
        100_000 + found
    });
}

fn bench_policy(b: &mut Bench) {
    b.run("policy/eq3_validation_x1m", "checks", || {
        let mut psn = 0u32;
        let mut valid = 0u64;
        for _ in 0..1_000_000 {
            psn = psn.wrapping_add(7) & 0xFF_FFFF;
            if nack_valid(psn, psn.wrapping_add(3) & 0xFF_FFFF, 16) {
                valid += 1;
            }
        }
        std::hint::black_box(valid);
        1_000_000
    });
    b.run("policy/ecmp_hash_x1m", "hashes", || {
        let mut sport = 0u16;
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            sport = sport.wrapping_add(1);
            acc =
                acc.wrapping_add(ecmp_hash(&FiveTuple::new(HostId(3), HostId(250), sport)) as u64);
        }
        std::hint::black_box(acc);
        1_000_000
    });
}

fn bench_pathmap(b: &mut Bench) {
    for n in [16usize, 256] {
        b.run(&format!("pathmap/build_n{n}_x100"), "builds", || {
            for _ in 0..100 {
                std::hint::black_box(PathMap::build(n));
            }
            100
        });
    }
    b.run("pathmap/rewrite_x1m", "rewrites", || {
        let pm = PathMap::build(256);
        let mut d = 0usize;
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            d = (d + 1) % 256;
            acc = acc.wrapping_add(pm.rewrite(4242, d) as u64);
        }
        std::hint::black_box(acc);
        1_000_000
    });
}

fn bench_end_to_end(b: &mut Bench) {
    use themis_harness::{run_point_to_point, ExperimentConfig, Scheme};
    b.run("simulation/p2p_1mb_themis", "events", || {
        let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 3);
        run_point_to_point(&cfg, 1 << 20).events
    });
}

fn main() {
    let mut b = Bench::new(1.0);
    bench_event_engine(&mut b);
    bench_psn_queue(&mut b);
    bench_policy(&mut b);
    bench_pathmap(&mut b);
    bench_end_to_end(&mut b);
}
