//! Criterion micro-benchmarks of the hot paths.
//!
//! These quantify the per-packet costs a Tofino pipeline (or this
//! simulator) pays for Themis: ring-queue push/scan, Eq. 3 validation,
//! PathMap construction, the GF(2)-linear hash, and the raw event-engine
//! throughput that bounds simulation speed.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use netsim::hash::{ecmp_hash, FiveTuple};
use netsim::types::HostId;
use simcore::engine::{Control, Engine};
use simcore::time::{Nanos, TimeDelta};
use themis_core::pathmap::PathMap;
use themis_core::policy::nack_valid;
use themis_core::psn_queue::PsnQueue;

fn bench_event_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_engine");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("schedule_dispatch_100k", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new();
            for i in 0..100_000u64 {
                e.schedule_at(Nanos(i), i);
            }
            let mut sum = 0u64;
            e.run_with(|_, ev| {
                sum = sum.wrapping_add(ev.payload);
                Control::Continue
            });
            sum
        });
    });
    g.bench_function("self_rescheduling_timer_100k", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new();
            e.schedule_at(Nanos(0), 0);
            e.run_with(|eng, ev| {
                if ev.payload < 100_000 {
                    eng.schedule_in(TimeDelta(5), ev.payload + 1);
                }
                Control::Continue
            })
        });
    });
    g.finish();
}

fn bench_psn_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("psn_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push", |b| {
        let mut q = PsnQueue::with_capacity(100);
        let mut psn = 0u32;
        b.iter(|| {
            q.push(psn);
            psn = psn.wrapping_add(1) & 0xFF_FFFF;
        });
    });
    g.bench_function("scan_hit_depth_50", |b| {
        b.iter_batched(
            || {
                let mut q = PsnQueue::with_capacity(100);
                for psn in 0..100u32 {
                    q.push(psn);
                }
                q
            },
            |mut q| q.scan_for_tpsn(49),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("contains_miss_100", |b| {
        let mut q = PsnQueue::with_capacity(100);
        for psn in 0..100u32 {
            q.push(psn);
        }
        b.iter(|| q.contains(200));
    });
    g.finish();
}

fn bench_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy");
    g.bench_function("eq3_validation", |b| {
        let mut psn = 0u32;
        b.iter(|| {
            psn = psn.wrapping_add(7) & 0xFF_FFFF;
            nack_valid(psn, psn.wrapping_add(3) & 0xFF_FFFF, 16)
        });
    });
    g.bench_function("ecmp_hash", |b| {
        let mut sport = 0u16;
        b.iter(|| {
            sport = sport.wrapping_add(1);
            ecmp_hash(&FiveTuple::new(HostId(3), HostId(250), sport))
        });
    });
    g.finish();
}

fn bench_pathmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("pathmap");
    for n in [16usize, 256] {
        g.bench_function(format!("build_n{n}"), |b| {
            b.iter(|| PathMap::build(n));
        });
    }
    g.bench_function("rewrite", |b| {
        let pm = PathMap::build(256);
        let mut d = 0usize;
        b.iter(|| {
            d = (d + 1) % 256;
            pm.rewrite(4242, d)
        });
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    use themis_harness::{run_point_to_point, ExperimentConfig, Scheme};
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("p2p_1mb_themis", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 3);
            run_point_to_point(&cfg, 1 << 20)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_engine,
    bench_psn_queue,
    bench_policy,
    bench_pathmap,
    bench_end_to_end
);
criterion_main!(benches);
