//! Scale-sensitivity study: how the Themis-vs-AR improvement grows with
//! message size (supports the EXPERIMENTS.md scaling claims).
//!
//! The paper runs 300 MB collectives; this repo's defaults are scaled
//! down. This bench sweeps the per-group Allreduce buffer at the
//! recommended DCQCN configuration (900, 4) and reports how the gap
//! between AR and Themis widens toward the paper's regime.

use themis_harness::fig5::improvement_pct;
use themis_harness::report::{fmt_ms, Table};
use themis_harness::{run_collective, Collective, ExperimentConfig, Scheme};

fn main() {
    println!("Scale sensitivity — Allreduce tail CT at DCQCN (900, 4)\n");
    let mut table = Table::new(
        "tail CT (ms) vs per-group buffer size",
        &["MB", "ECMP", "AR", "Themis", "Themis vs AR"],
    );
    let max_mb = std::env::var("THEMIS_BENCH_MB")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(4);
    let mut mb = 1u64;
    while mb <= max_mb {
        let ct = |scheme| {
            let cfg = ExperimentConfig::paper_eval(scheme, 900, 4, 1);
            run_collective(&cfg, Collective::Allreduce, mb << 20).tail_ct
        };
        let (e, a, t) = (
            ct(Scheme::Ecmp),
            ct(Scheme::AdaptiveRouting),
            ct(Scheme::Themis),
        );
        let vs = match (t, a) {
            (Some(t), Some(a)) => format!("{:+.1}%", improvement_pct(t, a)),
            _ => "-".into(),
        };
        table.row(&[mb.to_string(), fmt_ms(e), fmt_ms(a), fmt_ms(t), vs]);
        mb *= 2;
    }
    table.print();
    println!("\nthe improvement widens with size as AR spends ever more time in");
    println!("NACK-triggered slow starts (paper at 300 MB: 75.3% at this config)");
}
