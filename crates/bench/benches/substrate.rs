//! Substrate throughput benchmark — the numbers behind
//! `BENCH_substrate.json`.
//!
//! Measures the quantities the CI regression gate tracks:
//!
//! 1. **events/sec** of one end-to-end collective on the small
//!    motivation fabric (ring, 64 MB, random spray) — fast enough for
//!    the CI smoke run, and the heap-friendliest workload we have, so
//!    it bounds the timer wheel's worst case.
//! 2. **paper_events/sec** of a Themis alltoall on the 16×16 400 Gbps
//!    evaluation fabric — the event population the substrate is
//!    actually optimised for (fig 5's workload).
//! 3. **packets/sec** derived from the motivation run (data +
//!    retransmitted packets over the same wall time).
//! 4. **sweep wall time** for an 8-cell seed sweep at `--jobs 1` vs
//!    `--jobs 4`, plus the resulting speedup. On a single-CPU container
//!    the speedup is ~1.0 by physics; the `cpus` field records how many
//!    cores the numbers were taken on so readers can interpret them.
//! 5. **parallel engine scaling**: one 256-host paper-fabric run at
//!    `shards = 1` vs `shards = 4` (`parallel_speedup_4c`), with a
//!    bit-identity assert between the two (CSV fingerprint + full
//!    telemetry JSON). Like the sweep speedup, ~1.0 on one core.
//! 6. **shard-merge throughput** of `RunReport::merge`
//!    (`shard_merge_ops_per_sec`, ops = ring events merged) — the only
//!    new per-window cost the sharded engine adds at snapshot time.
//!
//! Environment knobs (all optional, for CI smoke runs):
//!   `THEMIS_BENCH_FABRIC`      motivation | paper | both          [both]
//!   `THEMIS_BENCH_MB`          motivation single-run size in MB   [64]
//!   `THEMIS_BENCH_PAPER_MB`    paper single-run size in MB        [4]
//!   `THEMIS_BENCH_SWEEP_MB`    per-cell sweep size in MB          [16]
//!   `THEMIS_BENCH_PARALLEL_MB` parallel-scaling run size in MB    [2]
//!   `THEMIS_BENCH_BUDGET`      measurement budget in seconds      [2.0]
//!   `THEMIS_BENCH_OUT`         output path [<repo>/BENCH_substrate.json]

use std::time::Instant;
use themis_bench::harness::{write_json, Bench, JsonValue, Measurement};
use themis_harness::sweep::SweepRunner;
use themis_harness::{run_collective, run_seed_sweep, Collective, ExperimentConfig, Scheme};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn out_path() -> String {
    std::env::var("THEMIS_BENCH_OUT").unwrap_or_else(|_| {
        // CARGO_MANIFEST_DIR is crates/bench; the JSON lives at repo root.
        format!("{}/../../BENCH_substrate.json", env!("CARGO_MANIFEST_DIR"))
    })
}

/// Time one seed sweep at the given worker count, twice, keeping the
/// faster run (reduces scheduler noise without hiding real cost).
fn time_sweep(
    cfg: &ExperimentConfig,
    bytes: u64,
    seeds: &[u64],
    jobs: usize,
) -> (f64, Vec<String>) {
    let mut best = f64::INFINITY;
    let mut fingerprints = Vec::new();
    for _ in 0..2 {
        let t0 = Instant::now();
        let results = run_seed_sweep(
            cfg,
            Collective::RingOnce,
            bytes,
            seeds,
            SweepRunner::new(jobs),
        );
        let secs = t0.elapsed().as_secs_f64();
        fingerprints = results
            .iter()
            .map(|r| format!("{},{}", r.to_csv_row(), r.events))
            .collect();
        best = best.min(secs);
    }
    (best, fingerprints)
}

/// Bench one collective; returns the measurement plus its packet count.
fn bench_collective(
    b: &mut Bench,
    name: &str,
    cfg: &ExperimentConfig,
    collective: Collective,
    bytes: u64,
) -> (Measurement, u64) {
    // One run outside the timer to grab the packet counts.
    let probe = run_collective(cfg, collective, bytes);
    assert!(probe.tail_ct.is_some(), "bench workload must complete");
    let packets = probe.nics.data_packets + probe.nics.retx_packets;
    let m = b
        .run(name, "events", || {
            run_collective(cfg, collective, bytes).events
        })
        .clone();
    (m, packets)
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fabric = std::env::var("THEMIS_BENCH_FABRIC").unwrap_or_else(|_| "both".into());
    let mb = env_u64("THEMIS_BENCH_MB", 64);
    let paper_mb = env_u64("THEMIS_BENCH_PAPER_MB", 4);
    let sweep_mb = env_u64("THEMIS_BENCH_SWEEP_MB", 16);
    let budget = env_f64("THEMIS_BENCH_BUDGET", 2.0);
    println!(
        "substrate benchmark ({cpus} cpu(s); fabric={fabric}, {mb} MB motivation run, \
{paper_mb} MB paper run, {sweep_mb} MB/cell sweep)\n"
    );

    let mut b = Bench::new(budget);
    let mut fields = vec![
        ("bench".to_string(), JsonValue::Str("substrate".into())),
        ("cpus".to_string(), JsonValue::Int(cpus as u64)),
    ];

    // ---- shard-merge throughput ------------------------------------
    // `RunReport::merge` is the only per-snapshot cost sharding adds:
    // summing counters, folding histogram bins, and a k-way canonical
    // merge of per-shard event rings. Ops = ring events merged.
    //
    // Measured before any fabric section on purpose: the big fabric
    // runs leave the allocator warm and inflate this number ~2x, and
    // the CI smoke config skips those sections — benching first keeps
    // the committed and smoke numbers comparable.
    const MERGE_SHARDS: usize = 4;
    const MERGE_EVENTS: u64 = 2_048;
    const MERGE_ITERS: u64 = 200;
    let shard_snapshots: Vec<telemetry::RunReport> = (0..MERGE_SHARDS)
        .map(|shard| {
            let sink = telemetry::Sink::new(MERGE_EVENTS as usize);
            let c = sink.counter("bench.counter");
            let h = sink.time_hist("bench.hist", 1_000, 64);
            for i in 0..MERGE_EVENTS {
                sink.clock().set(i * 64 + shard as u64);
                sink.stamp().set(i, shard as u32);
                sink.inc(c);
                sink.observe(h, i % 1_000);
                sink.event(telemetry::EventKind::PacketDrop, i, shard as u64);
            }
            sink.snapshot()
        })
        .collect();
    let merge_m = b
        .run("substrate/shard_merge_4way", "ops", || {
            let mut retained = 0u64;
            for _ in 0..MERGE_ITERS {
                let merged = telemetry::RunReport::merge(shard_snapshots.clone());
                retained += merged.events.total;
            }
            assert_eq!(retained, MERGE_ITERS * MERGE_SHARDS as u64 * MERGE_EVENTS);
            retained
        })
        .clone();
    fields.push((
        "shard_merge_ops_per_sec".to_string(),
        JsonValue::Num(merge_m.units_per_sec()),
    ));

    // ---- telemetry hot path ----------------------------------------
    // The sink is compiled into every cluster, so its overhead is
    // already inside events_per_sec above; this isolates the raw cost
    // of the two hot operations (counter inc + histogram observe) so a
    // registry regression is visible on its own.
    const TELEM_OPS: u64 = 2_000_000;
    let telem_m = b
        .run("substrate/telemetry_inc_observe", "ops", || {
            let sink = telemetry::Sink::new(64);
            let c = sink.counter("bench.counter");
            let h = sink.time_hist("bench.hist", 1_000, 64);
            for i in 0..TELEM_OPS / 2 {
                sink.clock().set(i);
                sink.inc(c);
                sink.observe(h, i % 1_000);
            }
            TELEM_OPS
        })
        .clone();
    fields.push((
        "telemetry_ops_per_sec".to_string(),
        JsonValue::Num(telem_m.units_per_sec()),
    ));

    // ---- single-run throughput, motivation fabric ------------------
    let motivation_cfg = ExperimentConfig::motivation_small(Scheme::RandomSpray, 1);
    if fabric != "paper" {
        let (single, packets) = bench_collective(
            &mut b,
            &format!("substrate/ring_{mb}mb_spray"),
            &motivation_cfg,
            Collective::RingOnce,
            mb << 20,
        );
        let packets_per_sec = packets as f64 / single.secs_per_iter;
        println!(
            "{:<40} {:>10.3} ms/iter   {:>12.0} packets/s",
            "substrate/ring_packets (derived)",
            single.secs_per_iter * 1e3,
            packets_per_sec
        );
        fields.extend([
            ("single_run_mb".to_string(), JsonValue::Int(mb)),
            (
                "single_run_events".to_string(),
                JsonValue::Int(single.units),
            ),
            ("single_run_packets".to_string(), JsonValue::Int(packets)),
            (
                "secs_per_iter".to_string(),
                JsonValue::Num(single.secs_per_iter),
            ),
            (
                "events_per_sec".to_string(),
                JsonValue::Num(single.units_per_sec()),
            ),
            (
                "packets_per_sec".to_string(),
                JsonValue::Num(packets_per_sec),
            ),
        ]);
    }

    // ---- single-run throughput, evaluation fabric ------------------
    if fabric != "motivation" {
        let paper_cfg = ExperimentConfig::paper_eval(Scheme::Themis, 900, 4, 1);
        let (single, packets) = bench_collective(
            &mut b,
            &format!("substrate/paper_alltoall_{paper_mb}mb_themis"),
            &paper_cfg,
            Collective::Alltoall,
            paper_mb << 20,
        );
        fields.extend([
            ("paper_run_mb".to_string(), JsonValue::Int(paper_mb)),
            ("paper_run_events".to_string(), JsonValue::Int(single.units)),
            ("paper_run_packets".to_string(), JsonValue::Int(packets)),
            (
                "paper_secs_per_iter".to_string(),
                JsonValue::Num(single.secs_per_iter),
            ),
            (
                "paper_events_per_sec".to_string(),
                JsonValue::Num(single.units_per_sec()),
            ),
        ]);
    }

    // ---- sweep scaling ---------------------------------------------
    let seeds: Vec<u64> = (1..=8).collect();
    let sweep_bytes = sweep_mb << 20;
    let (secs_j1, fp_j1) = time_sweep(&motivation_cfg, sweep_bytes, &seeds, 1);
    let (secs_j4, fp_j4) = time_sweep(&motivation_cfg, sweep_bytes, &seeds, 4);
    assert_eq!(fp_j1, fp_j4, "parallel sweep diverged from serial");
    let speedup = secs_j1 / secs_j4;
    println!("\nsweep: 8 cells x {sweep_mb} MB ring/spray");
    println!("  --jobs 1 : {secs_j1:>8.3} s");
    println!("  --jobs 4 : {secs_j4:>8.3} s   ({speedup:.2}x on {cpus} cpu(s))");
    fields.extend([
        (
            "sweep_cells".to_string(),
            JsonValue::Int(seeds.len() as u64),
        ),
        ("sweep_mb_per_cell".to_string(), JsonValue::Int(sweep_mb)),
        ("sweep_secs_jobs1".to_string(), JsonValue::Num(secs_j1)),
        ("sweep_secs_jobs4".to_string(), JsonValue::Num(secs_j4)),
        ("sweep_speedup".to_string(), JsonValue::Num(speedup)),
    ]);

    // ---- parallel engine scaling -----------------------------------
    // The same 256-host paper-fabric run, serial vs 4 shards. The two
    // runs must agree to the byte (CSV fingerprint + telemetry JSON) —
    // this is the release-mode leg of tests/parallel_equivalence.rs —
    // and the timing ratio is the headline `parallel_speedup_4c`.
    if fabric != "motivation" {
        let parallel_mb = env_u64("THEMIS_BENCH_PARALLEL_MB", 2);
        let pcfg = ExperimentConfig::paper_eval(Scheme::Themis, 900, 4, 1);
        let time_shards = |shards: usize| -> (f64, String, String) {
            let mut cfg = pcfg.clone();
            cfg.shards = shards;
            let mut best = f64::INFINITY;
            let mut fp = String::new();
            let mut json = String::new();
            for _ in 0..2 {
                let t0 = Instant::now();
                let r = run_collective(&cfg, Collective::Alltoall, parallel_mb << 20);
                best = best.min(t0.elapsed().as_secs_f64());
                fp = format!("{},{}", r.to_csv_row(), r.events);
                let mut rep = telemetry::Report::new();
                rep.add_run("parallel", r.telemetry.clone());
                json = rep.to_json();
            }
            (best, fp, json)
        };
        let (secs_s1, fp_s1, json_s1) = time_shards(1);
        let (secs_s4, fp_s4, json_s4) = time_shards(4);
        assert_eq!(fp_s1, fp_s4, "sharded run diverged from serial");
        assert_eq!(json_s1, json_s4, "sharded telemetry diverged from serial");
        let speedup = secs_s1 / secs_s4;
        println!("\nparallel engine: 256-host alltoall x {parallel_mb} MB/group themis");
        println!("  --shards 1 : {secs_s1:>8.3} s");
        println!("  --shards 4 : {secs_s4:>8.3} s   ({speedup:.2}x on {cpus} cpu(s))");
        fields.extend([
            ("parallel_run_mb".to_string(), JsonValue::Int(parallel_mb)),
            ("parallel_secs_shards1".to_string(), JsonValue::Num(secs_s1)),
            ("parallel_secs_shards4".to_string(), JsonValue::Num(secs_s4)),
            ("parallel_speedup_4c".to_string(), JsonValue::Num(speedup)),
        ]);
    }

    // ---- report -----------------------------------------------------
    let path = out_path();
    write_json(&path, &fields).expect("write BENCH_substrate.json");
    println!("\nwrote {path}");
}
