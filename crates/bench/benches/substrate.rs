//! Substrate throughput benchmark — the numbers behind
//! `BENCH_substrate.json`.
//!
//! Measures the quantities the CI regression gate tracks:
//!
//! 1. **events/sec** of one end-to-end collective on the small
//!    motivation fabric (ring, 64 MB, random spray) — fast enough for
//!    the CI smoke run, and the heap-friendliest workload we have, so
//!    it bounds the timer wheel's worst case.
//! 2. **paper_events/sec** of a Themis alltoall on the 16×16 400 Gbps
//!    evaluation fabric — the event population the substrate is
//!    actually optimised for (fig 5's workload).
//! 3. **packets/sec** derived from the motivation run (data +
//!    retransmitted packets over the same wall time).
//! 4. **sweep wall time** for an 8-cell seed sweep at `--jobs 1` vs
//!    `--jobs 4`, plus the resulting speedup. On a single-CPU container
//!    the speedup is ~1.0 by physics; the `cpus` field records how many
//!    cores the numbers were taken on so readers can interpret them.
//! 5. **parallel engine scaling**: one 256-host paper-fabric run at
//!    `shards = 1` vs `shards = 4` (`parallel_speedup_4c`), with a
//!    bit-identity assert between the two (CSV fingerprint + full
//!    telemetry JSON). Like the sweep speedup, ~1.0 on one core.
//! 6. **shard-merge throughput** of `RunReport::merge`
//!    (`shard_merge_ops_per_sec`, ops = ring events merged) — the only
//!    new per-window cost the sharded engine adds at snapshot time.
//!
//! Environment knobs (all optional, for CI smoke runs):
//!   `THEMIS_BENCH_FABRIC`      motivation | paper | x10 | both    [both]
//!   `THEMIS_BENCH_MB`          motivation single-run size in MB   [64]
//!   `THEMIS_BENCH_PAPER_MB`    paper single-run size in MB        [4]
//!   `THEMIS_BENCH_SWEEP_MB`    per-cell sweep size in MB          [16]
//!   `THEMIS_BENCH_SCHEME_MB`   scheme-zoo ring size in MB         [2]
//!   `THEMIS_BENCH_PARALLEL_MB` parallel-scaling run size in MB    [2]
//!   `THEMIS_BENCH_X10_KB`      x10 per-ring size in KB            [256]
//!   `THEMIS_BENCH_X10_GROUPS`  x10 simultaneous rings             [64]
//!   `THEMIS_BENCH_BUDGET`      measurement budget in seconds      [2.0]
//!   `THEMIS_BENCH_OUT`         output path [<repo>/BENCH_substrate.json]

use collectives::ring::ring_once;
use netsim::fat_tree::FatTreeConfig;
use rnic::NicConfig;
use simcore::time::Nanos;
use std::time::Instant;
use themis_bench::harness::{write_json, Bench, JsonValue, Measurement};
use themis_harness::oracle::{self, OracleConfig};
use themis_harness::sweep::SweepRunner;
use themis_harness::{
    run_collective, run_fat_tree_rings, run_seed_sweep, Collective, ExperimentConfig, Scheme,
};

/// Resident set size from `/proc/self/status` (Linux), if available.
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Telemetry JSON with the `run.shards` execution-config echo removed —
/// the one field that legitimately differs between a serial and a
/// sharded run of the same cell.
fn comparable_telemetry(label: &str, t: &telemetry::RunReport) -> String {
    let mut rep = telemetry::Report::new();
    rep.add_run(label, t.clone());
    rep.to_json()
        .lines()
        .filter(|l| !l.contains("\"run.shards\""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn out_path() -> String {
    std::env::var("THEMIS_BENCH_OUT").unwrap_or_else(|_| {
        // CARGO_MANIFEST_DIR is crates/bench; the JSON lives at repo root.
        format!("{}/../../BENCH_substrate.json", env!("CARGO_MANIFEST_DIR"))
    })
}

/// Time one seed sweep at the given worker count, twice, keeping the
/// faster run (reduces scheduler noise without hiding real cost).
fn time_sweep(
    cfg: &ExperimentConfig,
    bytes: u64,
    seeds: &[u64],
    jobs: usize,
) -> (f64, Vec<String>) {
    let mut best = f64::INFINITY;
    let mut fingerprints = Vec::new();
    for _ in 0..2 {
        let t0 = Instant::now();
        let results = run_seed_sweep(
            cfg,
            Collective::RingOnce,
            bytes,
            seeds,
            SweepRunner::new(jobs),
        );
        let secs = t0.elapsed().as_secs_f64();
        fingerprints = results
            .iter()
            .map(|r| format!("{},{}", r.to_csv_row(), r.events))
            .collect();
        best = best.min(secs);
    }
    (best, fingerprints)
}

/// Bench one collective; returns the measurement plus its packet count.
fn bench_collective(
    b: &mut Bench,
    name: &str,
    cfg: &ExperimentConfig,
    collective: Collective,
    bytes: u64,
) -> (Measurement, u64) {
    // One run outside the timer to grab the packet counts.
    let probe = run_collective(cfg, collective, bytes);
    assert!(probe.tail_ct.is_some(), "bench workload must complete");
    let packets = probe.nics.data_packets + probe.nics.retx_packets;
    let m = b
        .run(name, "events", || {
            run_collective(cfg, collective, bytes).events
        })
        .clone();
    (m, packets)
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fabric = std::env::var("THEMIS_BENCH_FABRIC").unwrap_or_else(|_| "both".into());
    let mb = env_u64("THEMIS_BENCH_MB", 64);
    let paper_mb = env_u64("THEMIS_BENCH_PAPER_MB", 4);
    let sweep_mb = env_u64("THEMIS_BENCH_SWEEP_MB", 16);
    let budget = env_f64("THEMIS_BENCH_BUDGET", 2.0);
    println!(
        "substrate benchmark ({cpus} cpu(s); fabric={fabric}, {mb} MB motivation run, \
{paper_mb} MB paper run, {sweep_mb} MB/cell sweep)\n"
    );

    let mut b = Bench::new(budget);
    let mut fields = vec![
        ("bench".to_string(), JsonValue::Str("substrate".into())),
        ("cpus".to_string(), JsonValue::Int(cpus as u64)),
    ];

    // ---- shard-merge throughput ------------------------------------
    // `RunReport::merge` is the only per-snapshot cost sharding adds:
    // summing counters, folding histogram bins, and a k-way canonical
    // merge of per-shard event rings. Ops = ring events merged.
    //
    // Pre-warm the allocator to the state a fabric run leaves behind:
    // without this the number depends on section order (a cold
    // allocator deflates it ~2x vs. post-run), so the committed
    // (fabric=both) and CI smoke (fabric=motivation) figures were not
    // comparable. One small motivation run plus a dropped slab churn
    // puts both configurations on the same warm-heap footing.
    {
        let warm_cfg = ExperimentConfig::motivation_small(Scheme::RandomSpray, 99);
        let r = run_collective(&warm_cfg, Collective::RingOnce, 1 << 20);
        assert!(r.tail_ct.is_some(), "allocator warm-up run must complete");
        let slab: Vec<Vec<u8>> = (0..64).map(|_| vec![0u8; 1 << 20]).collect();
        drop(slab);
    }
    const MERGE_SHARDS: usize = 4;
    const MERGE_EVENTS: u64 = 2_048;
    const MERGE_ITERS: u64 = 200;
    let shard_snapshots: Vec<telemetry::RunReport> = (0..MERGE_SHARDS)
        .map(|shard| {
            let sink = telemetry::Sink::new(MERGE_EVENTS as usize);
            let c = sink.counter("bench.counter");
            let h = sink.time_hist("bench.hist", 1_000, 64);
            for i in 0..MERGE_EVENTS {
                sink.clock().set(i * 64 + shard as u64);
                sink.stamp().set(i, shard as u32);
                sink.inc(c);
                sink.observe(h, i % 1_000);
                sink.event(telemetry::EventKind::PacketDrop, i, shard as u64);
            }
            sink.snapshot()
        })
        .collect();
    let merge_m = b
        .run("substrate/shard_merge_4way", "ops", || {
            let mut retained = 0u64;
            for _ in 0..MERGE_ITERS {
                let merged = telemetry::RunReport::merge(shard_snapshots.clone());
                retained += merged.events.total;
            }
            assert_eq!(retained, MERGE_ITERS * MERGE_SHARDS as u64 * MERGE_EVENTS);
            retained
        })
        .clone();
    fields.push((
        "shard_merge_ops_per_sec".to_string(),
        JsonValue::Num(merge_m.units_per_sec()),
    ));

    // ---- telemetry hot path ----------------------------------------
    // The sink is compiled into every cluster, so its overhead is
    // already inside events_per_sec above; this isolates the raw cost
    // of the two hot operations (counter inc + histogram observe) so a
    // registry regression is visible on its own.
    const TELEM_OPS: u64 = 2_000_000;
    let telem_m = b
        .run("substrate/telemetry_inc_observe", "ops", || {
            let sink = telemetry::Sink::new(64);
            let c = sink.counter("bench.counter");
            let h = sink.time_hist("bench.hist", 1_000, 64);
            for i in 0..TELEM_OPS / 2 {
                sink.clock().set(i);
                sink.inc(c);
                sink.observe(h, i % 1_000);
            }
            TELEM_OPS
        })
        .clone();
    fields.push((
        "telemetry_ops_per_sec".to_string(),
        JsonValue::Num(telem_m.units_per_sec()),
    ));

    // ---- single-run throughput, motivation fabric ------------------
    let motivation_cfg = ExperimentConfig::motivation_small(Scheme::RandomSpray, 1);
    if fabric != "paper" && fabric != "x10" {
        let (single, packets) = bench_collective(
            &mut b,
            &format!("substrate/ring_{mb}mb_spray"),
            &motivation_cfg,
            Collective::RingOnce,
            mb << 20,
        );
        let packets_per_sec = packets as f64 / single.secs_per_iter;
        println!(
            "{:<40} {:>10.3} ms/iter   {:>12.0} packets/s",
            "substrate/ring_packets (derived)",
            single.secs_per_iter * 1e3,
            packets_per_sec
        );
        fields.extend([
            ("single_run_mb".to_string(), JsonValue::Int(mb)),
            (
                "single_run_events".to_string(),
                JsonValue::Int(single.units),
            ),
            ("single_run_packets".to_string(), JsonValue::Int(packets)),
            (
                "secs_per_iter".to_string(),
                JsonValue::Num(single.secs_per_iter),
            ),
            (
                "events_per_sec".to_string(),
                JsonValue::Num(single.units_per_sec()),
            ),
            (
                "packets_per_sec".to_string(),
                JsonValue::Num(packets_per_sec),
            ),
        ]);

        // ---- scheme zoo throughput (SCHEMES.md baselines) ----------
        // The external baselines stress different substrate paths than
        // the spray run above: REPS/Sprinklers roll per-packet sender
        // entropy (RNG + pool bookkeeping per send), Eunomia holds OOO
        // state per receive. A ring at a fixed small size keeps this
        // comparable across machines and cheap in CI smoke.
        let zoo_mb = env_u64("THEMIS_BENCH_SCHEME_MB", 2);
        for scheme in [Scheme::Reps, Scheme::Eunomia, Scheme::Sprinklers] {
            let cfg = ExperimentConfig::motivation_small(scheme, 1);
            let (m, _packets) = bench_collective(
                &mut b,
                &format!(
                    "substrate/ring_{zoo_mb}mb_{}",
                    scheme.label().to_lowercase()
                ),
                &cfg,
                Collective::RingOnce,
                zoo_mb << 20,
            );
            fields.push((
                format!("scheme_{}_events_per_sec", scheme.label().to_lowercase()),
                JsonValue::Num(m.units_per_sec()),
            ));
        }
        fields.push(("scheme_run_mb".to_string(), JsonValue::Int(zoo_mb)));
    }

    // ---- single-run throughput, evaluation fabric ------------------
    if fabric != "motivation" && fabric != "x10" {
        let paper_cfg = ExperimentConfig::paper_eval(Scheme::Themis, 900, 4, 1);
        let (single, packets) = bench_collective(
            &mut b,
            &format!("substrate/paper_alltoall_{paper_mb}mb_themis"),
            &paper_cfg,
            Collective::Alltoall,
            paper_mb << 20,
        );
        fields.extend([
            ("paper_run_mb".to_string(), JsonValue::Int(paper_mb)),
            ("paper_run_events".to_string(), JsonValue::Int(single.units)),
            ("paper_run_packets".to_string(), JsonValue::Int(packets)),
            (
                "paper_secs_per_iter".to_string(),
                JsonValue::Num(single.secs_per_iter),
            ),
            (
                "paper_events_per_sec".to_string(),
                JsonValue::Num(single.units_per_sec()),
            ),
        ]);
    }

    // ---- sweep scaling ---------------------------------------------
    if fabric != "x10" {
        let seeds: Vec<u64> = (1..=8).collect();
        let sweep_bytes = sweep_mb << 20;
        let (secs_j1, fp_j1) = time_sweep(&motivation_cfg, sweep_bytes, &seeds, 1);
        let (secs_j4, fp_j4) = time_sweep(&motivation_cfg, sweep_bytes, &seeds, 4);
        assert_eq!(fp_j1, fp_j4, "parallel sweep diverged from serial");
        let speedup = secs_j1 / secs_j4;
        println!("\nsweep: 8 cells x {sweep_mb} MB ring/spray");
        println!("  --jobs 1 : {secs_j1:>8.3} s");
        println!("  --jobs 4 : {secs_j4:>8.3} s   ({speedup:.2}x on {cpus} cpu(s))");
        fields.extend([
            (
                "sweep_cells".to_string(),
                JsonValue::Int(seeds.len() as u64),
            ),
            ("sweep_mb_per_cell".to_string(), JsonValue::Int(sweep_mb)),
            ("sweep_secs_jobs1".to_string(), JsonValue::Num(secs_j1)),
            ("sweep_secs_jobs4".to_string(), JsonValue::Num(secs_j4)),
            ("sweep_speedup".to_string(), JsonValue::Num(speedup)),
        ]);
    }

    // ---- parallel engine scaling -----------------------------------
    // The same 256-host paper-fabric run, serial vs 4 shards. The two
    // runs must agree to the byte (CSV fingerprint + telemetry JSON) —
    // this is the release-mode leg of tests/parallel_equivalence.rs —
    // and the timing ratio is the headline `parallel_speedup_4c`.
    if fabric != "motivation" && fabric != "x10" {
        let parallel_mb = env_u64("THEMIS_BENCH_PARALLEL_MB", 2);
        let pcfg = ExperimentConfig::paper_eval(Scheme::Themis, 900, 4, 1);
        let time_shards = |shards: usize| -> (f64, String, String) {
            let mut cfg = pcfg.clone();
            cfg.shards = shards;
            let mut best = f64::INFINITY;
            let mut fp = String::new();
            let mut json = String::new();
            for _ in 0..2 {
                let t0 = Instant::now();
                let r = run_collective(&cfg, Collective::Alltoall, parallel_mb << 20);
                best = best.min(t0.elapsed().as_secs_f64());
                fp = format!("{},{}", r.to_csv_row(), r.events);
                json = comparable_telemetry("parallel", &r.telemetry);
            }
            (best, fp, json)
        };
        let (secs_s1, fp_s1, json_s1) = time_shards(1);
        let (secs_s4, fp_s4, json_s4) = time_shards(4);
        assert_eq!(fp_s1, fp_s4, "sharded run diverged from serial");
        assert_eq!(json_s1, json_s4, "sharded telemetry diverged from serial");
        let speedup = secs_s1 / secs_s4;
        println!("\nparallel engine: 256-host alltoall x {parallel_mb} MB/group themis");
        println!("  --shards 1 : {secs_s1:>8.3} s");
        println!("  --shards 4 : {secs_s4:>8.3} s   ({speedup:.2}x on {cpus} cpu(s))");
        fields.extend([
            ("parallel_run_mb".to_string(), JsonValue::Int(parallel_mb)),
            ("parallel_secs_shards1".to_string(), JsonValue::Num(secs_s1)),
            ("parallel_secs_shards4".to_string(), JsonValue::Num(secs_s4)),
            ("parallel_speedup_4c".to_string(), JsonValue::Num(speedup)),
        ]);
    }

    // ---- paper_fabric_x10: the 10x fabric ---------------------------
    // A k=16 fat-tree (1024 hosts, 64 hosts/pod) running simultaneous
    // inter-pod rings — with the default 64 groups, *every host in the
    // fabric* is an active ring member. The run is checked by the
    // protocol-invariant oracle, its throughput lands in
    // `x10_events_per_sec`, and the RSS the run adds, divided by the
    // host count, lands in `x10_mb_per_host` (the whole-simulator
    // memory footprint per simulated host — arena pools, interned route
    // tables, NIC state, queues).
    if fabric == "both" || fabric == "x10" {
        let x10_kb = env_u64("THEMIS_BENCH_X10_KB", 256);
        let fabric16 = FatTreeConfig::small(16);
        let groups =
            (env_u64("THEMIS_BENCH_X10_GROUPS", 64) as usize).clamp(1, fabric16.hosts_per_pod());
        let nic16 = NicConfig::nic_sr(fabric16.host_link.bandwidth_bps);
        let n_hosts = fabric16.n_hosts() as u64;
        let rss0 = rss_bytes().unwrap_or(0);
        let t0 = Instant::now();
        let (r, cluster) = run_fat_tree_rings(
            &fabric16,
            nic16,
            Scheme::Themis,
            1,
            1,
            groups,
            x10_kb << 10,
            Nanos::from_secs(5),
        );
        let secs = t0.elapsed().as_secs_f64();
        let rss1 = rss_bytes().unwrap_or(0);
        assert!(r.tail_ct.is_some(), "x10 workload must complete");
        assert_eq!(
            r.group_cts.iter().filter(|c| c.is_some()).count(),
            groups,
            "every x10 ring must complete"
        );
        let expected: u64 = ring_once(16, x10_kb << 10)
            .transfers
            .iter()
            .map(|t| t.bytes)
            .sum::<u64>()
            * groups as u64;
        let judge = OracleConfig::for_scheme(Scheme::Themis).with_expected_bytes(expected);
        let verdicts = oracle::check(&cluster, &judge);
        assert!(
            verdicts.is_empty(),
            "x10 run must be oracle-conformant: {verdicts:?}"
        );
        drop(cluster);
        let events_per_sec = r.events as f64 / secs;
        let mb_per_host = rss1.saturating_sub(rss0) as f64 / (1 << 20) as f64 / n_hosts as f64;
        println!("\npaper_fabric_x10: k=16, {n_hosts} hosts, {groups} rings x {x10_kb} KB themis");
        println!("  {secs:>8.3} s   {events_per_sec:>12.0} events/s   {mb_per_host:.3} MB/host");
        fields.extend([
            ("x10_hosts".to_string(), JsonValue::Int(n_hosts)),
            ("x10_groups".to_string(), JsonValue::Int(groups as u64)),
            ("x10_kb_per_ring".to_string(), JsonValue::Int(x10_kb)),
            ("x10_run_events".to_string(), JsonValue::Int(r.events)),
            ("x10_secs".to_string(), JsonValue::Num(secs)),
            (
                "x10_events_per_sec".to_string(),
                JsonValue::Num(events_per_sec),
            ),
            ("x10_mb_per_host".to_string(), JsonValue::Num(mb_per_host)),
        ]);

        // k=32 (8192 hosts): the build must stay cheap (parallel pod
        // blueprints + interned route tables) and a short all-core
        // workload must run without exhausting memory.
        let fabric32 = FatTreeConfig::small(32);
        let nic32 = NicConfig::nic_sr(fabric32.host_link.bandwidth_bps);
        let t0 = Instant::now();
        let (r32, cluster32) = run_fat_tree_rings(
            &fabric32,
            nic32,
            Scheme::Themis,
            1,
            1,
            2,
            64 << 10,
            Nanos::from_secs(5),
        );
        let secs32 = t0.elapsed().as_secs_f64();
        assert!(r32.tail_ct.is_some(), "k=32 smoke must complete");
        drop(cluster32);
        println!(
            "  k=32 smoke: 8192 hosts, 2 rings x 64 KB  {secs32:>8.3} s  ({} events)",
            r32.events
        );
        fields.extend([
            ("x32_smoke_secs".to_string(), JsonValue::Num(secs32)),
            ("x32_smoke_events".to_string(), JsonValue::Int(r32.events)),
        ]);
    }

    // ---- report -----------------------------------------------------
    let path = out_path();
    write_json(&path, &fields).expect("write BENCH_substrate.json");
    println!("\nwrote {path}");
}
