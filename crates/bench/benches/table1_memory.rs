//! Table 1 / §4 regeneration: Themis switch-memory overhead.
//!
//! Evaluates Eq. 4 at the Table 1 reference values and cross-checks the
//! analytic model against the *live* data structures (a provisioned
//! FlowTable + PathMap must occupy exactly the modeled bytes).

use themis_core::flow_table::{FlowTable, ENTRY_EXTENSION_BYTES};
use themis_core::memory::MemoryModel;
use themis_core::pathmap::PathMap;
use themis_harness::report::Table;

fn main() {
    println!("Table 1 / §4 — Themis memory overhead\n");

    let m = MemoryModel::table1_reference();
    let mut t = Table::new("Symbols (Table 1 reference values)", &["symbol", "value"]);
    t.row(&["N_paths".into(), m.n_paths.to_string()]);
    t.row(&["BW".into(), format!("{} Gbps", m.bw_bps / 1_000_000_000)]);
    t.row(&[
        "RTT_last".into(),
        format!("{} us", m.rtt_last.as_micros_f64()),
    ]);
    t.row(&["N_NIC".into(), m.n_nic.to_string()]);
    t.row(&["N_QP".into(), m.n_qp.to_string()]);
    t.row(&["MTU".into(), format!("{} B", m.mtu)]);
    t.row(&["F".into(), format!("{:.1}", m.f_times_100 as f64 / 100.0)]);
    t.print();

    println!();
    let mut r = Table::new("Eq. 4 evaluation", &["quantity", "bytes", "note"]);
    r.row(&[
        "N_entries".into(),
        m.n_entries().to_string(),
        "ceil(BW*RTT*F/MTU)".into(),
    ]);
    r.row(&[
        "M_PathMap".into(),
        m.pathmap_bytes().to_string(),
        "N_paths x 2".into(),
    ]);
    r.row(&[
        "M_QP".into(),
        m.per_qp_bytes().to_string(),
        "20 + N_entries".into(),
    ]);
    r.row(&[
        "M_total".into(),
        m.total_bytes().to_string(),
        "~193 KB [paper: 193 KB]".into(),
    ]);
    r.print();

    // Cross-check: live data structures occupy exactly the modeled bytes
    // plus this implementation's documented per-flow extension (the
    // expected-retransmission and recent-tPSN side tables; see
    // EXPERIMENTS.md "known deviations").
    let pm = PathMap::build(m.n_paths);
    assert_eq!(pm.memory_bytes(), m.pathmap_bytes());
    let mut ft = FlowTable::new(m.n_entries());
    let n_flows = m.n_qp * m.n_nic;
    for qp in 0..n_flows as u32 {
        ft.provision(netsim::types::QpId(qp));
    }
    let extension = n_flows * ENTRY_EXTENSION_BYTES;
    assert_eq!(
        ft.memory_bytes() + pm.memory_bytes(),
        m.total_bytes() + extension,
        "live structures must match the analytic model plus the extension"
    );
    println!(
        "\nlive-structure cross-check: PASS ({} bytes live == {} model + {} extension)",
        m.total_bytes() + extension,
        m.total_bytes(),
        extension
    );
    println!(
        "fraction of switch SRAM: {:.2}% of 32 MB, {:.2}% of 64 MB",
        m.fraction_of_sram(32 << 20) * 100.0,
        m.fraction_of_sram(64 << 20) * 100.0
    );
}
