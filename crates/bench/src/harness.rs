//! A hermetic, dependency-free micro/macro benchmark harness.
//!
//! Replaces criterion: this repo must build and run with no network
//! access, so the harness is ~150 lines of `std::time::Instant` timing.
//! It is deliberately simple — fixed warm-up, a target measurement
//! budget, median-of-samples reporting — because the quantity tracked
//! across PRs is *throughput of the simulation substrate* (events/sec,
//! packets/sec), where run-to-run noise is small compared to the ≥20%
//! regressions the CI gate cares about.
//!
//! Results can be serialised to a minimal JSON document
//! ([`write_json`]) so `scripts/ci.sh` can diff against the committed
//! `BENCH_substrate.json`.

use std::time::Instant;

/// One benchmark's result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (stable identifier across PRs).
    pub name: String,
    /// Samples taken (each sample is one closure invocation).
    pub samples: u32,
    /// Median wall time per invocation, in seconds.
    pub secs_per_iter: f64,
    /// Work units (events, packets, cells...) processed per invocation.
    pub units: u64,
    /// What a unit is, e.g. `"events"`.
    pub unit_label: &'static str,
}

impl Measurement {
    /// Units processed per wall-clock second.
    pub fn units_per_sec(&self) -> f64 {
        if self.secs_per_iter <= 0.0 {
            0.0
        } else {
            self.units as f64 / self.secs_per_iter
        }
    }

    /// One human-readable report line.
    pub fn report_line(&self) -> String {
        format!(
            "{:<40} {:>10.3} ms/iter   {:>12.0} {}/s",
            self.name,
            self.secs_per_iter * 1e3,
            self.units_per_sec(),
            self.unit_label
        )
    }
}

/// Benchmark runner with a wall-clock budget per benchmark.
pub struct Bench {
    /// Seconds to spend measuring each benchmark (after 1 warm-up run).
    pub budget_secs: f64,
    /// Max samples per benchmark regardless of budget.
    pub max_samples: u32,
    results: Vec<Measurement>,
}

impl Bench {
    /// A harness with the given measurement budget per benchmark.
    pub fn new(budget_secs: f64) -> Bench {
        Bench {
            budget_secs,
            max_samples: 50,
            results: Vec::new(),
        }
    }

    /// Time `f` repeatedly; `f` returns the number of work units it
    /// processed (a `u64` the optimiser cannot discard). Records and
    /// prints the measurement.
    pub fn run(
        &mut self,
        name: &str,
        unit_label: &'static str,
        mut f: impl FnMut() -> u64,
    ) -> &Measurement {
        let units = f(); // warm-up; also establishes the unit count
        let mut times = Vec::new();
        let started = Instant::now();
        while started.elapsed().as_secs_f64() < self.budget_secs
            && (times.len() as u32) < self.max_samples
        {
            let t0 = Instant::now();
            let got = f();
            times.push(t0.elapsed().as_secs_f64());
            assert_eq!(got, units, "benchmark '{name}' must be deterministic");
        }
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let m = Measurement {
            name: name.to_string(),
            samples: times.len() as u32,
            secs_per_iter: median,
            units,
            unit_label,
        };
        println!("{}", m.report_line());
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// A flat JSON value for [`write_json`].
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A finite float, emitted with enough precision to round-trip.
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A string (escaped minimally; benchmark names are ASCII).
    Str(String),
}

/// Serialise `fields` as a single flat JSON object, sorted as given.
pub fn to_json(fields: &[(String, JsonValue)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        let sep = if i + 1 == fields.len() { "" } else { "," };
        let val = match v {
            JsonValue::Num(x) => format!("{x:.3}"),
            JsonValue::Int(x) => format!("{x}"),
            JsonValue::Str(s) => format!("\"{}\"", s.replace('"', "\\\"")),
        };
        out.push_str(&format!("  \"{k}\": {val}{sep}\n"));
    }
    out.push_str("}\n");
    out
}

/// Write `fields` to `path` as JSON.
pub fn write_json(path: &str, fields: &[(String, JsonValue)]) -> std::io::Result<()> {
    std::fs::write(path, to_json(fields))
}

/// Read one numeric field back out of a flat JSON file written by
/// [`write_json`] (the CI regression gate's parser).
pub fn read_json_field(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let needle = format!("\"{key}\":");
        if let Some(rest) = line.strip_prefix(&needle) {
            return rest.trim().parse::<f64>().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_math() {
        let m = Measurement {
            name: "x".into(),
            samples: 3,
            secs_per_iter: 0.5,
            units: 1000,
            unit_label: "events",
        };
        assert!((m.units_per_sec() - 2000.0).abs() < 1e-9);
        assert!(m.report_line().contains("events/s"));
    }

    #[test]
    fn bench_runs_and_records() {
        let mut b = Bench::new(0.01);
        let m = b.run("noop", "units", || 42);
        assert_eq!(m.units, 42);
        assert!(m.samples >= 1);
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn json_round_trips_a_field() {
        let path = std::env::temp_dir().join("themis_bench_json_test.json");
        let path = path.to_str().unwrap().to_string();
        write_json(
            &path,
            &[
                ("events_per_sec".to_string(), JsonValue::Num(123456.789)),
                ("cpus".to_string(), JsonValue::Int(4)),
                ("note".to_string(), JsonValue::Str("hi \"there\"".into())),
            ],
        )
        .unwrap();
        assert_eq!(read_json_field(&path, "events_per_sec"), Some(123456.789));
        assert_eq!(read_json_field(&path, "cpus"), Some(4.0));
        assert_eq!(read_json_field(&path, "missing"), None);
        std::fs::remove_file(&path).ok();
    }
}
