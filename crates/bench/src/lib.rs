//! # themis-bench — the benchmark harness
//!
//! One bench target per table/figure of the paper (run with
//! `cargo bench -p themis-bench`):
//!
//! * `fig1_motivation` — Fig 1b/1c/1d: retransmission ratio and sending
//!   rate over time, NIC-SR vs Ideal throughput.
//! * `fig5_allreduce` / `fig5_alltoall` — Fig 5a/5b: tail completion
//!   time across the DCQCN `(T_I, T_D)` sweep for ECMP / AR / Themis.
//! * `table1_memory` — the §4 memory model at the Table 1 reference.
//! * `ablations` — design-choice studies: compensation on/off, PathMap
//!   vs direct egress, spray-without-filter, queue expansion factor.
//! * `micro` — micro-benchmarks of the hot paths (event engine, PSN
//!   queue, PathMap construction, ECMP hash, Eq. 3).
//! * `substrate` — the substrate throughput tracker: events/sec and
//!   packets/sec plus the parallel-sweep speedup; writes
//!   `BENCH_substrate.json` at the repo root (the CI regression gate).
//!
//! All benches use the in-repo [`harness`] (no criterion: this repo
//! builds with no network access and therefore no external crates).
//!
//! Figure benches run at a scaled-down message size by default so the
//! whole suite finishes in minutes; set `THEMIS_BENCH_MB` to raise the
//! per-group buffer (the paper's full scale is 300 MB, ≈ hours).

pub mod harness;

/// Per-group buffer size for figure benches, in bytes. Reads
/// `THEMIS_BENCH_MB` (default 2 MB; the paper's full scale is 300).
pub fn bench_bytes() -> u64 {
    let mb = std::env::var("THEMIS_BENCH_MB")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(2);
    mb << 20
}

/// Scale factor banner for reports.
pub fn scale_banner() -> String {
    let bytes = bench_bytes();
    format!(
        "buffer = {} MB per group (paper: 300 MB; set THEMIS_BENCH_MB to change)",
        bytes >> 20
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_2mb() {
        // Unless the environment overrides it.
        if std::env::var("THEMIS_BENCH_MB").is_err() {
            assert_eq!(bench_bytes(), 2 << 20);
        }
        assert!(scale_banner().contains("paper: 300 MB"));
    }
}
