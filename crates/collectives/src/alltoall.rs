//! Pairwise Alltoall.
//!
//! Every rank sends a `total / N` slice of its buffer to every other rank,
//! all transfers independent and posted at t = 0 — the densest traffic
//! matrix in AI workloads (mixture-of-experts dispatch). With N(N−1)
//! simultaneous flows per group the pattern stresses last-hop incast and
//! core load balancing at once.

use crate::schedule::{Schedule, Transfer};

/// Alltoall of a `total_bytes` buffer over `n` ranks: each ordered pair
/// exchanges `total / n` bytes, everything concurrent.
pub fn alltoall(n: usize, total_bytes: u64) -> Schedule {
    assert!(n >= 2, "alltoall needs at least two ranks");
    let chunk = (total_bytes / n as u64).max(1);
    let mut transfers = Vec::with_capacity(n * (n - 1));
    for src in 0..n {
        for off in 1..n {
            // Destination order staggered per source so rank 0 is not
            // everyone's first target.
            let dst = (src + off) % n;
            transfers.push(Transfer {
                src,
                dst,
                bytes: chunk,
                deps: vec![],
            });
        }
    }
    Schedule {
        name: "alltoall",
        n_ranks: n,
        transfers,
    }
}

/// Alltoall serialized into rounds (round r: rank i sends to i ⊕ r — the
/// classic hypercube/pairwise exchange). Each round depends on the
/// previous one; used as a less bursty ablation of [`alltoall`].
/// Requires `n` to be a power of two.
pub fn alltoall_rounds(n: usize, total_bytes: u64) -> Schedule {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "pairwise exchange needs 2^k ranks"
    );
    let chunk = (total_bytes / n as u64).max(1);
    let mut transfers = Vec::with_capacity(n * (n - 1));
    for round in 1..n {
        for src in 0..n {
            let dst = src ^ round;
            let deps = if round == 1 {
                vec![]
            } else {
                // Wait for this rank's transfer of the previous round.
                vec![(round - 2) * n + src]
            };
            transfers.push(Transfer {
                src,
                dst,
                bytes: chunk,
                deps,
            });
        }
    }
    Schedule {
        name: "alltoall-rounds",
        n_ranks: n,
        transfers,
    }
}

/// N-to-1 incast: every rank sends `bytes_per_source` to rank 0, all at
/// once. The classic buffer-pressure stress (distributed storage reads,
/// parameter-server fan-in): the sink's last hop sees `N−1` line-rate
/// senders converge.
pub fn incast(n: usize, bytes_per_source: u64) -> Schedule {
    assert!(n >= 2, "incast needs at least one sender and the sink");
    Schedule {
        name: "incast",
        n_ranks: n,
        transfers: (1..n)
            .map(|src| Transfer {
                src,
                dst: 0,
                bytes: bytes_per_source.max(1),
                deps: vec![],
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alltoall_covers_all_ordered_pairs() {
        let n = 16;
        let s = alltoall(n, 300 << 20);
        assert_eq!(s.transfers.len(), n * (n - 1));
        s.validate();
        let mut pairs = std::collections::HashSet::new();
        for t in &s.transfers {
            assert!(pairs.insert((t.src, t.dst)), "duplicate pair");
        }
        assert_eq!(pairs.len(), n * (n - 1));
    }

    #[test]
    fn alltoall_is_fully_concurrent() {
        let s = alltoall(8, 1 << 20);
        assert_eq!(s.validate(), 0);
        assert_eq!(s.roots().count(), s.transfers.len());
    }

    #[test]
    fn per_rank_volume() {
        let n = 16u64;
        let total = 300u64 << 20;
        let s = alltoall(n as usize, total);
        assert_eq!(s.bytes_sent_by(0), (n - 1) * (total / n));
    }

    #[test]
    fn rounds_variant_chains_rounds() {
        let n = 8;
        let s = alltoall_rounds(n, 1 << 20);
        assert_eq!(s.transfers.len(), n * (n - 1));
        assert_eq!(s.validate(), n - 2, "n-1 rounds chained");
        // Round 1 uses XOR partners.
        assert_eq!(s.transfers[0].src, 0);
        assert_eq!(s.transfers[0].dst, 1);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rounds_variant_rejects_non_power_of_two() {
        alltoall_rounds(6, 1 << 20);
    }

    #[test]
    fn incast_converges_on_rank_zero() {
        let s = incast(4, 1 << 20);
        assert_eq!(s.transfers.len(), 3);
        s.validate();
        assert!(s.transfers.iter().all(|t| t.dst == 0));
        assert_eq!(s.roots().count(), 3, "all senders start at once");
        assert_eq!(s.bytes_sent_by(0), 0, "the sink sends nothing");
        assert_eq!(s.total_wire_bytes(), 3 << 20);
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn incast_needs_two_ranks() {
        incast(1, 100);
    }
}
