//! The in-simulation workload driver.
//!
//! One [`Driver`] entity owns every collective *instance* (group) of an
//! experiment. At start (a seed timer event) it posts all dependency-free
//! transfers; as [`ControlMsg::MessageDelivered`] notifications arrive it
//! releases dependent transfers and records per-instance completion
//! times. The §5 metric — the slowest group's completion time — is
//! [`Driver::tail_completion`].

use crate::schedule::Schedule;
use netsim::event::{ControlMsg, Event};
use netsim::types::{HostId, NodeId, QpId};
use netsim::world::{Ctx, Entity, World};
use rnic::Nic;
use simcore::rng::Xoshiro256;
use simcore::stats::LogHistogram;
use simcore::time::Nanos;
use std::collections::HashMap;

/// Allocates globally unique QP ids and flow entropy values.
#[derive(Debug)]
pub struct QpAllocator {
    next: u32,
    rng: Xoshiro256,
}

impl QpAllocator {
    /// A fresh allocator.
    pub fn new(seed: u64) -> QpAllocator {
        QpAllocator {
            next: 0,
            rng: Xoshiro256::seeded(seed),
        }
    }

    /// Allocate a QP id plus a random ephemeral UDP source port.
    pub fn alloc(&mut self) -> (QpId, u16) {
        let qp = QpId(self.next);
        self.next += 1;
        // Ephemeral port range 49152..65535.
        let sport = 49152 + self.rng.next_below(16_384) as u16;
        (qp, sport)
    }

    /// Number of QPs allocated so far.
    pub fn allocated(&self) -> u32 {
        self.next
    }
}

/// A collective instance wired to concrete hosts and QPs.
#[derive(Debug)]
pub struct InstanceSpec {
    /// Rank → host mapping.
    pub hosts: Vec<HostId>,
    /// The schedule.
    pub schedule: Schedule,
    /// Transfer index → QP carrying it.
    pub qp_of_transfer: Vec<QpId>,
}

/// Create one reliable connection between two hosts, registering the
/// driver on both NICs.
fn create_qp(
    world: &mut World,
    driver_node: NodeId,
    src_host: HostId,
    dst_host: HostId,
    alloc: &mut QpAllocator,
) -> QpId {
    let (qp, sport) = alloc.alloc();
    // Reverse-direction entropy differs from forward so ACK streams do
    // not necessarily share the forward path.
    let reverse_sport = sport ^ 0x4000;
    {
        let nic: &mut Nic = world
            .get_mut(NodeId(src_host.0))
            .expect("sender NIC installed at NodeId(host)");
        nic.create_send_qp(qp, dst_host, sport);
        nic.set_driver(driver_node);
    }
    {
        let nic: &mut Nic = world
            .get_mut(NodeId(dst_host.0))
            .expect("receiver NIC installed at NodeId(host)");
        nic.create_recv_qp(qp, src_host, reverse_sport);
        nic.set_driver(driver_node);
    }
    qp
}

/// Create the QPs for `schedule` over `hosts` and register the driver on
/// every participating NIC. One QP per ordered rank pair per instance,
/// matching how NCCL-style libraries reuse connections across steps.
pub fn setup_collective(
    world: &mut World,
    driver_node: NodeId,
    hosts: &[HostId],
    schedule: Schedule,
    alloc: &mut QpAllocator,
) -> InstanceSpec {
    assert_eq!(
        hosts.len(),
        schedule.n_ranks,
        "host list must cover every rank"
    );
    let mut pair_qp: HashMap<(usize, usize), QpId> = HashMap::new();
    let mut qp_of_transfer = Vec::with_capacity(schedule.transfers.len());
    for t in &schedule.transfers {
        let qp = *pair_qp
            .entry((t.src, t.dst))
            .or_insert_with(|| create_qp(world, driver_node, hosts[t.src], hosts[t.dst], alloc));
        qp_of_transfer.push(qp);
    }
    InstanceSpec {
        hosts: hosts.to_vec(),
        schedule,
        qp_of_transfer,
    }
}

/// Like [`setup_collective`], but striping every transfer across
/// `stripes` parallel QPs per rank pair, the way NCCL-style libraries
/// spread one logical channel over several connections (the paper's §4
/// sizing assumes up to 100 cross-rack QPs per NIC for Alltoall-heavy
/// workloads).
///
/// Each transfer of B bytes is split into `stripes` sub-messages of
/// ~B/stripes bytes, one per QP of the pair; the sub-transfers inherit
/// the original dependencies, and every dependant waits for *all*
/// stripes of its dependency (the driver's delivery bookkeeping treats
/// each stripe as its own transfer).
pub fn setup_collective_striped(
    world: &mut World,
    driver_node: NodeId,
    hosts: &[HostId],
    schedule: Schedule,
    stripes: usize,
    alloc: &mut QpAllocator,
) -> InstanceSpec {
    assert!(stripes >= 1, "need at least one stripe");
    assert_eq!(
        hosts.len(),
        schedule.n_ranks,
        "host list must cover every rank"
    );
    if stripes == 1 {
        return setup_collective(world, driver_node, hosts, schedule, alloc);
    }
    let mut pair_qps: HashMap<(usize, usize), Vec<QpId>> = HashMap::new();
    let mut transfers = Vec::with_capacity(schedule.transfers.len() * stripes);
    let mut qp_of_transfer = Vec::with_capacity(schedule.transfers.len() * stripes);
    // Original transfer i becomes striped transfers i*stripes..(i+1)*stripes.
    for t in &schedule.transfers {
        let qps = pair_qps
            .entry((t.src, t.dst))
            .or_insert_with(|| {
                (0..stripes)
                    .map(|_| create_qp(world, driver_node, hosts[t.src], hosts[t.dst], alloc))
                    .collect()
            })
            .clone();
        let base = t.bytes / stripes as u64;
        let remainder = t.bytes - base * stripes as u64;
        for (s, &qp) in qps.iter().enumerate() {
            let bytes = if s == 0 { base + remainder } else { base };
            let deps = t
                .deps
                .iter()
                .flat_map(|&d| (0..stripes).map(move |k| d * stripes + k))
                .collect();
            transfers.push(crate::schedule::Transfer {
                src: t.src,
                dst: t.dst,
                bytes: bytes.max(1),
                deps,
            });
            qp_of_transfer.push(qp);
        }
    }
    InstanceSpec {
        hosts: hosts.to_vec(),
        schedule: Schedule {
            name: schedule.name,
            n_ranks: schedule.n_ranks,
            transfers,
        },
        qp_of_transfer,
    }
}

#[derive(Debug)]
struct InstanceState {
    spec: InstanceSpec,
    remaining_deps: Vec<usize>,
    dependents: Vec<Vec<usize>>,
    delivered: Vec<bool>,
    post_time: Vec<Option<Nanos>>,
    delivery_time: Vec<Option<Nanos>>,
    undelivered: usize,
    completion: Option<Nanos>,
}

impl InstanceState {
    fn new(spec: InstanceSpec) -> InstanceState {
        let n = spec.schedule.transfers.len();
        let mut dependents = vec![Vec::new(); n];
        let mut remaining = vec![0usize; n];
        for (i, t) in spec.schedule.transfers.iter().enumerate() {
            remaining[i] = t.deps.len();
            for &d in &t.deps {
                dependents[d].push(i);
            }
        }
        InstanceState {
            spec,
            remaining_deps: remaining,
            dependents,
            delivered: vec![false; n],
            post_time: vec![None; n],
            delivery_time: vec![None; n],
            undelivered: n,
            completion: None,
        }
    }
}

/// Timer token that kicks the workload off.
pub const START_TOKEN: u64 = 0;

/// The workload-driver entity.
#[derive(Debug, Default)]
pub struct Driver {
    instances: Vec<InstanceState>,
    started_at: Option<Nanos>,
    telem: Option<(telemetry::Sink, telemetry::HistId)>,
    /// Deliveries received for unknown tags (accounting bug canary).
    pub stray_deliveries: u64,
}

impl Driver {
    /// An empty driver; add instances before the run starts.
    pub fn new() -> Driver {
        Driver::default()
    }

    /// Register an instance; returns its index.
    pub fn add_instance(&mut self, spec: InstanceSpec) -> usize {
        spec.schedule.validate();
        assert_eq!(spec.qp_of_transfer.len(), spec.schedule.transfers.len());
        self.instances.push(InstanceState::new(spec));
        self.instances.len() - 1
    }

    /// Install a telemetry handle; each transfer's post → in-order
    /// delivery latency is observed into `hist` at delivery time (the
    /// live, time-bucketed counterpart of [`Self::latency_histogram`]).
    pub fn set_telemetry(&mut self, sink: telemetry::Sink, hist: telemetry::HistId) {
        self.telem = Some((sink, hist));
    }

    /// When the workload was kicked off.
    pub fn started_at(&self) -> Option<Nanos> {
        self.started_at
    }

    /// Completion time of instance `i` (absolute).
    pub fn completion_of(&self, i: usize) -> Option<Nanos> {
        self.instances.get(i).and_then(|s| s.completion)
    }

    /// The slowest instance's completion time — the paper's §5 metric.
    /// `None` until every instance has completed.
    pub fn tail_completion(&self) -> Option<Nanos> {
        self.instances
            .iter()
            .map(|s| s.completion)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(Nanos::ZERO))
    }

    /// All per-instance completion times.
    pub fn completions(&self) -> Vec<Option<Nanos>> {
        self.instances.iter().map(|s| s.completion).collect()
    }

    /// Whether every instance completed.
    pub fn all_complete(&self) -> bool {
        self.instances.iter().all(|s| s.completion.is_some())
    }

    /// Number of instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Per-transfer delivery timestamps of instance `i` (per-flow
    /// throughput extraction, Fig 1d).
    pub fn delivery_times(&self, i: usize) -> &[Option<Nanos>] {
        &self.instances[i].delivery_time
    }

    /// The wired spec of instance `i` (QP ids for trace enablement).
    pub fn instance_spec(&self, i: usize) -> &InstanceSpec {
        &self.instances[i].spec
    }

    /// Histogram of per-transfer latencies (post → in-order delivery) in
    /// nanoseconds, across every completed transfer of every instance.
    pub fn latency_histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for st in &self.instances {
            for (post, done) in st.post_time.iter().zip(&st.delivery_time) {
                if let (Some(p), Some(d)) = (post, done) {
                    h.record(d.since(*p).as_nanos());
                }
            }
        }
        h
    }

    fn encode_tag(instance: usize, transfer: usize) -> u64 {
        ((instance as u64) << 32) | transfer as u64
    }

    fn decode_tag(tag: u64) -> (usize, usize) {
        ((tag >> 32) as usize, (tag & 0xFFFF_FFFF) as usize)
    }

    fn post(&mut self, inst: usize, transfer: usize, ctx: &mut Ctx<'_>) {
        let st = &mut self.instances[inst];
        st.post_time[transfer] = Some(ctx.now());
        let t = &st.spec.schedule.transfers[transfer];
        let src_host = st.spec.hosts[t.src];
        ctx.control(
            NodeId(src_host.0),
            ControlMsg::PostSend {
                qp: st.spec.qp_of_transfer[transfer],
                bytes: t.bytes,
                msg_tag: Self::encode_tag(inst, transfer),
            },
        );
    }

    fn start(&mut self, ctx: &mut Ctx<'_>) {
        if self.started_at.is_some() {
            return;
        }
        self.started_at = Some(ctx.now());
        for inst in 0..self.instances.len() {
            let roots: Vec<usize> = self.instances[inst].spec.schedule.roots().collect();
            for r in roots {
                self.post(inst, r, ctx);
            }
        }
    }

    fn on_delivered(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        let (inst, transfer) = Self::decode_tag(tag);
        let Some(st) = self.instances.get_mut(inst) else {
            self.stray_deliveries += 1;
            return;
        };
        if transfer >= st.delivered.len() || st.delivered[transfer] {
            self.stray_deliveries += 1;
            return;
        }
        st.delivered[transfer] = true;
        st.delivery_time[transfer] = Some(ctx.now());
        if let Some((sink, hist)) = &self.telem {
            if let Some(posted) = st.post_time[transfer] {
                sink.observe(*hist, ctx.now().since(posted).as_nanos());
            }
        }
        st.undelivered -= 1;
        if st.undelivered == 0 {
            st.completion = Some(ctx.now());
        }
        let mut ready = Vec::new();
        let dependents = std::mem::take(&mut st.dependents[transfer]);
        for &d in &dependents {
            st.remaining_deps[d] -= 1;
            if st.remaining_deps[d] == 0 {
                ready.push(d);
            }
        }
        st.dependents[transfer] = dependents;
        for d in ready {
            self.post(inst, d, ctx);
        }
    }
}

impl Entity for Driver {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Timer { token: START_TOKEN } => self.start(ctx),
            Event::Control(ControlMsg::MessageDelivered { msg_tag, .. }) => {
                self.on_delivered(msg_tag, ctx);
            }
            Event::Control(ControlMsg::MessageAcked { .. }) => {
                // Sender-side completions are informational only.
            }
            _ => debug_assert!(false, "unexpected event at driver: {ev:?}"),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ring_allreduce, ring_once};
    use netsim::port::{EgressPort, LinkSpec};
    use netsim::types::PortId;
    use rnic::NicConfig;

    const GBPS100: u64 = 100_000_000_000;

    /// Two hosts wired back-to-back plus a driver.
    fn two_host_world() -> (World, NodeId) {
        let mut world = World::new();
        let a = world.reserve();
        let b = world.reserve();
        let link = LinkSpec::gbps(100, 1);
        world.install(
            a,
            Box::new(Nic::new(
                HostId(0),
                NicConfig::nic_sr(GBPS100),
                EgressPort::new(b, PortId(0), link),
            )),
        );
        world.install(
            b,
            Box::new(Nic::new(
                HostId(1),
                NicConfig::nic_sr(GBPS100),
                EgressPort::new(a, PortId(0), link),
            )),
        );
        let driver = world.reserve();
        (world, driver)
    }

    #[test]
    fn qp_allocator_is_unique_and_in_range() {
        let mut a = QpAllocator::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let (qp, sport) = a.alloc();
            assert!(seen.insert(qp));
            assert!(sport >= 49152);
        }
        assert_eq!(a.allocated(), 100);
    }

    #[test]
    fn ring_once_two_ranks_completes() {
        let (mut world, driver_node) = two_host_world();
        let mut alloc = QpAllocator::new(7);
        let hosts = [HostId(0), HostId(1)];
        let spec = setup_collective(
            &mut world,
            driver_node,
            &hosts,
            ring_once(2, 500_000),
            &mut alloc,
        );
        let mut driver = Driver::new();
        driver.add_instance(spec);
        world.install(driver_node, Box::new(driver));
        world.seed_event(
            Nanos::ZERO,
            driver_node,
            Event::Timer { token: START_TOKEN },
        );
        world.run_until(Nanos::from_millis(100));
        let d: &Driver = world.get(driver_node).unwrap();
        assert!(d.all_complete());
        assert_eq!(d.stray_deliveries, 0);
        let ct = d.tail_completion().unwrap();
        // 500 KB at 100 Gbps ≈ 40 µs minimum.
        assert!(ct > Nanos::from_micros(40));
        assert!(ct < Nanos::from_millis(1));
    }

    #[test]
    fn dependency_chain_serializes_steps() {
        // 2-rank ring allreduce: 2 steps, step 1 waits for step 0.
        let (mut world, driver_node) = two_host_world();
        let mut alloc = QpAllocator::new(7);
        let hosts = [HostId(0), HostId(1)];
        let bytes_total = 1_000_000u64;
        let spec = setup_collective(
            &mut world,
            driver_node,
            &hosts,
            ring_allreduce(2, bytes_total),
            &mut alloc,
        );
        let mut driver = Driver::new();
        driver.add_instance(spec);
        world.install(driver_node, Box::new(driver));
        world.seed_event(
            Nanos::ZERO,
            driver_node,
            Event::Timer { token: START_TOKEN },
        );
        world.run_until(Nanos::from_millis(100));
        let d: &Driver = world.get(driver_node).unwrap();
        assert!(d.all_complete());
        let ct = d.tail_completion().unwrap().as_secs_f64();
        // Two dependent steps of total/2 bytes each: at least
        // 2 × (500 KB / 100 Gbps) = 80 µs.
        assert!(ct >= 80e-6, "dependent steps cannot overlap: {ct}");
    }

    #[test]
    fn qps_are_shared_per_pair() {
        let (mut world, driver_node) = two_host_world();
        let mut alloc = QpAllocator::new(7);
        let hosts = [HostId(0), HostId(1)];
        // 2-rank allreduce: 2 transfers, both 0->1 ... plus 1->0:
        // pairs (0,1) and (1,0) across both steps -> exactly 2 QPs.
        let spec = setup_collective(
            &mut world,
            driver_node,
            &hosts,
            ring_allreduce(2, 1_000_000),
            &mut alloc,
        );
        assert_eq!(alloc.allocated(), 2);
        let unique: std::collections::HashSet<QpId> = spec.qp_of_transfer.iter().copied().collect();
        assert_eq!(unique.len(), 2);
    }

    #[test]
    fn striped_setup_creates_stripes_qps_per_pair() {
        let (mut world, driver_node) = two_host_world();
        let mut alloc = QpAllocator::new(7);
        let hosts = [HostId(0), HostId(1)];
        let spec = setup_collective_striped(
            &mut world,
            driver_node,
            &hosts,
            ring_once(2, 1_000_000),
            4,
            &mut alloc,
        );
        // 2 ordered pairs x 4 stripes.
        assert_eq!(alloc.allocated(), 8);
        assert_eq!(spec.schedule.transfers.len(), 8);
        spec.schedule.validate();
        // Byte split: each original 1 MB transfer becomes 4 x 250 KB.
        let total: u64 = spec.schedule.transfers.iter().map(|t| t.bytes).sum();
        assert_eq!(total, 2_000_000);
    }

    #[test]
    fn striped_ring_completes_and_balances_qps() {
        let (mut world, driver_node) = two_host_world();
        let mut alloc = QpAllocator::new(7);
        let hosts = [HostId(0), HostId(1)];
        let spec = setup_collective_striped(
            &mut world,
            driver_node,
            &hosts,
            crate::ring::ring_allreduce(2, 800_000),
            4,
            &mut alloc,
        );
        let mut driver = Driver::new();
        driver.add_instance(spec);
        world.install(driver_node, Box::new(driver));
        world.seed_event(
            Nanos::ZERO,
            driver_node,
            Event::Timer { token: START_TOKEN },
        );
        world.run_until(Nanos::from_millis(100));
        let d: &Driver = world.get(driver_node).unwrap();
        assert!(d.all_complete(), "striped allreduce completes");
        assert_eq!(d.stray_deliveries, 0);
        // Every stripe QP carried data.
        let nic: &Nic = world.get(NodeId(0)).unwrap();
        for qp in nic.send_qps() {
            assert!(qp.stats.data_packets > 0, "idle stripe QP");
        }
    }

    #[test]
    fn one_stripe_degenerates_to_plain_setup() {
        let (mut world, driver_node) = two_host_world();
        let mut alloc = QpAllocator::new(7);
        let hosts = [HostId(0), HostId(1)];
        let spec = setup_collective_striped(
            &mut world,
            driver_node,
            &hosts,
            ring_once(2, 500_000),
            1,
            &mut alloc,
        );
        assert_eq!(alloc.allocated(), 2);
        assert_eq!(spec.schedule.transfers.len(), 2);
    }

    #[test]
    fn latency_histogram_covers_all_transfers() {
        let (mut world, driver_node) = two_host_world();
        let mut alloc = QpAllocator::new(7);
        let hosts = [HostId(0), HostId(1)];
        let spec = setup_collective(
            &mut world,
            driver_node,
            &hosts,
            crate::ring::ring_allreduce(2, 400_000),
            &mut alloc,
        );
        let n_transfers = spec.schedule.transfers.len();
        let mut driver = Driver::new();
        driver.add_instance(spec);
        world.install(driver_node, Box::new(driver));
        world.seed_event(
            Nanos::ZERO,
            driver_node,
            Event::Timer { token: START_TOKEN },
        );
        world.run_until(Nanos::from_millis(100));
        let d: &Driver = world.get(driver_node).unwrap();
        let h = d.latency_histogram();
        assert_eq!(h.count() as usize, n_transfers);
        // Each 200 KB step takes at least its serialization time (~16 us).
        assert!(h.min().unwrap() > 10_000, "min {}ns", h.min().unwrap());
        assert!(h.quantile(0.99).unwrap() >= h.quantile(0.5).unwrap());
    }

    #[test]
    fn tail_completion_none_until_all_done() {
        let mut d = Driver::new();
        assert!(
            d.tail_completion().is_some(),
            "vacuously complete when empty"
        );
        let spec = InstanceSpec {
            hosts: vec![HostId(0), HostId(1)],
            schedule: ring_once(2, 100),
            qp_of_transfer: vec![QpId(0), QpId(1)],
        };
        d.add_instance(spec);
        assert!(d.tail_completion().is_none());
        assert!(!d.all_complete());
    }
}
