//! Communication-group construction (§5).
//!
//! The evaluation divides 256 NICs into 16 groups of 16 with *each NIC in
//! a group connected to a different ToR switch*: group `g` consists of
//! host `t · hosts_per_tor + g` for every rack `t`. Ring neighbours are
//! therefore always cross-rack, and all groups stress the fabric core
//! simultaneously.
//!
//! The Fig 1a motivation groups are the same construction on a 4×2
//! fabric: evens {0,2,4,6} and odds {1,3,5,7}.

use netsim::types::HostId;

/// Hosts of group `g`: one per rack, at local slot `g`.
pub fn group_hosts(n_tors: usize, hosts_per_tor: usize, g: usize) -> Vec<HostId> {
    assert!(g < hosts_per_tor, "group index exceeds hosts per rack");
    (0..n_tors)
        .map(|t| HostId((t * hosts_per_tor + g) as u32))
        .collect()
}

/// All `hosts_per_tor` groups of the fabric.
pub fn all_groups(n_tors: usize, hosts_per_tor: usize) -> Vec<Vec<HostId>> {
    (0..hosts_per_tor)
        .map(|g| group_hosts(n_tors, hosts_per_tor, g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_eval_groups() {
        let groups = all_groups(16, 16);
        assert_eq!(groups.len(), 16);
        for (g, hosts) in groups.iter().enumerate() {
            assert_eq!(hosts.len(), 16);
            // One host per rack: rack of host h is h / 16.
            let racks: Vec<usize> = hosts.iter().map(|h| h.index() / 16).collect();
            assert_eq!(racks, (0..16).collect::<Vec<_>>());
            // Local slot is the group index.
            assert!(hosts.iter().all(|h| h.index() % 16 == g));
        }
        // Groups partition the host set.
        let mut all: Vec<u32> = groups.concat().iter().map(|h| h.0).collect();
        all.sort_unstable();
        assert_eq!(all, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn motivation_groups_are_evens_and_odds() {
        let groups = all_groups(4, 2);
        assert_eq!(
            groups[0].iter().map(|h| h.0).collect::<Vec<_>>(),
            vec![0, 2, 4, 6]
        );
        assert_eq!(
            groups[1].iter().map(|h| h.0).collect::<Vec<_>>(),
            vec![1, 3, 5, 7]
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn group_index_bounds_checked() {
        group_hosts(4, 2, 2);
    }
}
