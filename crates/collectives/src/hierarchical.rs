//! Hierarchical (two-level) Allreduce.
//!
//! NCCL-style rack-aware algorithm over `groups` racks × `locals` ranks
//! per rack (global rank = `rack * locals + local`):
//!
//! 1. **Local reduce-scatter** — a ring within each rack (N−1 steps over
//!    intra-rack links) leaves each local rank holding `1/locals` of the
//!    rack's reduced buffer.
//! 2. **Cross-rack Allreduce** — `locals` simultaneous ring Allreduces,
//!    one per local index, each spanning one rank per rack (all hops
//!    cross-rack — the traffic Themis targets).
//! 3. **Local allgather** — the intra-rack ring redistributes the fully
//!    reduced shards.
//!
//! Compared with one flat ring over all ranks, the cross-rack phase moves
//! `1/locals` of the bytes over the core — exactly why production systems
//! use hierarchical algorithms, and a natural mixed intra/inter-rack
//! workload for the simulator.

use crate::schedule::{Schedule, Transfer};

/// Build the two-level Allreduce schedule.
///
/// `total_bytes` is the per-rank buffer size. Requires at least two racks
/// and two local ranks (degenerate shapes fall back to plain rings at the
/// caller's choice).
pub fn hierarchical_allreduce(groups: usize, locals: usize, total_bytes: u64) -> Schedule {
    assert!(groups >= 2, "need at least two racks");
    assert!(locals >= 2, "need at least two local ranks per rack");
    let n = groups * locals;
    let rank = |g: usize, l: usize| g * locals + l;
    let local_chunk = (total_bytes / locals as u64).max(1);
    let cross_chunk = (local_chunk / groups as u64).max(1);

    let mut transfers: Vec<Transfer> = Vec::new();
    // Index bookkeeping: phase-1 transfer (g, step s, local l) etc.
    let mut p1_idx = vec![vec![0usize; locals]; groups * (locals - 1)];
    // --- Phase 1: local reduce-scatter rings (locals-1 steps) --------
    for s in 0..locals - 1 {
        for g in 0..groups {
            #[allow(clippy::needless_range_loop)] // l indexes p1_idx and ranks
            for l in 0..locals {
                let deps = if s == 0 {
                    vec![]
                } else {
                    vec![p1_idx[(s - 1) * groups + g][(l + locals - 1) % locals]]
                };
                p1_idx[s * groups + g][l] = transfers.len();
                transfers.push(Transfer {
                    src: rank(g, l),
                    dst: rank(g, (l + 1) % locals),
                    bytes: local_chunk,
                    deps,
                });
            }
        }
    }
    // Phase-1 completion markers per (g, l): the receive that finishes
    // rank (g, l)'s shard is the last-step transfer from its predecessor.
    let p1_done = |g: usize, l: usize| -> usize {
        p1_idx[(locals - 2) * groups + g][(l + locals - 1) % locals]
    };

    // --- Phase 2: cross-rack ring Allreduce per local index ----------
    // 2(groups-1) steps of cross_chunk bytes between (g, l) -> (g+1, l).
    let steps2 = 2 * (groups - 1);
    let mut p2_idx = vec![vec![0usize; locals]; steps2 * groups];
    for s in 0..steps2 {
        for g in 0..groups {
            #[allow(clippy::needless_range_loop)] // l indexes three parallel tables
            for l in 0..locals {
                let deps = if s == 0 {
                    // Start once this rank's phase-1 shard is complete.
                    vec![p1_done(g, l)]
                } else {
                    vec![p2_idx[(s - 1) * groups + (g + groups - 1) % groups][l]]
                };
                p2_idx[s * groups + g][l] = transfers.len();
                transfers.push(Transfer {
                    src: rank(g, l),
                    dst: rank((g + 1) % groups, l),
                    bytes: cross_chunk,
                    deps,
                });
            }
        }
    }
    let p2_done = |g: usize, l: usize| -> usize {
        p2_idx[(steps2 - 1) * groups + (g + groups - 1) % groups][l]
    };

    // --- Phase 3: local allgather rings (locals-1 steps) -------------
    let mut p3_prev: Vec<Vec<usize>> = vec![vec![0; locals]; groups];
    for s in 0..locals - 1 {
        #[allow(clippy::needless_range_loop)] // g indexes p3_prev and ranks
        for g in 0..groups {
            let prev = p3_prev[g].clone();
            for l in 0..locals {
                let deps = if s == 0 {
                    vec![p2_done(g, l)]
                } else {
                    vec![prev[(l + locals - 1) % locals]]
                };
                p3_prev[g][l] = transfers.len();
                transfers.push(Transfer {
                    src: rank(g, l),
                    dst: rank(g, (l + 1) % locals),
                    bytes: local_chunk,
                    deps,
                });
            }
        }
    }

    Schedule {
        name: "allreduce-hierarchical",
        n_ranks: n,
        transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_and_validity() {
        let (groups, locals) = (4, 4);
        let s = hierarchical_allreduce(groups, locals, 16 << 20);
        s.validate();
        let n = groups * locals;
        // Phase 1: (locals-1)*n, phase 2: 2(groups-1)*n, phase 3: (locals-1)*n.
        let expected = (locals - 1) * n + 2 * (groups - 1) * n + (locals - 1) * n;
        assert_eq!(s.transfers.len(), expected);
        // Depth: phases chain sequentially.
        let depth = s.validate();
        assert_eq!(
            depth,
            (locals - 2) + 1 + (2 * (groups - 1) - 1) + 1 + (locals - 2)
        );
    }

    #[test]
    fn cross_rack_volume_is_reduced_by_locals() {
        let (groups, locals) = (4, 4);
        let total = 16u64 << 20;
        let s = hierarchical_allreduce(groups, locals, total);
        let rank_of = |r: usize| (r / locals, r % locals);
        let mut cross = 0u64;
        let mut local = 0u64;
        for t in &s.transfers {
            let (gs, _) = rank_of(t.src);
            let (gd, _) = rank_of(t.dst);
            if gs == gd {
                local += t.bytes;
            } else {
                cross += t.bytes;
            }
        }
        // Flat ring would move 2(n-1)/n * total per rank over the core
        // for cross-rack hops; hierarchical moves 2(groups-1) *
        // total/(locals*groups) per rank.
        let n = (groups * locals) as u64;
        let per_rank_cross = 2 * (groups as u64 - 1) * (total / locals as u64 / groups as u64);
        assert_eq!(cross, n * per_rank_cross);
        assert!(local > 0);
        // The core sees `locals`x less traffic than a flat ring's
        // cross-rack volume would be at the same per-step chunking.
        let flat_cross_estimate = n * 2 * (n - 1) * (total / n);
        assert!(cross * locals as u64 <= flat_cross_estimate);
    }

    #[test]
    fn phases_chain_through_dependencies() {
        let s = hierarchical_allreduce(2, 2, 1 << 20);
        s.validate();
        // Phase-2 roots depend on phase-1 transfers; phase-3 on phase-2.
        let n = 4;
        let p1 = n; // (locals-1)=1 local step -> 4 transfers
        let p2 = 2 * n; // 2(groups-1)=2 cross steps -> 8 transfers
        for i in p1..p1 + n {
            assert!(
                s.transfers[i].deps.iter().all(|&d| d < p1),
                "phase-2 roots depend on phase 1"
            );
            assert!(!s.transfers[i].deps.is_empty());
        }
        for i in p1 + p2..p1 + p2 + n {
            assert!(s.transfers[i]
                .deps
                .iter()
                .all(|&d| (p1..p1 + p2).contains(&d)));
        }
    }

    #[test]
    #[should_panic(expected = "two racks")]
    fn rejects_single_rack() {
        hierarchical_allreduce(1, 4, 1 << 20);
    }
}
