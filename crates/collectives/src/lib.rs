//! # collectives — collective-communication workloads
//!
//! The paper evaluates Themis on Allreduce and Alltoall (§5): 256 NICs in
//! 16 communication groups of 16, every group spanning all 16 racks, all
//! groups starting simultaneously, with the *slowest group's completion
//! time* as the metric.
//!
//! * [`schedule`] — dependency-DAG representation of a collective:
//!   transfers `(src rank, dst rank, bytes)` plus happens-before edges.
//! * [`ring`] — ring Allreduce (reduce-scatter + allgather, 2(N−1)
//!   dependent steps), ring AllGather and ReduceScatter.
//! * [`alltoall`] — pairwise Alltoall (all transfers start at once) and
//!   N-to-1 incast.
//! * [`hierarchical`] — NCCL-style two-level (rack-aware) Allreduce.
//! * [`groups`] — the §5 group construction (one NIC per rack per group).
//! * [`driver`] — an in-simulation entity that posts transfers when their
//!   dependencies deliver and records per-group completion times.

pub mod alltoall;
pub mod driver;
pub mod groups;
pub mod hierarchical;
pub mod ring;
pub mod schedule;

pub use driver::{Driver, QpAllocator};
pub use schedule::{Schedule, Transfer};
