//! Ring collectives.
//!
//! The workhorse of AI training communication: ring Allreduce over `N`
//! ranks runs a reduce-scatter phase (N−1 steps) followed by an allgather
//! phase (N−1 steps). In every step each rank sends one chunk of
//! `total / N` bytes to its ring successor, and a step's send depends on
//! having received the predecessor's chunk from the previous step —
//! exactly the synchronized, few-large-flows pattern that collides under
//! ECMP (§2.1).

use crate::schedule::{Schedule, Transfer};

/// Index of the transfer sent by `rank` in `step` for an `n`-rank ring.
fn idx(step: usize, rank: usize, n: usize) -> usize {
    step * n + rank
}

/// A generic `steps`-step ring pipeline: in each step every rank sends
/// `chunk` bytes to `(rank + 1) % n`, depending on its receive from the
/// previous step.
fn ring_pipeline(name: &'static str, n: usize, steps: usize, chunk: u64) -> Schedule {
    assert!(n >= 2, "ring needs at least two ranks");
    assert!(chunk > 0, "chunk must be positive");
    let mut transfers = Vec::with_capacity(steps * n);
    for step in 0..steps {
        for rank in 0..n {
            let deps = if step == 0 {
                vec![]
            } else {
                // Rank r forwards in step s what it received in step s-1,
                // i.e. the transfer sent by its ring predecessor.
                vec![idx(step - 1, (rank + n - 1) % n, n)]
            };
            transfers.push(Transfer {
                src: rank,
                dst: (rank + 1) % n,
                bytes: chunk,
                deps,
            });
        }
    }
    Schedule {
        name,
        n_ranks: n,
        transfers,
    }
}

/// Ring Allreduce of a `total_bytes` buffer over `n` ranks:
/// 2(N−1) steps of `total / N`-byte chunks.
pub fn ring_allreduce(n: usize, total_bytes: u64) -> Schedule {
    let chunk = (total_bytes / n as u64).max(1);
    ring_pipeline("allreduce-ring", n, 2 * (n - 1), chunk)
}

/// Ring ReduceScatter: N−1 steps.
pub fn ring_reduce_scatter(n: usize, total_bytes: u64) -> Schedule {
    let chunk = (total_bytes / n as u64).max(1);
    ring_pipeline("reduce-scatter-ring", n, n - 1, chunk)
}

/// Ring AllGather: N−1 steps.
pub fn ring_allgather(n: usize, total_bytes: u64) -> Schedule {
    let chunk = (total_bytes / n as u64).max(1);
    ring_pipeline("allgather-ring", n, n - 1, chunk)
}

/// The Fig 1 motivation pattern: a plain ring where every rank sends one
/// `bytes`-sized message to its successor, all starting at once ("each
/// node sends 100 MB to the next node within the same group").
pub fn ring_once(n: usize, bytes: u64) -> Schedule {
    assert!(n >= 2);
    Schedule {
        name: "ring-once",
        n_ranks: n,
        transfers: (0..n)
            .map(|rank| Transfer {
                src: rank,
                dst: (rank + 1) % n,
                bytes,
                deps: vec![],
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_structure() {
        let n = 16;
        let s = ring_allreduce(n, 300 * 1024 * 1024);
        assert_eq!(s.transfers.len(), 2 * (n - 1) * n);
        // Depth = number of steps - 1.
        assert_eq!(s.validate(), 2 * (n - 1) - 1);
        // Every rank sends 2(N-1)/N of the buffer.
        let per_rank = s.bytes_sent_by(0);
        let expected = 2 * (n as u64 - 1) * (300 * 1024 * 1024 / n as u64);
        assert_eq!(per_rank, expected);
        for r in 1..n {
            assert_eq!(s.bytes_sent_by(r), per_rank);
        }
    }

    #[test]
    fn allreduce_moves_2n_minus_1_over_n_volume() {
        let n = 8u64;
        let total = 80_000u64;
        let s = ring_allreduce(n as usize, total);
        assert_eq!(
            s.total_wire_bytes(),
            2 * (n - 1) * n * (total / n) / n * n / n * n
        );
        // Plainly: n ranks × 2(n−1) chunks of total/n.
        assert_eq!(s.total_wire_bytes(), n * 2 * (n - 1) * (total / n));
    }

    #[test]
    fn step_zero_is_root_everything_else_chains() {
        let n = 4;
        let s = ring_allreduce(n, 4000);
        let roots: Vec<usize> = s.roots().collect();
        assert_eq!(roots, (0..n).collect::<Vec<_>>());
        // Step 1 rank 2 depends on step 0 rank 1.
        assert_eq!(s.transfers[idx(1, 2, n)].deps, vec![idx(0, 1, n)]);
        // Wrap-around: step 1 rank 0 depends on step 0 rank n-1.
        assert_eq!(s.transfers[idx(1, 0, n)].deps, vec![idx(0, 3, n)]);
    }

    #[test]
    fn reduce_scatter_and_allgather_are_half_an_allreduce() {
        let n = 16;
        let rs = ring_reduce_scatter(n, 1 << 20);
        let ag = ring_allgather(n, 1 << 20);
        let ar = ring_allreduce(n, 1 << 20);
        assert_eq!(rs.transfers.len() + ag.transfers.len(), ar.transfers.len());
        rs.validate();
        ag.validate();
    }

    #[test]
    fn ring_once_matches_motivation_pattern() {
        let s = ring_once(4, 100 * 1024 * 1024);
        assert_eq!(s.transfers.len(), 4);
        assert_eq!(s.validate(), 0, "all transfers independent");
        // 0->1, 1->2, 2->3, 3->0.
        for (i, t) in s.transfers.iter().enumerate() {
            assert_eq!(t.src, i);
            assert_eq!(t.dst, (i + 1) % 4);
        }
    }

    #[test]
    fn tiny_buffers_still_produce_valid_chunks() {
        let s = ring_allreduce(16, 10); // total < n
        s.validate();
        assert!(s.transfers.iter().all(|t| t.bytes == 1));
    }
}
