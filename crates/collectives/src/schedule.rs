//! Dependency-DAG representation of a collective.
//!
//! A [`Schedule`] lists point-to-point [`Transfer`]s between *ranks*
//! (indices into a group's host list) plus happens-before edges: a
//! transfer may be posted only after all transfers it depends on have
//! been fully *delivered* at their destinations. This captures the data
//! dependencies of ring algorithms (step `s` forwards data received in
//! step `s−1`) while letting dependency-free collectives (Alltoall) fire
//! everything at once.

/// One point-to-point message within a collective.
#[derive(Debug, Clone)]
pub struct Transfer {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message length in bytes.
    pub bytes: u64,
    /// Indices of transfers that must be delivered before this one posts.
    pub deps: Vec<usize>,
}

/// A complete collective schedule over `n_ranks` ranks.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Human-readable name ("allreduce-ring", ...).
    pub name: &'static str,
    /// Number of participating ranks.
    pub n_ranks: usize,
    /// The transfers; indices are the dependency namespace.
    pub transfers: Vec<Transfer>,
}

impl Schedule {
    /// Total bytes moved over the network by this schedule.
    pub fn total_wire_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Bytes sent by one rank.
    pub fn bytes_sent_by(&self, rank: usize) -> u64 {
        self.transfers
            .iter()
            .filter(|t| t.src == rank)
            .map(|t| t.bytes)
            .sum()
    }

    /// Transfers with no dependencies (postable at t = 0).
    pub fn roots(&self) -> impl Iterator<Item = usize> + '_ {
        self.transfers
            .iter()
            .enumerate()
            .filter(|(_, t)| t.deps.is_empty())
            .map(|(i, _)| i)
    }

    /// Validate structural invariants: rank bounds, no self-messages,
    /// dependency indices in range, and acyclicity. Returns the
    /// topological depth (longest dependency chain length).
    ///
    /// # Panics
    /// Panics on an invalid schedule; schedules are build-time artifacts,
    /// so an invalid one is a programming error.
    pub fn validate(&self) -> usize {
        let n = self.transfers.len();
        let mut depth = vec![usize::MAX; n];

        fn visit(
            i: usize,
            transfers: &[Transfer],
            depth: &mut [usize],
            on_stack: &mut [bool],
        ) -> usize {
            if depth[i] != usize::MAX {
                return depth[i];
            }
            assert!(!on_stack[i], "dependency cycle through transfer {i}");
            on_stack[i] = true;
            let d = transfers[i]
                .deps
                .iter()
                .map(|&d| visit(d, transfers, depth, on_stack) + 1)
                .max()
                .unwrap_or(0);
            on_stack[i] = false;
            depth[i] = d;
            d
        }

        let mut on_stack = vec![false; n];
        let mut max_depth = 0;
        for (i, t) in self.transfers.iter().enumerate() {
            assert!(t.src < self.n_ranks, "transfer {i}: src out of range");
            assert!(t.dst < self.n_ranks, "transfer {i}: dst out of range");
            assert_ne!(t.src, t.dst, "transfer {i}: self-message");
            assert!(t.bytes > 0, "transfer {i}: empty message");
            for &d in &t.deps {
                assert!(d < n, "transfer {i}: dep {d} out of range");
            }
            max_depth = max_depth.max(visit(i, &self.transfers, &mut depth, &mut on_stack));
        }
        max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_step() -> Schedule {
        Schedule {
            name: "test",
            n_ranks: 2,
            transfers: vec![
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes: 100,
                    deps: vec![],
                },
                Transfer {
                    src: 1,
                    dst: 0,
                    bytes: 200,
                    deps: vec![0],
                },
            ],
        }
    }

    #[test]
    fn totals_and_roots() {
        let s = two_step();
        assert_eq!(s.total_wire_bytes(), 300);
        assert_eq!(s.bytes_sent_by(0), 100);
        assert_eq!(s.bytes_sent_by(1), 200);
        assert_eq!(s.roots().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn validate_computes_depth() {
        assert_eq!(two_step().validate(), 1);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn validate_rejects_cycles() {
        let s = Schedule {
            name: "cyclic",
            n_ranks: 2,
            transfers: vec![
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes: 1,
                    deps: vec![1],
                },
                Transfer {
                    src: 1,
                    dst: 0,
                    bytes: 1,
                    deps: vec![0],
                },
            ],
        };
        s.validate();
    }

    #[test]
    #[should_panic(expected = "self-message")]
    fn validate_rejects_self_message() {
        let s = Schedule {
            name: "bad",
            n_ranks: 2,
            transfers: vec![Transfer {
                src: 1,
                dst: 1,
                bytes: 1,
                deps: vec![],
            }],
        };
        s.validate();
    }
}
