//! Themis deployment configuration.

use crate::psn_queue::PsnQueue;
use crate::themis_s::SprayMode;
use simcore::time::TimeDelta;

/// Configuration for one ToR's Themis middleware.
#[derive(Debug, Clone, Copy)]
pub struct ThemisConfig {
    /// Number of equal-cost paths N (power of two ≤ 256).
    pub n_paths: usize,
    /// How Themis-S realizes the spraying policy.
    pub spray_mode: SprayMode,
    /// PSN-queue entries per QP (paper: `ceil(BW·RTT_last·F / MTU)`).
    pub queue_capacity: usize,
    /// Enable the §3.4 NACK-compensation mechanism.
    pub compensation: bool,
    /// Enable NACK filtering at Themis-D. Disabling this while keeping
    /// spraying is the "spray without Themis" ablation.
    pub filtering: bool,
}

impl ThemisConfig {
    /// Configuration for a fabric with `n_paths`, sizing the PSN queue by
    /// the paper's rule with expansion factor F = 1.5, then clamped into
    /// `[64, 127]`:
    ///
    /// * the upper bound is the 1-byte truncated-PSN serial window (§4's
    ///   one-byte entries are only unambiguous up to 127 outstanding
    ///   PSNs);
    /// * the lower bound adds burst headroom beyond the paper's rule —
    ///   transient 2×line-rate convergence on the last hop holds more
    ///   than one nominal BDP in flight, and an evicted entry for a
    ///   merely-delayed packet would otherwise turn into a spurious
    ///   compensated NACK (measured in EXPERIMENTS.md). 64 one-byte
    ///   slots cost nothing at switch scale.
    pub fn for_fabric(
        n_paths: usize,
        last_hop_bw_bps: u64,
        last_hop_rtt: TimeDelta,
        mtu_bytes: u32,
    ) -> ThemisConfig {
        let paper = PsnQueue::capacity_for(last_hop_bw_bps, last_hop_rtt, mtu_bytes, 150);
        ThemisConfig {
            n_paths,
            spray_mode: SprayMode::DirectEgress,
            queue_capacity: paper.clamp(64, 127),
            compensation: true,
            filtering: true,
        }
    }

    /// Same configuration but spraying via PathMap sport rewriting
    /// (multi-tier mode).
    pub fn with_pathmap(self) -> ThemisConfig {
        ThemisConfig {
            spray_mode: SprayMode::PathMapRewrite,
            ..self
        }
    }

    /// Ablation: blocking without compensation.
    pub fn without_compensation(self) -> ThemisConfig {
        ThemisConfig {
            compensation: false,
            ..self
        }
    }

    /// Ablation: PSN spraying without NACK filtering.
    pub fn without_filtering(self) -> ThemisConfig {
        ThemisConfig {
            filtering: false,
            compensation: false,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_sizing_uses_paper_rule() {
        let c = ThemisConfig::for_fabric(256, 400_000_000_000, TimeDelta::from_micros(2), 1500);
        assert_eq!(c.queue_capacity, 100);
        assert!(c.compensation && c.filtering);
        assert_eq!(c.spray_mode, SprayMode::DirectEgress);
    }

    #[test]
    fn ablation_builders() {
        let base = ThemisConfig::for_fabric(16, 100_000_000_000, TimeDelta::from_micros(2), 1500);
        assert!(!base.without_compensation().compensation);
        let nf = base.without_filtering();
        assert!(!nf.filtering && !nf.compensation);
        assert_eq!(base.with_pathmap().spray_mode, SprayMode::PathMapRewrite);
    }
}
