//! Link-failure tolerance (§6).
//!
//! When a fabric link fails, PSN-based spraying would keep steering a
//! deterministic fraction of every flow onto the dead path. The paper's
//! remedy: upon failure detection (via external monitoring such as
//! Pingmesh \[17\]), the affected ToR *disables Themis and reverts to ECMP*
//! until the failure clears.
//!
//! [`apply_failure_fallback`] performs that switch-local transition on a
//! live [`Switch`]: the LB policy becomes ECMP and the Themis-S sprayer is
//! disabled (in-flight NACK filtering remains armed so packets already in
//! the fabric are still handled). [`restore_after_repair`] reverses it.

use crate::middleware::ThemisMiddleware;
use netsim::lb::LbPolicy;
use netsim::switch::Switch;

/// Revert a ToR to ECMP after a link failure. Returns true if a Themis
/// middleware was present and disabled.
pub fn apply_failure_fallback(sw: &mut Switch) -> bool {
    sw.set_lb(LbPolicy::Ecmp);
    if let Some(hook) = sw.hook_mut() {
        if let Some(m) = hook.as_any_mut().downcast_mut::<ThemisMiddleware>() {
            m.on_link_failure();
            return true;
        }
    }
    false
}

/// Restrict a ToR's Themis instance to a path subset (§6: dynamic
/// pathset adjustment around partial failures). Returns true if a Themis
/// middleware was present. Apply the same subset to every ToR of the
/// fabric — the Eq. 3 modulus must agree between sources and
/// destinations.
pub fn apply_pathset_restriction(sw: &mut Switch, pathset: Option<Vec<usize>>) -> bool {
    if let Some(hook) = sw.hook_mut() {
        if let Some(m) = hook.as_any_mut().downcast_mut::<ThemisMiddleware>() {
            m.set_pathset(pathset);
            return true;
        }
    }
    false
}

/// Re-enable Themis after the failed link is repaired.
pub fn restore_after_repair(sw: &mut Switch, lb: LbPolicy) -> bool {
    sw.set_lb(lb);
    if let Some(hook) = sw.hook_mut() {
        if let Some(m) = hook.as_any_mut().downcast_mut::<ThemisMiddleware>() {
            m.on_link_recovery();
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThemisConfig;
    use crate::themis_s::SprayMode;
    use netsim::switch::SwitchConfig;
    use simcore::time::TimeDelta;

    fn tor_with_themis() -> Switch {
        let mut sw = Switch::new(&SwitchConfig {
            lb: LbPolicy::RandomSpray,
            ..SwitchConfig::default()
        });
        let cfg = ThemisConfig {
            n_paths: 2,
            spray_mode: SprayMode::DirectEgress,
            queue_capacity: 16,
            compensation: true,
            filtering: true,
        };
        sw.set_hook(Box::new(ThemisMiddleware::new(cfg)));
        let _ = TimeDelta::ZERO;
        sw
    }

    #[test]
    fn fallback_reverts_to_ecmp_and_disables_spray() {
        let mut sw = tor_with_themis();
        assert!(apply_failure_fallback(&mut sw));
        assert_eq!(sw.lb(), LbPolicy::Ecmp);
        let m = sw
            .hook()
            .unwrap()
            .as_any()
            .downcast_ref::<ThemisMiddleware>()
            .unwrap();
        assert!(!m.s.is_enabled());
    }

    #[test]
    fn restore_resumes_spraying() {
        let mut sw = tor_with_themis();
        apply_failure_fallback(&mut sw);
        assert!(restore_after_repair(&mut sw, LbPolicy::RandomSpray));
        assert_eq!(sw.lb(), LbPolicy::RandomSpray);
        let m = sw
            .hook()
            .unwrap()
            .as_any()
            .downcast_ref::<ThemisMiddleware>()
            .unwrap();
        assert!(m.s.is_enabled());
    }

    #[test]
    fn pathset_restriction_applies_to_both_halves() {
        let mut sw = tor_with_themis();
        assert!(apply_pathset_restriction(&mut sw, Some(vec![0])));
        let m = sw
            .hook()
            .unwrap()
            .as_any()
            .downcast_ref::<ThemisMiddleware>()
            .unwrap();
        assert_eq!(m.s.effective_modulus(), 1);
        assert_eq!(m.d.as_ref().unwrap().n_paths(), 1);
    }

    #[test]
    fn restore_clears_pathset_restriction_applied_during_outage() {
        // §6 partial-failure sequence: restrict the pathset while the
        // link is degraded, then repair. The repair must restore the full
        // Eq. 3 modulus on both halves — a leftover restriction would
        // permanently desync this ToR from the rest of the fabric.
        let mut sw = tor_with_themis();
        assert!(apply_pathset_restriction(&mut sw, Some(vec![0])));
        apply_failure_fallback(&mut sw);
        assert!(restore_after_repair(&mut sw, LbPolicy::RandomSpray));
        let m = sw
            .hook()
            .unwrap()
            .as_any()
            .downcast_ref::<ThemisMiddleware>()
            .unwrap();
        assert!(m.s.is_enabled());
        assert_eq!(m.s.effective_modulus(), 2, "pathset restriction cleared");
        assert_eq!(m.d.as_ref().unwrap().n_paths(), 2, "Eq. 3 modulus restored");
    }

    #[test]
    fn pathset_restriction_without_themis_reports_false() {
        let mut sw = Switch::new(&SwitchConfig::default());
        assert!(!apply_pathset_restriction(&mut sw, Some(vec![0])));
    }

    #[test]
    fn fallback_without_themis_reports_false() {
        let mut sw = Switch::new(&SwitchConfig::default());
        assert!(!apply_failure_fallback(&mut sw));
        assert_eq!(sw.lb(), LbPolicy::Ecmp);
    }
}
