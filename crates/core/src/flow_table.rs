//! The Themis-D flow table (Figure 4a).
//!
//! One entry per cross-rack QP terminating at this ToR, holding the
//! per-flow PSN queue plus the NACK-compensation state of §3.4:
//!
//! * **BePSN** — the ePSN of the most recently *blocked* NACK;
//! * **Valid** — whether a compensation decision for BePSN is pending.
//!
//! §4 charges 20 bytes per entry: 13 B QP id + 3 B blocked ePSN +
//! 1 B valid flag + 3 B queue metadata (index, head, tail) — reproduced by
//! [`FlowTable::entry_overhead_bytes`] — plus 1 byte per PSN-queue slot.

use crate::psn_queue::PsnQueue;
use netsim::types::QpId;
use simcore::fx::FxHashMap;

/// §4: fixed bytes per flow-table entry (excluding the PSN queue).
pub const ENTRY_OVERHEAD_BYTES: usize = 13 + 3 + 1 + 3;

/// Slots for expected retransmissions / remembered tPSNs per flow.
const SIDE_SLOTS: usize = 4;

/// Extra bytes per entry beyond the paper's 20 B, for the two side
/// tables this implementation adds (see [`FlowEntry`] field docs):
/// 4 × 3 B expected-retransmission PSNs + 4 × 1 B recent tPSN bytes +
/// 2 cursor bytes.
pub const ENTRY_EXTENSION_BYTES: usize = SIDE_SLOTS * 3 + SIDE_SLOTS + 2;

/// Per-QP Themis-D state.
#[derive(Debug)]
pub struct FlowEntry {
    /// Ring of truncated PSNs in flight on the last hop.
    pub queue: PsnQueue,
    /// Blocked ePSN (wire, 24-bit) awaiting a compensation decision.
    pub bepsn: u32,
    /// Whether `bepsn` is armed for compensation.
    pub valid: bool,
    /// PSNs the ToR expects to see *retransmitted* (the ePSNs of NACKs it
    /// forwarded or generated). Retransmissions travel out of PSN order
    /// on their path, so they must not enter the ring queue (they would
    /// be mis-identified as tPSNs and poison Eq. 3) nor serve as
    /// same-path overtake proofs. This is information the switch already
    /// produces — no new wire state.
    pending_retx: [Option<u32>; SIDE_SLOTS],
    pending_idx: usize,
    /// Truncated bytes of recently identified tPSNs. A scan consumes
    /// exactly one entry above its ePSN (the tPSN); if a later NACK's
    /// ePSN equals one of these, that packet *did* pass the ToR even
    /// though its queue entry is gone — compensation must be suppressed.
    recent_tpsns: [Option<u8>; SIDE_SLOTS],
    tpsn_idx: usize,
}

impl FlowEntry {
    fn new(queue_capacity: usize) -> FlowEntry {
        FlowEntry {
            queue: PsnQueue::with_capacity(queue_capacity),
            bepsn: 0,
            valid: false,
            pending_retx: [None; SIDE_SLOTS],
            pending_idx: 0,
            recent_tpsns: [None; SIDE_SLOTS],
            tpsn_idx: 0,
        }
    }

    /// Record that `psn` is about to be retransmitted by the sender
    /// (its NACK was forwarded or compensated).
    pub fn expect_retransmission(&mut self, psn: u32) {
        self.pending_retx[self.pending_idx] = Some(psn);
        self.pending_idx = (self.pending_idx + 1) % SIDE_SLOTS;
    }

    /// If `psn` matches an expected retransmission, consume the slot and
    /// return true (the packet must stay out of the ring queue).
    pub fn take_expected_retransmission(&mut self, psn: u32) -> bool {
        for slot in &mut self.pending_retx {
            if *slot == Some(psn) {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Remember a scan-consumed tPSN (truncated byte).
    pub fn remember_tpsn(&mut self, tpsn_trunc: u8) {
        self.recent_tpsns[self.tpsn_idx] = Some(tpsn_trunc);
        self.tpsn_idx = (self.tpsn_idx + 1) % SIDE_SLOTS;
    }

    /// Whether `psn` matches a recently consumed tPSN (truncated compare).
    pub fn recently_scanned(&self, psn: u32) -> bool {
        let b = (psn & 0xFF) as u8;
        self.recent_tpsns.contains(&Some(b))
    }

    /// Switch memory consumed by this entry: the paper's 20 B + queue
    /// bytes, plus this implementation's side tables
    /// ([`ENTRY_EXTENSION_BYTES`]).
    pub fn memory_bytes(&self) -> usize {
        ENTRY_OVERHEAD_BYTES + ENTRY_EXTENSION_BYTES + self.queue.memory_bytes()
    }
}

/// All per-QP state of one Themis-D instance.
#[derive(Debug)]
pub struct FlowTable {
    entries: FxHashMap<QpId, FlowEntry>,
    queue_capacity: usize,
    /// Entries created lazily on first data packet (no handshake seen).
    pub lazy_creations: u64,
    /// Entries created from handshake interception.
    pub handshake_creations: u64,
}

impl FlowTable {
    /// A table whose PSN queues hold `queue_capacity` entries each.
    pub fn new(queue_capacity: usize) -> FlowTable {
        FlowTable {
            entries: FxHashMap::default(),
            queue_capacity,
            lazy_creations: 0,
            handshake_creations: 0,
        }
    }

    /// Provision a QP at connection setup (handshake interception, §3.3).
    pub fn provision(&mut self, qp: QpId) {
        let capacity = self.queue_capacity;
        let creations = &mut self.handshake_creations;
        self.entries.entry(qp).or_insert_with(|| {
            *creations += 1;
            FlowEntry::new(capacity)
        });
    }

    /// Entry lookup, creating lazily if the handshake was missed.
    /// Single hash probe per packet (the per-data-packet hot path).
    pub fn entry(&mut self, qp: QpId) -> &mut FlowEntry {
        let capacity = self.queue_capacity;
        let creations = &mut self.lazy_creations;
        self.entries.entry(qp).or_insert_with(|| {
            *creations += 1;
            FlowEntry::new(capacity)
        })
    }

    /// Entry lookup without creation.
    pub fn get(&self, qp: QpId) -> Option<&FlowEntry> {
        self.entries.get(&qp)
    }

    /// Number of tracked QPs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove a QP (connection teardown).
    pub fn remove(&mut self, qp: QpId) -> bool {
        self.entries.remove(&qp).is_some()
    }

    /// §4 fixed overhead per entry.
    pub fn entry_overhead_bytes() -> usize {
        ENTRY_OVERHEAD_BYTES
    }

    /// Total switch memory consumed by this table.
    pub fn memory_bytes(&self) -> usize {
        self.entries.values().map(FlowEntry::memory_bytes).sum()
    }

    /// Iterate over all tracked flows (stats extraction).
    pub fn iter(&self) -> impl Iterator<Item = (&QpId, &FlowEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_overhead_matches_section4() {
        // 13 (QP id) + 3 (BePSN) + 1 (valid) + 3 (queue metadata) = 20.
        assert_eq!(FlowTable::entry_overhead_bytes(), 20);
    }

    #[test]
    fn per_qp_memory_matches_table1_example_plus_extension() {
        // Queue of 100 one-byte entries + 20 B entry = 120 B (§4: M_QP),
        // plus this implementation's 18 B side tables.
        let mut t = FlowTable::new(100);
        t.provision(QpId(1));
        assert_eq!(ENTRY_EXTENSION_BYTES, 18);
        assert_eq!(t.get(QpId(1)).unwrap().memory_bytes(), 120 + 18);
        assert_eq!(t.memory_bytes(), 138);
    }

    #[test]
    fn expected_retransmissions_are_consumed_once() {
        let mut t = FlowTable::new(8);
        let e = t.entry(QpId(1));
        e.expect_retransmission(42);
        assert!(e.take_expected_retransmission(42));
        assert!(!e.take_expected_retransmission(42), "slot consumed");
        assert!(!e.take_expected_retransmission(43));
    }

    #[test]
    fn expected_retransmissions_evict_oldest() {
        let mut t = FlowTable::new(8);
        let e = t.entry(QpId(1));
        for psn in 0..5u32 {
            e.expect_retransmission(psn);
        }
        assert!(!e.take_expected_retransmission(0), "oldest evicted");
        for psn in 1..5u32 {
            assert!(e.take_expected_retransmission(psn));
        }
    }

    #[test]
    fn recent_tpsns_ring() {
        let mut t = FlowTable::new(8);
        let e = t.entry(QpId(1));
        assert!(!e.recently_scanned(7));
        e.remember_tpsn(7);
        assert!(e.recently_scanned(7));
        assert!(e.recently_scanned(7 + 256), "truncated compare");
        for b in 10..14u8 {
            e.remember_tpsn(b);
        }
        assert!(!e.recently_scanned(7), "evicted after 4 newer tPSNs");
    }

    #[test]
    fn provision_vs_lazy_creation() {
        let mut t = FlowTable::new(10);
        t.provision(QpId(1));
        t.provision(QpId(1)); // idempotent
        let _ = t.entry(QpId(1)); // existing -> not lazy
        let _ = t.entry(QpId(2)); // missing -> lazy
        assert_eq!(t.handshake_creations, 1);
        assert_eq!(t.lazy_creations, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn compensation_fields_default_inactive() {
        let mut t = FlowTable::new(10);
        let e = t.entry(QpId(9));
        assert!(!e.valid);
        e.bepsn = 42;
        e.valid = true;
        assert!(t.get(QpId(9)).unwrap().valid);
    }

    #[test]
    fn remove_frees_entry() {
        let mut t = FlowTable::new(10);
        t.provision(QpId(3));
        assert!(t.remove(QpId(3)));
        assert!(!t.remove(QpId(3)));
        assert!(t.is_empty());
        assert_eq!(t.memory_bytes(), 0);
    }
}
