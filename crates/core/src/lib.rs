//! # themis-core — the paper's contribution
//!
//! Themis is a lightweight middleware deployed **only on ToR switches**
//! that makes packet spraying work with commodity RNICs whose NIC-SR
//! transport blindly NACKs out-of-order arrivals (§2.2). It has two
//! halves, both implemented here as [`netsim::hooks::TorHook`]s:
//!
//! * **Themis-S** ([`themis_s`]) at the *source* ToR enforces PSN-based
//!   packet spraying (Eq. 1): packet `i` of a flow takes path
//!   `(PSN_i mod N + P_base) mod N`. Two modes: direct egress selection
//!   (2-tier Clos) and PathMap UDP-sport rewriting (multi-tier, §3.2 /
//!   Figure 3, exploiting ECMP hash linearity).
//! * **Themis-D** ([`themis_d`]) at the *destination* ToR classifies every
//!   NACK as *valid* (the expected packet is provably lost because the
//!   triggering OOO packet took the same path — Eq. 3) or *invalid*
//!   (multi-path delay variation), blocking the invalid ones. Because
//!   commodity NACKs carry only the ePSN, Themis-D identifies the
//!   triggering PSN (tPSN) by scanning a per-QP **ring queue of 1-byte
//!   truncated PSNs** ([`psn_queue`]) recorded on the last hop (§3.3).
//!   Blocked NACKs are **compensated** (§3.4) when a later same-path
//!   packet proves the loss real.
//!
//! [`memory`] reproduces the §4 switch-SRAM overhead model (≈193 KB for
//! the Table 1 reference values), and [`failure`] implements the §6
//! link-failure fallback (revert to ECMP).

#![warn(missing_docs)]

pub mod config;
pub mod failure;
pub mod flow_table;
pub mod memory;
pub mod middleware;
pub mod pathmap;
pub mod policy;
pub mod psn_queue;
pub mod telem;
pub mod themis_d;
pub mod themis_s;

pub use config::ThemisConfig;
pub use middleware::ThemisMiddleware;
pub use telem::ThemisTelem;
pub use themis_d::ThemisD;
pub use themis_s::{SprayMode, ThemisS};
