//! The §4 switch-memory overhead model.
//!
//! Reproduces the paper's estimate, Table 1 reference values included:
//!
//! ```text
//! M_PathMap = N_paths × 2 B
//! N_entries = ceil(BW × RTT_last × F / MTU)
//! M_QP      = 20 B + N_entries × 1 B
//! M_total   = M_PathMap + M_QP × N_QP × N_NIC
//! ```
//!
//! At the reference point (N_paths = 256, BW = 400 Gbps, RTT = 2 µs,
//! F = 1.5, MTU = 1500 B, 16 NICs/ToR, 100 cross-rack QPs/NIC) this yields
//! 192 512 B ≈ 193 KB — a fraction of a percent of modern Tofino SRAM.

use crate::flow_table::ENTRY_OVERHEAD_BYTES;
use crate::psn_queue::PsnQueue;
use simcore::time::TimeDelta;

/// Inputs of the §4 model (symbols of Table 1).
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// N_paths: equal-cost paths (PathMap entries).
    pub n_paths: usize,
    /// BW: last-hop bandwidth in bits/s.
    pub bw_bps: u64,
    /// RTT_last: last-hop round-trip time.
    pub rtt_last: TimeDelta,
    /// MTU in bytes.
    pub mtu: u32,
    /// F: queue expansion factor ×100 (150 = 1.5).
    pub f_times_100: u32,
    /// N_NIC: NICs per ToR.
    pub n_nic: usize,
    /// N_QP: cross-rack QPs per NIC.
    pub n_qp: usize,
}

impl MemoryModel {
    /// The Table 1 reference values.
    ///
    /// ```
    /// use themis_core::memory::MemoryModel;
    /// let m = MemoryModel::table1_reference();
    /// assert_eq!(m.total_bytes(), 192_512); // ≈193 KB, as §4 reports
    /// ```
    pub fn table1_reference() -> MemoryModel {
        MemoryModel {
            n_paths: 256,
            bw_bps: 400_000_000_000,
            rtt_last: TimeDelta::from_micros(2),
            mtu: 1500,
            f_times_100: 150,
            n_nic: 16,
            n_qp: 100,
        }
    }

    /// N_entries: PSN-queue slots per QP.
    pub fn n_entries(&self) -> usize {
        PsnQueue::capacity_for(self.bw_bps, self.rtt_last, self.mtu, self.f_times_100)
    }

    /// M_PathMap in bytes.
    pub fn pathmap_bytes(&self) -> usize {
        self.n_paths * 2
    }

    /// M_QP in bytes: 20 B flow-table entry + 1 B per queue slot.
    pub fn per_qp_bytes(&self) -> usize {
        ENTRY_OVERHEAD_BYTES + self.n_entries()
    }

    /// M_total in bytes (Eq. 4).
    pub fn total_bytes(&self) -> usize {
        self.pathmap_bytes() + self.per_qp_bytes() * self.n_qp * self.n_nic
    }

    /// M_total as a fraction of a switch SRAM of `sram_bytes`.
    pub fn fraction_of_sram(&self, sram_bytes: u64) -> f64 {
        self.total_bytes() as f64 / sram_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reference_values() {
        let m = MemoryModel::table1_reference();
        assert_eq!(m.n_entries(), 100);
        assert_eq!(m.pathmap_bytes(), 512);
        assert_eq!(m.per_qp_bytes(), 120);
    }

    #[test]
    fn total_matches_paper_193kb() {
        let m = MemoryModel::table1_reference();
        // 512 + 120 × 100 × 16 = 192 512 B ≈ 193 KB (§4 example).
        assert_eq!(m.total_bytes(), 192_512);
        let kb = m.total_bytes() as f64 / 1000.0;
        assert!((kb - 193.0).abs() < 1.0, "≈193 KB, got {kb:.1}");
    }

    #[test]
    fn sram_fraction_is_small() {
        let m = MemoryModel::table1_reference();
        // Well under 1% of a 64 MB (or even 32 MB) Tofino SRAM.
        assert!(m.fraction_of_sram(64 * 1024 * 1024) < 0.01);
        assert!(m.fraction_of_sram(32 * 1024 * 1024) < 0.01);
    }

    #[test]
    fn scales_linearly_in_qps_and_nics() {
        let base = MemoryModel::table1_reference();
        let double_qp = MemoryModel { n_qp: 200, ..base };
        assert_eq!(
            double_qp.total_bytes() - double_qp.pathmap_bytes(),
            2 * (base.total_bytes() - base.pathmap_bytes())
        );
    }

    #[test]
    fn hundred_gig_fabric_is_smaller() {
        let m = MemoryModel {
            bw_bps: 100_000_000_000,
            ..MemoryModel::table1_reference()
        };
        // 100G × 2us × 1.5 / 1500 = 25 entries.
        assert_eq!(m.n_entries(), 25);
        assert!(m.total_bytes() < MemoryModel::table1_reference().total_bytes());
    }
}
