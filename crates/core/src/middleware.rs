//! The combined per-ToR middleware: Themis-S + Themis-D as one
//! [`TorHook`].
//!
//! Every ToR in a Themis deployment runs both halves: it is the *source*
//! ToR for traffic leaving its hosts and the *destination* ToR for
//! traffic reaching them (Figure 2). The hook dispatches:
//!
//! * upstream data → Themis-S spraying;
//! * downstream data → Themis-D PSN recording + compensation;
//! * downstream handshakes → Themis-D flow-table provisioning;
//! * reverse NACKs from local hosts → Themis-D validation
//!   (ACKs and CNPs always pass).

use crate::config::ThemisConfig;
use crate::themis_d::ThemisD;
use crate::themis_s::ThemisS;
use netsim::hooks::{HookCtx, ReverseAction, TorHook};
use netsim::packet::{Packet, PacketKind};
use std::any::Any;

/// One ToR's Themis instance.
#[derive(Debug)]
pub struct ThemisMiddleware {
    /// Source-side spraying.
    pub s: ThemisS,
    /// Destination-side NACK filtering; `None` in the
    /// spray-without-filtering ablation.
    pub d: Option<ThemisD>,
    cfg: ThemisConfig,
    telem: Option<crate::telem::ThemisTelem>,
}

impl ThemisMiddleware {
    /// Build from a deployment configuration.
    pub fn new(cfg: ThemisConfig) -> ThemisMiddleware {
        let s = ThemisS::new(cfg.n_paths, cfg.spray_mode);
        let d = cfg
            .filtering
            .then(|| ThemisD::new(cfg.n_paths, cfg.queue_capacity, cfg.compensation));
        ThemisMiddleware {
            s,
            d,
            cfg,
            telem: None,
        }
    }

    /// Install a telemetry handle; spray-policy and NACK-classification
    /// counters (and block/compensation events) report into it.
    pub fn set_telemetry(&mut self, telem: crate::telem::ThemisTelem) {
        self.telem = Some(telem);
    }

    /// The configuration this instance was built from.
    pub fn config(&self) -> &ThemisConfig {
        &self.cfg
    }

    /// §6 link-failure fallback: stop spraying (traffic reverts to the
    /// switch's ECMP policy); filtering stays armed for in-flight packets.
    pub fn on_link_failure(&mut self) {
        self.s.set_enabled(false);
    }

    /// §6 pathset restriction: spray over a subset of paths (e.g. after
    /// a partial failure) instead of disabling Themis entirely. The same
    /// call must be applied to **every** ToR of the fabric so the Eq. 3
    /// modulus stays consistent between sources and destinations;
    /// `None` restores the full path set.
    pub fn set_pathset(&mut self, pathset: Option<Vec<usize>>) {
        self.s.set_pathset(pathset);
        let n = self.s.effective_modulus();
        if let Some(d) = self.d.as_mut() {
            d.set_modulus(n);
        }
    }

    /// Failure recovered: resume spraying over the full path set. Any
    /// pathset restriction applied during the outage is cleared — leaving
    /// it in place would permanently shrink the Eq. 3 modulus and desync
    /// it from ToRs that never saw the restriction.
    pub fn on_link_recovery(&mut self) {
        self.s.set_enabled(true);
        self.set_pathset(None);
    }

    /// Total switch memory consumed by this ToR's Themis state.
    pub fn memory_bytes(&self) -> usize {
        self.s.memory_bytes() + self.d.as_ref().map_or(0, |d| d.table().memory_bytes())
    }
}

impl TorHook for ThemisMiddleware {
    fn on_upstream_data(
        &mut self,
        pkt: &mut Packet,
        n_uplinks: usize,
        _ctx: &mut HookCtx<'_>,
    ) -> Option<usize> {
        // Direct egress requires one uplink per path; PathMap modes steer
        // paths via the header, so the local uplink count may be smaller
        // (e.g. m uplinks vs m² composite paths in a fat-tree).
        debug_assert!(
            n_uplinks == 0
                || self.cfg.spray_mode != crate::themis_s::SprayMode::DirectEgress
                || n_uplinks == self.s.n_paths(),
            "direct-egress Themis configured for {} paths but ToR has {n_uplinks} uplinks",
            self.s.n_paths()
        );
        let sprayed_before = self.s.stats.sprayed;
        let choice = self.s.spray(pkt);
        if self.s.stats.sprayed > sprayed_before {
            if let Some(t) = &self.telem {
                t.on_sprayed();
            }
        }
        choice
    }

    fn on_downstream(&mut self, pkt: &Packet, ctx: &mut HookCtx<'_>) {
        let Some(d) = self.d.as_mut() else {
            return;
        };
        match pkt.kind {
            PacketKind::Data { .. } => {
                if let Some(comp) = d.on_downstream_data(pkt) {
                    if let Some(t) = &self.telem {
                        if let PacketKind::Nack { epsn, .. } = comp.kind {
                            t.on_nack_compensated(comp.qp.0 as u64, epsn as u64);
                        }
                    }
                    ctx.emit.push(comp);
                }
            }
            PacketKind::Handshake => d.on_handshake(pkt.qp),
            _ => {}
        }
    }

    fn on_reverse(&mut self, pkt: &Packet, _ctx: &mut HookCtx<'_>) -> ReverseAction {
        let Some(d) = self.d.as_mut() else {
            return ReverseAction::Forward;
        };
        match pkt.kind {
            PacketKind::Nack { epsn, .. } => {
                let before = d.stats;
                let action = d.on_reverse_nack(pkt.qp, epsn);
                if let Some(t) = &self.telem {
                    if d.stats.nacks_blocked > before.nacks_blocked {
                        t.on_nack_blocked(pkt.qp.0 as u64, epsn as u64);
                    }
                    if d.stats.nacks_forwarded_valid > before.nacks_forwarded_valid {
                        t.on_nack_forwarded_valid();
                    }
                    if d.stats.nacks_forwarded_unknown > before.nacks_forwarded_unknown {
                        t.on_nack_forwarded_unknown();
                    }
                }
                action
            }
            _ => ReverseAction::Forward,
        }
    }

    fn on_link_event(&mut self, failed: bool) {
        if failed {
            self.on_link_failure();
        } else {
            self.on_link_recovery();
        }
    }

    fn on_admin_spray(&mut self, enabled: bool) {
        self.s.set_enabled(enabled);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::types::{HostId, QpId};
    use simcore::time::Nanos;

    fn cfg() -> ThemisConfig {
        ThemisConfig {
            n_paths: 2,
            spray_mode: crate::themis_s::SprayMode::DirectEgress,
            queue_capacity: 16,
            compensation: true,
            filtering: true,
        }
    }

    fn hook_ctx(emit: &mut Vec<Packet>) -> HookCtx<'_> {
        HookCtx {
            now: Nanos::ZERO,
            emit,
        }
    }

    fn data(psn: u32) -> Packet {
        Packet::data(
            QpId(1),
            HostId(0),
            HostId(9),
            700,
            psn,
            0,
            false,
            1000,
            false,
        )
    }

    #[test]
    fn full_pipeline_blocks_and_compensates() {
        let mut m = ThemisMiddleware::new(cfg());
        let mut emit = Vec::new();

        // Upstream: data packets get sprayed.
        let mut up = data(5);
        let choice = m.on_upstream_data(&mut up, 2, &mut hook_ctx(&mut emit));
        assert!(choice.is_some());

        // Downstream: record 0, 1, 3 (packet 2 delayed on the other path).
        for psn in [0, 1, 3] {
            m.on_downstream(&data(psn), &mut hook_ctx(&mut emit));
        }
        assert!(emit.is_empty());

        // Reverse: invalid NACK blocked.
        let nack = Packet::nack(QpId(1), HostId(9), HostId(0), 700, 2, false);
        assert_eq!(
            m.on_reverse(&nack, &mut hook_ctx(&mut emit)),
            ReverseAction::Block
        );

        // Downstream: same-path overtake emits a compensated NACK.
        m.on_downstream(&data(4), &mut hook_ctx(&mut emit));
        assert_eq!(emit.len(), 1);
        assert!(matches!(
            emit[0].kind,
            PacketKind::Nack {
                epsn: 2,
                compensated: true
            }
        ));
    }

    #[test]
    fn telemetry_counts_classification_verdicts() {
        let sink = telemetry::Sink::new(16);
        let mut m = ThemisMiddleware::new(cfg());
        m.set_telemetry(crate::telem::ThemisTelem::register(&sink));
        let mut emit = Vec::new();

        let mut up = data(5);
        m.on_upstream_data(&mut up, 2, &mut hook_ctx(&mut emit));
        for psn in [0, 1, 3] {
            m.on_downstream(&data(psn), &mut hook_ctx(&mut emit));
        }
        let nack = Packet::nack(QpId(1), HostId(9), HostId(0), 700, 2, false);
        m.on_reverse(&nack, &mut hook_ctx(&mut emit));
        m.on_downstream(&data(4), &mut hook_ctx(&mut emit));

        let snap = sink.snapshot();
        assert_eq!(snap.counter("themis.sprayed"), Some(1));
        assert_eq!(snap.counter("themis.nacks.blocked"), Some(1));
        assert_eq!(snap.counter("themis.nacks.compensated"), Some(1));
        assert_eq!(snap.counter("themis.nacks.forwarded_valid"), Some(0));
        // Live counters match the ThemisD aggregate.
        let d = m.d.as_ref().unwrap();
        assert_eq!(
            snap.counter("themis.nacks.blocked"),
            Some(d.stats.nacks_blocked)
        );
        let kinds: Vec<&str> = snap.events.ring.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["nack_blocked", "nack_compensated"]);
        // Both events carry the blocked/compensated ePSN.
        assert!(snap.events.ring.iter().all(|e| e.arg == 2));
    }

    #[test]
    fn acks_and_cnps_always_forward() {
        let mut m = ThemisMiddleware::new(cfg());
        let mut emit = Vec::new();
        let ack = Packet::ack(QpId(1), HostId(9), HostId(0), 700, 5, 700);
        let cnp = Packet::cnp(QpId(1), HostId(9), HostId(0), 700);
        assert_eq!(
            m.on_reverse(&ack, &mut hook_ctx(&mut emit)),
            ReverseAction::Forward
        );
        assert_eq!(
            m.on_reverse(&cnp, &mut hook_ctx(&mut emit)),
            ReverseAction::Forward
        );
    }

    #[test]
    fn handshake_provisions() {
        let mut m = ThemisMiddleware::new(cfg());
        let mut emit = Vec::new();
        let hs = Packet::handshake(QpId(4), HostId(0), HostId(9), 700);
        m.on_downstream(&hs, &mut hook_ctx(&mut emit));
        assert_eq!(m.d.as_ref().unwrap().stats.handshakes, 1);
    }

    #[test]
    fn no_filtering_ablation_forwards_everything() {
        let mut m = ThemisMiddleware::new(cfg().without_filtering());
        let mut emit = Vec::new();
        for psn in [0, 1, 3] {
            m.on_downstream(&data(psn), &mut hook_ctx(&mut emit));
        }
        let nack = Packet::nack(QpId(1), HostId(9), HostId(0), 700, 2, false);
        assert_eq!(
            m.on_reverse(&nack, &mut hook_ctx(&mut emit)),
            ReverseAction::Forward
        );
        // Spraying still active.
        let mut up = data(5);
        assert!(m
            .on_upstream_data(&mut up, 2, &mut hook_ctx(&mut emit))
            .is_some());
    }

    #[test]
    fn failure_fallback_stops_spraying() {
        let mut m = ThemisMiddleware::new(cfg());
        let mut emit = Vec::new();
        m.on_link_failure();
        let mut up = data(5);
        assert_eq!(
            m.on_upstream_data(&mut up, 2, &mut hook_ctx(&mut emit)),
            None
        );
        m.on_link_recovery();
        assert!(m
            .on_upstream_data(&mut up, 2, &mut hook_ctx(&mut emit))
            .is_some());
    }

    #[test]
    fn memory_accounting_composes() {
        let mut m = ThemisMiddleware::new(ThemisConfig {
            n_paths: 256,
            spray_mode: crate::themis_s::SprayMode::PathMapRewrite,
            queue_capacity: 100,
            compensation: true,
            filtering: true,
        });
        let mut emit = Vec::new();
        // One flow provisioned: PathMap 512 B + the paper's (20 + 100) B
        // entry + this implementation's 18 B side tables.
        let hs = Packet::handshake(QpId(4), HostId(0), HostId(9), 700);
        m.on_downstream(&hs, &mut hook_ctx(&mut emit));
        assert_eq!(m.memory_bytes(), 512 + 120 + 18);
    }
}
