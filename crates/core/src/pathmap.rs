//! The PathMap: offline-constructed UDP-sport rewrite table (§3.2, Fig 3).
//!
//! In multi-tier fabrics the source ToR cannot pick the whole path by
//! egress port alone; instead it *rewrites the UDP source port* so that
//! downstream ECMP stages hash the packet onto the desired relative path.
//! Zhang et al. \[37\] showed commodity ASIC hashes are GF(2)-linear, which
//! makes the rewrite table computable offline: for every relative path
//! delta `d` there is a 16-bit sport XOR-delta that moves *any* flow
//! exactly `d` paths over.
//!
//! One nuance faithfully carried over from \[37\]: with a linear hash,
//! "moving d paths over" is XOR in the path-index space (`path' = path ⊕
//! d`) rather than addition modulo N. Every Themis invariant is preserved:
//! packets with equal `PSN mod N` still share a path, distinct deltas
//! still reach distinct paths, and coverage of all N paths is exact —
//! which is all that Eq. 3 validity requires (the mapping from relative
//! delta to physical path merely needs to be a bijection).
//!
//! Each entry stores the 16-bit Δ(UDP sport); memory is `N × 2` bytes as
//! charged in §4.

use crate::policy::assert_valid_path_count;
use netsim::hash::{sport_delta_for_hash_delta, sport_delta_for_masked_delta};

/// Offline-computed sport-rewrite table, one entry per relative path.
///
/// ```
/// use themis_core::pathmap::PathMap;
/// let pm = PathMap::build(16);
/// assert_eq!(pm.n_paths(), 16);
/// assert_eq!(pm.memory_bytes(), 32);       // 2 bytes per entry (§4)
/// assert_eq!(pm.sport_delta(0), 0);        // delta 0 keeps the base path
/// let rewritten = pm.rewrite(4791, 5);     // XOR the delta-5 pattern in
/// assert_eq!(rewritten ^ pm.sport_delta(5), 4791);
/// ```
#[derive(Debug, Clone)]
pub struct PathMap {
    deltas: Vec<u16>,
    bits: u32,
}

impl PathMap {
    /// Build the table for `n_paths` (power of two ≤ 256), solving the
    /// GF(2) system for each relative delta.
    pub fn build(n_paths: usize) -> PathMap {
        assert_valid_path_count(n_paths);
        let bits = n_paths.trailing_zeros();
        let deltas = (0..n_paths)
            .map(|d| {
                sport_delta_for_hash_delta(d as u16, bits)
                    .expect("CRC-16 sport basis spans the low hash bits")
            })
            .collect();
        PathMap { deltas, bits }
    }

    /// Build a table steering **two ECMP stages at once** — the 3-tier
    /// Clos deployment of §3.2.
    ///
    /// Stage 1 (edge → aggregation) reads hash bits `[0, bits_stage1)`;
    /// stage 2 (aggregation → core) reads `[shift_stage2,
    /// shift_stage2 + bits_stage2)`. A relative path delta
    /// `d = d1 + d2 · 2^bits_stage1` decomposes into per-stage XOR deltas
    /// `(d1, d2)`, and the solver finds one sport rewrite satisfying both
    /// constraints simultaneously. `n_paths = 2^(bits_stage1 +
    /// bits_stage2)`; the entry still costs 2 bytes (§4).
    pub fn build_two_tier(bits_stage1: u32, shift_stage2: u32, bits_stage2: u32) -> PathMap {
        let bits = bits_stage1 + bits_stage2;
        let n_paths = 1usize << bits;
        assert_valid_path_count(n_paths);
        assert!(
            shift_stage2 >= bits_stage1 && shift_stage2 + bits_stage2 <= 16,
            "stage-2 hash view must not overlap stage 1 and must fit 16 bits"
        );
        let mask1 = ((1u32 << bits_stage1) - 1) as u16;
        let mask2 = (((1u32 << bits_stage2) - 1) as u16) << shift_stage2;
        let deltas = (0..n_paths)
            .map(|d| {
                let d1 = (d as u16) & mask1;
                let d2 = ((d >> bits_stage1) as u16) << shift_stage2;
                sport_delta_for_masked_delta(d1 | d2, mask1 | mask2)
                    .expect("CRC-16 sport basis spans both hash views")
            })
            .collect();
        PathMap { deltas, bits }
    }

    /// Number of relative paths covered.
    pub fn n_paths(&self) -> usize {
        self.deltas.len()
    }

    /// The Δ(UDP sport) for relative path `delta` (step ② of Figure 3).
    #[inline]
    pub fn sport_delta(&self, delta: usize) -> u16 {
        self.deltas[delta]
    }

    /// Apply the rewrite for `delta` to a source port (step ③: XOR).
    #[inline]
    pub fn rewrite(&self, sport: u16, delta: usize) -> u16 {
        sport ^ self.deltas[delta]
    }

    /// log2(number of paths): how many low hash bits select the path.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Switch memory for the table: 2 bytes per entry (§4).
    pub fn memory_bytes(&self) -> usize {
        self.deltas.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::hash::{ecmp_hash, FiveTuple};
    use netsim::types::HostId;

    #[test]
    fn delta_zero_is_identity() {
        for n in [2usize, 4, 16, 256] {
            let pm = PathMap::build(n);
            assert_eq!(pm.sport_delta(0), 0, "n={n}");
            assert_eq!(pm.rewrite(12345, 0), 12345);
        }
    }

    #[test]
    fn rewrite_moves_flow_by_exact_delta() {
        // For every flow and every delta: the rewritten packet hashes to
        // path (orig ⊕ delta) — the bijection Eq. 3 relies on.
        let n = 16usize;
        let pm = PathMap::build(n);
        let mask = (n - 1) as u16;
        for (src, dst, sport) in [(0u32, 7u32, 4000u16), (3, 200, 65000), (11, 12, 4791)] {
            let t = FiveTuple::new(HostId(src), HostId(dst), sport);
            let p0 = ecmp_hash(&t) & mask;
            for d in 0..n {
                let mut t2 = t;
                t2.sport = pm.rewrite(sport, d);
                let p = ecmp_hash(&t2) & mask;
                assert_eq!(p, p0 ^ d as u16, "src={src} d={d}");
            }
        }
    }

    #[test]
    fn all_deltas_reach_distinct_paths() {
        let n = 256usize;
        let pm = PathMap::build(n);
        let t = FiveTuple::new(HostId(1), HostId(2), 777);
        let mask = (n - 1) as u16;
        let mut seen = std::collections::HashSet::new();
        for d in 0..n {
            let mut t2 = t;
            t2.sport = pm.rewrite(777, d);
            seen.insert(ecmp_hash(&t2) & mask);
        }
        assert_eq!(seen.len(), n, "rewrites must cover every path exactly once");
    }

    #[test]
    fn same_relative_delta_same_path_across_psns() {
        // Two packets with PSN ≡ (mod N) get identical rewrites and hence
        // identical physical paths — the core Themis-D assumption.
        let n = 8usize;
        let pm = PathMap::build(n);
        for psn in 0..64u32 {
            let d1 = (psn as usize) % n;
            let d2 = ((psn + 8 * 5) as usize) % n;
            assert_eq!(pm.sport_delta(d1), pm.sport_delta(d2));
        }
    }

    #[test]
    fn two_tier_moves_both_stages_independently() {
        // Edge reads hash bits [0,2), agg reads [8,10): 16 paths total.
        let pm = PathMap::build_two_tier(2, 8, 2);
        assert_eq!(pm.n_paths(), 16);
        let t = FiveTuple::new(HostId(3), HostId(200), 5555);
        let h0 = ecmp_hash(&t);
        let (e0, a0) = ((h0 & 0b11), ((h0 >> 8) & 0b11));
        for d in 0..16usize {
            let (d1, d2) = ((d & 0b11) as u16, ((d >> 2) & 0b11) as u16);
            let mut t2 = t;
            t2.sport = pm.rewrite(5555, d);
            let h = ecmp_hash(&t2);
            assert_eq!(h & 0b11, e0 ^ d1, "stage-1 delta {d}");
            assert_eq!((h >> 8) & 0b11, a0 ^ d2, "stage-2 delta {d}");
        }
    }

    #[test]
    fn two_tier_covers_all_composite_paths() {
        // Every (edge choice, agg choice) pair is reachable exactly once.
        let pm = PathMap::build_two_tier(2, 8, 2);
        let t = FiveTuple::new(HostId(9), HostId(77), 60_000);
        let mut seen = std::collections::HashSet::new();
        for d in 0..16usize {
            let mut t2 = t;
            t2.sport = pm.rewrite(60_000, d);
            let h = ecmp_hash(&t2);
            seen.insert((h & 0b11, (h >> 8) & 0b11));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn two_tier_same_delta_same_header() {
        let pm = PathMap::build_two_tier(1, 8, 1);
        assert_eq!(pm.n_paths(), 4);
        // PSN ≡ (mod 4) ⇒ same rewrite ⇒ same composite path.
        assert_eq!(pm.sport_delta(1), pm.sport_delta(1));
        assert_ne!(pm.sport_delta(1), pm.sport_delta(2));
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn two_tier_rejects_overlapping_views() {
        PathMap::build_two_tier(4, 2, 4);
    }

    #[test]
    fn memory_matches_section4() {
        // 256 paths × 2 bytes = 512 B.
        assert_eq!(PathMap::build(256).memory_bytes(), 512);
        assert_eq!(PathMap::build(2).memory_bytes(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_invalid_path_count() {
        PathMap::build(12);
    }
}
