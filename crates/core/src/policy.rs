//! The PSN-based spraying policy and NACK-validity condition (Eq. 1–3).
//!
//! With `N` equal-cost paths indexed `0..N-1` and a flow whose ECMP base
//! path is `P_base`, packet `i` takes
//!
//! ```text
//! Path_i = (PSN_i mod N + P_base) mod N            (Eq. 1)
//! ```
//!
//! which makes path membership a pure function of the PSN. A NACK whose
//! triggering out-of-order packet has `tPSN` and whose expected packet has
//! `ePSN` is valid — the expected packet is provably lost — exactly when
//! both traveled the same path:
//!
//! ```text
//! tPSN mod N == ePSN mod N                          (Eq. 3)
//! ```
//!
//! ## PSN wrap-around
//!
//! Wire PSNs are 24-bit. `PSN mod N` remains continuous across the
//! 2²⁴ → 0 wrap iff `N` divides 2²⁴ — i.e. `N` is a power of two (≤ 2²⁴).
//! All fabrics in the paper (and all real Clos fabrics with power-of-two
//! radix groups) satisfy this; [`assert_valid_path_count`] enforces it.

/// Panic unless `n` is a valid Themis path count: a power of two (so
/// `PSN mod N` survives 24-bit wrap-around) between 1 and 256 (so the
/// 1-byte truncated PSNs of the §4 queue remain sufficient).
pub fn assert_valid_path_count(n: usize) {
    assert!(
        (1..=256).contains(&n) && n.is_power_of_two(),
        "Themis path count must be a power of two in 1..=256, got {n}"
    );
}

/// Relative path of a packet within its flow: `PSN mod N` (step ① of
/// Figure 3).
///
/// ```
/// use themis_core::policy::relative_path;
/// assert_eq!(relative_path(6, 4), 2);
/// ```
#[inline]
pub fn relative_path(psn: u32, n_paths: usize) -> usize {
    debug_assert!(n_paths > 0);
    (psn as usize) % n_paths
}

/// Absolute path index of a packet (Eq. 1).
#[inline]
pub fn path_of(psn: u32, n_paths: usize, p_base: usize) -> usize {
    (relative_path(psn, n_paths) + p_base) % n_paths
}

/// NACK validity (Eq. 3): the OOO packet that triggered the NACK took the
/// same path as the expected packet, so the expected packet is truly lost.
///
/// The paper's §3.1 examples, with two paths:
/// ```
/// use themis_core::policy::nack_valid;
/// // ePSN 0, triggering packet 2: same path -> the loss is real.
/// assert!(nack_valid(2, 0, 2));
/// // ePSN 0, triggering packet 1: other path -> just reordering.
/// assert!(!nack_valid(1, 0, 2));
/// ```
#[inline]
pub fn nack_valid(tpsn: u32, epsn: u32, n_paths: usize) -> bool {
    relative_path(tpsn, n_paths) == relative_path(epsn, n_paths)
}

/// Eq. 3 on 1-byte truncated PSNs, as evaluated by the switch (§4 stores
/// one byte per queue entry). Sound because `N | 256` for every valid
/// path count: `x mod N == (x mod 256) mod N`.
#[inline]
pub fn nack_valid_truncated(tpsn_trunc: u8, epsn: u32, n_paths: usize) -> bool {
    debug_assert!(256 % n_paths == 0, "truncated check requires N | 256");
    (tpsn_trunc as usize) % n_paths == relative_path(epsn, n_paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_is_deterministic_and_uniform() {
        // 1000 consecutive PSNs over 4 paths: exactly 250 each, and the
        // assignment is a pure function of the PSN.
        let n = 4;
        let base = 3;
        let mut counts = [0u32; 4];
        for psn in 0..1000u32 {
            let p = path_of(psn, n, base);
            assert_eq!(p, path_of(psn, n, base));
            counts[p] += 1;
        }
        assert_eq!(counts, [250; 4]);
    }

    #[test]
    fn eq1_rotates_with_base() {
        for psn in 0..32u32 {
            for base in 0..8 {
                assert_eq!(path_of(psn, 8, base), (path_of(psn, 8, 0) + base) % 8);
            }
        }
    }

    #[test]
    fn eq3_matches_paper_examples() {
        // §3.1 examples with N = 2 (Figure 2): ePSN = 0.
        // OOO packet PSN = 2 -> same path -> valid.
        assert!(nack_valid(2, 0, 2));
        // OOO packet PSN = 1 -> different path -> invalid.
        assert!(!nack_valid(1, 0, 2));
        // Figure 4b: tPSN 3 vs ePSN 2 -> 3 mod 2 != 2 mod 2 -> invalid.
        assert!(!nack_valid(3, 2, 2));
        // Figure 4b: tPSN 6 vs ePSN 4 -> 6 mod 2 == 4 mod 2 -> valid.
        assert!(nack_valid(6, 4, 2));
    }

    #[test]
    fn eq3_equivalent_to_path_equality() {
        // Eq. 3 is exactly "same path" for every base (the base cancels).
        for n in [1usize, 2, 4, 8, 16] {
            for base in 0..n {
                for t in 0..64u32 {
                    for e in 0..64u32 {
                        assert_eq!(
                            nack_valid(t, e, n),
                            path_of(t, n, base) == path_of(e, n, base),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mod_survives_24bit_wrap_for_powers_of_two() {
        let wrap = 1u32 << 24;
        for n in [2usize, 4, 16, 256] {
            // The packet right after the wrap continues the cycle.
            assert_eq!(relative_path(wrap - 1, n) as u32 + 1, {
                let next = relative_path(0, n) as u32;
                if next == 0 {
                    n as u32
                } else {
                    next
                }
            });
            // Equivalent statement: (wrap-1) mod n == n-1 and 0 mod n == 0.
            assert_eq!(relative_path(wrap - 1, n), n - 1);
        }
    }

    #[test]
    fn truncated_check_agrees_with_full_check() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            for t in (0..(1u32 << 24)).step_by(98_301) {
                for e in [0u32, 1, 255, 256, 65_535, (1 << 24) - 1] {
                    assert_eq!(
                        nack_valid_truncated((t & 0xFF) as u8, e, n),
                        nack_valid(t, e, n),
                        "n={n} t={t} e={e}"
                    );
                }
            }
        }
    }

    #[test]
    fn valid_path_counts() {
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
            assert_valid_path_count(n);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        assert_valid_path_count(3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_overlarge() {
        assert_valid_path_count(512);
    }
}
