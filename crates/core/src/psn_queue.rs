//! The ring-based PSN queue (§3.3).
//!
//! Themis-D caches the PSN of every data packet it forwards on the last
//! (ToR → NIC) hop in a per-QP FIFO ring. When a NACK arrives, the switch
//! dequeues entries until it finds the first PSN *larger than* the NACK's
//! ePSN — that entry is the tPSN, the out-of-order packet that triggered
//! the NACK (the RNIC NACKs at most once per ePSN, so the trigger is the
//! first higher-PSN arrival).
//!
//! Per §4 each entry stores a **single truncated byte** of the PSN. The
//! "larger than" comparison therefore uses 8-bit serial-number arithmetic
//! with a ±127 window — sound because the queue only spans one last-hop
//! bandwidth-delay product (≈100 packets at the Table 1 reference point),
//! far below the 127-packet window.
//!
//! Capacity follows the paper's sizing rule:
//! `N_entries = ceil(BW · RTT_last · F / MTU)` with expansion factor
//! `F > 1`; on overflow the oldest entry is evicted (ring semantics),
//! which can only cause a conservative *forward* decision later.

use simcore::time::TimeDelta;

/// Queue statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PsnQueueStats {
    /// PSNs recorded.
    pub enqueued: u64,
    /// Oldest entries overwritten because the ring was full.
    pub overflow_evictions: u64,
    /// NACK scans performed.
    pub scans: u64,
    /// Total entries dequeued across scans.
    pub scan_steps: u64,
    /// Scans that exhausted the queue without finding a tPSN.
    pub scan_misses: u64,
}

/// Result of a tPSN scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// The first dequeued entry serially greater than the ePSN, if any.
    pub tpsn: Option<u8>,
    /// Whether an entry *equal* to the ePSN was dequeued on the way —
    /// proof that the expected packet already passed this ToR and is en
    /// route to (or at) the NIC, making the NACK moot.
    pub saw_epsn: bool,
    /// How many entries serially below the ePSN were consumed before the
    /// tPSN (or queue end). Zero with a tPSN present means the queue no
    /// longer holds any context from the ePSN's era — its entries were
    /// evicted by ring overflow — so the verdict would be a coin flip.
    pub consumed_below: u32,
}

/// Fixed-capacity FIFO ring of truncated PSNs.
///
/// The Figure 4b walkthrough:
/// ```
/// use themis_core::psn_queue::PsnQueue;
/// let mut q = PsnQueue::with_capacity(8);
/// for psn in [0, 1, 3] {
///     q.push(psn); // packet 2 is delayed on the other path
/// }
/// // NACK with ePSN = 2: scan dequeues 0 and 1, identifies tPSN = 3.
/// assert_eq!(q.scan_for_tpsn(2).tpsn, Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct PsnQueue {
    buf: Vec<u8>,
    head: usize,
    len: usize,
    /// Statistics.
    pub stats: PsnQueueStats,
}

/// 8-bit serial comparison: is `a` ahead of `b` within a ±127 window?
#[inline]
fn serial8_greater(a: u8, b: u8) -> bool {
    let d = a.wrapping_sub(b);
    (1..=127).contains(&d)
}

impl PsnQueue {
    /// A ring holding up to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> PsnQueue {
        assert!(capacity > 0, "PSN queue needs at least one entry");
        PsnQueue {
            buf: vec![0; capacity],
            head: 0,
            len: 0,
            stats: PsnQueueStats::default(),
        }
    }

    /// The paper's sizing rule: `ceil(BW · RTT_last · F / MTU)` entries.
    ///
    /// `f_times_100` is the expansion factor ×100 (150 → F = 1.5),
    /// keeping the arithmetic integral.
    pub fn capacity_for(
        bw_bps: u64,
        rtt_last: TimeDelta,
        mtu_bytes: u32,
        f_times_100: u32,
    ) -> usize {
        let bdp_bytes = (bw_bps as u128 * rtt_last.as_nanos() as u128) / 8 / 1_000_000_000;
        let expanded = bdp_bytes * f_times_100 as u128;
        let entries = expanded.div_ceil(mtu_bytes as u128 * 100);
        (entries as usize).max(1)
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Current entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Switch memory: one byte per entry (§4).
    pub fn memory_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Record a forwarded data packet's PSN (truncated to one byte).
    pub fn push(&mut self, wire_psn: u32) {
        self.stats.enqueued += 1;
        let byte = (wire_psn & 0xFF) as u8;
        if self.len == self.buf.len() {
            // Ring full: evict the oldest entry.
            self.head = (self.head + 1) % self.buf.len();
            self.len -= 1;
            self.stats.overflow_evictions += 1;
        }
        let tail = (self.head + self.len) % self.buf.len();
        self.buf[tail] = byte;
        self.len += 1;
    }

    /// Scan for the tPSN of a NACK with expected PSN `epsn`: dequeue until
    /// the first entry serially greater than `epsn`, consuming everything
    /// before it (those packets arrived before the trigger).
    ///
    /// The outcome reports the truncated tPSN (`None` if the queue drained
    /// without finding one, e.g. after overflow evictions — callers treat
    /// that conservatively as "cannot prove invalid") and whether an entry
    /// equal to `epsn` was consumed along the way. The latter means the
    /// "missing" packet already passed this ToR: it was merely overtaken
    /// in the fabric and sits on the last hop, so the NACK needs neither
    /// forwarding nor compensation.
    pub fn scan_for_tpsn(&mut self, epsn: u32) -> ScanOutcome {
        self.stats.scans += 1;
        let e = (epsn & 0xFF) as u8;
        let mut saw_epsn = false;
        let mut consumed_below = 0u32;
        while self.len > 0 {
            let byte = self.buf[self.head];
            self.head = (self.head + 1) % self.buf.len();
            self.len -= 1;
            self.stats.scan_steps += 1;
            if byte == e {
                saw_epsn = true;
            }
            if serial8_greater(byte, e) {
                return ScanOutcome {
                    tpsn: Some(byte),
                    saw_epsn,
                    consumed_below,
                };
            }
            consumed_below += 1;
        }
        self.stats.scan_misses += 1;
        ScanOutcome {
            tpsn: None,
            saw_epsn,
            consumed_below,
        }
    }

    /// Non-destructive membership test: is `wire_psn`'s truncated byte
    /// among the currently queued entries?
    ///
    /// Used by Themis-D after blocking a NACK: if the blocked ePSN is
    /// still in the queue, the "missing" packet already passed the ToR
    /// (it was merely overtaken in the fabric), so no compensation must
    /// ever fire for it.
    pub fn contains(&self, wire_psn: u32) -> bool {
        let byte = (wire_psn & 0xFF) as u8;
        (0..self.len).any(|i| self.buf[(self.head + i) % self.buf.len()] == byte)
    }

    /// Drop all entries (connection teardown).
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_rule_matches_table1() {
        // 400 Gbps × 2 µs × 1.5 / 1500 B = 100 entries (§4 example).
        let cap = PsnQueue::capacity_for(400_000_000_000, TimeDelta::from_micros(2), 1500, 150);
        assert_eq!(cap, 100);
    }

    #[test]
    fn sizing_rule_rounds_up_and_floors_at_one() {
        // 100 Gbps × 1 µs × 1.5 / 1500 = 12.5 -> 13.
        let cap = PsnQueue::capacity_for(100_000_000_000, TimeDelta::from_micros(1), 1500, 150);
        assert_eq!(cap, 13);
        // Tiny BDP still yields a usable queue.
        let cap = PsnQueue::capacity_for(1_000_000, TimeDelta::from_micros(1), 1500, 150);
        assert_eq!(cap, 1);
    }

    #[test]
    fn fifo_scan_finds_first_greater_psn_figure_4b() {
        // Figure 4b: packets 0, 1, 3, 2 enqueued; NACK with ePSN = 2.
        let mut q = PsnQueue::with_capacity(8);
        for psn in [0u32, 1, 3, 2] {
            q.push(psn);
        }
        // Dequeue 0, 1 (≤ 2), find 3.
        let out = q.scan_for_tpsn(2);
        assert_eq!(out.tpsn, Some(3));
        assert!(!out.saw_epsn, "2 not yet dequeued");
        // 2 remains at the head for the next scan.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn figure_4b_second_nack() {
        // Continuation: packets 2 (left over), 6 in queue; NACK ePSN = 4.
        let mut q = PsnQueue::with_capacity(8);
        q.push(2);
        q.push(6);
        let out = q.scan_for_tpsn(4);
        assert_eq!(out.tpsn, Some(6));
        assert!(!out.saw_epsn);
        assert!(q.is_empty());
    }

    #[test]
    fn scan_miss_returns_none() {
        let mut q = PsnQueue::with_capacity(4);
        q.push(1);
        q.push(2);
        let out = q.scan_for_tpsn(5);
        assert_eq!(out.tpsn, None);
        assert!(!out.saw_epsn);
        assert_eq!(q.stats.scan_misses, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_evicts_oldest() {
        let mut q = PsnQueue::with_capacity(3);
        for psn in 0..5u32 {
            q.push(psn);
        }
        assert_eq!(q.stats.overflow_evictions, 2);
        assert_eq!(q.len(), 3);
        // Oldest remaining entry is 2.
        assert_eq!(q.scan_for_tpsn(1).tpsn, Some(2));
    }

    #[test]
    fn truncation_preserves_order_within_window() {
        // PSNs around a 256 boundary: 254, 255, 256 (=0x00), 257.
        let mut q = PsnQueue::with_capacity(8);
        for psn in [254u32, 255, 257] {
            q.push(psn);
        }
        // ePSN 256: 254, 255 are smaller (serially), 257 is greater.
        let out = q.scan_for_tpsn(256);
        assert_eq!(out.tpsn, Some((257 & 0xFF) as u8));
        assert!(!out.saw_epsn);
    }

    #[test]
    fn scan_reports_consumed_epsn() {
        // The delayed packet 2 passed the ToR right behind its overtaker:
        // queue = [0, 1, 3, 2, 4]; a NACK with ePSN 2 dequeues 0, 1
        // (smaller), finds 3 — but with 2 behind 3? No: FIFO order means
        // 2 was pushed after 3. Scan stops at 3 without seeing 2.
        // Reorder so 2 precedes the first greater entry: [0, 2, 1, 3]:
        // dequeues 0, 2 (equal!), 1, finds 3 and reports saw_epsn.
        let mut q = PsnQueue::with_capacity(8);
        for psn in [0u32, 2, 1, 3] {
            q.push(psn);
        }
        let out = q.scan_for_tpsn(2);
        assert_eq!(out.tpsn, Some(3));
        assert!(out.saw_epsn, "entry equal to the ePSN was consumed");
    }

    #[test]
    fn serial8_window() {
        assert!(serial8_greater(1, 0));
        assert!(serial8_greater(127, 0));
        assert!(!serial8_greater(128, 0), "beyond the +127 window");
        assert!(!serial8_greater(0, 0));
        assert!(!serial8_greater(200, 201));
        assert!(serial8_greater(0, 255), "wraps: 0 is one ahead of 255");
        assert!(serial8_greater(5, 250));
    }

    #[test]
    fn stats_accumulate() {
        let mut q = PsnQueue::with_capacity(16);
        for psn in 0..10u32 {
            q.push(psn);
        }
        let _ = q.scan_for_tpsn(3); // dequeues 0..=3, finds 4 -> 5 steps
        assert_eq!(q.stats.enqueued, 10);
        assert_eq!(q.stats.scans, 1);
        assert_eq!(q.stats.scan_steps, 5);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn clear_empties() {
        let mut q = PsnQueue::with_capacity(4);
        q.push(1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scan_for_tpsn(0).tpsn, None);
    }
}
