//! Themis-side telemetry ids.
//!
//! One [`ThemisTelem`] is registered per sink and cloned into every
//! ToR's [`crate::ThemisMiddleware`], so the counters aggregate the
//! spray-policy activity and NACK classification verdicts across the
//! whole fabric. The `themis.nacks.*` counters are the live view of
//! [`crate::themis_d::ThemisDStats`]; experiments cross-check the two
//! at snapshot time.

use telemetry::{CounterId, EventKind, Sink};

/// Telemetry handle installed into every [`crate::ThemisMiddleware`].
#[derive(Debug, Clone)]
pub struct ThemisTelem {
    sink: Sink,
    sprayed: CounterId,
    nacks_blocked: CounterId,
    nacks_forwarded_valid: CounterId,
    nacks_forwarded_unknown: CounterId,
    nacks_compensated: CounterId,
}

impl ThemisTelem {
    /// Register the Themis counter set on `sink`. Idempotent: every ToR
    /// of a fabric can call this and they all share ids.
    pub fn register(sink: &Sink) -> ThemisTelem {
        ThemisTelem {
            sprayed: sink.counter("themis.sprayed"),
            nacks_blocked: sink.counter("themis.nacks.blocked"),
            nacks_forwarded_valid: sink.counter("themis.nacks.forwarded_valid"),
            nacks_forwarded_unknown: sink.counter("themis.nacks.forwarded_unknown"),
            nacks_compensated: sink.counter("themis.nacks.compensated"),
            sink: sink.clone(),
        }
    }

    /// Themis-S sprayed a data packet (Eq. 1 path selection applied).
    #[inline]
    pub fn on_sprayed(&self) {
        self.sink.inc(self.sprayed);
    }

    /// Themis-D classified a NACK as invalid and blocked it (Eq. 3
    /// mismatch — the triggering packet took a different path).
    #[inline]
    pub fn on_nack_blocked(&self, qp: u64, epsn: u64) {
        self.sink.inc(self.nacks_blocked);
        self.sink.event(EventKind::NackBlocked, qp, epsn);
    }

    /// Themis-D classified a NACK as valid and forwarded it.
    #[inline]
    pub fn on_nack_forwarded_valid(&self) {
        self.sink.inc(self.nacks_forwarded_valid);
    }

    /// Themis-D forwarded a NACK conservatively (no tPSN found).
    #[inline]
    pub fn on_nack_forwarded_unknown(&self) {
        self.sink.inc(self.nacks_forwarded_unknown);
    }

    /// Themis-D issued a compensating NACK (§3.4) after a same-path
    /// packet proved a blocked loss real.
    #[inline]
    pub fn on_nack_compensated(&self, qp: u64, epsn: u64) {
        self.sink.inc(self.nacks_compensated);
        self.sink.event(EventKind::NackCompensated, qp, epsn);
    }
}
