//! Themis-D: NACK validation, blocking and compensation at the
//! destination ToR (§3.3, §3.4).
//!
//! For every data packet forwarded on the last hop, Themis-D records the
//! PSN in the flow's ring queue and runs the compensation check. For every
//! NACK arriving back from a local receiver, it identifies the triggering
//! PSN (tPSN) by scanning that queue, evaluates Eq. 3, and forwards valid
//! NACKs while blocking invalid ones.
//!
//! Blocking creates the §3.4 obligation: if the expected packet really was
//! lost, someone must eventually tell the sender, because the RNIC will
//! never NACK the same ePSN again. Themis-D arms `(BePSN, Valid)` in the
//! flow table and, on a later data packet:
//!
//! * PSN == BePSN → the "lost" packet arrived after all; disarm.
//! * PSN > BePSN on the *same path* (`PSN mod N == BePSN mod N`) → the
//!   expected packet is provably lost; synthesize a NACK for BePSN on
//!   behalf of the RNIC and disarm.

use crate::flow_table::FlowTable;
use crate::policy::{assert_valid_path_count, nack_valid_truncated, relative_path};
use netsim::hooks::ReverseAction;
use netsim::packet::{Packet, PacketKind};
use netsim::types::QpId;

/// 24-bit serial comparison: is `a` strictly ahead of `b`?
#[inline]
fn serial24_greater(a: u32, b: u32) -> bool {
    let d = a.wrapping_sub(b) & 0xFF_FFFF;
    (1..(1 << 23)).contains(&d)
}

/// Themis-D statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThemisDStats {
    /// Data packets observed on the last hop.
    pub data_seen: u64,
    /// NACKs inspected.
    pub nacks_seen: u64,
    /// Invalid NACKs blocked.
    pub nacks_blocked: u64,
    /// Valid NACKs forwarded (Eq. 3 held).
    pub nacks_forwarded_valid: u64,
    /// NACKs forwarded conservatively because no tPSN was found.
    pub nacks_forwarded_unknown: u64,
    /// Compensated NACKs generated (§3.4).
    pub compensations: u64,
    /// Compensations cancelled because the BePSN packet arrived.
    pub compensation_cancels: u64,
    /// Compensation armings suppressed because the blocked ePSN was still
    /// in the ring queue (already past the ToR, merely overtaken).
    pub compensation_suppressed: u64,
    /// Retransmitted/duplicate arrivals excluded from the ring queue
    /// (they travel out of PSN order and would poison tPSN identification).
    pub retx_not_queued: u64,
    /// NACKs blocked (with compensation armed) because ring-overflow
    /// evictions destroyed the ePSN-era context, making the tPSN verdict
    /// meaningless; compensation recovers genuine losses shortly after.
    pub blocked_uncertain: u64,
    /// Handshakes intercepted (flow-table provisioning).
    pub handshakes: u64,
}

/// The destination-side half of Themis.
#[derive(Debug)]
pub struct ThemisD {
    n_paths: usize,
    table: FlowTable,
    compensation: bool,
    /// Statistics.
    pub stats: ThemisDStats,
}

impl ThemisD {
    /// Build for `n_paths` paths with the given per-QP PSN-queue capacity.
    pub fn new(n_paths: usize, queue_capacity: usize, compensation: bool) -> ThemisD {
        assert_valid_path_count(n_paths);
        ThemisD {
            n_paths,
            table: FlowTable::new(queue_capacity),
            compensation,
            stats: ThemisDStats::default(),
        }
    }

    /// Number of paths.
    pub fn n_paths(&self) -> usize {
        self.n_paths
    }

    /// Change the Eq. 3 modulus to match a sender-side pathset
    /// restriction (§6). Must equal every affected Themis-S's
    /// [`crate::themis_s::ThemisS::effective_modulus`]; in-flight packets
    /// sprayed under the old modulus may be misclassified transiently
    /// (recovered by compensation or the sender RTO).
    pub fn set_modulus(&mut self, n: usize) {
        assert_valid_path_count(n);
        self.n_paths = n;
    }

    /// The flow table (memory accounting, tests).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Intercept a connection handshake: provision per-QP state (§3.3).
    pub fn on_handshake(&mut self, qp: QpId) {
        self.stats.handshakes += 1;
        self.table.provision(qp);
    }

    /// Observe a data packet about to be forwarded to a local host.
    ///
    /// Records its PSN in the flow's ring queue and runs the compensation
    /// check; returns a synthesized NACK to inject when compensation
    /// fires.
    pub fn on_downstream_data(&mut self, pkt: &Packet) -> Option<Packet> {
        let PacketKind::Data { psn, .. } = pkt.kind else {
            return None;
        };
        self.stats.data_seen += 1;
        let n = self.n_paths;
        let entry = self.table.entry(pkt.qp);

        // Retransmissions travel out of PSN order on their path, so they
        // must not enter the ring queue (a later scan would mis-identify
        // them as tPSNs and poison Eq. 3) nor prove same-path overtakes.
        // The ToR knows exactly which PSNs will be retransmitted: the
        // ePSNs of NACKs it forwarded or generated.
        let is_retransmission = entry.take_expected_retransmission(psn);

        let mut compensated = None;
        if entry.valid {
            if psn == entry.bepsn {
                // The packet a NACK was blocked for did arrive (possibly
                // as a retransmission): no compensation needed.
                entry.valid = false;
                self.stats.compensation_cancels += 1;
            } else if !is_retransmission
                && serial24_greater(psn, entry.bepsn)
                && relative_path(psn, n) == relative_path(entry.bepsn, n)
            {
                // A later packet on the same path overtook BePSN: the
                // BePSN packet is lost. NACK on behalf of the RNIC.
                entry.valid = false;
                entry.expect_retransmission(entry.bepsn);
                self.stats.compensations += 1;
                compensated = Some(Packet::nack(
                    pkt.qp,
                    pkt.dst, // receiver
                    pkt.src, // sender
                    pkt.udp_sport,
                    entry.bepsn,
                    true,
                ));
            }
        }
        if is_retransmission {
            self.stats.retx_not_queued += 1;
        } else {
            entry.queue.push(psn);
        }
        compensated
    }

    /// Validate a NACK from a local receiver (§3.3): find the tPSN and
    /// apply Eq. 3.
    pub fn on_reverse_nack(&mut self, qp: QpId, epsn: u32) -> ReverseAction {
        self.stats.nacks_seen += 1;
        let n = self.n_paths;
        let compensation = self.compensation;
        let entry = self.table.entry(qp);
        let outcome = entry.queue.scan_for_tpsn(epsn);
        if let Some(t) = outcome.tpsn {
            entry.remember_tpsn(t);
        }
        // If the expected packet already passed this ToR it was merely
        // overtaken in the fabric and sits on the last hop: the NACK is
        // moot regardless of the tPSN verdict — block it and arm nothing.
        // Three ways to know: this scan consumed an entry equal to the
        // ePSN (it was ahead of the tPSN), the entry is still queued
        // (behind the tPSN), or a recent scan consumed it as a tPSN.
        if outcome.saw_epsn || entry.queue.contains(epsn) || entry.recently_scanned(epsn) {
            self.stats.nacks_blocked += 1;
            self.stats.compensation_suppressed += 1;
            return ReverseAction::Block;
        }
        match outcome.tpsn {
            None => {
                // Queue exhausted (quiescent flow or unknown QP): cannot
                // prove the NACK invalid — forward it (this is the path
                // that recovers tail losses), and expect the consequent
                // retransmission.
                self.stats.nacks_forwarded_unknown += 1;
                entry.expect_retransmission(epsn);
                ReverseAction::Forward
            }
            Some(tpsn_trunc)
                if outcome.consumed_below == 0 && entry.queue.stats.overflow_evictions > 0 =>
            {
                // Every queued entry is newer than the ePSN *and* the
                // ring has evicted entries before: the ePSN's era was
                // destroyed by overflow, so this "tPSN" is unrelated and
                // Eq. 3 would be a coin flip. Block, and let compensation
                // decide: a genuinely lost ePSN is proven by the next
                // same-path packet; an already-delivered one produces at
                // most one stale NACK the sender ignores. (Without prior
                // evictions, zero consumed entries just means the ePSN
                // opens the window — the scan verdict is sound.)
                let _ = tpsn_trunc;
                self.stats.nacks_blocked += 1;
                self.stats.blocked_uncertain += 1;
                if compensation {
                    entry.bepsn = epsn;
                    entry.valid = true;
                }
                ReverseAction::Block
            }
            Some(tpsn_trunc) => {
                if nack_valid_truncated(tpsn_trunc, epsn, n) {
                    // Real loss: the sender will retransmit `epsn`.
                    self.stats.nacks_forwarded_valid += 1;
                    entry.expect_retransmission(epsn);
                    ReverseAction::Forward
                } else {
                    self.stats.nacks_blocked += 1;
                    if compensation {
                        entry.bepsn = epsn;
                        entry.valid = true;
                    }
                    ReverseAction::Block
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::types::HostId;

    const N: usize = 2;

    fn themis() -> ThemisD {
        ThemisD::new(N, 16, true)
    }

    fn data(psn: u32) -> Packet {
        Packet::data(
            QpId(1),
            HostId(0),
            HostId(9),
            700,
            psn,
            0,
            false,
            1000,
            false,
        )
    }

    fn feed(t: &mut ThemisD, psns: &[u32]) -> Vec<Packet> {
        psns.iter()
            .filter_map(|&p| t.on_downstream_data(&data(p)))
            .collect()
    }

    #[test]
    fn figure_4b_blocks_invalid_then_forwards_valid() {
        let mut t = themis();
        // Fig 4b timeline at the ToR: 0, 1, 3 pass; packet 2 is delayed
        // on the other path. The RNIC NACKs with ePSN=2 (triggered by 3).
        assert!(feed(&mut t, &[0, 1, 3]).is_empty());
        // tPSN = 3; 3 mod 2 != 2 mod 2 -> invalid -> block.
        assert_eq!(t.on_reverse_nack(QpId(1), 2), ReverseAction::Block);
        assert_eq!(t.stats.nacks_blocked, 1);
        // The delayed 2 arrives (cancels the armed compensation), then 6.
        assert!(feed(&mut t, &[2, 6]).is_empty());
        // NACK ePSN=4 triggered by 6: scan dequeues 2, finds tPSN = 6;
        // 6 mod 2 == 4 mod 2 -> valid -> forward.
        assert_eq!(t.on_reverse_nack(QpId(1), 4), ReverseAction::Forward);
        assert_eq!(t.stats.nacks_forwarded_valid, 1);
    }

    #[test]
    fn already_forwarded_bepsn_suppresses_compensation() {
        // The expected packet (PSN 2) passed the ToR *before* its NACK
        // was blocked — it sits in the ring queue behind the trigger. The
        // literal §3.4 rules would arm compensation and fire a spurious
        // compensated NACK on the next same-path packet; the queue
        // membership check suppresses the arming instead.
        let mut t = themis();
        assert!(feed(&mut t, &[0, 1, 3, 2]).is_empty());
        assert_eq!(t.on_reverse_nack(QpId(1), 2), ReverseAction::Block);
        assert_eq!(t.stats.compensation_suppressed, 1);
        let comp = feed(&mut t, &[6]);
        assert!(comp.is_empty(), "no spurious compensation");
        assert_eq!(t.stats.compensations, 0);
    }

    #[test]
    fn figure_4c_compensation_fires_on_same_path_overtake() {
        let mut t = themis();
        feed(&mut t, &[0, 1, 3]);
        // NACK ePSN=2 (triggered by 3): invalid, blocked, BePSN=2 armed.
        assert_eq!(t.on_reverse_nack(QpId(1), 2), ReverseAction::Block);
        // Packet 4 arrives: 4 > 2 and 4 mod 2 == 2 mod 2 -> the packet
        // with PSN 2 is provably lost -> compensated NACK for ePSN 2.
        let comp = feed(&mut t, &[4]);
        assert_eq!(comp.len(), 1);
        match comp[0].kind {
            PacketKind::Nack { epsn, compensated } => {
                assert_eq!(epsn, 2);
                assert!(compensated);
            }
            _ => panic!("expected NACK"),
        }
        // Addressed receiver -> sender.
        assert_eq!(comp[0].src, HostId(9));
        assert_eq!(comp[0].dst, HostId(0));
        assert_eq!(t.stats.compensations, 1);
        // Compensation fires once: another same-path packet is quiet.
        assert!(feed(&mut t, &[6]).is_empty());
    }

    #[test]
    fn compensation_cancelled_when_bepsn_arrives() {
        let mut t = themis();
        feed(&mut t, &[0, 1, 3]);
        assert_eq!(t.on_reverse_nack(QpId(1), 2), ReverseAction::Block);
        // The delayed packet 2 shows up: no loss, disarm quietly.
        assert!(feed(&mut t, &[2]).is_empty());
        assert_eq!(t.stats.compensation_cancels, 1);
        // Later same-path packets must not compensate anymore.
        assert!(feed(&mut t, &[4, 6]).is_empty());
        assert_eq!(t.stats.compensations, 0);
    }

    #[test]
    fn different_path_packet_does_not_compensate() {
        let mut t = themis();
        feed(&mut t, &[0, 1, 3]);
        t.on_reverse_nack(QpId(1), 2);
        // Packet 5 (path 1) cannot prove packet 2 (path 0) lost.
        assert!(feed(&mut t, &[5]).is_empty());
        assert_eq!(t.stats.compensations, 0);
        // But packet 6 (path 0) can.
        assert_eq!(feed(&mut t, &[6]).len(), 1);
    }

    #[test]
    fn compensation_disabled_blocks_without_arming() {
        let mut t = ThemisD::new(N, 16, false);
        feed(&mut t, &[0, 1, 3]);
        assert_eq!(t.on_reverse_nack(QpId(1), 2), ReverseAction::Block);
        assert!(feed(&mut t, &[4, 6, 8]).is_empty(), "no compensation");
        assert_eq!(t.stats.compensations, 0);
    }

    #[test]
    fn empty_queue_forwards_conservatively() {
        let mut t = themis();
        assert_eq!(t.on_reverse_nack(QpId(7), 0), ReverseAction::Forward);
        assert_eq!(t.stats.nacks_forwarded_unknown, 1);
    }

    #[test]
    fn handshake_provisions_flow_state() {
        let mut t = themis();
        t.on_handshake(QpId(3));
        assert_eq!(t.stats.handshakes, 1);
        assert_eq!(t.table().len(), 1);
        assert_eq!(t.table().handshake_creations, 1);
    }

    #[test]
    fn four_paths_validity() {
        let mut t = ThemisD::new(4, 32, true);
        // Packets 0,1,2,3,5,6,7 arrive; 4 lost. First OOO beyond epsn=4
        // is 5: 5 mod 4 != 4 mod 4 -> invalid NACK blocked.
        feed(&mut t, &[0, 1, 2, 3, 5]);
        assert_eq!(t.on_reverse_nack(QpId(1), 4), ReverseAction::Block);
        // Packet 8 (same path as 4): compensate.
        let comp = feed(&mut t, &[6, 7, 8]);
        assert_eq!(comp.len(), 1);
        assert_eq!(
            match comp[0].kind {
                PacketKind::Nack { epsn, .. } => epsn,
                _ => unreachable!(),
            },
            4
        );
    }

    #[test]
    fn evicted_context_blocks_and_arms_compensation() {
        // Tiny ring (capacity 2): by the time the NACK arrives, every
        // entry from the ePSN's era has been evicted. The verdict would
        // be a coin flip, so Themis-D blocks and arms compensation.
        let mut t = ThemisD::new(2, 2, true);
        // Packet 0 lost; 1..6 pass, overflowing the 2-slot ring.
        assert!(feed(&mut t, &[1, 2, 3, 4, 5, 6]).is_empty());
        // NACK(0): ring holds [5, 6]; nothing <= 0 is consumed.
        assert_eq!(t.on_reverse_nack(QpId(1), 0), ReverseAction::Block);
        assert_eq!(t.stats.blocked_uncertain, 1);
        // The next same-path packet proves the loss -> compensated NACK.
        let comp = feed(&mut t, &[8]);
        assert_eq!(comp.len(), 1);
        assert!(matches!(
            comp[0].kind,
            PacketKind::Nack {
                epsn: 0,
                compensated: true
            }
        ));
    }

    #[test]
    fn expected_retransmissions_stay_out_of_the_queue() {
        // A forwarded valid NACK predicts a retransmission of its ePSN;
        // when that packet flies by, it must not enter the ring queue
        // (out-of-PSN-order there) nor count as an overtake proof.
        let mut t = themis();
        feed(&mut t, &[0, 1]);
        // Packets 2 and 3 lost; 4 arrives -> NACK(2) with tPSN 4: valid.
        feed(&mut t, &[4]);
        assert_eq!(t.on_reverse_nack(QpId(1), 2), ReverseAction::Forward);
        assert_eq!(t.stats.nacks_forwarded_valid, 1);
        // The retransmitted 2 arrives late, after 5 and 6.
        feed(&mut t, &[5, 6]);
        let before = t.stats.data_seen;
        assert!(feed(&mut t, &[2]).is_empty());
        assert_eq!(t.stats.data_seen, before + 1);
        assert_eq!(t.stats.retx_not_queued, 1, "retx excluded from the ring");
    }

    #[test]
    fn serial24_wraps() {
        assert!(serial24_greater(0, 0xFF_FFFF));
        assert!(serial24_greater(5, 0xFF_FFF0));
        assert!(!serial24_greater(0xFF_FFFF, 0));
        assert!(!serial24_greater(7, 7));
        assert!(serial24_greater(8, 7));
    }

    #[test]
    fn valid_nack_for_true_loss_single_path_parity() {
        // Two paths; packet 0 lost in the fabric; packets 1, 2, 3 arrive.
        // First OOO arrival is 1 -> NACK(0) triggered by tPSN=1:
        // 1 mod 2 != 0 mod 2 -> blocked (cannot yet prove loss).
        // Then 2 arrives -> same path as 0 -> compensation proves loss.
        let mut t = themis();
        let comp1 = feed(&mut t, &[1]);
        assert!(comp1.is_empty());
        assert_eq!(t.on_reverse_nack(QpId(1), 0), ReverseAction::Block);
        let comp2 = feed(&mut t, &[2]);
        assert_eq!(comp2.len(), 1, "compensation recovers the real loss");
    }
}
