//! Themis-S: PSN-based packet spraying at the source ToR (§3.2).
//!
//! For every data packet from a directly attached host, Themis-S applies
//! Eq. 1 in one of two deployment modes:
//!
//! * [`SprayMode::DirectEgress`] — 2-tier Clos: the ToR fully determines
//!   the path, so Themis-S simply returns the uplink index
//!   `(PSN mod N + P_base) mod N`. `P_base` is the flow's ECMP hash, so
//!   disabling Themis degenerates to plain ECMP on the same path set.
//! * [`SprayMode::PathMapRewrite`] — multi-tier: the ToR XORs a PathMap
//!   delta into the UDP source port (Figure 3) and leaves egress selection
//!   to the regular ECMP stages, which now hash the packet onto the
//!   desired relative path. Only the ToR needs programmability.
//!
//! Non-data packets (ACK/NACK/CNP/handshake) are never sprayed: they
//! follow the flow's base path, keeping control-packet ordering intact.

use crate::pathmap::PathMap;
use crate::policy::{assert_valid_path_count, path_of, relative_path};
use netsim::hash::{ecmp_hash, FiveTuple};
use netsim::packet::Packet;

/// How Themis-S realizes Eq. 1 on the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SprayMode {
    /// Pick the egress uplink directly (2-tier Clos).
    DirectEgress,
    /// Rewrite the UDP source port through the PathMap (single ECMP
    /// stage reads the low hash bits).
    PathMapRewrite,
    /// Rewrite through a two-stage PathMap for 3-tier Clos: the edge
    /// stage reads hash bits `[0, bits_stage1)` and the aggregation
    /// stage reads `[shift_stage2, shift_stage2 + bits_stage2)`.
    /// `n_paths` must equal `2^(bits_stage1 + bits_stage2)`.
    PathMapTwoTier {
        /// Bits consumed by the edge ECMP stage.
        bits_stage1: u32,
        /// Hash-view shift of the aggregation stage.
        shift_stage2: u32,
        /// Bits consumed by the aggregation ECMP stage.
        bits_stage2: u32,
    },
}

/// Themis-S statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThemisSStats {
    /// Data packets sprayed.
    pub sprayed: u64,
    /// Sport rewrites applied (PathMap mode).
    pub rewrites: u64,
    /// Packets passed through un-sprayed (disabled, or non-data).
    pub bypassed: u64,
}

/// The source-side half of Themis.
#[derive(Debug)]
pub struct ThemisS {
    n_paths: usize,
    mode: SprayMode,
    pathmap: Option<PathMap>,
    enabled: bool,
    /// Restricted path subset (§6 future work): when set, spraying cycles
    /// over these path indices instead of all `0..n_paths`. Must be a
    /// power-of-two-sized set of distinct indices `< n_paths`, and every
    /// Themis-D that terminates affected flows must use the same modulus
    /// (see [`crate::themis_d::ThemisD::set_modulus`]).
    pathset: Option<Vec<usize>>,
    /// Statistics.
    pub stats: ThemisSStats,
}

impl ThemisS {
    /// Build for `n_paths` equal-cost paths.
    pub fn new(n_paths: usize, mode: SprayMode) -> ThemisS {
        assert_valid_path_count(n_paths);
        let pathmap = match mode {
            SprayMode::PathMapRewrite => Some(PathMap::build(n_paths)),
            SprayMode::PathMapTwoTier {
                bits_stage1,
                shift_stage2,
                bits_stage2,
            } => {
                assert_eq!(
                    1usize << (bits_stage1 + bits_stage2),
                    n_paths,
                    "two-tier PathMap bits must multiply to n_paths"
                );
                Some(PathMap::build_two_tier(
                    bits_stage1,
                    shift_stage2,
                    bits_stage2,
                ))
            }
            SprayMode::DirectEgress => None,
        };
        ThemisS {
            n_paths,
            mode,
            pathmap,
            enabled: true,
            pathset: None,
            stats: ThemisSStats::default(),
        }
    }

    /// Restrict spraying to a subset of path indices (§6: pathset
    /// adjustment around failures). `None` restores the full path set.
    ///
    /// # Panics
    /// Panics if the subset is not a power-of-two-sized list of distinct
    /// in-range indices — those are the same constraints the full path
    /// count satisfies, required for PSN-wrap continuity and the 1-byte
    /// truncated validity check.
    pub fn set_pathset(&mut self, pathset: Option<Vec<usize>>) {
        if let Some(ps) = &pathset {
            assert_valid_path_count(ps.len());
            assert!(ps.len() <= self.n_paths, "subset larger than path set");
            let mut seen = std::collections::HashSet::new();
            for &p in ps {
                assert!(p < self.n_paths, "path index {p} out of range");
                assert!(seen.insert(p), "duplicate path index {p}");
            }
        }
        self.pathset = pathset;
    }

    /// The effective spraying modulus: subset size if restricted, else
    /// the full path count. Themis-D's Eq. 3 modulus must equal this.
    pub fn effective_modulus(&self) -> usize {
        self.pathset.as_ref().map_or(self.n_paths, Vec::len)
    }

    /// Number of paths.
    pub fn n_paths(&self) -> usize {
        self.n_paths
    }

    /// Whether spraying is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable/disable spraying (the §6 link-failure fallback: disabled
    /// Themis-S leaves packets to the switch's regular ECMP policy).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The flow's ECMP base path for the current header.
    pub fn base_path(&self, pkt: &Packet) -> usize {
        (ecmp_hash(&FiveTuple::of_packet(pkt)) as usize) % self.n_paths
    }

    /// Apply the spraying policy to an upstream data packet.
    ///
    /// Returns `Some(uplink)` in direct mode; in PathMap mode rewrites the
    /// header in place and returns `None` (downstream ECMP decides).
    pub fn spray(&mut self, pkt: &mut Packet) -> Option<usize> {
        if !self.enabled {
            self.stats.bypassed += 1;
            return None;
        }
        let Some(psn) = pkt.data_psn() else {
            self.stats.bypassed += 1;
            return None;
        };
        self.stats.sprayed += 1;
        // Map the PSN to a path index, cycling over the restricted
        // subset when one is installed.
        let resolve = |rel: usize, pathset: &Option<Vec<usize>>| -> usize {
            match pathset {
                Some(ps) => ps[rel],
                None => rel,
            }
        };
        match self.mode {
            SprayMode::DirectEgress => {
                let n_eff = self.effective_modulus();
                let base = (ecmp_hash(&FiveTuple::of_packet(pkt)) as usize) % n_eff;
                let rel = path_of(psn, n_eff, base);
                Some(resolve(rel, &self.pathset))
            }
            SprayMode::PathMapRewrite | SprayMode::PathMapTwoTier { .. } => {
                let n_eff = self.effective_modulus();
                let rel = relative_path(psn, n_eff);
                let delta = resolve(rel, &self.pathset);
                let pm = self.pathmap.as_ref().expect("built in new()");
                pkt.udp_sport = pm.rewrite(pkt.udp_sport, delta);
                self.stats.rewrites += 1;
                None
            }
        }
    }

    /// Switch memory consumed (PathMap only; direct mode stores nothing).
    pub fn memory_bytes(&self) -> usize {
        self.pathmap.as_ref().map_or(0, PathMap::memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::types::{HostId, QpId};

    fn data(psn: u32, sport: u16) -> Packet {
        Packet::data(
            QpId(1),
            HostId(0),
            HostId(9),
            sport,
            psn,
            0,
            false,
            1000,
            false,
        )
    }

    #[test]
    fn direct_mode_follows_eq1() {
        let mut s = ThemisS::new(4, SprayMode::DirectEgress);
        let mut p0 = data(0, 700);
        let base = s.base_path(&p0);
        for psn in 0..16u32 {
            let mut p = data(psn, 700);
            assert_eq!(s.spray(&mut p), Some((psn as usize % 4 + base) % 4));
            // Direct mode never touches the header.
            assert_eq!(p.udp_sport, 700);
        }
        assert_eq!(s.stats.sprayed, 16);
        let _ = s.spray(&mut p0);
    }

    #[test]
    fn direct_mode_uniform_coverage() {
        let mut s = ThemisS::new(8, SprayMode::DirectEgress);
        let mut counts = [0u32; 8];
        for psn in 0..800u32 {
            let mut p = data(psn, 700);
            counts[s.spray(&mut p).unwrap()] += 1;
        }
        assert_eq!(counts, [100; 8]);
    }

    #[test]
    fn pathmap_mode_rewrites_and_defers() {
        let mut s = ThemisS::new(4, SprayMode::PathMapRewrite);
        let mut p = data(7, 700); // 7 mod 4 = 3
        assert_eq!(s.spray(&mut p), None);
        // delta 3 applied.
        let pm = PathMap::build(4);
        assert_eq!(p.udp_sport, pm.rewrite(700, 3));
        assert_eq!(s.stats.rewrites, 1);
    }

    #[test]
    fn pathmap_mode_same_mod_same_header() {
        let mut s = ThemisS::new(4, SprayMode::PathMapRewrite);
        let mut a = data(1, 700);
        let mut b = data(5, 700);
        s.spray(&mut a);
        s.spray(&mut b);
        assert_eq!(a.udp_sport, b.udp_sport, "PSN ≡ (mod N) ⇒ same path");
        let mut c = data(2, 700);
        s.spray(&mut c);
        assert_ne!(a.udp_sport, c.udp_sport);
    }

    #[test]
    fn disabled_sprayer_bypasses() {
        let mut s = ThemisS::new(4, SprayMode::DirectEgress);
        s.set_enabled(false);
        let mut p = data(3, 700);
        assert_eq!(s.spray(&mut p), None);
        assert_eq!(s.stats.bypassed, 1);
        assert!(!s.is_enabled());
    }

    #[test]
    fn non_data_bypasses() {
        let mut s = ThemisS::new(4, SprayMode::DirectEgress);
        let mut nack = Packet::nack(QpId(1), HostId(0), HostId(9), 700, 3, false);
        assert_eq!(s.spray(&mut nack), None);
        assert_eq!(s.stats.bypassed, 1);
        assert_eq!(s.stats.sprayed, 0);
    }

    #[test]
    fn two_tier_mode_rewrites() {
        let mode = SprayMode::PathMapTwoTier {
            bits_stage1: 1,
            shift_stage2: 8,
            bits_stage2: 1,
        };
        let mut s = ThemisS::new(4, mode);
        let mut a = data(1, 700);
        let mut b = data(5, 700);
        assert_eq!(s.spray(&mut a), None);
        assert_eq!(s.spray(&mut b), None);
        assert_eq!(a.udp_sport, b.udp_sport, "PSN ≡ (mod 4) ⇒ same rewrite");
        let mut c = data(2, 700);
        s.spray(&mut c);
        assert_ne!(a.udp_sport, c.udp_sport);
    }

    #[test]
    #[should_panic(expected = "multiply to n_paths")]
    fn two_tier_bits_must_match_path_count() {
        ThemisS::new(
            8,
            SprayMode::PathMapTwoTier {
                bits_stage1: 1,
                shift_stage2: 8,
                bits_stage2: 1,
            },
        );
    }

    #[test]
    fn pathset_restricts_direct_spraying() {
        let mut s = ThemisS::new(4, SprayMode::DirectEgress);
        s.set_pathset(Some(vec![0, 2]));
        assert_eq!(s.effective_modulus(), 2);
        let mut seen = std::collections::HashSet::new();
        for psn in 0..32u32 {
            let mut p = data(psn, 700);
            seen.insert(s.spray(&mut p).unwrap());
        }
        assert_eq!(seen, [0usize, 2].into_iter().collect());
        // Restore full set.
        s.set_pathset(None);
        assert_eq!(s.effective_modulus(), 4);
    }

    #[test]
    fn pathset_preserves_mod_equality_invariant() {
        // Two PSNs with equal residues modulo the subset size share a
        // path — the invariant Themis-D's Eq. 3 relies on.
        let mut s = ThemisS::new(8, SprayMode::DirectEgress);
        s.set_pathset(Some(vec![1, 5, 6, 7]));
        let path = |s: &mut ThemisS, psn: u32| {
            let mut p = data(psn, 700);
            s.spray(&mut p).unwrap()
        };
        for psn in 0..16u32 {
            assert_eq!(path(&mut s, psn), path(&mut s, psn + 4));
            assert_ne!(path(&mut s, psn), path(&mut s, psn + 1));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn pathset_size_must_be_power_of_two() {
        let mut s = ThemisS::new(4, SprayMode::DirectEgress);
        s.set_pathset(Some(vec![0, 1, 2]));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn pathset_rejects_duplicates() {
        let mut s = ThemisS::new(4, SprayMode::DirectEgress);
        s.set_pathset(Some(vec![1, 1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pathset_rejects_out_of_range() {
        let mut s = ThemisS::new(4, SprayMode::DirectEgress);
        s.set_pathset(Some(vec![0, 9]));
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(
            ThemisS::new(256, SprayMode::PathMapRewrite).memory_bytes(),
            512
        );
        assert_eq!(ThemisS::new(256, SprayMode::DirectEgress).memory_bytes(), 0);
    }
}
