//! Full Figure 1 reproduction binary.
//!
//! Usage:
//! `cargo run --release -p themis-harness --bin fig1 -- [MB_PER_FLOW] [--jobs N]
//! [--shards N] [--telemetry out.json] [--trace-last N]`
//!
//! Defaults to 25 MB per flow (paper: 100). Prints the Fig 1b and Fig 1c
//! series for the chosen flow (node 0 → node 2) and the Fig 1d NIC-SR vs
//! Ideal throughput comparison. `--jobs N` runs the two transport cells
//! on separate workers and `--shards N` partitions each cell's engine;
//! output is identical for any N of either (see the harness `knobs`
//! docs). `--telemetry` writes the `nic_sr` and `ideal` run snapshots as
//! a versioned JSON report; `--trace-last N` dumps the tail of the event
//! ring to stderr if a run fails to complete (see EXPERIMENTS.md for the
//! contract).

use simcore::time::TimeDelta;
use themis_harness::fig1::{run_fig1_sharded, Fig1Result, Fig1Transport};
use themis_harness::knobs::take_shards_arg;
use themis_harness::report::render_ascii_chart;
use themis_harness::sweep::{take_jobs_arg, SweepRunner};
use themis_harness::telemetry_out::take_telemetry_args;

fn main() {
    let (telem, rest) = take_telemetry_args(std::env::args().skip(1).collect());
    let (jobs, rest) = take_jobs_arg(rest);
    let (shards, rest) = take_shards_arg(rest);
    let mb: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(25);
    let bytes = mb << 20;
    println!("Figure 1 — motivation experiment ({mb} MB per flow; paper: 100 MB)\n");

    let cells = [Fig1Transport::NicSr, Fig1Transport::Ideal];
    let mut results: Vec<Fig1Result> = SweepRunner::new(jobs).run(&cells, |&transport| {
        run_fig1_sharded(transport, bytes, TimeDelta::from_micros(50), 42, shards)
    });
    let ideal = results.pop().expect("two cells");
    let sr = results.pop().expect("two cells");

    let mut report = telemetry::Report::new();
    report.add_run("nic_sr", sr.telemetry.clone());
    report.add_run("ideal", ideal.telemetry.clone());
    telem.write(&report);
    if !(sr.completed && ideal.completed) {
        telem.dump_trace("nic_sr", &sr.telemetry);
        telem.dump_trace("ideal", &ideal.telemetry);
    }
    assert!(sr.completed && ideal.completed);

    println!(
        "{}",
        render_ascii_chart(
            "Fig 1b: retransmission ratio over time (chosen flow 0->2)",
            &sr.retx_ratio_series,
            72,
            10,
        )
    );
    println!(
        "  average spurious-retransmission ratio (all flows): {:.3}  [paper ~0.16]\n",
        sr.avg_retx_ratio
    );
    println!(
        "{}",
        render_ascii_chart(
            "Fig 1c: sending rate over time, Gbps (chosen flow 0->2)",
            &sr.rate_series,
            72,
            10,
        )
    );
    println!(
        "  average sending rate: {:.1} Gbps / 100 Gbps  [paper ~86]\n",
        sr.avg_rate_gbps
    );
    println!("Fig 1d: average per-flow throughput");
    println!(
        "  NIC-SR : {:>6.2} Gbps  [paper 68.09]",
        sr.mean_flow_throughput_gbps
    );
    println!(
        "  Ideal  : {:>6.2} Gbps  [paper 95.43]",
        ideal.mean_flow_throughput_gbps
    );
    println!(
        "  ratio  : {:>6.2}       [paper 0.71]",
        sr.mean_flow_throughput_gbps / ideal.mean_flow_throughput_gbps
    );
}
