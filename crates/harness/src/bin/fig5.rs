//! Full Figure 5 reproduction binary.
//!
//! Usage:
//! `cargo run --release -p themis-harness --bin fig5 [allreduce|alltoall] [MB_PER_GROUP] [--jobs N]`
//!
//! Defaults to Allreduce at 8 MB per group. The paper's full scale is
//! 300 MB per group (expect a long run: ~10⁹ simulator events).
//! `--jobs N` fans the 15 sweep cells over N worker threads; results
//! are identical for any N.

use themis_harness::fig5::{improvement_pct, run_fig5_with, Fig5Config};
use themis_harness::report::{fmt_ms, Table};
use themis_harness::sweep::{take_jobs_arg, SweepRunner};
use themis_harness::{Collective, Scheme};

fn main() {
    let (jobs, rest) = take_jobs_arg(std::env::args().skip(1).collect());
    let mut args = rest.into_iter();
    let collective = match args.next().as_deref() {
        Some("alltoall") => Collective::Alltoall,
        Some("allreduce") | None => Collective::Allreduce,
        Some(other) => {
            eprintln!("unknown collective '{other}' (use allreduce|alltoall)");
            std::process::exit(2);
        }
    };
    let mb: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let bytes = mb << 20;

    let figure = match collective {
        Collective::Allreduce => "5a",
        _ => "5b",
    };
    println!(
        "Figure {figure} — {} tail completion time ({mb} MB per group; paper: 300 MB)",
        collective.label()
    );
    println!("16x16 leaf-spine @400 Gbps, 16 groups x 16 NICs ({jobs} worker(s))\n");

    let cfg = Fig5Config::paper(collective, bytes, 1);
    let points = run_fig5_with(&cfg, SweepRunner::new(jobs));

    let mut table = Table::new(
        format!(
            "{} tail CT (ms) per DCQCN (T_I, T_D) us",
            collective.label()
        ),
        &["(TI,TD)", "ECMP", "AR", "Themis", "Themis vs AR"],
    );
    let mut improvements = Vec::new();
    for chunk in points.chunks(3) {
        let find = |s: Scheme| chunk.iter().find(|p| p.scheme == s).expect("present");
        let (ecmp, ar, th) = (
            find(Scheme::Ecmp),
            find(Scheme::AdaptiveRouting),
            find(Scheme::Themis),
        );
        let vs = match (th.tail_ct, ar.tail_ct) {
            (Some(t), Some(a)) => {
                let pct = improvement_pct(t, a);
                improvements.push(pct);
                format!("{pct:+.1}%")
            }
            _ => "-".into(),
        };
        table.row(&[
            format!("({},{})", ecmp.ti_us, ecmp.td_us),
            fmt_ms(ecmp.tail_ct),
            fmt_ms(ar.tail_ct),
            fmt_ms(th.tail_ct),
            vs,
        ]);
    }
    table.print();
    if let (Some(min), Some(max)) = (
        improvements.iter().copied().reduce(f64::min),
        improvements.iter().copied().reduce(f64::max),
    ) {
        let paper = match collective {
            Collective::Allreduce => "15.6%..75.3%",
            _ => "11.5%..40.7%",
        };
        println!("\nThemis vs AR improvement range: {min:.1}%..{max:.1}%  [paper: {paper}]");
    }
}
