//! Full Figure 5 reproduction binary, extended to the whole scheme zoo.
//!
//! Usage:
//! `cargo run --release -p themis-harness --bin fig5 -- [allreduce|alltoall] [MB_PER_GROUP]
//! [--scheme LIST] [--fat-tree] [--jobs N] [--shards N] [--telemetry out.json]
//! [--trace-last N]`
//!
//! Defaults to Allreduce at 8 MB per group over the paper's three
//! schemes (ECMP, AR, Themis). The paper's full scale is 300 MB per
//! group (expect a long run: ~10⁹ simulator events).
//!
//! `--scheme LIST` takes a comma-separated list of scheme names
//! (`ecmp|adaptive|spray|flowlet|themis|oracle|reps|eunomia|sprinklers|...`,
//! see SCHEMES.md) or the shorthand `zoo` for the seven-way comparison
//! set. `--fat-tree` swaps the 16×16 leaf-spine collective for the k=16
//! fat-tree (1024 hosts) inter-pod ring workload, where `MB_PER_GROUP`
//! becomes MB per ring (default 1) and the DCQCN sweep axis collapses
//! to a single column per scheme.
//!
//! `--jobs N` fans sweep cells over N worker threads and `--shards N`
//! partitions each cell's engine; results are identical for any N of
//! either (the two compose, see the harness `knobs` docs).
//! `--telemetry` writes one run snapshot per sweep cell, labelled
//! `ti<TI>_td<TD>/<scheme>` (leaf-spine) or `fattree_k16/<scheme>`;
//! `--trace-last N` dumps the event-ring tail of every cell that failed
//! to complete.

use themis_harness::fig5::{
    improvement_pct, run_fig5_fat_tree, run_fig5_with, FatTreeLegConfig, Fig5Config,
};
use themis_harness::knobs::take_shards_arg;
use themis_harness::report::{fmt_ms, Table};
use themis_harness::sweep::{take_jobs_arg, SweepRunner};
use themis_harness::telemetry_out::take_telemetry_args;
use themis_harness::{Collective, Scheme};

/// Extract `--scheme LIST` (comma-separated names, or `zoo`/`all` for
/// the full comparison set) from `args`. Defaults to the paper's three
/// Figure-5 schemes.
fn take_scheme_arg(args: Vec<String>) -> (Vec<Scheme>, Vec<String>) {
    let mut schemes: Option<Vec<Scheme>> = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--scheme" || a == "--schemes" {
            let list = it.next().unwrap_or_else(|| {
                eprintln!("--scheme needs a comma-separated list (or 'zoo')");
                std::process::exit(2);
            });
            let mut parsed = Vec::new();
            for tok in list.split(',').filter(|t| !t.is_empty()) {
                if tok.eq_ignore_ascii_case("zoo") || tok.eq_ignore_ascii_case("all") {
                    parsed.extend_from_slice(&Scheme::ZOO);
                    continue;
                }
                match Scheme::parse(tok) {
                    Some(s) => parsed.push(s),
                    None => {
                        eprintln!("unknown scheme '{tok}' (see SCHEMES.md; try 'zoo')");
                        std::process::exit(2);
                    }
                }
            }
            parsed.dedup();
            schemes = Some(parsed);
        } else {
            rest.push(a);
        }
    }
    (schemes.unwrap_or_else(|| Scheme::PAPER_FIG5.to_vec()), rest)
}

/// Extract a bare boolean flag from `args`.
fn take_flag(args: Vec<String>, flag: &str) -> (bool, Vec<String>) {
    let had = args.iter().any(|a| a == flag);
    (had, args.into_iter().filter(|a| a != flag).collect())
}

fn main() {
    let (telem, rest) = take_telemetry_args(std::env::args().skip(1).collect());
    let (jobs, rest) = take_jobs_arg(rest);
    let (shards, rest) = take_shards_arg(rest);
    let (schemes, rest) = take_scheme_arg(rest);
    let (fat_tree, rest) = take_flag(rest, "--fat-tree");
    if schemes.is_empty() {
        eprintln!("--scheme list resolved to no schemes");
        std::process::exit(2);
    }

    if fat_tree {
        // The fat-tree leg runs rings, so a collective token (if any)
        // is accepted and ignored; the first numeric positional is MB
        // per ring.
        let mb = rest.iter().find_map(|s| s.parse::<u64>().ok()).unwrap_or(1);
        run_fat_tree_leg(&schemes, mb, shards, jobs, &telem);
        return;
    }

    let mut args = rest.into_iter();
    let collective = match args.next().as_deref() {
        Some("alltoall") => Collective::Alltoall,
        Some("allreduce") | None => Collective::Allreduce,
        Some(other) => {
            eprintln!("unknown collective '{other}' (use allreduce|alltoall)");
            std::process::exit(2);
        }
    };

    let mb: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let bytes = mb << 20;

    let figure = match collective {
        Collective::Allreduce => "5a",
        _ => "5b",
    };
    println!(
        "Figure {figure} — {} tail completion time ({mb} MB per group; paper: 300 MB)",
        collective.label()
    );
    println!("16x16 leaf-spine @400 Gbps, 16 groups x 16 NICs ({jobs} worker(s))\n");

    let mut cfg = Fig5Config::paper(collective, bytes, 1);
    cfg.schemes = schemes.clone();
    cfg.shards = shards;
    let points = run_fig5_with(&cfg, SweepRunner::new(jobs));

    if telem.active() {
        let mut report = telemetry::Report::new();
        for p in &points {
            let label = format!("ti{}_td{}/{}", p.ti_us, p.td_us, p.scheme.label());
            report.add_run(&label, p.result.telemetry.clone());
            if p.tail_ct.is_none() {
                telem.dump_trace(&label, &p.result.telemetry);
            }
        }
        telem.write(&report);
    }

    let compare = schemes.contains(&Scheme::Themis) && schemes.contains(&Scheme::AdaptiveRouting);
    let mut headers: Vec<String> = vec!["(TI,TD)".into()];
    headers.extend(schemes.iter().map(|s| s.label().to_string()));
    if compare {
        headers.push("Themis vs AR".into());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "{} tail CT (ms) per DCQCN (T_I, T_D) us",
            collective.label()
        ),
        &header_refs,
    );
    let mut improvements = Vec::new();
    for chunk in points.chunks(schemes.len()) {
        let mut row = vec![format!("({},{})", chunk[0].ti_us, chunk[0].td_us)];
        row.extend(chunk.iter().map(|p| fmt_ms(p.tail_ct)));
        if compare {
            let find = |s: Scheme| chunk.iter().find(|p| p.scheme == s).expect("present");
            let vs = match (
                find(Scheme::Themis).tail_ct,
                find(Scheme::AdaptiveRouting).tail_ct,
            ) {
                (Some(t), Some(a)) => {
                    let pct = improvement_pct(t, a);
                    improvements.push(pct);
                    format!("{pct:+.1}%")
                }
                _ => "-".into(),
            };
            row.push(vs);
        }
        table.row(&row);
    }
    table.print();
    if let (Some(min), Some(max)) = (
        improvements.iter().copied().reduce(f64::min),
        improvements.iter().copied().reduce(f64::max),
    ) {
        let paper = match collective {
            Collective::Allreduce => "15.6%..75.3%",
            _ => "11.5%..40.7%",
        };
        println!("\nThemis vs AR improvement range: {min:.1}%..{max:.1}%  [paper: {paper}]");
    }
}

/// The `--fat-tree` leg: k=16 fat-tree (1024 hosts), concurrent
/// inter-pod rings, one row per scheme.
fn run_fat_tree_leg(
    schemes: &[Scheme],
    mb_per_ring: u64,
    shards: usize,
    jobs: usize,
    telem: &themis_harness::telemetry_out::TelemetryArgs,
) {
    let mut cfg = FatTreeLegConfig::k16(mb_per_ring << 20, 1);
    cfg.shards = shards;
    println!("Cross-scheme fat-tree leg — inter-pod ring tail CT ({mb_per_ring} MB per ring)");
    println!(
        "k={} fat-tree, {} hosts, {} concurrent rings ({jobs} worker(s))\n",
        cfg.k,
        cfg.k * cfg.k * cfg.k / 4,
        cfg.groups
    );
    let points = run_fig5_fat_tree(&cfg, schemes, SweepRunner::new(jobs));

    if telem.active() {
        let mut report = telemetry::Report::new();
        for p in &points {
            let label = format!("fattree_k{}/{}", cfg.k, p.scheme.label());
            report.add_run(&label, p.result.telemetry.clone());
            if p.tail_ct.is_none() {
                telem.dump_trace(&label, &p.result.telemetry);
            }
        }
        telem.write(&report);
    }

    let mut table = Table::new(
        format!("k={} fat-tree ring tail CT (ms)", cfg.k),
        &["Scheme", "tail CT", "delivered MB"],
    );
    for p in &points {
        table.row(&[
            p.scheme.label().to_string(),
            fmt_ms(p.tail_ct),
            format!("{}", p.result.nics.bytes_delivered >> 20),
        ]);
    }
    table.print();
}
