//! Full Figure 5 reproduction binary.
//!
//! Usage:
//! `cargo run --release -p themis-harness --bin fig5 -- [allreduce|alltoall] [MB_PER_GROUP]
//! [--jobs N] [--shards N] [--telemetry out.json] [--trace-last N]`
//!
//! Defaults to Allreduce at 8 MB per group. The paper's full scale is
//! 300 MB per group (expect a long run: ~10⁹ simulator events).
//! `--jobs N` fans the 15 sweep cells over N worker threads and
//! `--shards N` partitions each cell's engine; results are identical
//! for any N of either (the two compose, see the harness `knobs` docs).
//! `--telemetry` writes one run snapshot per sweep cell, labelled
//! `ti<TI>_td<TD>/<scheme>`; `--trace-last N` dumps the event-ring tail
//! of every cell that failed to complete.

use themis_harness::fig5::{improvement_pct, run_fig5_with, Fig5Config};
use themis_harness::knobs::take_shards_arg;
use themis_harness::report::{fmt_ms, Table};
use themis_harness::sweep::{take_jobs_arg, SweepRunner};
use themis_harness::telemetry_out::take_telemetry_args;
use themis_harness::{Collective, Scheme};

fn main() {
    let (telem, rest) = take_telemetry_args(std::env::args().skip(1).collect());
    let (jobs, rest) = take_jobs_arg(rest);
    let (shards, rest) = take_shards_arg(rest);
    let mut args = rest.into_iter();
    let collective = match args.next().as_deref() {
        Some("alltoall") => Collective::Alltoall,
        Some("allreduce") | None => Collective::Allreduce,
        Some(other) => {
            eprintln!("unknown collective '{other}' (use allreduce|alltoall)");
            std::process::exit(2);
        }
    };
    let mb: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let bytes = mb << 20;

    let figure = match collective {
        Collective::Allreduce => "5a",
        _ => "5b",
    };
    println!(
        "Figure {figure} — {} tail completion time ({mb} MB per group; paper: 300 MB)",
        collective.label()
    );
    println!("16x16 leaf-spine @400 Gbps, 16 groups x 16 NICs ({jobs} worker(s))\n");

    let mut cfg = Fig5Config::paper(collective, bytes, 1);
    cfg.shards = shards;
    let points = run_fig5_with(&cfg, SweepRunner::new(jobs));

    if telem.active() {
        let mut report = telemetry::Report::new();
        for p in &points {
            let label = format!("ti{}_td{}/{}", p.ti_us, p.td_us, p.scheme.label());
            report.add_run(&label, p.result.telemetry.clone());
            if p.tail_ct.is_none() {
                telem.dump_trace(&label, &p.result.telemetry);
            }
        }
        telem.write(&report);
    }

    let mut table = Table::new(
        format!(
            "{} tail CT (ms) per DCQCN (T_I, T_D) us",
            collective.label()
        ),
        &["(TI,TD)", "ECMP", "AR", "Themis", "Themis vs AR"],
    );
    let mut improvements = Vec::new();
    for chunk in points.chunks(3) {
        let find = |s: Scheme| chunk.iter().find(|p| p.scheme == s).expect("present");
        let (ecmp, ar, th) = (
            find(Scheme::Ecmp),
            find(Scheme::AdaptiveRouting),
            find(Scheme::Themis),
        );
        let vs = match (th.tail_ct, ar.tail_ct) {
            (Some(t), Some(a)) => {
                let pct = improvement_pct(t, a);
                improvements.push(pct);
                format!("{pct:+.1}%")
            }
            _ => "-".into(),
        };
        table.row(&[
            format!("({},{})", ecmp.ti_us, ecmp.td_us),
            fmt_ms(ecmp.tail_ct),
            fmt_ms(ar.tail_ct),
            fmt_ms(th.tail_ct),
            vs,
        ]);
    }
    table.print();
    if let (Some(min), Some(max)) = (
        improvements.iter().copied().reduce(f64::min),
        improvements.iter().copied().reduce(f64::max),
    ) {
        let paper = match collective {
            Collective::Allreduce => "15.6%..75.3%",
            _ => "11.5%..40.7%",
        };
        println!("\nThemis vs AR improvement range: {min:.1}%..{max:.1}%  [paper: {paper}]");
    }
}
