//! `themis_fuzz` — scenario fuzzer for the protocol-invariant oracle.
//!
//! Samples random fault plans and traffic mixes from a root seed, runs
//! each under the conformance oracle, and on failure greedily shrinks the
//! fault plan to a minimal reproducer before printing it.
//!
//! ```text
//! USAGE:
//!   themis_fuzz [OPTIONS]               fuzz --budget cases from --seed
//!   themis_fuzz --only K [OPTIONS]      re-run (only) case K — repro mode
//!   themis_fuzz --plan FILE [OPTIONS]   run one case with a fault plan
//!                                       parsed from FILE (shrinker output)
//!
//! OPTIONS:
//!   --seed N          root seed; case K derives everything from
//!                     substream(seed, K)                        [3405705229]
//!   --budget N        number of fuzz cases                      [300]
//!   --scheme S        scheme under test: themis | themis-pathmap |
//!                     themis-nocomp | spray-nofilter | ecmp | ar |
//!                     spray | flowlet                           [themis]
//!   --collective C    pin the collective (default: sampled per case)
//!   --kb N            pin the per-group buffer in KB (default: sampled
//!                     64..=512 per case)
//!   --max-episodes N  fault episodes per sampled plan            [5]
//!   --shards N        engine shards per case (THEMIS_SHARDS); cases
//!                     are bit-identical for any value           [1]
//!   --trace-last N    on failure, dump the last N telemetry events
//!   --keep-going      do not stop at the first failing case
//! ```
//!
//! Every case is bit-reproducible: `--seed S --only K` replays case K
//! exactly, and the printed minimal plan can be fed back via `--plan`.
//!
//! Exit status: 0 when every case is conformant, 1 otherwise.

use simcore::rng::Xoshiro256;
use simcore::time::Nanos;
use themis_harness::faults::{FaultEvent, FaultPlan, FaultSpace};
use themis_harness::oracle::{self, OracleConfig, Violation};
use themis_harness::{
    expected_delivered_bytes, planned_transfers, run_collective_with_faults, Collective,
    ExperimentConfig, ExperimentResult, Scheme, TelemetryArgs,
};

/// Default root seed: explores ≥ 200 distinct plans with zero violations
/// (pinned by the CI smoke stage).
const DEFAULT_SEED: u64 = 0xCAFE_F00D;

/// Collectives a case may draw (everything the runner supports).
const MENU: [Collective; 6] = [
    Collective::Allreduce,
    Collective::Alltoall,
    Collective::AllGather,
    Collective::ReduceScatter,
    Collective::RingOnce,
    Collective::Incast,
];

/// Minimal flag parser (same idiom as `themis_sim`).
struct Args {
    kv: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Args {
    fn parse() -> Args {
        let rest: Vec<String> = std::env::args().skip(1).collect();
        let mut kv = std::collections::HashMap::new();
        let mut flags = std::collections::HashSet::new();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i].trim_start_matches("--").to_string();
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                kv.insert(key, rest[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key);
                i += 1;
            }
        }
        Args { kv, flags }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.kv
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, key: &str) -> bool {
        self.flags.contains(key)
    }
}

fn parse_scheme(s: &str) -> Scheme {
    match s {
        "ecmp" => Scheme::Ecmp,
        "ar" | "adaptive" => Scheme::AdaptiveRouting,
        "spray" | "random" => Scheme::RandomSpray,
        "flowlet" => Scheme::Flowlet,
        "themis" => Scheme::Themis,
        "themis-pathmap" => Scheme::ThemisPathMap,
        "themis-nocomp" => Scheme::ThemisNoCompensation,
        "spray-nofilter" => Scheme::SprayNoFilter,
        other => {
            eprintln!("unknown scheme '{other}'");
            std::process::exit(2);
        }
    }
}

fn parse_collective(s: &str) -> Collective {
    match s {
        "allreduce" => Collective::Allreduce,
        "alltoall" => Collective::Alltoall,
        "allgather" => Collective::AllGather,
        "reducescatter" => Collective::ReduceScatter,
        "ring" => Collective::RingOnce,
        "incast" => Collective::Incast,
        other => {
            eprintln!("unknown collective '{other}'");
            std::process::exit(2);
        }
    }
}

/// Everything one fuzz case needs to run (and re-run, for shrinking).
struct Case {
    cfg: ExperimentConfig,
    collective: Collective,
    bytes: u64,
    plan: FaultPlan,
    /// The scheme the *oracle* judges against. Normally the run scheme;
    /// the `THEMIS_FUZZ_BREAK` hook decouples them (see `main`).
    judge_scheme: Scheme,
}

impl Case {
    /// Derive case `k` of `root_seed` — same (seed, k) ⇒ same case.
    fn derive(root_seed: u64, k: u64, args: &Args, run_scheme: Scheme, judge: Scheme) -> Case {
        let mut rng = Xoshiro256::substream(root_seed, k);
        let collective = match args.kv.get("collective") {
            Some(c) => parse_collective(c),
            None => MENU[rng.next_below(MENU.len() as u64) as usize],
        };
        let kb = match args.kv.get("kb") {
            Some(v) => v.parse().unwrap_or(256),
            None => rng.next_range(64, 513),
        };
        let bytes = kb << 10;
        let mut cfg = ExperimentConfig::motivation_small(run_scheme, rng.next_u64());
        cfg.shards = args.get("shards", cfg.shards);
        let space = FaultSpace {
            n_leaves: cfg.fabric.n_leaves,
            n_uplinks: cfg.fabric.n_spines,
            // The motivation workload finishes within a few hundred µs;
            // episodes landing later are harmless no-ops.
            horizon: Nanos::from_micros(500),
            max_episodes: args.get("max-episodes", 5usize),
            targets: planned_transfers(&cfg, collective, bytes)
                .into_iter()
                .map(|(qp, n_psn)| (qp.0, n_psn))
                .collect(),
        };
        let plan = FaultPlan::sample(&mut rng, &space);
        Case {
            cfg,
            collective,
            bytes,
            plan,
            judge_scheme: judge,
        }
    }

    /// Oracle expectations for `plan` under this case's scheme.
    fn oracle_config(&self, plan: &FaultPlan, quiesced: bool) -> OracleConfig {
        let mut o = OracleConfig::for_scheme(self.judge_scheme).with_expected_bytes(
            expected_delivered_bytes(&self.cfg, self.collective, self.bytes),
        );
        o.quiesced = quiesced;
        if plan.has_random_loss() || plan.drops_control() {
            // Lost ACKs/handshakes legitimately leave the RTO as the only
            // backstop; only deterministic-loss plans pin the bound.
            o = o.without_rto_bound();
        }
        o
    }

    /// Run with `plan` substituted and report (result, violations).
    fn run(&self, plan: &FaultPlan) -> (ExperimentResult, Vec<Violation>) {
        let (result, cluster) =
            run_collective_with_faults(&self.cfg, self.collective, self.bytes, plan);
        let quiesced = result.sim_end < self.cfg.horizon;
        let violations = oracle::check(&cluster, &self.oracle_config(plan, quiesced));
        (result, violations)
    }
}

/// Shrink a failing fault plan to 1-minimality with the shared
/// [`themis_harness::ddmin`] helper: drop ever-smaller chunks of the
/// event list while the oracle still reports *some* violation. Returns
/// the shrunk plan and how many re-runs it took.
fn shrink(case: &Case, plan: &FaultPlan) -> (FaultPlan, usize) {
    let (events, runs) = themis_harness::ddmin(&plan.events, |events: &[FaultEvent]| {
        let candidate = FaultPlan {
            events: events.to_vec(),
        };
        !case.run(&candidate).1.is_empty()
    });
    (FaultPlan { events }, runs)
}

fn report_failure(
    case: &Case,
    k: u64,
    root_seed: u64,
    result: &ExperimentResult,
    violations: &[Violation],
    trace_last: Option<usize>,
) {
    eprintln!("\n=== FAILURE: case {k} (seed {root_seed}) ===");
    eprintln!(
        "scheme {} collective {} bytes {} plan: {} event(s)",
        case.cfg.scheme.label(),
        case.collective.label(),
        case.bytes,
        case.plan.len()
    );
    for v in violations {
        eprintln!("  violation {v}");
    }
    let (shrunk, runs) = shrink(case, &case.plan);
    let (_, shrunk_violations) = case.run(&shrunk);
    eprintln!(
        "minimal fault plan ({} of {} event(s), {} shrink run(s)):",
        shrunk.len(),
        case.plan.len(),
        runs
    );
    eprint!("{}", shrunk.to_text());
    eprintln!("violations under the minimal plan:");
    for v in &shrunk_violations {
        eprintln!("  {v}");
    }
    eprintln!("repro: themis_fuzz --seed {root_seed} --only {k}");
    if let Some(n) = trace_last {
        let t = TelemetryArgs {
            out: None,
            trace_last: Some(n),
        };
        t.dump_trace(&format!("fuzz-case-{k}"), &result.telemetry);
    }
}

fn main() {
    let args = Args::parse();
    let root_seed = args.get("seed", DEFAULT_SEED);
    let budget = args.get("budget", 300u64);
    let scheme = parse_scheme(&args.kv.get("scheme").map_or("themis", |s| s.as_str()));
    let trace_last: Option<usize> = args.kv.get("trace-last").and_then(|s| s.parse().ok());

    // Fault-seeded builds for the acceptance demo: the run uses a
    // deliberately weakened scheme while the oracle still judges against
    // the nominal one, so the weakness must surface as a violation.
    let run_scheme = match std::env::var("THEMIS_FUZZ_BREAK").as_deref() {
        Ok("nocomp") => Scheme::ThemisNoCompensation,
        Ok("nofilter") => Scheme::SprayNoFilter,
        _ => scheme,
    };

    // Single-case mode with an explicit plan file (shrinker output).
    if let Some(path) = args.kv.get("plan") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let plan = FaultPlan::from_text(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        });
        let k = args.get("only", 0u64);
        let mut case = Case::derive(root_seed, k, &args, run_scheme, scheme);
        case.plan = plan;
        let (result, violations) = case.run(&case.plan);
        if violations.is_empty() {
            println!(
                "plan {path}: conformant (sim end {} ns, {} events)",
                result.sim_end.as_nanos(),
                result.events
            );
        } else {
            report_failure(&case, k, root_seed, &result, &violations, trace_last);
            std::process::exit(1);
        }
        return;
    }

    let wall = std::time::Instant::now();
    let (first, last) = match args.kv.get("only") {
        Some(k) => {
            let k: u64 = k.parse().unwrap_or(0);
            (k, k + 1)
        }
        None => (0, budget),
    };
    let mut distinct = std::collections::HashSet::new();
    let mut failures = 0u64;
    let mut cases = 0u64;
    for k in first..last {
        let case = Case::derive(root_seed, k, &args, run_scheme, scheme);
        distinct.insert(case.plan.to_text());
        cases += 1;
        let (result, violations) = case.run(&case.plan);
        if !violations.is_empty() {
            failures += 1;
            report_failure(&case, k, root_seed, &result, &violations, trace_last);
            if !args.has("keep-going") {
                break;
            }
        }
    }
    println!(
        "themis_fuzz: {cases} case(s), {} distinct fault plan(s), {failures} failing, \
         {:.1}s wall",
        distinct.len(),
        wall.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
