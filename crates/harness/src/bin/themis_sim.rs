//! `themis-sim` — run custom Themis experiments from the command line.
//!
//! ```text
//! USAGE:
//!   themis_sim collective [OPTIONS]     run a collective on a leaf-spine fabric
//!   themis_sim p2p        [OPTIONS]     run one cross-rack flow
//!   themis_sim sweep      [OPTIONS]     scheme x DCQCN sweep (fig5-style)
//!   themis_sim memory     [OPTIONS]     evaluate the §4 memory model
//!
//! COMMON OPTIONS:
//!   --scheme S        ecmp | ar | spray | flowlet | themis | themis-pathmap |
//!                     themis-nocomp | spray-nofilter        [themis]
//!   --collective C    allreduce | alltoall | allgather | reducescatter |
//!                     ring | incast                         [allreduce]
//!   --mb N            buffer MB per group (or per flow for p2p) [4]
//!   --fabric F        paper | motivation                    [paper]
//!   --leaves N --hosts N --spines N    custom fabric dimensions
//!   --gbps N          link rate in Gbit/s (custom fabric)   [100]
//!   --ti US --td US   DCQCN rate-increase timer / decrease interval
//!   --transport T     sr | gbn | ideal                      [sr]
//!   --seed N          root seed                             [1]
//!   --pfc             enable hop-by-hop PFC
//!   --jobs N          sweep worker threads (sweep command)  [$THEMIS_JOBS or 1]
//!   --shards N        engine shards per run; bit-identical results
//!                     for any value                         [$THEMIS_SHARDS or 1]
//!   --telemetry PATH  write the versioned themis-telemetry JSON report
//!   --trace-last N    on an incomplete run, dump the last N structured
//!                     events to stderr
//! ```
//!
//! Examples:
//! ```text
//! themis_sim collective --collective alltoall --scheme ar --mb 8 --ti 10 --td 50
//! themis_sim p2p --fabric motivation --scheme spray-nofilter --mb 16
//! themis_sim sweep --collective allreduce --mb 2
//! themis_sim memory --paths 256 --qps 100 --nics 16
//! ```

use netsim::switch::PfcConfig;
use netsim::topology::LeafSpineConfig;
use rnic::{CcConfig, NicConfig, TransportMode};
use simcore::time::{Nanos, TimeDelta};
use themis_core::memory::MemoryModel;
use themis_harness::fig5::improvement_pct;
use themis_harness::report::{fmt_ms, Table};
use themis_harness::sweep::SweepRunner;
use themis_harness::{
    run_collective, run_point_to_point, Collective, ExperimentConfig, ExperimentResult, Scheme,
    TelemetryArgs,
};

/// Minimal flag parser: `--key value` pairs plus boolean switches.
struct Args {
    cmd: String,
    kv: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Args {
    fn parse() -> Args {
        let mut it = std::env::args().skip(1);
        let cmd = it.next().unwrap_or_else(|| "help".into());
        let mut kv = std::collections::HashMap::new();
        let mut flags = std::collections::HashSet::new();
        let rest: Vec<String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i].trim_start_matches("--").to_string();
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                kv.insert(key, rest[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key);
                i += 1;
            }
        }
        Args { cmd, kv, flags }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.kv
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn str(&self, key: &str, default: &str) -> String {
        self.kv.get(key).cloned().unwrap_or_else(|| default.into())
    }

    fn has(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    fn telemetry(&self) -> TelemetryArgs {
        TelemetryArgs {
            out: self.kv.get("telemetry").cloned(),
            trace_last: self.kv.get("trace-last").and_then(|s| s.parse().ok()),
        }
    }
}

/// Write a single-run telemetry report and, on an incomplete run, dump
/// the event-ring tail — shared by `collective` and `p2p`.
fn emit_telemetry(telem: &TelemetryArgs, label: &str, r: &ExperimentResult) {
    if !telem.active() {
        return;
    }
    let mut report = telemetry::Report::new();
    report.add_run(label, r.telemetry.clone());
    telem.write(&report);
    if r.tail_ct.is_none() {
        telem.dump_trace(label, &r.telemetry);
    }
}

fn parse_scheme(s: &str) -> Scheme {
    Scheme::parse(s).unwrap_or_else(|| {
        eprintln!("unknown scheme '{s}' (see SCHEMES.md)");
        std::process::exit(2);
    })
}

fn parse_collective(s: &str) -> Collective {
    match s {
        "allreduce" => Collective::Allreduce,
        "alltoall" => Collective::Alltoall,
        "allgather" => Collective::AllGather,
        "reducescatter" => Collective::ReduceScatter,
        "ring" => Collective::RingOnce,
        "incast" => Collective::Incast,
        other => {
            eprintln!("unknown collective '{other}'");
            std::process::exit(2);
        }
    }
}

fn build_config(args: &Args) -> ExperimentConfig {
    let scheme = parse_scheme(&args.str("scheme", "themis"));
    let seed = args.get("seed", 1u64);

    let mut fabric = match args.str("fabric", "paper").as_str() {
        "paper" => LeafSpineConfig::paper_eval(),
        "motivation" => LeafSpineConfig::motivation(),
        other => {
            eprintln!(
                "unknown fabric '{other}' (use paper|motivation or --leaves/--hosts/--spines)"
            );
            std::process::exit(2);
        }
    };
    if args.kv.contains_key("leaves")
        || args.kv.contains_key("hosts")
        || args.kv.contains_key("spines")
    {
        let gbps = args.get("gbps", 100u64);
        fabric = LeafSpineConfig {
            n_leaves: args.get("leaves", 4usize),
            hosts_per_leaf: args.get("hosts", 2usize),
            n_spines: args.get("spines", 2usize),
            host_link: netsim::port::LinkSpec::gbps(gbps, 1),
            fabric_link: netsim::port::LinkSpec::gbps(gbps, 1),
            ..LeafSpineConfig::motivation()
        };
    }
    fabric.seed = seed;
    if args.has("pfc") {
        fabric.pfc = Some(PfcConfig::for_buffer(fabric.buffer_bytes));
    }

    let line = fabric.host_link.bandwidth_bps;
    let mut nic = match args.str("transport", "sr").as_str() {
        "sr" => NicConfig::nic_sr(line),
        "gbn" => NicConfig {
            transport: TransportMode::GoBackN,
            ..NicConfig::nic_sr(line)
        },
        "ideal" => NicConfig::ideal(line),
        other => {
            eprintln!("unknown transport '{other}'");
            std::process::exit(2);
        }
    };
    if args.kv.contains_key("ti") || args.kv.contains_key("td") {
        nic.cc = CcConfig::with_ti_td(line, args.get("ti", 900u64), args.get("td", 4u64));
    }

    ExperimentConfig {
        fabric,
        nic,
        scheme,
        seed,
        horizon: Nanos::from_secs(args.get("horizon-s", 10u64)),
        shards: args.get("shards", themis_harness::knobs::shards_from_env()),
    }
}

fn print_result(r: &ExperimentResult, wall: std::time::Duration) {
    println!("scheme            : {}", r.scheme.label());
    match r.tail_ct {
        Some(ct) => println!("completion (tail) : {} ms", fmt_ms(Some(ct))),
        None => println!("completion (tail) : DID NOT FINISH before the horizon"),
    }
    println!(
        "goodput           : {:.1} Gbps aggregate",
        r.aggregate_goodput_gbps()
    );
    println!(
        "data packets      : {} (+{} retransmitted, ratio {:.4})",
        r.nics.data_packets,
        r.nics.retx_packets,
        r.nics.retx_ratio()
    );
    println!(
        "ooo / nacks@recv  : {} / {}   nacks@sender: {}   rto: {}",
        r.nics.ooo_packets, r.nics.nacks_sent, r.nics.nacks_received, r.nics.rto_fires
    );
    println!(
        "themis            : {} sprayed, {} blocked, {} valid fwd, {} compensated",
        r.themis.sprayed,
        r.themis.nacks_blocked,
        r.themis.nacks_forwarded_valid,
        r.themis.compensations
    );
    println!(
        "fabric            : {} drops, {} ECN marks, peak buffer {} KB",
        r.fabric.total_drops(),
        r.fabric.ecn_marked,
        r.fabric.peak_buffer_bytes / 1024
    );
    if let (Some(p50), Some(p99)) = (r.msg_latency_p50, r.msg_latency_p99) {
        println!(
            "msg latency       : p50 {:.1} us, p99 {:.1} us",
            p50.as_micros_f64(),
            p99.as_micros_f64()
        );
    }
    println!(
        "simulator         : {} events in {:.2}s wall ({:.1} M events/s)",
        r.events,
        wall.as_secs_f64(),
        r.events as f64 / wall.as_secs_f64().max(1e-9) / 1e6
    );
}

fn main() {
    let args = Args::parse();
    match args.cmd.as_str() {
        "collective" => {
            let cfg = build_config(&args);
            let collective = parse_collective(&args.str("collective", "allreduce"));
            let bytes = args.get("mb", 4u64) << 20;
            println!(
                "{} of {} MB per group on {} leaves x {} hosts, {} spines, scheme {}\n",
                collective.label(),
                bytes >> 20,
                cfg.fabric.n_leaves,
                cfg.fabric.hosts_per_leaf,
                cfg.fabric.n_spines,
                cfg.scheme.label()
            );
            let t0 = std::time::Instant::now();
            let r = run_collective(&cfg, collective, bytes);
            if args.has("csv") {
                println!("{}", ExperimentResult::csv_header());
                println!("{}", r.to_csv_row());
            } else {
                print_result(&r, t0.elapsed());
            }
            emit_telemetry(&args.telemetry(), "collective", &r);
        }
        "p2p" => {
            let cfg = build_config(&args);
            let bytes = args.get("mb", 4u64) << 20;
            println!(
                "point-to-point {} MB, scheme {}\n",
                bytes >> 20,
                cfg.scheme.label()
            );
            let t0 = std::time::Instant::now();
            let r = run_point_to_point(&cfg, bytes);
            if args.has("csv") {
                println!("{}", ExperimentResult::csv_header());
                println!("{}", r.to_csv_row());
            } else {
                print_result(&r, t0.elapsed());
            }
            emit_telemetry(&args.telemetry(), "p2p", &r);
        }
        "sweep" => {
            let collective = parse_collective(&args.str("collective", "allreduce"));
            let bytes = args.get("mb", 2u64) << 20;
            let seed = args.get("seed", 1u64);
            let jobs = args.get("jobs", SweepRunner::from_env().jobs());
            let mut table = Table::new(
                format!(
                    "{} tail CT (ms), {} MB/group ({jobs} worker(s))",
                    collective.label(),
                    bytes >> 20
                ),
                &["(TI,TD)", "ECMP", "AR", "Themis", "Themis vs AR"],
            );
            const SCHEMES: [Scheme; 3] = [Scheme::Ecmp, Scheme::AdaptiveRouting, Scheme::Themis];
            let cells: Vec<(u64, u64, Scheme)> = CcConfig::paper_sweep()
                .iter()
                .flat_map(|&(ti, td)| SCHEMES.iter().map(move |&s| (ti, td, s)))
                .collect();
            let shards = args.get("shards", themis_harness::knobs::shards_from_env());
            let results = SweepRunner::new(jobs).run(&cells, |&(ti, td, scheme)| {
                let mut cfg = ExperimentConfig::paper_eval(scheme, ti, td, seed);
                cfg.shards = shards;
                run_collective(&cfg, collective, bytes)
            });
            let telem = args.telemetry();
            if telem.active() {
                let mut report = telemetry::Report::new();
                for ((ti, td, scheme), r) in cells.iter().zip(&results) {
                    let label = format!("ti{ti}_td{td}/{}", scheme.label());
                    report.add_run(&label, r.telemetry.clone());
                    if r.tail_ct.is_none() {
                        telem.dump_trace(&label, &r.telemetry);
                    }
                }
                telem.write(&report);
            }
            let cts: Vec<_> = results.iter().map(|r| r.tail_ct).collect();
            for (point, row) in cells.chunks(SCHEMES.len()).zip(cts.chunks(SCHEMES.len())) {
                let (ti, td) = (point[0].0, point[0].1);
                let (e, a, t) = (row[0], row[1], row[2]);
                let vs = match (t, a) {
                    (Some(t), Some(a)) => format!("{:+.1}%", improvement_pct(t, a)),
                    _ => "-".into(),
                };
                table.row(&[format!("({ti},{td})"), fmt_ms(e), fmt_ms(a), fmt_ms(t), vs]);
            }
            table.print();
        }
        "memory" => {
            let m = MemoryModel {
                n_paths: args.get("paths", 256usize),
                bw_bps: args.get("gbps", 400u64) * 1_000_000_000,
                rtt_last: TimeDelta::from_micros(args.get("rtt-us", 2u64)),
                mtu: args.get("mtu", 1500u32),
                f_times_100: args.get("f100", 150u32),
                n_nic: args.get("nics", 16usize),
                n_qp: args.get("qps", 100usize),
            };
            println!("N_entries = {}", m.n_entries());
            println!("M_PathMap = {} B", m.pathmap_bytes());
            println!("M_QP      = {} B", m.per_qp_bytes());
            println!(
                "M_total   = {} B (~{:.0} KB)",
                m.total_bytes(),
                m.total_bytes() as f64 / 1000.0
            );
            println!(
                "          = {:.2}% of 32 MB, {:.2}% of 64 MB switch SRAM",
                m.fraction_of_sram(32 << 20) * 100.0,
                m.fraction_of_sram(64 << 20) * 100.0
            );
        }
        _ => {
            println!("usage: themis_sim <collective|p2p|sweep|memory> [--flags]");
            println!("see the crate docs (src/bin/themis_sim.rs) for the option list");
        }
    }
}
