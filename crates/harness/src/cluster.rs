//! Cluster assembly: fabric + NICs + Themis middleware + driver.

use crate::scheme::Scheme;
use netsim::port::EgressPort;
use netsim::switch::Switch;
use netsim::topology::{build_leaf_spine, FabricPlan, LeafSpineConfig};
use netsim::types::{HostId, NodeId};
use netsim::world::World;
use rnic::{Nic, NicConfig, NicTelem, TransportMode};
use themis_core::{ThemisConfig, ThemisMiddleware, ThemisTelem};

/// Event-ring capacity of every cluster's telemetry sink: large enough
/// to hold the full anomaly tail of a figure run, small enough that the
/// ring stays cache-resident.
pub const EVENT_RING_CAPACITY: usize = 4096;

/// Everything needed to run a workload on a simulated cluster.
pub struct Cluster {
    /// The simulation world (switches + NICs installed, driver reserved).
    pub world: World,
    /// Host attachments, indexed by host id.
    pub hosts: Vec<HostId>,
    /// Leaf (ToR) switch entities.
    pub leaves: Vec<NodeId>,
    /// Spine switch entities.
    pub spines: Vec<NodeId>,
    /// Equal-cost path count.
    pub n_paths: usize,
    /// Reserved entity slot for the workload driver.
    pub driver: NodeId,
    /// The scheme the cluster was built for.
    pub scheme: Scheme,
    /// NIC configuration in force.
    pub nic_cfg: NicConfig,
    /// The telemetry sink every layer of this cluster reports into.
    pub telemetry: telemetry::Sink,
}

impl Cluster {
    /// All switch entity ids.
    pub fn all_switches(&self) -> Vec<NodeId> {
        self.leaves
            .iter()
            .chain(self.spines.iter())
            .copied()
            .collect()
    }

    /// Immutable NIC access.
    pub fn nic(&self, host: HostId) -> &Nic {
        self.world
            .get(NodeId(host.0))
            .expect("NIC installed for every host")
    }

    /// Aggregated Themis middleware stats across all ToRs (zeros when the
    /// scheme has no Themis).
    pub fn themis_stats(&self) -> ThemisAggregate {
        let mut agg = ThemisAggregate::default();
        for &leaf in &self.leaves {
            let Some(sw) = self.world.get::<Switch>(leaf) else {
                continue;
            };
            let Some(hook) = sw.hook() else { continue };
            let Some(m) = hook.as_any().downcast_ref::<ThemisMiddleware>() else {
                continue;
            };
            agg.sprayed += m.s.stats.sprayed;
            if let Some(d) = &m.d {
                agg.nacks_seen += d.stats.nacks_seen;
                agg.nacks_blocked += d.stats.nacks_blocked;
                agg.nacks_forwarded_valid += d.stats.nacks_forwarded_valid;
                agg.nacks_forwarded_unknown += d.stats.nacks_forwarded_unknown;
                agg.compensations += d.stats.compensations;
                agg.compensation_cancels += d.stats.compensation_cancels;
                agg.memory_bytes += m.memory_bytes() as u64;
            }
        }
        agg
    }
}

/// Fabric-wide Themis middleware counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThemisAggregate {
    /// Data packets sprayed by Themis-S instances.
    pub sprayed: u64,
    /// NACKs inspected by Themis-D instances.
    pub nacks_seen: u64,
    /// Invalid NACKs blocked.
    pub nacks_blocked: u64,
    /// Valid NACKs forwarded.
    pub nacks_forwarded_valid: u64,
    /// NACKs forwarded without a tPSN verdict.
    pub nacks_forwarded_unknown: u64,
    /// Compensated NACKs generated.
    pub compensations: u64,
    /// Compensations cancelled (BePSN arrived).
    pub compensation_cancels: u64,
    /// Total live Themis switch memory at run end.
    pub memory_bytes: u64,
}

/// Build a cluster: fabric per `fabric_cfg`, one NIC per host, Themis
/// middleware on every ToR when the scheme calls for it, and a reserved
/// driver slot.
pub fn build_cluster(fabric_cfg: &LeafSpineConfig, nic_cfg: NicConfig, scheme: Scheme) -> Cluster {
    let mut fabric_cfg = fabric_cfg.clone();
    fabric_cfg.lb = scheme.lb_policy();
    // The Ideal transport needs drop notifications from switches.
    fabric_cfg.oracle_loss_notify = nic_cfg.transport == TransportMode::IdealOracle;
    assert_eq!(
        nic_cfg.line_rate_bps, fabric_cfg.host_link.bandwidth_bps,
        "NIC line rate must match the access link"
    );

    let FabricPlan {
        mut world,
        hosts,
        leaves,
        spines,
        n_paths,
    } = build_leaf_spine(&fabric_cfg);

    // Telemetry: one sink per cluster; the engine mirrors its clock into
    // it so every layer stamps observations with simulated time.
    let sink = telemetry::Sink::new(EVENT_RING_CAPACITY);
    world.engine.attach_clock(sink.clock());
    let switch_telem = netsim::telem::SwitchTelem::register(&sink);
    for &sw_id in leaves.iter().chain(spines.iter()) {
        world
            .get_mut::<Switch>(sw_id)
            .expect("switch installed by builder")
            .set_telemetry(switch_telem.clone());
    }

    // Themis middleware on every ToR.
    // Last-hop RTT: 2 × (propagation + one MTU serialization). This is
    // the paper's Table 1 figure (2 µs at 400 Gbps → 100 queue entries).
    // The resulting queue capacity must stay ≤ 127 entries so the 1-byte
    // truncated-PSN serial comparison of §3.3/§4 stays unambiguous.
    let mtu_ser = simcore::time::TimeDelta::serialization(
        nic_cfg.mtu_payload as u64 + 64,
        fabric_cfg.host_link.bandwidth_bps,
    );
    let last_hop_rtt = simcore::time::TimeDelta::from_nanos(
        2 * (fabric_cfg.host_link.latency.as_nanos() + mtu_ser.as_nanos()),
    );
    let base_themis = ThemisConfig::for_fabric(
        n_paths,
        fabric_cfg.host_link.bandwidth_bps,
        last_hop_rtt,
        nic_cfg.mtu_payload,
    );
    assert!(
        base_themis.queue_capacity <= 127,
        "PSN queue capacity {} exceeds the 1-byte serial window",
        base_themis.queue_capacity
    );
    if let Some(themis_cfg) = scheme.themis_config(base_themis) {
        let themis_telem = ThemisTelem::register(&sink);
        for &leaf in &leaves {
            let sw = world
                .get_mut::<Switch>(leaf)
                .expect("leaf installed by builder");
            let mut mw = ThemisMiddleware::new(themis_cfg);
            mw.set_telemetry(themis_telem.clone());
            sw.set_hook(Box::new(mw));
        }
    }

    // NICs.
    let nic_telem = NicTelem::register(&sink);
    for att in &hosts {
        let port = EgressPort::new(att.tor, att.tor_port, att.link);
        let mut nic = Nic::new(att.host, nic_cfg, port);
        nic.set_telemetry(nic_telem.clone());
        world.install(att.node, Box::new(nic));
    }

    let driver = world.reserve();

    Cluster {
        world,
        hosts: hosts.iter().map(|a| a.host).collect(),
        leaves,
        spines,
        n_paths,
        driver,
        scheme,
        nic_cfg,
        telemetry: sink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_motivation_cluster_with_themis() {
        let c = build_cluster(
            &LeafSpineConfig::motivation(),
            NicConfig::nic_sr(100_000_000_000),
            Scheme::Themis,
        );
        assert_eq!(c.hosts.len(), 8);
        assert_eq!(c.n_paths, 2);
        // Every leaf carries a Themis hook.
        for &l in &c.leaves {
            let sw: &Switch = c.world.get(l).unwrap();
            assert!(sw.hook().is_some());
        }
        // Spines carry none.
        for &s in &c.spines {
            let sw: &Switch = c.world.get(s).unwrap();
            assert!(sw.hook().is_none());
        }
        // NICs are installed at NodeId(host).
        for &h in &c.hosts {
            assert!(c.world.get::<Nic>(NodeId(h.0)).is_some());
        }
    }

    #[test]
    fn baseline_cluster_has_no_hooks() {
        let c = build_cluster(
            &LeafSpineConfig::motivation(),
            NicConfig::nic_sr(100_000_000_000),
            Scheme::AdaptiveRouting,
        );
        for &l in &c.leaves {
            let sw: &Switch = c.world.get(l).unwrap();
            assert!(sw.hook().is_none());
            assert_eq!(sw.lb(), netsim::lb::LbPolicy::AdaptiveRouting);
        }
        assert_eq!(c.themis_stats(), ThemisAggregate::default());
    }

    #[test]
    fn ideal_transport_enables_oracle() {
        let c = build_cluster(
            &LeafSpineConfig::motivation(),
            NicConfig::ideal(100_000_000_000),
            Scheme::RandomSpray,
        );
        // Oracle wiring is internal to switches; smoke-check the build.
        assert_eq!(c.hosts.len(), 8);
    }

    #[test]
    #[should_panic(expected = "line rate")]
    fn mismatched_line_rate_rejected() {
        build_cluster(
            &LeafSpineConfig::motivation(),
            NicConfig::nic_sr(400_000_000_000),
            Scheme::Ecmp,
        );
    }
}
