//! Cluster assembly: fabric + NICs + Themis middleware + driver.

use crate::scheme::Scheme;
use netsim::port::EgressPort;
use netsim::switch::Switch;
use netsim::topology::{build_leaf_spine, FabricPlan, LeafSpineConfig};
use netsim::types::{HostId, NodeId};
use netsim::world::{ShardPlan, World, CONTROL_PLANE_LATENCY};
use rnic::{Nic, NicConfig, NicTelem, TransportMode};
use simcore::time::TimeDelta;
use themis_core::{ThemisConfig, ThemisMiddleware, ThemisTelem};

/// Event-ring capacity of every cluster's telemetry sink: large enough
/// to hold the full anomaly tail of a figure run, small enough that the
/// ring stays cache-resident.
pub const EVENT_RING_CAPACITY: usize = 4096;

/// Everything needed to run a workload on a simulated cluster.
pub struct Cluster {
    /// The simulation world (switches + NICs installed, driver reserved).
    pub world: World,
    /// Host attachments, indexed by host id.
    pub hosts: Vec<HostId>,
    /// Leaf (ToR) switch entities.
    pub leaves: Vec<NodeId>,
    /// Spine switch entities.
    pub spines: Vec<NodeId>,
    /// Equal-cost path count.
    pub n_paths: usize,
    /// Reserved entity slot for the workload driver.
    pub driver: NodeId,
    /// The scheme the cluster was built for.
    pub scheme: Scheme,
    /// NIC configuration in force.
    pub nic_cfg: NicConfig,
    /// The telemetry sink of shard 0 (the driver's shard). In a serial
    /// build this is *the* cluster sink; in a sharded build it is where
    /// driver-side instruments report.
    pub telemetry: telemetry::Sink,
    /// One telemetry sink per shard (length 1 for a serial build). Every
    /// sink registers the same instrument names, so
    /// [`Cluster::snapshot_merged`] can fold them into one report.
    pub sinks: Vec<telemetry::Sink>,
}

impl Cluster {
    /// All switch entity ids.
    pub fn all_switches(&self) -> Vec<NodeId> {
        self.leaves
            .iter()
            .chain(self.spines.iter())
            .copied()
            .collect()
    }

    /// Immutable NIC access.
    pub fn nic(&self, host: HostId) -> &Nic {
        self.world
            .get(NodeId(host.0))
            .expect("NIC installed for every host")
    }

    /// Snapshot this cluster's telemetry as one report: the serial sink
    /// directly, or the per-shard sinks merged by
    /// [`telemetry::RunReport::merge`]. A sharded run's merged report is
    /// byte-identical (once serialized) to the serial run's snapshot.
    pub fn snapshot_merged(&self) -> telemetry::RunReport {
        if self.sinks.len() == 1 {
            self.sinks[0].snapshot()
        } else {
            telemetry::RunReport::merge(self.sinks.iter().map(|s| s.snapshot()).collect())
        }
    }

    /// Aggregated Themis middleware stats across all ToRs (zeros when the
    /// scheme has no Themis).
    pub fn themis_stats(&self) -> ThemisAggregate {
        let mut agg = ThemisAggregate::default();
        for &leaf in &self.leaves {
            let Some(sw) = self.world.get::<Switch>(leaf) else {
                continue;
            };
            let Some(hook) = sw.hook() else { continue };
            let Some(m) = hook.as_any().downcast_ref::<ThemisMiddleware>() else {
                continue;
            };
            agg.sprayed += m.s.stats.sprayed;
            if let Some(d) = &m.d {
                agg.nacks_seen += d.stats.nacks_seen;
                agg.nacks_blocked += d.stats.nacks_blocked;
                agg.nacks_forwarded_valid += d.stats.nacks_forwarded_valid;
                agg.nacks_forwarded_unknown += d.stats.nacks_forwarded_unknown;
                agg.compensations += d.stats.compensations;
                agg.compensation_cancels += d.stats.compensation_cancels;
                agg.memory_bytes += m.memory_bytes() as u64;
            }
        }
        agg
    }
}

/// Fabric-wide Themis middleware counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThemisAggregate {
    /// Data packets sprayed by Themis-S instances.
    pub sprayed: u64,
    /// NACKs inspected by Themis-D instances.
    pub nacks_seen: u64,
    /// Invalid NACKs blocked.
    pub nacks_blocked: u64,
    /// Valid NACKs forwarded.
    pub nacks_forwarded_valid: u64,
    /// NACKs forwarded without a tPSN verdict.
    pub nacks_forwarded_unknown: u64,
    /// Compensated NACKs generated.
    pub compensations: u64,
    /// Compensations cancelled (BePSN arrived).
    pub compensation_cancels: u64,
    /// Total live Themis switch memory at run end.
    pub memory_bytes: u64,
}

/// Compute the per-shard-pair lookahead matrix `λ[i][j]` (row-major,
/// `n_shards × n_shards`, nanoseconds): the minimum latency of any
/// message a shard-`i` entity can address to a shard-`j` entity.
///
/// Three message classes cross shards at runtime:
/// * **Physical links** — every switch egress port and every NIC uplink
///   whose peer lives on another shard contributes its propagation
///   latency (serialization only adds on top, so the propagation alone
///   is a sound lower bound, even under fault-injected extra delay).
/// * **Control plane** — the driver exchanges setup/completion messages
///   with every NIC at [`CONTROL_PLANE_LATENCY`].
/// * **Oracle loss notifications** — with `oracle_loss_notify`, any
///   switch may message any NIC's shard at [`CONTROL_PLANE_LATENCY`].
///
/// Pairs that never exchange messages stay `u64::MAX` (no constraint);
/// the engine's min-plus closure handles the saturation. The diagonal is
/// left unconstrained too: intra-shard events go straight into the local
/// queue and self-influence via other shards is what the closure's cycle
/// terms compute.
pub(crate) fn lookahead_matrix(
    world: &World,
    shard_of: &[u16],
    n_shards: usize,
    driver: NodeId,
    oracle_loss_notify: bool,
) -> Vec<u64> {
    let n = n_shards;
    let mut lam = vec![u64::MAX; n * n];
    let tighten = |lam: &mut Vec<u64>, from: usize, to: usize, nanos: u64| {
        if from != to {
            let e = &mut lam[from * n + to];
            *e = (*e).min(nanos);
        }
    };
    let cpl = CONTROL_PLANE_LATENCY.as_nanos();
    let driver_shard = shard_of[driver.index()] as usize;
    let mut shard_has_nic = vec![false; n];
    for id in 0..world.len() {
        let node = NodeId(id as u32);
        let me = shard_of[id] as usize;
        if let Some(sw) = world.get::<Switch>(node) {
            for p in 0..sw.num_ports() {
                let port = sw.port(p);
                let peer = shard_of[port.peer.index()] as usize;
                tighten(&mut lam, me, peer, port.link.latency.as_nanos());
            }
        } else if let Some(nic) = world.get::<Nic>(node) {
            shard_has_nic[me] = true;
            let port = nic.uplink();
            let peer = shard_of[port.peer.index()] as usize;
            tighten(&mut lam, me, peer, port.link.latency.as_nanos());
            // Completion notifications NIC -> driver and control
            // messages driver -> NIC.
            tighten(&mut lam, me, driver_shard, cpl);
            tighten(&mut lam, driver_shard, me, cpl);
        }
    }
    if oracle_loss_notify {
        for id in 0..world.len() {
            if world.get::<Switch>(NodeId(id as u32)).is_some() {
                let me = shard_of[id] as usize;
                for (s, &has) in shard_has_nic.iter().enumerate() {
                    if has {
                        tighten(&mut lam, me, s, cpl);
                    }
                }
            }
        }
    }
    lam
}

/// Build a cluster: fabric per `fabric_cfg`, one NIC per host, Themis
/// middleware on every ToR when the scheme calls for it, and a reserved
/// driver slot.
pub fn build_cluster(fabric_cfg: &LeafSpineConfig, nic_cfg: NicConfig, scheme: Scheme) -> Cluster {
    build_cluster_sharded(fabric_cfg, nic_cfg, scheme, 1)
}

/// [`build_cluster`] with a ToR-aligned partition over `n_shards` engine
/// shards (clamped to the leaf count; 1 = serial).
///
/// Each leaf, its attached hosts, and a round-robin share of the spines
/// land on one shard; the driver lives on shard 0. Host links never cross
/// shards, so the conservative lookahead is the minimum of the fabric
/// link latency and [`CONTROL_PLANE_LATENCY`]. Every shard gets its own
/// telemetry sink with the full instrument set registered, which
/// [`Cluster::snapshot_merged`] folds back into a single report that is
/// byte-identical to a serial run's.
pub fn build_cluster_sharded(
    fabric_cfg: &LeafSpineConfig,
    nic_cfg: NicConfig,
    scheme: Scheme,
    n_shards: usize,
) -> Cluster {
    // The scheme supplies the NIC half of its configuration (transport
    // mode, sender entropy, OOO reaction) before anything derives from it.
    let nic_cfg = scheme.nic_config(nic_cfg);
    let mut fabric_cfg = fabric_cfg.clone();
    fabric_cfg.lb = scheme.lb_policy();
    // The Ideal transport needs drop notifications from switches.
    fabric_cfg.oracle_loss_notify = nic_cfg.transport == TransportMode::IdealOracle;
    assert_eq!(
        nic_cfg.line_rate_bps, fabric_cfg.host_link.bandwidth_bps,
        "NIC line rate must match the access link"
    );

    let FabricPlan {
        mut world,
        hosts,
        leaves,
        spines,
        n_paths,
    } = build_leaf_spine(&fabric_cfg);

    let n_shards = n_shards.clamp(1, leaves.len());

    // Telemetry: one sink per shard; each shard engine mirrors its clock
    // and dispatch stamp into its own sink. All instrument families are
    // registered on every sink — in the same order — so the per-shard
    // registries carry identical name sets and merge cleanly.
    let sinks: Vec<telemetry::Sink> = (0..n_shards)
        .map(|_| telemetry::Sink::new(EVENT_RING_CAPACITY))
        .collect();
    world.engine.attach_clock(sinks[0].clock());
    world.engine.attach_stamp(sinks[0].stamp());
    let switch_telems: Vec<netsim::telem::SwitchTelem> = sinks
        .iter()
        .map(netsim::telem::SwitchTelem::register)
        .collect();

    // ToR-aligned partition: leaves spread evenly, hosts follow their
    // ToR, spines round-robin, driver on shard 0.
    let mut shard_of = vec![0u16; world.len() + 1]; // +1 for the driver slot
    for (i, &leaf) in leaves.iter().enumerate() {
        shard_of[leaf.index()] = (i * n_shards / leaves.len()) as u16;
    }
    for (i, &spine) in spines.iter().enumerate() {
        shard_of[spine.index()] = (i % n_shards) as u16;
    }
    for att in &hosts {
        shard_of[att.node.index()] = shard_of[att.tor.index()];
    }

    for &sw_id in leaves.iter().chain(spines.iter()) {
        world
            .get_mut::<Switch>(sw_id)
            .expect("switch installed by builder")
            .set_telemetry(switch_telems[shard_of[sw_id.index()] as usize].clone());
    }

    // Themis middleware on every ToR.
    // Last-hop RTT: 2 × (propagation + one MTU serialization). This is
    // the paper's Table 1 figure (2 µs at 400 Gbps → 100 queue entries).
    // The resulting queue capacity must stay ≤ 127 entries so the 1-byte
    // truncated-PSN serial comparison of §3.3/§4 stays unambiguous.
    let mtu_ser = simcore::time::TimeDelta::serialization(
        nic_cfg.mtu_payload as u64 + 64,
        fabric_cfg.host_link.bandwidth_bps,
    );
    let last_hop_rtt = simcore::time::TimeDelta::from_nanos(
        2 * (fabric_cfg.host_link.latency.as_nanos() + mtu_ser.as_nanos()),
    );
    let base_themis = ThemisConfig::for_fabric(
        n_paths,
        fabric_cfg.host_link.bandwidth_bps,
        last_hop_rtt,
        nic_cfg.mtu_payload,
    );
    assert!(
        base_themis.queue_capacity <= 127,
        "PSN queue capacity {} exceeds the 1-byte serial window",
        base_themis.queue_capacity
    );
    if let Some(themis_cfg) = scheme.themis_config(base_themis) {
        let themis_telems: Vec<ThemisTelem> = sinks.iter().map(ThemisTelem::register).collect();
        for &leaf in &leaves {
            let sw = world
                .get_mut::<Switch>(leaf)
                .expect("leaf installed by builder");
            let mut mw = ThemisMiddleware::new(themis_cfg);
            mw.set_telemetry(themis_telems[shard_of[leaf.index()] as usize].clone());
            sw.set_hook(Box::new(mw));
        }
    }

    // NICs.
    let nic_telems: Vec<NicTelem> = sinks.iter().map(NicTelem::register).collect();
    for att in &hosts {
        let port = EgressPort::new(att.tor, att.tor_port, att.link);
        let mut nic = Nic::new(att.host, nic_cfg, port);
        nic.set_telemetry(nic_telems[shard_of[att.node.index()] as usize].clone());
        world.install(att.node, Box::new(nic));
    }

    let driver = world.reserve();

    if n_shards > 1 {
        // Scalar fallback lookahead: the cheapest cross-shard interaction
        // is either a fabric hop or a control-plane message. The per-pair
        // matrix refines this for pairs joined only by costlier links.
        let lookahead = TimeDelta::from_nanos(
            CONTROL_PLANE_LATENCY
                .as_nanos()
                .min(fabric_cfg.fabric_link.latency.as_nanos()),
        );
        let matrix = lookahead_matrix(
            &world,
            &shard_of,
            n_shards,
            driver,
            fabric_cfg.oracle_loss_notify,
        );
        let mut plan = ShardPlan::new(shard_of, n_shards, lookahead);
        plan.set_lookahead_matrix(matrix);
        plan.telem = sinks.iter().map(|s| (s.clock(), s.stamp())).collect();
        world.set_shard_plan(plan);
    }

    Cluster {
        world,
        hosts: hosts.iter().map(|a| a.host).collect(),
        leaves,
        spines,
        n_paths,
        driver,
        scheme,
        nic_cfg,
        telemetry: sinks[0].clone(),
        sinks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_motivation_cluster_with_themis() {
        let c = build_cluster(
            &LeafSpineConfig::motivation(),
            NicConfig::nic_sr(100_000_000_000),
            Scheme::Themis,
        );
        assert_eq!(c.hosts.len(), 8);
        assert_eq!(c.n_paths, 2);
        // Every leaf carries a Themis hook.
        for &l in &c.leaves {
            let sw: &Switch = c.world.get(l).unwrap();
            assert!(sw.hook().is_some());
        }
        // Spines carry none.
        for &s in &c.spines {
            let sw: &Switch = c.world.get(s).unwrap();
            assert!(sw.hook().is_none());
        }
        // NICs are installed at NodeId(host).
        for &h in &c.hosts {
            assert!(c.world.get::<Nic>(NodeId(h.0)).is_some());
        }
    }

    #[test]
    fn baseline_cluster_has_no_hooks() {
        let c = build_cluster(
            &LeafSpineConfig::motivation(),
            NicConfig::nic_sr(100_000_000_000),
            Scheme::AdaptiveRouting,
        );
        for &l in &c.leaves {
            let sw: &Switch = c.world.get(l).unwrap();
            assert!(sw.hook().is_none());
            assert_eq!(sw.lb(), netsim::lb::LbPolicy::AdaptiveRouting);
        }
        assert_eq!(c.themis_stats(), ThemisAggregate::default());
    }

    #[test]
    fn ideal_transport_enables_oracle() {
        let c = build_cluster(
            &LeafSpineConfig::motivation(),
            NicConfig::ideal(100_000_000_000),
            Scheme::RandomSpray,
        );
        // Oracle wiring is internal to switches; smoke-check the build.
        assert_eq!(c.hosts.len(), 8);
    }

    #[test]
    #[should_panic(expected = "line rate")]
    fn mismatched_line_rate_rejected() {
        build_cluster(
            &LeafSpineConfig::motivation(),
            NicConfig::nic_sr(400_000_000_000),
            Scheme::Ecmp,
        );
    }
}
