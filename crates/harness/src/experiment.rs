//! Generic experiment runner: a cluster + a collective workload → metrics.

use crate::cluster::{build_cluster_sharded, Cluster, ThemisAggregate};
use crate::faults::FaultPlan;
use crate::scheme::Scheme;
use collectives::alltoall::{alltoall, incast};
use collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use collectives::groups::all_groups;
use collectives::ring::{ring_allgather, ring_allreduce, ring_once, ring_reduce_scatter};
use collectives::schedule::{Schedule, Transfer};
use netsim::event::Event;
use netsim::topology::LeafSpineConfig;
use netsim::trace::{fabric_summary, FabricSummary};
use netsim::types::NodeId;
use rnic::{CcConfig, Nic, NicConfig};
use simcore::time::{Nanos, TimeDelta};

/// Which collective to run per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Ring Allreduce (2(N−1) dependent steps) — Fig 5a.
    Allreduce,
    /// Pairwise Alltoall (all transfers concurrent) — Fig 5b.
    Alltoall,
    /// Ring AllGather (N−1 steps).
    AllGather,
    /// Ring ReduceScatter (N−1 steps).
    ReduceScatter,
    /// One ring pass of independent sends — the Fig 1 motivation pattern.
    RingOnce,
    /// N-to-1 incast into rank 0 (buffer-pressure stress; PFC studies).
    Incast,
}

impl Collective {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Collective::Allreduce => "Allreduce",
            Collective::Alltoall => "Alltoall",
            Collective::AllGather => "AllGather",
            Collective::ReduceScatter => "ReduceScatter",
            Collective::RingOnce => "RingOnce",
            Collective::Incast => "Incast",
        }
    }

    /// Build the per-group schedule.
    pub fn schedule(&self, n_ranks: usize, total_bytes: u64) -> Schedule {
        match self {
            Collective::Allreduce => ring_allreduce(n_ranks, total_bytes),
            Collective::Alltoall => alltoall(n_ranks, total_bytes),
            Collective::AllGather => ring_allgather(n_ranks, total_bytes),
            Collective::ReduceScatter => ring_reduce_scatter(n_ranks, total_bytes),
            Collective::RingOnce => ring_once(n_ranks, total_bytes),
            Collective::Incast => incast(n_ranks, total_bytes),
        }
    }
}

/// A complete experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Fabric parameters.
    pub fabric: LeafSpineConfig,
    /// NIC parameters (transport + DCQCN).
    pub nic: NicConfig,
    /// Load-balancing scheme.
    pub scheme: Scheme,
    /// Root seed.
    pub seed: u64,
    /// Simulation horizon (safety stop for hung runs).
    pub horizon: Nanos,
    /// Engine shard count (1 = serial; see [`crate::knobs`]). Results
    /// are bit-identical for any value. Constructors default it from
    /// `THEMIS_SHARDS`.
    pub shards: usize,
}

impl ExperimentConfig {
    /// The Fig 1a motivation cluster (8 hosts, 2 paths, 100 Gbps).
    pub fn motivation_small(scheme: Scheme, seed: u64) -> ExperimentConfig {
        let fabric = LeafSpineConfig {
            seed,
            ..LeafSpineConfig::motivation()
        };
        ExperimentConfig {
            nic: NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
            fabric,
            scheme,
            seed,
            horizon: Nanos::from_secs(2),
            shards: crate::knobs::shards_from_env(),
        }
    }

    /// The §5 evaluation cluster (16×16 leaf-spine, 400 Gbps) with the
    /// given DCQCN `(T_I, T_D)` microsecond configuration.
    pub fn paper_eval(scheme: Scheme, ti_us: u64, td_us: u64, seed: u64) -> ExperimentConfig {
        let fabric = LeafSpineConfig {
            seed,
            ..LeafSpineConfig::paper_eval()
        };
        let line = fabric.host_link.bandwidth_bps;
        let mut nic = NicConfig::nic_sr(line);
        nic.cc = CcConfig::with_ti_td(line, ti_us, td_us);
        ExperimentConfig {
            fabric,
            nic,
            scheme,
            seed,
            horizon: Nanos::from_secs(5),
            shards: crate::knobs::shards_from_env(),
        }
    }
}

/// Aggregated sender/receiver counters over all NICs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicAggregate {
    /// First-transmission data packets.
    pub data_packets: u64,
    /// Retransmitted data packets.
    pub retx_packets: u64,
    /// NACKs received by senders.
    pub nacks_received: u64,
    /// CNPs received by senders.
    pub cnps_received: u64,
    /// RTO expirations.
    pub rto_fires: u64,
    /// NACKs sent by receivers.
    pub nacks_sent: u64,
    /// Out-of-order arrivals at receivers.
    pub ooo_packets: u64,
    /// Duplicate arrivals at receivers (spurious retransmissions landing).
    pub dup_packets: u64,
    /// Payload bytes delivered in order.
    pub bytes_delivered: u64,
}

impl NicAggregate {
    /// Fraction of transmitted data packets that were retransmissions —
    /// the paper's "retransmission ratio".
    pub fn retx_ratio(&self) -> f64 {
        let total = self.data_packets + self.retx_packets;
        if total == 0 {
            0.0
        } else {
            self.retx_packets as f64 / total as f64
        }
    }
}

/// Everything measured by one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Scheme that produced this result.
    pub scheme: Scheme,
    /// Slowest-group completion time (§5 metric); `None` if the horizon
    /// hit first.
    pub tail_ct: Option<TimeDelta>,
    /// Per-group completion times.
    pub group_cts: Vec<Option<TimeDelta>>,
    /// Fabric-wide switch counters.
    pub fabric: FabricSummary,
    /// Themis middleware counters (zeros for baselines).
    pub themis: ThemisAggregate,
    /// NIC counters.
    pub nics: NicAggregate,
    /// Simulator events dispatched.
    pub events: u64,
    /// Final simulation clock.
    pub sim_end: Nanos,
    /// Median per-transfer latency (post → delivery), if any completed.
    pub msg_latency_p50: Option<TimeDelta>,
    /// 99th-percentile per-transfer latency.
    pub msg_latency_p99: Option<TimeDelta>,
    /// Full telemetry snapshot: live counters, histograms, the event
    /// ring, plus snapshot-time `agg.*` / `run.*` exports.
    pub telemetry: telemetry::RunReport,
}

impl ExperimentResult {
    /// Whether every message of every group was delivered.
    pub fn all_messages_completed(&self) -> bool {
        self.tail_ct.is_some()
    }

    /// CSV header matching [`ExperimentResult::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "scheme,tail_ct_us,goodput_gbps,data_packets,retx_packets,\
nacks_sent,nacks_received,ooo_packets,rto_fires,drops,ecn_marked,\
sprayed,blocked,forwarded_valid,compensations,msg_p50_us,msg_p99_us,events"
    }

    /// One CSV row of the headline metrics (empty cells for missing
    /// values), for spreadsheet/plotting pipelines.
    pub fn to_csv_row(&self) -> String {
        let opt_us = |t: Option<TimeDelta>| {
            t.map(|v| format!("{:.3}", v.as_micros_f64()))
                .unwrap_or_default()
        };
        format!(
            "{},{},{:.3},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.scheme.label(),
            opt_us(self.tail_ct),
            self.aggregate_goodput_gbps(),
            self.nics.data_packets,
            self.nics.retx_packets,
            self.nics.nacks_sent,
            self.nics.nacks_received,
            self.nics.ooo_packets,
            self.nics.rto_fires,
            self.fabric.total_drops(),
            self.fabric.ecn_marked,
            self.themis.sprayed,
            self.themis.nacks_blocked,
            self.themis.nacks_forwarded_valid,
            self.themis.compensations,
            opt_us(self.msg_latency_p50),
            opt_us(self.msg_latency_p99),
            self.events,
        )
    }

    /// Goodput across the whole workload in Gbit/s (delivered payload over
    /// tail completion time).
    pub fn aggregate_goodput_gbps(&self) -> f64 {
        match self.tail_ct {
            Some(ct) if ct.as_nanos() > 0 => {
                self.nics.bytes_delivered as f64 * 8.0 / ct.as_secs_f64() / 1e9
            }
            _ => 0.0,
        }
    }
}

/// Time-bin width of the `collective.msg_latency` histogram (10 ms; 512
/// bins cover the longest §5 horizon).
pub const MSG_LATENCY_BIN_NS: u64 = 10_000_000;
/// Number of time bins of the `collective.msg_latency` histogram.
pub const MSG_LATENCY_BINS: usize = 512;

/// Wire the driver into the cluster's telemetry sink: each transfer's
/// post → delivery latency lands in `collective.msg_latency`. The
/// histogram is registered on **every** shard sink so sharded and serial
/// registries carry identical name sets; the driver itself reports into
/// shard 0's sink (its owner shard).
fn attach_driver_telemetry(driver: &mut Driver, cluster: &Cluster) {
    let mut hist = None;
    for sink in &cluster.sinks {
        let id = sink.time_hist(
            "collective.msg_latency",
            MSG_LATENCY_BIN_NS,
            MSG_LATENCY_BINS,
        );
        hist.get_or_insert(id);
    }
    driver.set_telemetry(
        cluster.telemetry.clone(),
        hist.expect("cluster has at least one sink"),
    );
}

/// Aggregated scheme-policy counters over all NIC QPs — the backing
/// store of the `scheme.*` telemetry namespace (exported only for
/// schemes that install a non-commodity transport reaction).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchemeAggregate {
    /// Sender-entropy policy counters summed over sender QPs.
    pub entropy: rnic::EntropyStats,
    /// OOO-reaction policy counters summed over receiver QPs.
    pub ooo: rnic::OooReactionStats,
}

/// Sum scheme-policy counters over the cluster.
pub fn aggregate_scheme(cluster: &Cluster) -> SchemeAggregate {
    let mut agg = SchemeAggregate::default();
    for &h in &cluster.hosts {
        let nic: &Nic = cluster.nic(h);
        for s in nic.send_qps() {
            agg.entropy.add(&s.entropy_stats());
        }
        for r in nic.recv_qps() {
            agg.ooo.add(&r.ooo_stats());
        }
    }
    agg
}

/// Sum NIC counters over the cluster.
pub fn aggregate_nics(cluster: &Cluster) -> NicAggregate {
    let mut agg = NicAggregate::default();
    for &h in &cluster.hosts {
        let nic: &Nic = cluster.nic(h);
        for s in nic.send_qps() {
            agg.data_packets += s.stats.data_packets;
            agg.retx_packets += s.stats.retx_packets;
            agg.nacks_received += s.stats.nacks_received;
            agg.cnps_received += s.stats.cnps_received;
            agg.rto_fires += s.stats.rto_fires;
        }
        for r in nic.recv_qps() {
            agg.nacks_sent += r.stats.nacks_sent;
            agg.ooo_packets += r.stats.ooo_packets;
            agg.dup_packets += r.stats.dup_packets;
            agg.bytes_delivered += r.stats.bytes_delivered;
        }
    }
    agg
}

/// Run `collective` with a per-group buffer of `total_bytes` on every
/// group of the fabric simultaneously (the §5 setup). Returns the built
/// cluster alongside the metrics so callers can inspect raw state.
pub fn run_collective_on(
    cfg: &ExperimentConfig,
    collective: Collective,
    total_bytes: u64,
) -> (ExperimentResult, Cluster) {
    run_collective_with_faults(cfg, collective, total_bytes, &FaultPlan::none())
}

/// [`run_collective_on`] with a [`FaultPlan`] installed between workload
/// setup and the run: the faults fire as scheduled simulator events, so
/// the whole (config, plan) pair replays bit-identically.
pub fn run_collective_with_faults(
    cfg: &ExperimentConfig,
    collective: Collective,
    total_bytes: u64,
    plan: &FaultPlan,
) -> (ExperimentResult, Cluster) {
    let mut cluster = build_cluster_sharded(&cfg.fabric, cfg.nic, cfg.scheme, cfg.shards);
    let groups = all_groups(cfg.fabric.n_leaves, cfg.fabric.hosts_per_leaf);
    let mut alloc = QpAllocator::new(cfg.seed ^ 0xC0_11EC);
    let mut driver = Driver::new();
    for hosts in &groups {
        let schedule = collective.schedule(hosts.len(), total_bytes);
        let spec = setup_collective(
            &mut cluster.world,
            cluster.driver,
            hosts,
            schedule,
            &mut alloc,
        );
        driver.add_instance(spec);
    }
    attach_driver_telemetry(&mut driver, &cluster);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    plan.install(&mut cluster);
    cluster.world.run_until(cfg.horizon);
    (collect_result(cfg.scheme, &cluster), cluster)
}

/// Predict, without running anything, the `(qp, n_psn)` streams
/// [`run_collective_with_faults`] will create: same group enumeration,
/// same allocator seed, same per-pair QP dedup as the real setup. `n_psn`
/// is the total PSN count on the pair across all of its transfers — the
/// domain a fault sampler can aim targeted drops at.
pub fn planned_transfers(
    cfg: &ExperimentConfig,
    collective: Collective,
    total_bytes: u64,
) -> Vec<(netsim::types::QpId, u32)> {
    use std::collections::HashMap;
    let groups = all_groups(cfg.fabric.n_leaves, cfg.fabric.hosts_per_leaf);
    let mut alloc = QpAllocator::new(cfg.seed ^ 0xC0_11EC);
    let mut psn_of: Vec<(netsim::types::QpId, u32)> = Vec::new();
    for hosts in &groups {
        let schedule = collective.schedule(hosts.len(), total_bytes);
        let mut pair_qp: HashMap<(usize, usize), usize> = HashMap::new();
        for t in &schedule.transfers {
            let idx = *pair_qp.entry((t.src, t.dst)).or_insert_with(|| {
                psn_of.push((alloc.alloc().0, 0));
                psn_of.len() - 1
            });
            psn_of[idx].1 += t.bytes.div_ceil(cfg.nic.mtu_payload as u64).max(1) as u32;
        }
    }
    psn_of
}

/// Total payload bytes the workload delivers when every transfer
/// completes (the oracle's exactly-once byte count).
pub fn expected_delivered_bytes(
    cfg: &ExperimentConfig,
    collective: Collective,
    total_bytes: u64,
) -> u64 {
    all_groups(cfg.fabric.n_leaves, cfg.fabric.hosts_per_leaf)
        .iter()
        .map(|hosts| {
            collective
                .schedule(hosts.len(), total_bytes)
                .transfers
                .iter()
                .map(|t| t.bytes)
                .sum::<u64>()
        })
        .sum()
}

/// Run `groups` simultaneous inter-pod rings on a fat-tree cluster:
/// group `g` joins the host with pod-local index `g` from every pod into
/// one `RingOnce` ring of `k` ranks. Every ring crosses the core layer
/// (and, under sharding, every shard boundary); with
/// `groups == (k/2)²` every host in the fabric participates. This is the
/// workload of the `paper_fabric_x10` benchmark and its CI smoke leg.
pub fn run_fat_tree_rings(
    fabric_cfg: &netsim::fat_tree::FatTreeConfig,
    nic_cfg: NicConfig,
    scheme: Scheme,
    seed: u64,
    n_shards: usize,
    groups: usize,
    bytes_per_ring: u64,
    horizon: Nanos,
) -> (ExperimentResult, Cluster) {
    let k = fabric_cfg.k;
    let hosts_per_pod = (k / 2) * (k / 2);
    assert!(
        groups <= hosts_per_pod,
        "at most one ring per pod-local host index ({hosts_per_pod})"
    );
    let mut cluster =
        crate::fat_tree::build_fat_tree_cluster_sharded(fabric_cfg, nic_cfg, scheme, n_shards);
    let mut alloc = QpAllocator::new(seed ^ 0xC0_11EC);
    let mut driver = Driver::new();
    for g in 0..groups {
        let hosts: Vec<netsim::types::HostId> = (0..k)
            .map(|p| netsim::types::HostId((p * hosts_per_pod + g) as u32))
            .collect();
        let spec = setup_collective(
            &mut cluster.world,
            cluster.driver,
            &hosts,
            ring_once(k, bytes_per_ring),
            &mut alloc,
        );
        driver.add_instance(spec);
    }
    attach_driver_telemetry(&mut driver, &cluster);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(horizon);
    (collect_result(scheme, &cluster), cluster)
}

/// Like [`run_collective_on`], discarding the cluster.
pub fn run_collective(
    cfg: &ExperimentConfig,
    collective: Collective,
    total_bytes: u64,
) -> ExperimentResult {
    run_collective_on(cfg, collective, total_bytes).0
}

/// Run the same collective across `seeds`, one independent simulation
/// per seed, fanned out over `runner`'s workers. Results come back in
/// seed order and are bit-identical for any worker count (each cell
/// derives all randomness from its own seed).
pub fn run_seed_sweep(
    cfg: &ExperimentConfig,
    collective: Collective,
    total_bytes: u64,
    seeds: &[u64],
    runner: crate::sweep::SweepRunner,
) -> Vec<ExperimentResult> {
    runner.run(seeds, |&seed| {
        let mut cell = cfg.clone();
        cell.seed = seed;
        cell.fabric.seed = seed;
        run_collective(&cell, collective, total_bytes)
    })
}

/// A single point-to-point message between two cross-rack hosts; the
/// simplest end-to-end exercise of a scheme (used by the quickstart).
pub fn run_point_to_point(cfg: &ExperimentConfig, bytes: u64) -> ExperimentResult {
    let mut cluster = build_cluster_sharded(&cfg.fabric, cfg.nic, cfg.scheme, cfg.shards);
    let src = cluster.hosts[0];
    // First host of the second rack: guaranteed cross-rack.
    let dst = cluster.hosts[cfg.fabric.hosts_per_leaf];
    let schedule = Schedule {
        name: "point-to-point",
        n_ranks: 2,
        transfers: vec![Transfer {
            src: 0,
            dst: 1,
            bytes,
            deps: vec![],
        }],
    };
    let mut alloc = QpAllocator::new(cfg.seed);
    let mut driver = Driver::new();
    let spec = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &[src, dst],
        schedule,
        &mut alloc,
    );
    driver.add_instance(spec);
    attach_driver_telemetry(&mut driver, &cluster);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);
    collect_result(cfg.scheme, &cluster)
}

fn collect_result(scheme: Scheme, cluster: &Cluster) -> ExperimentResult {
    let driver: &Driver = cluster
        .world
        .get(cluster.driver)
        .expect("driver installed before run");
    let start = driver.started_at().unwrap_or(Nanos::ZERO);
    let group_cts: Vec<Option<TimeDelta>> = driver
        .completions()
        .into_iter()
        .map(|c| c.map(|t| t.since(start)))
        .collect();
    let tail_ct = driver.tail_completion().map(|t| t.since(start));
    let lat = driver.latency_histogram();
    let fabric = fabric_summary(&cluster.world, &cluster.all_switches());
    let themis = cluster.themis_stats();
    let nics = aggregate_nics(cluster);
    let events = cluster.world.engine.dispatched();
    let sim_end = cluster.world.now();
    let mut result = ExperimentResult {
        scheme,
        tail_ct,
        group_cts,
        fabric,
        themis,
        nics,
        events,
        sim_end,
        msg_latency_p50: lat.quantile(0.5).map(TimeDelta::from_nanos),
        msg_latency_p99: lat.quantile(0.99).map(TimeDelta::from_nanos),
        telemetry: telemetry::RunReport::new(),
    };
    result.telemetry = snapshot_telemetry(&result, cluster);
    result
}

/// Snapshot the cluster's live telemetry and append the end-of-run
/// `agg.*` (entity-stat aggregates) and `run.*` (run-level) exports, so
/// one JSON document carries both views and they can be cross-checked.
fn snapshot_telemetry(r: &ExperimentResult, cluster: &Cluster) -> telemetry::RunReport {
    let mut t = cluster.snapshot_merged();

    t.push_counter("agg.fabric.rx_packets", r.fabric.rx_packets);
    t.push_counter("agg.fabric.forwarded", r.fabric.forwarded);
    t.push_counter("agg.fabric.drops_buffer", r.fabric.drops_buffer);
    t.push_counter("agg.fabric.drops_targeted", r.fabric.drops_targeted);
    t.push_counter("agg.fabric.drops_no_route", r.fabric.drops_no_route);
    t.push_counter("agg.fabric.ecn_marked", r.fabric.ecn_marked);
    t.push_counter("agg.fabric.hook_blocked", r.fabric.hook_blocked);
    t.push_counter("agg.fabric.hook_emitted", r.fabric.hook_emitted);
    t.push_counter("agg.fabric.peak_buffer_bytes", r.fabric.peak_buffer_bytes);

    t.push_counter("agg.themis.sprayed", r.themis.sprayed);
    t.push_counter("agg.themis.nacks_seen", r.themis.nacks_seen);
    t.push_counter("agg.themis.nacks_blocked", r.themis.nacks_blocked);
    t.push_counter(
        "agg.themis.nacks_forwarded_valid",
        r.themis.nacks_forwarded_valid,
    );
    t.push_counter(
        "agg.themis.nacks_forwarded_unknown",
        r.themis.nacks_forwarded_unknown,
    );
    t.push_counter("agg.themis.compensations", r.themis.compensations);
    t.push_counter(
        "agg.themis.compensation_cancels",
        r.themis.compensation_cancels,
    );
    t.push_counter("agg.themis.memory_bytes", r.themis.memory_bytes);

    t.push_counter("agg.nic.data_packets", r.nics.data_packets);
    t.push_counter("agg.nic.retx_packets", r.nics.retx_packets);
    t.push_counter("agg.nic.nacks_received", r.nics.nacks_received);
    t.push_counter("agg.nic.cnps_received", r.nics.cnps_received);
    t.push_counter("agg.nic.rto_fires", r.nics.rto_fires);
    t.push_counter("agg.nic.nacks_sent", r.nics.nacks_sent);
    t.push_counter("agg.nic.ooo_packets", r.nics.ooo_packets);
    t.push_counter("agg.nic.dup_packets", r.nics.dup_packets);
    t.push_counter("agg.nic.bytes_delivered", r.nics.bytes_delivered);

    // Scheme-policy counters, namespaced per scheme so each rival's
    // telemetry contract (SCHEMES.md / EXPERIMENTS.md) is explicit.
    // Pushed at snapshot time from per-QP state, so serial and sharded
    // runs emit identical documents; incumbents (ECMP/Themis/…) push
    // nothing, keeping the golden schema untouched.
    match cluster.scheme {
        Scheme::Reps => {
            let s = aggregate_scheme(cluster).entropy;
            t.push_counter("scheme.reps.recycled_sends", s.recycled_sends);
            t.push_counter("scheme.reps.fresh_sends", s.fresh_sends);
            t.push_counter("scheme.reps.pool_clears", s.pool_clears);
            t.push_counter("scheme.reps.pool_evictions", s.pool_evictions);
        }
        Scheme::Sprinklers => {
            let s = aggregate_scheme(cluster).entropy;
            t.push_counter("scheme.sprinklers.stripes_started", s.stripes_started);
            t.push_counter("scheme.sprinklers.fresh_sends", s.fresh_sends);
            t.push_counter("scheme.sprinklers.striped_sends", s.recycled_sends);
        }
        Scheme::Eunomia => {
            let s = aggregate_scheme(cluster).ooo;
            t.push_counter("scheme.eunomia.nacks_held", s.nacks_held);
            t.push_counter("scheme.eunomia.nacks_allowed", s.nacks_allowed);
            t.push_counter(
                "scheme.eunomia.window_overflow_nacks",
                s.window_overflow_nacks,
            );
            t.push_counter("scheme.eunomia.gap_timeout_nacks", s.gap_timeout_nacks);
        }
        _ => {}
    }

    t.push_counter("run.events", r.events);
    t.push_counter("run.shards", cluster.sinks.len() as u64);
    t.push_counter("run.sim_end_ns", r.sim_end.as_nanos());
    t.push_gauge("run.goodput_gbps", r.aggregate_goodput_gbps());
    t.push_gauge(
        "run.tail_ct_us",
        r.tail_ct.map_or(-1.0, |c| c.as_micros_f64()),
    );
    t.push_gauge("run.retx_ratio", r.nics.retx_ratio());
    t.sort();
    t
}

/// Convenience: the driver entity of a finished cluster.
pub fn driver_of(cluster: &Cluster) -> &Driver {
    cluster
        .world
        .get::<Driver>(cluster.driver)
        .expect("driver installed")
}

/// Node id helper for a host's NIC.
pub fn nic_node(host: netsim::types::HostId) -> NodeId {
    NodeId(host.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_row_matches_header_arity() {
        let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 11);
        let r = run_point_to_point(&cfg, 1 << 20);
        let header_cols = ExperimentResult::csv_header().split(',').count();
        let row_cols = r.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(r.to_csv_row().starts_with("Themis,"));
    }

    #[test]
    fn point_to_point_completes_under_every_scheme() {
        for scheme in Scheme::ALL {
            let cfg = ExperimentConfig::motivation_small(scheme, 11);
            let r = run_point_to_point(&cfg, 1 << 20);
            assert!(
                r.all_messages_completed(),
                "{} failed to complete",
                scheme.label()
            );
            assert_eq!(r.nics.bytes_delivered, 1 << 20, "{}", scheme.label());
            assert_eq!(r.fabric.drops_no_route, 0);
        }
    }

    #[test]
    fn themis_blocks_nacks_on_sprayed_flow() {
        let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 3);
        let r = run_point_to_point(&cfg, 8 << 20);
        assert!(r.all_messages_completed());
        // A single flow over 2 paths reorders constantly; the receiver
        // NACKs and Themis-D blocks (no real loss -> nothing forwarded).
        assert!(r.themis.sprayed > 0);
        assert!(
            r.themis.nacks_blocked > 0,
            "expected invalid NACKs to be blocked: {:?}",
            r.themis
        );
        assert_eq!(r.fabric.total_drops(), 0, "no drops in this scenario");
        assert_eq!(
            r.themis.nacks_forwarded_valid, 0,
            "no loss -> no valid NACK"
        );
        // Blocked NACKs never reach the sender: zero spurious retx.
        assert_eq!(r.nics.retx_packets, 0);
    }

    #[test]
    fn spray_without_filter_suffers_spurious_retransmissions() {
        let cfg = ExperimentConfig::motivation_small(Scheme::SprayNoFilter, 3);
        let r = run_point_to_point(&cfg, 8 << 20);
        assert!(r.all_messages_completed());
        assert!(
            r.nics.retx_packets > 0,
            "unfiltered spraying must trigger spurious retransmissions"
        );
        assert!(r.nics.nacks_received > 0);
    }

    #[test]
    fn ecmp_single_flow_is_clean() {
        let cfg = ExperimentConfig::motivation_small(Scheme::Ecmp, 3);
        let r = run_point_to_point(&cfg, 4 << 20);
        assert!(r.all_messages_completed());
        assert_eq!(r.nics.retx_packets, 0);
        assert_eq!(r.nics.ooo_packets, 0, "single path -> in-order");
    }

    #[test]
    fn ring_once_motivation_all_schemes_complete() {
        // Small per-flow size keeps this test quick.
        for scheme in [Scheme::RandomSpray, Scheme::Themis, Scheme::Ecmp] {
            let cfg = ExperimentConfig::motivation_small(scheme, 5);
            let r = run_collective(&cfg, Collective::RingOnce, 2 << 20);
            assert!(r.all_messages_completed(), "{}: incomplete", scheme.label());
            assert_eq!(r.group_cts.len(), 2, "two groups on the motivation topo");
            // All 8 flows delivered fully.
            assert_eq!(r.nics.bytes_delivered, 8 * (2 << 20));
        }
    }

    #[test]
    fn themis_beats_unfiltered_spray_on_ring() {
        let bytes = 4 << 20;
        let themis = run_collective(
            &ExperimentConfig::motivation_small(Scheme::Themis, 5),
            Collective::RingOnce,
            bytes,
        );
        let spray = run_collective(
            &ExperimentConfig::motivation_small(Scheme::SprayNoFilter, 5),
            Collective::RingOnce,
            bytes,
        );
        let t = themis.tail_ct.unwrap().as_secs_f64();
        let s = spray.tail_ct.unwrap().as_secs_f64();
        assert!(
            t < s,
            "Themis ({t:.6}s) must beat unfiltered spraying ({s:.6}s)"
        );
        assert!(themis.nics.retx_ratio() < spray.nics.retx_ratio());
    }
}
