//! Fat-tree (3-tier Clos) cluster assembly — the paper's multi-tier
//! deployment mode.
//!
//! In a 3-tier fabric the source ToR cannot pick the whole path by
//! egress selection, so every Themis variant here sprays through the
//! **two-tier PathMap** ([`themis_core::themis_s::SprayMode::PathMapTwoTier`]):
//! the ToR rewrites the UDP source port once, and the edge and
//! aggregation ECMP stages (reading decorrelated views of the hash) land
//! the packet on the desired relative path. Programmability is required
//! only at the ToR, exactly as §3.2 claims.

use crate::cluster::{Cluster, EVENT_RING_CAPACITY};
use crate::scheme::Scheme;
use netsim::fat_tree::{build_fat_tree, FatTreeConfig, FatTreePlan, AGG_ECMP_SHIFT};
use netsim::port::EgressPort;
use netsim::switch::Switch;
use netsim::world::{ShardPlan, CONTROL_PLANE_LATENCY};
use rnic::{Nic, NicConfig, NicTelem, TransportMode};
use simcore::time::TimeDelta;
use themis_core::themis_s::SprayMode;
use themis_core::{ThemisConfig, ThemisMiddleware, ThemisTelem};

/// Build a fat-tree cluster: fabric per `fabric_cfg`, one NIC per host,
/// Themis middleware (two-tier PathMap mode) on every edge ToR when the
/// scheme calls for it.
///
/// In the returned [`Cluster`], `leaves` are the edge (ToR) switches and
/// `spines` holds aggregation + core switches.
pub fn build_fat_tree_cluster(
    fabric_cfg: &FatTreeConfig,
    nic_cfg: NicConfig,
    scheme: Scheme,
) -> Cluster {
    build_fat_tree_cluster_sharded(fabric_cfg, nic_cfg, scheme, 1)
}

/// [`build_fat_tree_cluster`] with a **pod-aligned** partition over
/// `n_shards` engine shards (clamped to the pod count; 1 = serial).
///
/// A pod's edges, aggregation switches and hosts always land on the same
/// shard — intra-pod links (host↔edge, edge↔agg) never cross shards, so
/// the only cut edges are agg↔core fabric links and control-plane
/// messages, giving lookahead
/// `min(fabric latency, CONTROL_PLANE_LATENCY)`. Cores are spread
/// round-robin; the driver lives on shard 0.
pub fn build_fat_tree_cluster_sharded(
    fabric_cfg: &FatTreeConfig,
    nic_cfg: NicConfig,
    scheme: Scheme,
    n_shards: usize,
) -> Cluster {
    // Scheme-driven NIC overrides first, so everything derived below
    // (oracle notifications, per-QP policies) sees the final config.
    let nic_cfg = scheme.nic_config(nic_cfg);
    let mut fabric_cfg = fabric_cfg.clone();
    fabric_cfg.lb = scheme.lb_policy();
    fabric_cfg.oracle_loss_notify = nic_cfg.transport == TransportMode::IdealOracle;
    assert_eq!(
        nic_cfg.line_rate_bps, fabric_cfg.host_link.bandwidth_bps,
        "NIC line rate must match the access link"
    );

    let FatTreePlan {
        mut world,
        hosts,
        edges,
        aggs,
        cores,
        n_paths,
        k,
    } = build_fat_tree(&fabric_cfg);

    let n_shards = n_shards.clamp(1, k);

    let sinks: Vec<telemetry::Sink> = (0..n_shards)
        .map(|_| telemetry::Sink::new(EVENT_RING_CAPACITY))
        .collect();
    world.engine.attach_clock(sinks[0].clock());
    world.engine.attach_stamp(sinks[0].stamp());
    let switch_telems: Vec<netsim::telem::SwitchTelem> = sinks
        .iter()
        .map(netsim::telem::SwitchTelem::register)
        .collect();

    // Pod-aligned partition: `edges` and `aggs` are pod-major (pod =
    // index / (k/2)), so a pod's whole intra-pod star maps to one shard.
    let m = k / 2;
    let mut shard_of = vec![0u16; world.len() + 1]; // +1 for the driver slot
    for (i, &edge) in edges.iter().enumerate() {
        shard_of[edge.index()] = ((i / m) * n_shards / k) as u16;
    }
    for (i, &agg) in aggs.iter().enumerate() {
        shard_of[agg.index()] = ((i / m) * n_shards / k) as u16;
    }
    for (i, &core) in cores.iter().enumerate() {
        shard_of[core.index()] = (i % n_shards) as u16;
    }
    for att in &hosts {
        shard_of[att.node.index()] = shard_of[att.tor.index()];
    }

    for &sw_id in edges.iter().chain(aggs.iter()).chain(cores.iter()) {
        world
            .get_mut::<Switch>(sw_id)
            .expect("switch installed by builder")
            .set_telemetry(switch_telems[shard_of[sw_id.index()] as usize].clone());
    }

    let m_bits = (k as u32 / 2).trailing_zeros();
    let mtu_ser = simcore::time::TimeDelta::serialization(
        nic_cfg.mtu_payload as u64 + 64,
        fabric_cfg.host_link.bandwidth_bps,
    );
    let last_hop_rtt = simcore::time::TimeDelta::from_nanos(
        2 * (fabric_cfg.host_link.latency.as_nanos() + mtu_ser.as_nanos()),
    );
    let base = ThemisConfig {
        // 3-tier deployment always sprays via the two-tier PathMap.
        spray_mode: SprayMode::PathMapTwoTier {
            bits_stage1: m_bits,
            shift_stage2: AGG_ECMP_SHIFT,
            bits_stage2: m_bits,
        },
        ..ThemisConfig::for_fabric(
            n_paths,
            fabric_cfg.host_link.bandwidth_bps,
            last_hop_rtt,
            nic_cfg.mtu_payload,
        )
    };
    assert!(
        base.queue_capacity <= 127,
        "PSN queue capacity {} exceeds the 1-byte serial window",
        base.queue_capacity
    );
    if let Some(mut themis_cfg) = scheme.themis_config(base) {
        // Direct egress cannot express the full path in 3 tiers; force
        // the two-tier PathMap for every Themis variant.
        themis_cfg.spray_mode = base.spray_mode;
        let themis_telems: Vec<ThemisTelem> = sinks.iter().map(ThemisTelem::register).collect();
        for &edge in &edges {
            let sw = world.get_mut::<Switch>(edge).expect("edge installed");
            let mut mw = ThemisMiddleware::new(themis_cfg);
            mw.set_telemetry(themis_telems[shard_of[edge.index()] as usize].clone());
            sw.set_hook(Box::new(mw));
        }
    }

    let nic_telems: Vec<NicTelem> = sinks.iter().map(NicTelem::register).collect();
    for att in &hosts {
        let port = EgressPort::new(att.tor, att.tor_port, att.link);
        let mut nic = Nic::new(att.host, nic_cfg, port);
        nic.set_telemetry(nic_telems[shard_of[att.node.index()] as usize].clone());
        world.install(att.node, Box::new(nic));
    }
    let driver = world.reserve();

    if n_shards > 1 {
        let lookahead = TimeDelta::from_nanos(
            CONTROL_PLANE_LATENCY
                .as_nanos()
                .min(fabric_cfg.fabric_link.latency.as_nanos()),
        );
        let matrix = crate::cluster::lookahead_matrix(
            &world,
            &shard_of,
            n_shards,
            driver,
            fabric_cfg.oracle_loss_notify,
        );
        let mut plan = ShardPlan::new(shard_of, n_shards, lookahead);
        plan.set_lookahead_matrix(matrix);
        plan.telem = sinks.iter().map(|s| (s.clock(), s.stamp())).collect();
        world.set_shard_plan(plan);
    }

    let mut spines = aggs;
    spines.extend(cores);
    Cluster {
        world,
        hosts: hosts.iter().map(|a| a.host).collect(),
        leaves: edges,
        spines,
        n_paths,
        driver,
        scheme,
        nic_cfg,
        telemetry: sinks[0].clone(),
        sinks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
    use collectives::ring::ring_once;
    use netsim::event::Event;
    use netsim::types::HostId;
    use simcore::time::Nanos;

    const GBPS100: u64 = 100_000_000_000;

    /// Run an inter-pod ring (one host per pod) on a k=4 fat-tree.
    fn run_interpod_ring(scheme: Scheme, bytes: u64) -> (Cluster, Option<Nanos>) {
        let cfg = FatTreeConfig::small(4);
        let mut cluster = build_fat_tree_cluster(&cfg, NicConfig::nic_sr(GBPS100), scheme);
        // One host per pod, same local index: 0, 4, 8, 12.
        let hosts: Vec<HostId> = (0..4).map(|p| HostId(p * 4)).collect();
        let mut alloc = QpAllocator::new(5);
        let mut driver = Driver::new();
        let spec = setup_collective(
            &mut cluster.world,
            cluster.driver,
            &hosts,
            ring_once(4, bytes),
            &mut alloc,
        );
        driver.add_instance(spec);
        cluster.world.install(cluster.driver, Box::new(driver));
        cluster.world.seed_event(
            Nanos::ZERO,
            cluster.driver,
            Event::Timer { token: START_TOKEN },
        );
        cluster.world.run_until(Nanos::from_secs(2));
        let d: &Driver = cluster.world.get(cluster.driver).expect("driver");
        let ct = d.tail_completion();
        (cluster, ct)
    }

    #[test]
    fn cluster_builds_with_hooks_on_edges_only() {
        let cfg = FatTreeConfig::small(4);
        let c = build_fat_tree_cluster(&cfg, NicConfig::nic_sr(GBPS100), Scheme::Themis);
        assert_eq!(c.n_paths, 4);
        for &e in &c.leaves {
            let sw: &Switch = c.world.get(e).unwrap();
            assert!(sw.hook().is_some(), "every edge ToR carries Themis");
        }
        for &s in &c.spines {
            let sw: &Switch = c.world.get(s).unwrap();
            assert!(sw.hook().is_none(), "aggs/cores stay unmodified");
        }
    }

    #[test]
    fn interpod_ring_completes_under_themis_without_retx() {
        let (cluster, ct) = run_interpod_ring(Scheme::Themis, 4 << 20);
        assert!(ct.is_some(), "ring must complete");
        let agg = cluster.themis_stats();
        assert!(agg.sprayed > 0, "two-tier PathMap spraying active");
        assert!(
            agg.nacks_blocked > 0,
            "4-path spraying reorders; invalid NACKs must be blocked: {agg:?}"
        );
        let nics = crate::experiment::aggregate_nics(&cluster);
        assert_eq!(nics.retx_packets, 0, "no NACK reaches a sender");
        // All four cores carried traffic: the composite PathMap covers
        // the full path set.
        let core_rx: Vec<u64> = cluster.spines[8..]
            .iter()
            .map(|&c| cluster.world.get::<Switch>(c).unwrap().stats.rx_packets)
            .collect();
        assert!(
            core_rx.iter().all(|&rx| rx > 0),
            "every core must carry sprayed traffic: {core_rx:?}"
        );
    }

    #[test]
    fn themis_not_slower_than_adaptive_routing_interpod() {
        let bytes = 4 << 20;
        let (_, themis_ct) = run_interpod_ring(Scheme::Themis, bytes);
        let (ar_cluster, ar_ct) = run_interpod_ring(Scheme::AdaptiveRouting, bytes);
        let nics = crate::experiment::aggregate_nics(&ar_cluster);
        assert!(
            nics.retx_packets > 0,
            "AR over 3 tiers reorders and triggers spurious retx"
        );
        let (t, a) = (themis_ct.unwrap(), ar_ct.unwrap());
        assert!(
            t <= a,
            "Themis ({t}) must not lose to AR ({a}) on the fat-tree"
        );
    }

    #[test]
    fn intra_pod_flows_also_work_under_themis() {
        let cfg = FatTreeConfig::small(4);
        let mut cluster = build_fat_tree_cluster(&cfg, NicConfig::nic_sr(GBPS100), Scheme::Themis);
        // Host 0 (edge 0) -> host 2 (edge 1), same pod: only the agg
        // stage matters physically, but mod-N spraying still recovers.
        let hosts = [HostId(0), HostId(2)];
        let mut alloc = QpAllocator::new(5);
        let mut driver = Driver::new();
        let spec = setup_collective(
            &mut cluster.world,
            cluster.driver,
            &hosts,
            ring_once(2, 2 << 20),
            &mut alloc,
        );
        driver.add_instance(spec);
        cluster.world.install(cluster.driver, Box::new(driver));
        cluster.world.seed_event(
            Nanos::ZERO,
            cluster.driver,
            Event::Timer { token: START_TOKEN },
        );
        cluster.world.run_until(Nanos::from_secs(2));
        let d: &Driver = cluster.world.get(cluster.driver).expect("driver");
        assert!(d.all_complete(), "intra-pod traffic must complete");
        // Cores untouched by intra-pod flows.
        for &c in &cluster.spines[8..] {
            let sw: &Switch = cluster.world.get(c).unwrap();
            assert_eq!(sw.stats.rx_packets, 0);
        }
    }
}
