//! Deterministic fault-injection scenarios.
//!
//! A [`FaultPlan`] is a time-ordered list of fault events scheduled into a
//! running cluster *through ordinary simulator events*: every fault is a
//! [`ControlMsg`] seeded at a fixed timestamp (or, for targeted drops, a
//! one-shot armed before the run). Nothing here consults a wall clock or
//! an external RNG, so a (seed, plan) pair replays bit-identically — the
//! property the conformance fuzzer's shrinker depends on.
//!
//! Plans come from three places:
//!
//! * hand-written scenarios in tests (`FaultPlan { events: vec![...] }`),
//! * the seeded sampler ([`FaultPlan::sample`]) used by `themis_fuzz`,
//! * the versioned text form ([`FaultPlan::from_text`]) printed by the
//!   shrinker so a minimal repro can be pasted back into a run.
//!
//! The fault vocabulary mirrors what can actually go wrong under a ToR in
//! the paper's deployment model: uplink (cable) failure and flapping,
//! per-uplink delay spikes and random loss, corrupted reverse-path control
//! traffic (ACK/NACK ICRC failures), operator enable/disable of Themis
//! mid-run, and the §6 monitor-driven ECMP fallback cycle.

use crate::cluster::Cluster;
use netsim::event::{ControlMsg, Event};
use netsim::switch::Switch;
use netsim::types::QpId;
use simcore::rng::Xoshiro256;
use simcore::time::Nanos;

/// One fault, addressed by leaf index (position in `Cluster::leaves`) and,
/// where relevant, uplink index (0-based within the uplink group, i.e.
/// path index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Take a leaf uplink down: blackholes data *and* control, like a
    /// dead cable. Queued packets drain first.
    UplinkDown {
        /// Leaf index.
        leaf: u16,
        /// Uplink (path) index.
        uplink: u16,
    },
    /// Restore a downed uplink.
    UplinkUp {
        /// Leaf index.
        leaf: u16,
        /// Uplink (path) index.
        uplink: u16,
    },
    /// Add a fixed latency penalty to one uplink (congestion elsewhere,
    /// rerouted optics): widens path skew without dropping anything.
    DelaySpike {
        /// Leaf index.
        leaf: u16,
        /// Uplink (path) index.
        uplink: u16,
        /// Extra one-way latency in nanoseconds.
        extra_ns: u64,
    },
    /// Clear a delay spike.
    DelayClear {
        /// Leaf index.
        leaf: u16,
        /// Uplink (path) index.
        uplink: u16,
    },
    /// Random data-packet loss on one uplink at `rate_ppm` / 1e6.
    UplinkLoss {
        /// Leaf index.
        leaf: u16,
        /// Uplink (path) index.
        uplink: u16,
        /// Loss probability in packets-per-million.
        rate_ppm: u32,
    },
    /// Clear an uplink loss rate.
    UplinkLossClear {
        /// Leaf index.
        leaf: u16,
        /// Uplink (path) index.
        uplink: u16,
    },
    /// Corrupt reverse-path control (ACK/NACK/CNP) transiting this leaf
    /// at `rate_ppm` / 1e6 — the lost-ACK regime of §3.4.
    ReverseCorrupt {
        /// Leaf index.
        leaf: u16,
        /// Drop probability in packets-per-million.
        rate_ppm: u32,
    },
    /// Clear reverse-path corruption at a leaf.
    ReverseCorruptClear {
        /// Leaf index.
        leaf: u16,
    },
    /// Operator disables Themis spraying on one ToR mid-run.
    SprayOff {
        /// Leaf index.
        leaf: u16,
    },
    /// Operator re-enables Themis spraying.
    SprayOn {
        /// Leaf index.
        leaf: u16,
    },
    /// §6 monitor event: the ToR reverts to ECMP and parks its hook.
    TorFail {
        /// Leaf index.
        leaf: u16,
    },
    /// §6 monitor event: restore the scheme's LB policy and the hook.
    TorRecover {
        /// Leaf index.
        leaf: u16,
    },
    /// Arm a one-shot targeted drop of `(qp, psn)` at this leaf. Armed
    /// before the run regardless of the event's timestamp (the switch
    /// consumes it when the packet first transits).
    TargetedDrop {
        /// Leaf index.
        leaf: u16,
        /// Queue pair whose packet dies.
        qp: u32,
        /// PSN of the doomed packet.
        psn: u32,
    },
}

impl Fault {
    /// Stable lowercase tag used in the v1 text form.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::UplinkDown { .. } => "uplink_down",
            Fault::UplinkUp { .. } => "uplink_up",
            Fault::DelaySpike { .. } => "delay_spike",
            Fault::DelayClear { .. } => "delay_clear",
            Fault::UplinkLoss { .. } => "uplink_loss",
            Fault::UplinkLossClear { .. } => "uplink_loss_clear",
            Fault::ReverseCorrupt { .. } => "reverse_corrupt",
            Fault::ReverseCorruptClear { .. } => "reverse_corrupt_clear",
            Fault::SprayOff { .. } => "spray_off",
            Fault::SprayOn { .. } => "spray_on",
            Fault::TorFail { .. } => "tor_fail",
            Fault::TorRecover { .. } => "tor_recover",
            Fault::TargetedDrop { .. } => "targeted_drop",
        }
    }

    /// Whether this fault can destroy packets nondeterministically (from
    /// the transport's point of view), so an oracle must not insist on
    /// zero RTOs or exact retransmission counts.
    pub fn is_random_loss(&self) -> bool {
        matches!(
            self,
            Fault::UplinkLoss { .. } | Fault::ReverseCorrupt { .. } | Fault::UplinkDown { .. }
        )
    }

    /// Whether this fault can destroy control packets (ACK/NACK/CNP or
    /// handshakes), which excuses `nacks_forwarded_unknown` at Themis-D
    /// and sender RTOs.
    pub fn drops_control(&self) -> bool {
        matches!(
            self,
            Fault::UplinkDown { .. } | Fault::ReverseCorrupt { .. }
        )
    }
}

/// A fault at a timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation time the fault takes effect.
    pub at: Nanos,
    /// What happens.
    pub fault: Fault,
}

/// A reproducible fault scenario: events sorted by time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled fault events.
    pub events: Vec<FaultEvent>,
}

/// Header line of the v1 text serialization.
pub const FAULTPLAN_HEADER_V1: &str = "themis-faultplan v1";

impl FaultPlan {
    /// The empty plan (a fault-free run).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True if any event injects probabilistic loss (see
    /// [`Fault::is_random_loss`]).
    pub fn has_random_loss(&self) -> bool {
        self.events.iter().any(|e| e.fault.is_random_loss())
    }

    /// True if any event can destroy control packets.
    pub fn drops_control(&self) -> bool {
        self.events.iter().any(|e| e.fault.drops_control())
    }

    /// Sort events by (time, text form) for a canonical order.
    pub fn normalize(&mut self) {
        self.events
            .sort_by_key(|e| (e.at.as_nanos(), event_line(e)));
    }

    /// Schedule every event into the cluster. Uplink indices address
    /// ports `hosts_per_leaf + uplink` at the leaf; events whose leaf or
    /// uplink is out of range for this fabric are skipped (a shrunk plan
    /// must stay installable on smaller topologies).
    pub fn install(&self, cluster: &mut Cluster) {
        let hpl = cluster.hosts.len() / cluster.leaves.len().max(1);
        let n_up = cluster.n_paths;
        for ev in &self.events {
            let Some(&node) = cluster.leaves.get(leaf_of(&ev.fault) as usize) else {
                continue;
            };
            let port = |uplink: u16| (hpl + uplink as usize) as u16;
            let msg = match ev.fault {
                Fault::UplinkDown { uplink, .. } | Fault::UplinkUp { uplink, .. }
                    if uplink as usize >= n_up =>
                {
                    continue;
                }
                Fault::UplinkDown { uplink, .. } => ControlMsg::SetPortDown {
                    port: port(uplink),
                    down: true,
                },
                Fault::UplinkUp { uplink, .. } => ControlMsg::SetPortDown {
                    port: port(uplink),
                    down: false,
                },
                Fault::DelaySpike {
                    uplink, extra_ns, ..
                } => ControlMsg::SetPortExtraDelay {
                    port: port(uplink),
                    extra_ns,
                },
                Fault::DelayClear { uplink, .. } => ControlMsg::SetPortExtraDelay {
                    port: port(uplink),
                    extra_ns: 0,
                },
                Fault::UplinkLoss {
                    uplink, rate_ppm, ..
                } => ControlMsg::SetPortLossRate {
                    port: port(uplink),
                    rate_ppm,
                },
                Fault::UplinkLossClear { uplink, .. } => ControlMsg::SetPortLossRate {
                    port: port(uplink),
                    rate_ppm: 0,
                },
                Fault::ReverseCorrupt { rate_ppm, .. } => {
                    ControlMsg::SetReverseCorruptRate { rate_ppm }
                }
                Fault::ReverseCorruptClear { .. } => {
                    ControlMsg::SetReverseCorruptRate { rate_ppm: 0 }
                }
                Fault::SprayOff { .. } => ControlMsg::SetSprayEnabled { on: false },
                Fault::SprayOn { .. } => ControlMsg::SetSprayEnabled { on: true },
                Fault::TorFail { .. } => ControlMsg::TorLinkFailure,
                Fault::TorRecover { .. } => ControlMsg::TorLinkRecovery {
                    lb: cluster.scheme.lb_policy(),
                },
                Fault::TargetedDrop { qp, psn, .. } => {
                    if let Some(sw) = cluster.world.get_mut::<Switch>(node) {
                        sw.inject_targeted_drop(QpId(qp), psn);
                    }
                    continue;
                }
            };
            cluster.world.seed_event(ev.at, node, Event::Control(msg));
        }
    }

    /// Serialize to the versioned line format (stable across releases;
    /// pinned by `tests/golden/faultplan_v1.txt`).
    pub fn to_text(&self) -> String {
        let mut out = String::from(FAULTPLAN_HEADER_V1);
        out.push('\n');
        for ev in &self.events {
            out.push_str(&event_line(ev));
            out.push('\n');
        }
        out
    }

    /// Parse the v1 text form. Blank lines and `#` comments are ignored.
    pub fn from_text(text: &str) -> Result<FaultPlan, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some(FAULTPLAN_HEADER_V1) => {}
            Some(h) => return Err(format!("unsupported fault-plan header: {h:?}")),
            None => return Err("empty fault plan".into()),
        }
        let mut events = Vec::new();
        for line in lines {
            events.push(parse_event_line(line)?);
        }
        Ok(FaultPlan { events })
    }

    /// Sample a random plan from `space` using only `rng` — the same
    /// (seed, space) always yields the same plan. Faults come in paired
    /// *episodes* (inject at `t0`, clear at `t1`), at most one episode per
    /// resource (kind × leaf × uplink), so every fault is eventually
    /// cleared and windows never interleave on one resource. Timestamps
    /// are quantized to microseconds.
    pub fn sample(rng: &mut Xoshiro256, space: &FaultSpace) -> FaultPlan {
        let mut plan = FaultPlan::default();
        let mut used: Vec<(u8, u16, u16)> = Vec::new();
        let n_episodes = rng.next_range(0, space.max_episodes as u64 + 1) as usize;
        for _ in 0..n_episodes {
            sample_episode(rng, space, &mut used, &mut plan.events);
        }
        plan.normalize();
        plan
    }
}

/// The sampling domain for [`FaultPlan::sample`].
#[derive(Debug, Clone)]
pub struct FaultSpace {
    /// Leaves in the target fabric.
    pub n_leaves: usize,
    /// Uplinks (paths) per leaf.
    pub n_uplinks: usize,
    /// Run horizon; episodes land inside `[5%, 90%]` of it.
    pub horizon: Nanos,
    /// Maximum episodes per plan (actual count is uniform in `0..=max`).
    pub max_episodes: usize,
    /// Connections the traffic will use, as `(qp, n_psn)` — lets the
    /// sampler aim targeted drops at PSNs that will really be sent.
    pub targets: Vec<(u32, u32)>,
}

fn leaf_of(f: &Fault) -> u16 {
    match *f {
        Fault::UplinkDown { leaf, .. }
        | Fault::UplinkUp { leaf, .. }
        | Fault::DelaySpike { leaf, .. }
        | Fault::DelayClear { leaf, .. }
        | Fault::UplinkLoss { leaf, .. }
        | Fault::UplinkLossClear { leaf, .. }
        | Fault::ReverseCorrupt { leaf, .. }
        | Fault::ReverseCorruptClear { leaf, .. }
        | Fault::SprayOff { leaf }
        | Fault::SprayOn { leaf }
        | Fault::TorFail { leaf }
        | Fault::TorRecover { leaf }
        | Fault::TargetedDrop { leaf, .. } => leaf,
    }
}

fn event_line(ev: &FaultEvent) -> String {
    let t = ev.at.as_nanos();
    let k = ev.fault.kind();
    match ev.fault {
        Fault::UplinkDown { leaf, uplink }
        | Fault::UplinkUp { leaf, uplink }
        | Fault::DelayClear { leaf, uplink }
        | Fault::UplinkLossClear { leaf, uplink } => {
            format!("at={t} kind={k} leaf={leaf} uplink={uplink}")
        }
        Fault::DelaySpike {
            leaf,
            uplink,
            extra_ns,
        } => format!("at={t} kind={k} leaf={leaf} uplink={uplink} extra_ns={extra_ns}"),
        Fault::UplinkLoss {
            leaf,
            uplink,
            rate_ppm,
        } => format!("at={t} kind={k} leaf={leaf} uplink={uplink} rate_ppm={rate_ppm}"),
        Fault::ReverseCorrupt { leaf, rate_ppm } => {
            format!("at={t} kind={k} leaf={leaf} rate_ppm={rate_ppm}")
        }
        Fault::ReverseCorruptClear { leaf }
        | Fault::SprayOff { leaf }
        | Fault::SprayOn { leaf }
        | Fault::TorFail { leaf }
        | Fault::TorRecover { leaf } => format!("at={t} kind={k} leaf={leaf}"),
        Fault::TargetedDrop { leaf, qp, psn } => {
            format!("at={t} kind={k} leaf={leaf} qp={qp} psn={psn}")
        }
    }
}

fn parse_event_line(line: &str) -> Result<FaultEvent, String> {
    let mut at: Option<u64> = None;
    let mut kind: Option<&str> = None;
    let mut fields: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for tok in line.split_whitespace() {
        let (key, val) = tok
            .split_once('=')
            .ok_or_else(|| format!("bad token {tok:?} in {line:?}"))?;
        match key {
            "kind" => kind = Some(val),
            _ => {
                let n: u64 = val
                    .parse()
                    .map_err(|_| format!("bad value {val:?} for {key} in {line:?}"))?;
                if key == "at" {
                    at = Some(n);
                } else {
                    fields.insert(key, n);
                }
            }
        }
    }
    let at = Nanos(at.ok_or_else(|| format!("missing at= in {line:?}"))?);
    let kind = kind.ok_or_else(|| format!("missing kind= in {line:?}"))?;
    let get = |k: &str| -> Result<u64, String> {
        fields
            .get(k)
            .copied()
            .ok_or_else(|| format!("missing {k}= in {line:?}"))
    };
    let leaf = get("leaf")? as u16;
    let fault = match kind {
        "uplink_down" => Fault::UplinkDown {
            leaf,
            uplink: get("uplink")? as u16,
        },
        "uplink_up" => Fault::UplinkUp {
            leaf,
            uplink: get("uplink")? as u16,
        },
        "delay_spike" => Fault::DelaySpike {
            leaf,
            uplink: get("uplink")? as u16,
            extra_ns: get("extra_ns")?,
        },
        "delay_clear" => Fault::DelayClear {
            leaf,
            uplink: get("uplink")? as u16,
        },
        "uplink_loss" => Fault::UplinkLoss {
            leaf,
            uplink: get("uplink")? as u16,
            rate_ppm: get("rate_ppm")? as u32,
        },
        "uplink_loss_clear" => Fault::UplinkLossClear {
            leaf,
            uplink: get("uplink")? as u16,
        },
        "reverse_corrupt" => Fault::ReverseCorrupt {
            leaf,
            rate_ppm: get("rate_ppm")? as u32,
        },
        "reverse_corrupt_clear" => Fault::ReverseCorruptClear { leaf },
        "spray_off" => Fault::SprayOff { leaf },
        "spray_on" => Fault::SprayOn { leaf },
        "tor_fail" => Fault::TorFail { leaf },
        "tor_recover" => Fault::TorRecover { leaf },
        "targeted_drop" => Fault::TargetedDrop {
            leaf,
            qp: get("qp")? as u32,
            psn: get("psn")? as u32,
        },
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    Ok(FaultEvent { at, fault })
}

/// Episode classes the sampler draws from (weights in `sample_episode`).
const EPISODE_CLASSES: u8 = 7;

fn sample_episode(
    rng: &mut Xoshiro256,
    space: &FaultSpace,
    used: &mut Vec<(u8, u16, u16)>,
    out: &mut Vec<FaultEvent>,
) {
    let class = rng.next_below(EPISODE_CLASSES as u64) as u8;
    let leaf = rng.next_below(space.n_leaves.max(1) as u64) as u16;
    let uplink = rng.next_below(space.n_uplinks.max(1) as u64) as u16;
    let key = (class, leaf, uplink);
    if used.contains(&key) {
        return; // one episode per resource; fewer faults, never overlap
    }
    used.push(key);

    // Window inside [5%, 90%] of the horizon, quantized to µs.
    let h_us = space.horizon.as_nanos() / 1_000;
    let lo = h_us / 20;
    let hi = h_us * 9 / 10;
    if lo + 2 >= hi {
        return;
    }
    let t0 = rng.next_range(lo, hi - 1);
    let t1 = rng.next_range(t0 + 1, hi);
    let (t0, t1) = (Nanos(t0 * 1_000), Nanos(t1 * 1_000));

    match class {
        0 => {
            // Uplink down/up — possibly flapping (1–3 sub-windows).
            let flaps = rng.next_range(1, 4);
            let span = (t1.as_nanos() - t0.as_nanos()) / flaps;
            for i in 0..flaps {
                let s = Nanos(t0.as_nanos() + i * span);
                let e = Nanos(s.as_nanos() + span / 2 + 1_000);
                out.push(FaultEvent {
                    at: s,
                    fault: Fault::UplinkDown { leaf, uplink },
                });
                out.push(FaultEvent {
                    at: e,
                    fault: Fault::UplinkUp { leaf, uplink },
                });
            }
        }
        1 => {
            // Delay spike: 1–40 µs of extra one-way latency.
            let extra_ns = rng.next_range(1, 41) * 1_000;
            out.push(FaultEvent {
                at: t0,
                fault: Fault::DelaySpike {
                    leaf,
                    uplink,
                    extra_ns,
                },
            });
            out.push(FaultEvent {
                at: t1,
                fault: Fault::DelayClear { leaf, uplink },
            });
        }
        2 => {
            // Random uplink loss: 100 ppm – 5%.
            let rate_ppm = rng.next_range(100, 50_001) as u32;
            out.push(FaultEvent {
                at: t0,
                fault: Fault::UplinkLoss {
                    leaf,
                    uplink,
                    rate_ppm,
                },
            });
            out.push(FaultEvent {
                at: t1,
                fault: Fault::UplinkLossClear { leaf, uplink },
            });
        }
        3 => {
            // Reverse-path control corruption: 100 ppm – 2%.
            let rate_ppm = rng.next_range(100, 20_001) as u32;
            out.push(FaultEvent {
                at: t0,
                fault: Fault::ReverseCorrupt { leaf, rate_ppm },
            });
            out.push(FaultEvent {
                at: t1,
                fault: Fault::ReverseCorruptClear { leaf },
            });
        }
        4 => {
            // Operator toggles Themis off/on.
            out.push(FaultEvent {
                at: t0,
                fault: Fault::SprayOff { leaf },
            });
            out.push(FaultEvent {
                at: t1,
                fault: Fault::SprayOn { leaf },
            });
        }
        5 => {
            // §6 failure-monitor fallback cycle.
            out.push(FaultEvent {
                at: t0,
                fault: Fault::TorFail { leaf },
            });
            out.push(FaultEvent {
                at: t1,
                fault: Fault::TorRecover { leaf },
            });
        }
        _ => {
            // Targeted drops: 1–4 distinct (qp, psn) kills. PSNs stay
            // clear of the message tail so a same-path successor exists
            // to prove the loss (Eq. 3 evidence for compensation).
            if space.targets.is_empty() {
                return;
            }
            let kills = rng.next_range(1, 5);
            for _ in 0..kills {
                let (qp, n_psn) =
                    space.targets[rng.next_below(space.targets.len() as u64) as usize];
                let margin = 4 * space.n_uplinks.max(1) as u32;
                if n_psn <= margin + 1 {
                    continue;
                }
                let psn = rng.next_below((n_psn - margin) as u64) as u32;
                out.push(FaultEvent {
                    at: Nanos::ZERO,
                    fault: Fault::TargetedDrop { leaf, qp, psn },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan(seed: u64) -> FaultPlan {
        let mut rng = Xoshiro256::seeded(seed);
        let space = FaultSpace {
            n_leaves: 4,
            n_uplinks: 2,
            horizon: Nanos::from_millis(10),
            max_episodes: 6,
            targets: vec![(1, 900), (2, 900)],
        };
        FaultPlan::sample(&mut rng, &space)
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        for seed in 0..50 {
            let plan = sample_plan(seed);
            let parsed = FaultPlan::from_text(&plan.to_text()).unwrap();
            assert_eq!(plan, parsed, "seed {seed}");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(sample_plan(42), sample_plan(42));
    }

    #[test]
    fn every_injection_is_paired_with_a_clear() {
        for seed in 0..100 {
            let plan = sample_plan(seed);
            for ev in &plan.events {
                let pair = |clear: &dyn Fn(&Fault) -> bool| {
                    assert!(
                        plan.events.iter().any(|e| e.at > ev.at && clear(&e.fault)),
                        "unpaired {:?} (seed {seed})",
                        ev.fault
                    );
                };
                match ev.fault {
                    Fault::UplinkDown { leaf, uplink } => {
                        pair(&|f| *f == Fault::UplinkUp { leaf, uplink })
                    }
                    Fault::DelaySpike { leaf, uplink, .. } => {
                        pair(&|f| *f == Fault::DelayClear { leaf, uplink })
                    }
                    Fault::UplinkLoss { leaf, uplink, .. } => {
                        pair(&|f| *f == Fault::UplinkLossClear { leaf, uplink })
                    }
                    Fault::ReverseCorrupt { leaf, .. } => {
                        pair(&|f| *f == Fault::ReverseCorruptClear { leaf })
                    }
                    Fault::SprayOff { leaf } => pair(&|f| *f == Fault::SprayOn { leaf }),
                    Fault::TorFail { leaf } => pair(&|f| *f == Fault::TorRecover { leaf }),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn rejects_bad_header_and_bad_lines() {
        assert!(FaultPlan::from_text("").is_err());
        assert!(FaultPlan::from_text("themis-faultplan v9\n").is_err());
        let bad = format!("{FAULTPLAN_HEADER_V1}\nat=1 kind=warp_core_breach leaf=0\n");
        assert!(FaultPlan::from_text(&bad).is_err());
        let missing = format!("{FAULTPLAN_HEADER_V1}\nkind=tor_fail leaf=0\n");
        assert!(FaultPlan::from_text(&missing).is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = format!("{FAULTPLAN_HEADER_V1}\n\n# a comment\nat=5000 kind=spray_off leaf=1\n");
        let plan = FaultPlan::from_text(&text).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.events[0].fault, Fault::SprayOff { leaf: 1 });
    }
}
