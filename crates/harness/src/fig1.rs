//! The §2.2 motivation experiment (Figure 1).
//!
//! Fig 1a topology: 8 hosts, two interleaved 4-node ring groups, every
//! ring hop cross-rack, 100 Gbps links, **random packet spraying** over
//! the 2 spine paths, NIC-SR + DCQCN. Each node sends `bytes_per_flow`
//! (paper: 100 MB) to its ring successor.
//!
//! * **Fig 1b** — the chosen flow's retransmission ratio over time
//!   (paper: average ≈ 0.16).
//! * **Fig 1c** — the chosen flow's sending rate over time (paper: rate
//!   sawtooths below the 100 Gbps line rate, average ≈ 86 Gbps).
//! * **Fig 1d** — average per-flow throughput, NIC-SR vs. the Ideal
//!   transport (paper: 68.09 vs. 95.43 Gbps).

use crate::experiment::{Collective, ExperimentConfig};
use crate::scheme::Scheme;
use collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use collectives::groups::all_groups;
use netsim::event::Event;
use netsim::types::NodeId;
use rnic::{Nic, NicConfig};
use simcore::time::{Nanos, TimeDelta};

/// Transport flavours compared in Fig 1d.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig1Transport {
    /// Commodity NIC-SR + DCQCN (NACKs slow the sender).
    NicSr,
    /// The ideal upper bound: oracle-filtered NACKs, no slowdowns.
    Ideal,
}

/// Result of one Fig 1 run.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Which transport ran.
    pub transport: Fig1Transport,
    /// Chosen flow's retransmission ratio per time bin (Fig 1b):
    /// `(bin start in µs, ratio)`.
    pub retx_ratio_series: Vec<(f64, f64)>,
    /// Chosen flow's sending rate per time bin (Fig 1c):
    /// `(bin start in µs, Gbit/s)`.
    pub rate_series: Vec<(f64, f64)>,
    /// All-flow average retransmission ratio (paper: ≈ 0.16).
    pub avg_retx_ratio: f64,
    /// Chosen flow's average sending rate in Gbit/s (paper: ≈ 86).
    pub avg_rate_gbps: f64,
    /// Mean per-flow goodput in Gbit/s (Fig 1d bar).
    pub mean_flow_throughput_gbps: f64,
    /// Whether every flow completed before the horizon.
    pub completed: bool,
    /// Total data packets / retransmissions (diagnostics).
    pub data_packets: u64,
    /// Retransmitted packets across all flows.
    pub retx_packets: u64,
    /// Fabric drops (should be 0: no loss in the motivation setup).
    pub drops: u64,
    /// Full telemetry snapshot of the run (see DESIGN.md "Observability").
    pub telemetry: telemetry::RunReport,
}

/// Run the Fig 1 motivation experiment.
///
/// `bytes_per_flow` is the paper's 100 MB at full scale; smaller values
/// preserve the shape. Bin widths control series resolution. Shard count
/// comes from `THEMIS_SHARDS` (see [`crate::knobs`]).
pub fn run_fig1(
    transport: Fig1Transport,
    bytes_per_flow: u64,
    trace_bin: TimeDelta,
    seed: u64,
) -> Fig1Result {
    run_fig1_sharded(
        transport,
        bytes_per_flow,
        trace_bin,
        seed,
        crate::knobs::shards_from_env(),
    )
}

/// [`run_fig1`] with an explicit engine shard count (1 = serial). The
/// result — including the telemetry snapshot — is bit-identical for any
/// shard count.
pub fn run_fig1_sharded(
    transport: Fig1Transport,
    bytes_per_flow: u64,
    trace_bin: TimeDelta,
    seed: u64,
    shards: usize,
) -> Fig1Result {
    let mut cfg = ExperimentConfig::motivation_small(Scheme::RandomSpray, seed);
    cfg.shards = shards;
    let line = cfg.fabric.host_link.bandwidth_bps;
    cfg.nic = match transport {
        Fig1Transport::NicSr => NicConfig::nic_sr(line),
        Fig1Transport::Ideal => NicConfig::ideal(line),
    };
    // The paper does not state Fig 1's DCQCN parameters. The fast-recovery
    // regime (T_I = 10 µs, T_D = 100 µs) reproduces the reported shape: a
    // sending-rate sawtooth averaging ~86% of line rate with dips toward
    // 50%, and a double-digit retransmission ratio. See EXPERIMENTS.md.
    if transport == Fig1Transport::NicSr {
        cfg.nic.cc = rnic::CcConfig::with_ti_td(line, 10, 100);
    }
    cfg.horizon = Nanos::from_secs(60);

    let mut cluster =
        crate::cluster::build_cluster_sharded(&cfg.fabric, cfg.nic, cfg.scheme, cfg.shards);
    let groups = all_groups(cfg.fabric.n_leaves, cfg.fabric.hosts_per_leaf);
    let mut alloc = QpAllocator::new(seed ^ 0xF1_61);
    let mut driver = Driver::new();
    let mut chosen_qp = None;
    let mut flow_bytes = Vec::new();
    for hosts in &groups {
        let schedule = Collective::RingOnce.schedule(hosts.len(), bytes_per_flow);
        for t in &schedule.transfers {
            flow_bytes.push(t.bytes);
        }
        let spec = setup_collective(
            &mut cluster.world,
            cluster.driver,
            hosts,
            schedule,
            &mut alloc,
        );
        // The paper's chosen flow: node 0 -> node 2, i.e. group 0 rank 0.
        if chosen_qp.is_none() {
            chosen_qp = Some((spec.hosts[0], spec.qp_of_transfer[0]));
        }
        driver.add_instance(spec);
    }
    let (chosen_host, chosen_qp) = chosen_qp.expect("at least one group");
    cluster
        .world
        .get_mut::<Nic>(NodeId(chosen_host.0))
        .expect("chosen NIC")
        .enable_send_trace(chosen_qp, trace_bin);

    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);

    // ---- extract ----
    let driver: &Driver = cluster.world.get(cluster.driver).expect("driver");
    let start = driver.started_at().unwrap_or(Nanos::ZERO);
    let completed = driver.all_complete();

    // Per-flow goodput: every instance transfer is one flow.
    let mut per_flow_gbps = Vec::new();
    let mut flow_idx = 0;
    for i in 0..driver.num_instances() {
        for t in driver.delivery_times(i) {
            if let Some(done) = t {
                let secs = done.since(start).as_secs_f64();
                if secs > 0.0 {
                    per_flow_gbps.push(flow_bytes[flow_idx] as f64 * 8.0 / secs / 1e9);
                }
            }
            flow_idx += 1;
        }
    }
    let mean_flow_throughput_gbps = if per_flow_gbps.is_empty() {
        0.0
    } else {
        per_flow_gbps.iter().sum::<f64>() / per_flow_gbps.len() as f64
    };

    let nics = crate::experiment::aggregate_nics(&cluster);
    let chosen: &Nic = cluster
        .world
        .get(NodeId(chosen_host.0))
        .expect("chosen NIC");
    let sqp = chosen.send_qp(chosen_qp).expect("traced QP");
    let trace = sqp.trace.as_ref().expect("trace enabled");
    let retx_ratio_series: Vec<(f64, f64)> = trace
        .retx_ratio
        .means()
        .into_iter()
        .map(|(t, v)| (t.as_micros_f64(), v))
        .collect();
    let rate_series: Vec<(f64, f64)> = trace
        .rate
        .series_gbps()
        .into_iter()
        .map(|(t, v)| (t.as_micros_f64(), v))
        .collect();
    let avg_rate_gbps = trace.rate.mean_gbps();

    let fabric = netsim::trace::fabric_summary(&cluster.world, &cluster.all_switches());

    let mut telemetry = cluster.snapshot_merged();
    telemetry.push_counter("agg.nic.data_packets", nics.data_packets);
    telemetry.push_counter("agg.nic.retx_packets", nics.retx_packets);
    telemetry.push_counter("agg.fabric.drops", fabric.total_drops());
    telemetry.push_gauge("run.avg_retx_ratio", nics.retx_ratio());
    telemetry.push_gauge("run.avg_rate_gbps", avg_rate_gbps);
    telemetry.push_gauge("run.mean_flow_throughput_gbps", mean_flow_throughput_gbps);
    telemetry.sort();

    Fig1Result {
        transport,
        retx_ratio_series,
        rate_series,
        avg_retx_ratio: nics.retx_ratio(),
        avg_rate_gbps,
        mean_flow_throughput_gbps,
        completed,
        data_packets: nics.data_packets,
        retx_packets: nics.retx_packets,
        drops: fabric.total_drops(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down Fig 1 run (2 MB flows) exercises the whole pipeline.
    #[test]
    fn nic_sr_shows_spurious_retransmissions_and_slowdown() {
        let r = run_fig1(
            Fig1Transport::NicSr,
            2 << 20,
            TimeDelta::from_micros(20),
            42,
        );
        assert!(r.completed, "flows must finish");
        assert_eq!(r.drops, 0, "no loss in the motivation scenario");
        // The paper's headline: double-digit spurious retransmission rate.
        assert!(
            r.avg_retx_ratio > 0.02,
            "expected visible spurious retx, got {}",
            r.avg_retx_ratio
        );
        assert!(r.retx_packets > 0);
        // Sending rate sits below line rate on average.
        assert!(r.avg_rate_gbps < 100.0);
        assert!(!r.rate_series.is_empty());
        assert!(!r.retx_ratio_series.is_empty());
    }

    #[test]
    fn ideal_transport_is_clean_and_faster() {
        let sr = run_fig1(
            Fig1Transport::NicSr,
            2 << 20,
            TimeDelta::from_micros(20),
            42,
        );
        let ideal = run_fig1(
            Fig1Transport::Ideal,
            2 << 20,
            TimeDelta::from_micros(20),
            42,
        );
        assert!(ideal.completed);
        assert_eq!(ideal.retx_packets, 0, "no loss -> ideal never retransmits");
        assert!(
            ideal.mean_flow_throughput_gbps > sr.mean_flow_throughput_gbps,
            "ideal {} must beat NIC-SR {}",
            ideal.mean_flow_throughput_gbps,
            sr.mean_flow_throughput_gbps
        );
    }
}
