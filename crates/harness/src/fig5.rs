//! The §5 evaluation sweep (Figure 5).
//!
//! 16×16 leaf-spine at 400 Gbps, 16 groups × 16 NICs, Allreduce or
//! Alltoall per group, all groups simultaneous, metric = slowest group's
//! completion time. Swept over the five DCQCN `(T_I, T_D)` configurations
//! of the paper's x-axis for ECMP, Adaptive Routing and Themis.

use crate::experiment::{
    run_collective, run_fat_tree_rings, Collective, ExperimentConfig, ExperimentResult,
};
use crate::scheme::Scheme;
use crate::sweep::SweepRunner;
use netsim::fat_tree::FatTreeConfig;
use rnic::{CcConfig, NicConfig};
use simcore::time::{Nanos, TimeDelta};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// DCQCN rate-increase timer (µs).
    pub ti_us: u64,
    /// DCQCN rate-decrease interval (µs).
    pub td_us: u64,
    /// Scheme.
    pub scheme: Scheme,
    /// Slowest-group completion time.
    pub tail_ct: Option<TimeDelta>,
    /// Full metrics.
    pub result: ExperimentResult,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Collective per group (Allreduce for 5a, Alltoall for 5b).
    pub collective: Collective,
    /// Per-group buffer size in bytes (paper: 300 MB; the default harness
    /// scales this down — document the factor in reports).
    pub total_bytes: u64,
    /// Schemes to compare.
    pub schemes: Vec<Scheme>,
    /// `(T_I, T_D)` microsecond pairs.
    pub sweep: Vec<(u64, u64)>,
    /// Root seed.
    pub seed: u64,
    /// Engine shards per cell (1 = serial; composes with the sweep's
    /// `--jobs` fan-out, see [`crate::knobs`]). Cell results are
    /// bit-identical for any value.
    pub shards: usize,
}

impl Fig5Config {
    /// The paper's configuration with a scaled buffer size. Shard count
    /// comes from `THEMIS_SHARDS`.
    pub fn paper(collective: Collective, total_bytes: u64, seed: u64) -> Fig5Config {
        Fig5Config {
            collective,
            total_bytes,
            schemes: Scheme::PAPER_FIG5.to_vec(),
            sweep: CcConfig::paper_sweep().to_vec(),
            seed,
            shards: crate::knobs::shards_from_env(),
        }
    }
}

/// Run the full sweep serially. Points are produced scheme-major per
/// DCQCN config, matching the figure's bar grouping.
pub fn run_fig5(cfg: &Fig5Config) -> Vec<Fig5Point> {
    run_fig5_with(cfg, SweepRunner::new(1))
}

/// Run the full sweep, fanning cells over `runner`'s workers. Every
/// cell is an independent simulation; the output order (and, per cell,
/// every metric) is identical for any worker count.
pub fn run_fig5_with(cfg: &Fig5Config, runner: SweepRunner) -> Vec<Fig5Point> {
    let cells: Vec<(u64, u64, Scheme)> = cfg
        .sweep
        .iter()
        .flat_map(|&(ti, td)| cfg.schemes.iter().map(move |&s| (ti, td, s)))
        .collect();
    runner.run(&cells, |&(ti, td, scheme)| {
        let mut exp = ExperimentConfig::paper_eval(scheme, ti, td, cfg.seed);
        exp.shards = cfg.shards;
        let result = run_collective(&exp, cfg.collective, cfg.total_bytes);
        Fig5Point {
            ti_us: ti,
            td_us: td,
            scheme,
            tail_ct: result.tail_ct,
            result,
        }
    })
}

/// One point of the fat-tree cross-scheme leg (`fig5 --fat-tree`).
#[derive(Debug, Clone)]
pub struct FatTreePoint {
    /// Scheme.
    pub scheme: Scheme,
    /// Slowest-ring completion time.
    pub tail_ct: Option<TimeDelta>,
    /// Full metrics (telemetry label: `fattree_k<k>/<scheme>`).
    pub result: ExperimentResult,
}

/// Configuration of the fat-tree cross-scheme leg.
#[derive(Debug, Clone)]
pub struct FatTreeLegConfig {
    /// Switch radix (16 → 1024 hosts).
    pub k: usize,
    /// Inter-pod rings run concurrently.
    pub groups: usize,
    /// Bytes per ring transfer.
    pub bytes_per_ring: u64,
    /// Root seed.
    pub seed: u64,
    /// Engine shards per cell.
    pub shards: usize,
}

impl FatTreeLegConfig {
    /// The ISSUE-mandated k=16 leg: 1024 hosts, a handful of inter-pod
    /// rings, small transfers so a 7-scheme sweep stays interactive.
    pub fn k16(bytes_per_ring: u64, seed: u64) -> FatTreeLegConfig {
        FatTreeLegConfig {
            k: 16,
            groups: 8,
            bytes_per_ring,
            seed,
            shards: crate::knobs::shards_from_env(),
        }
    }
}

/// Run the fat-tree inter-pod ring workload once per scheme, fanning
/// schemes over `runner`'s workers. Output order and every per-cell
/// metric are identical for any worker or shard count.
pub fn run_fig5_fat_tree(
    cfg: &FatTreeLegConfig,
    schemes: &[Scheme],
    runner: SweepRunner,
) -> Vec<FatTreePoint> {
    let mut fabric = FatTreeConfig::small(cfg.k);
    fabric.seed = cfg.seed;
    let nic = NicConfig::nic_sr(fabric.host_link.bandwidth_bps);
    runner.run(schemes, |&scheme| {
        let (result, _cluster) = run_fat_tree_rings(
            &fabric,
            nic,
            scheme,
            cfg.seed,
            cfg.shards,
            cfg.groups,
            cfg.bytes_per_ring,
            Nanos::from_secs(5),
        );
        FatTreePoint {
            scheme,
            tail_ct: result.tail_ct,
            result,
        }
    })
}

/// Relative improvement of `a` over `b` in percent
/// (`(b − a) / b × 100`; positive = `a` faster).
pub fn improvement_pct(a: TimeDelta, b: TimeDelta) -> f64 {
    if b.as_nanos() == 0 {
        return 0.0;
    }
    (b.as_nanos() as f64 - a.as_nanos() as f64) / b.as_nanos() as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        let a = TimeDelta::from_micros(50);
        let b = TimeDelta::from_micros(100);
        assert!((improvement_pct(a, b) - 50.0).abs() < 1e-9);
        assert!((improvement_pct(b, b)).abs() < 1e-9);
        assert!(improvement_pct(b, a) < 0.0);
        assert_eq!(improvement_pct(a, TimeDelta::ZERO), 0.0);
    }

    /// A miniature Fig 5 point: small fabric stand-in is exercised by the
    /// heavier integration tests; here we only validate sweep plumbing on
    /// a tiny buffer so the unit suite stays fast.
    #[test]
    fn sweep_produces_scheme_major_points() {
        let cfg = Fig5Config {
            collective: Collective::Allreduce,
            total_bytes: 256 * 1024,
            schemes: vec![Scheme::Ecmp, Scheme::Themis],
            sweep: vec![(10, 4)],
            seed: 2,
            shards: 1,
        };
        // Shrink the fabric via a custom run: reuse paper_eval but at this
        // scale the full 256-host build is still constructed; keep the
        // buffer tiny so the run is quick.
        let points = run_fig5(&cfg);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].scheme, Scheme::Ecmp);
        assert_eq!(points[1].scheme, Scheme::Themis);
        for p in &points {
            assert!(p.tail_ct.is_some(), "{} did not complete", p.scheme.label());
        }
    }
}
