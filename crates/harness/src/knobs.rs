//! Shared parsing of the harness parallelism knobs.
//!
//! The harness exposes **two orthogonal** parallelism axes, and every
//! binary spells them the same way:
//!
//! * **`--jobs N` / `THEMIS_JOBS`** — *sweep-level* fan-out: how many
//!   independent `(config, seed, scheme)` cells run concurrently, each
//!   on its own worker thread with its own serial (or sharded) world.
//!   See [`crate::sweep::SweepRunner`].
//! * **`--shards N` / `THEMIS_SHARDS`** — *within-run* parallelism: how
//!   many engine shards one simulation is partitioned into
//!   (conservative-window parallel discrete-event execution, see
//!   `netsim::world::ShardPlan`). Results are bit-identical to a serial
//!   run for any shard count. The spelling `auto` picks the machine's
//!   available parallelism (see [`auto_shards`]).
//!
//! The two **compose multiplicatively**: `--jobs 4 --shards 2` runs up
//! to 8 simulation threads. Large sweeps of small cells want jobs
//! (perfect scaling, zero synchronization); single big runs want shards
//! (windowed barrier synchronization, but speeds up the one run you are
//! waiting on). The CLI flag always wins over the environment variable,
//! which wins over the default of 1.

/// Shard count chosen by the `auto` spelling: the std runtime's view of
/// available parallelism (respects cgroup CPU quotas), 1 when unknown.
/// Partition builders further clamp to the topology's shard ceiling.
pub fn auto_shards() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parse one shard-count spelling: a plain integer or `auto`.
fn parse_shards(s: &str) -> Option<usize> {
    if s.eq_ignore_ascii_case("auto") {
        Some(auto_shards())
    } else {
        s.parse().ok()
    }
}

/// Value of a `usize` environment knob, or `default` when unset or
/// unparsable.
fn usize_from_env(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Sweep worker count from `THEMIS_JOBS` (default 1, clamped ≥ 1).
pub fn jobs_from_env() -> usize {
    usize_from_env("THEMIS_JOBS", 1).max(1)
}

/// Engine shard count from `THEMIS_SHARDS` (default 1 = serial,
/// clamped ≥ 1; `auto` = [`auto_shards`]). Partition builders
/// additionally clamp to the topology's natural shard ceiling (leaf or
/// pod count).
pub fn shards_from_env() -> usize {
    std::env::var("THEMIS_SHARDS")
        .ok()
        .and_then(|s| parse_shards(&s))
        .unwrap_or(1)
        .max(1)
}

/// Strip one flag (either spelling) from an argument list, parsing its
/// value with `parse`. Returns the last parsed value and the remaining
/// args.
fn take_value_arg(
    args: Vec<String>,
    long: &str,
    short: &str,
    parse: impl Fn(&str) -> Option<usize>,
) -> (Option<usize>, Vec<String>) {
    let mut value = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        if (args[i] == long || args[i] == short) && i + 1 < args.len() {
            if let Some(n) = parse(&args[i + 1]) {
                value = Some(n);
                i += 2;
                continue;
            }
        }
        rest.push(args[i].clone());
        i += 1;
    }
    (value, rest)
}

/// Parse and remove `--jobs N` / `-j N` from an argument list; falls
/// back to [`jobs_from_env`]. Returns the job count (≥ 1) and the
/// remaining args.
pub fn take_jobs_arg(args: Vec<String>) -> (usize, Vec<String>) {
    let (v, rest) = take_value_arg(args, "--jobs", "-j", |s| s.parse().ok());
    (v.unwrap_or_else(jobs_from_env).max(1), rest)
}

/// Parse and remove `--shards N` / `-s N` (or `--shards auto`) from an
/// argument list; falls back to [`shards_from_env`]. Returns the shard
/// count (≥ 1) and the remaining args.
pub fn take_shards_arg(args: Vec<String>) -> (usize, Vec<String>) {
    let (v, rest) = take_value_arg(args, "--shards", "-s", parse_shards);
    (v.unwrap_or_else(shards_from_env).max(1), rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn take_shards_arg_strips_flag() {
        let (shards, rest) = take_shards_arg(argv(&["--mb", "4", "--shards", "2", "--seed", "1"]));
        assert_eq!(shards, 2);
        assert_eq!(rest, argv(&["--mb", "4", "--seed", "1"]));
    }

    #[test]
    fn short_spelling_and_last_wins() {
        let (shards, rest) = take_shards_arg(argv(&["-s", "2", "--shards", "3"]));
        assert_eq!(shards, 3);
        assert!(rest.is_empty());
    }

    #[test]
    fn shards_defaults_without_flag() {
        if std::env::var("THEMIS_SHARDS").is_err() {
            let (shards, rest) = take_shards_arg(argv(&["x"]));
            assert_eq!(shards, 1);
            assert_eq!(rest, argv(&["x"]));
        }
    }

    #[test]
    fn zero_clamps_to_one() {
        let (jobs, _) = take_jobs_arg(argv(&["--jobs", "0"]));
        assert_eq!(jobs, 1);
        let (shards, _) = take_shards_arg(argv(&["--shards", "0"]));
        assert_eq!(shards, 1);
    }

    #[test]
    fn auto_spelling_picks_available_parallelism() {
        let (shards, rest) = take_shards_arg(argv(&["--shards", "auto", "--mb", "4"]));
        assert_eq!(shards, auto_shards());
        assert_eq!(rest, argv(&["--mb", "4"]));
        assert!(auto_shards() >= 1);
    }

    #[test]
    fn flag_missing_value_is_left_alone() {
        let (_, rest) = take_shards_arg(argv(&["--shards"]));
        assert_eq!(rest, argv(&["--shards"]));
    }
}
