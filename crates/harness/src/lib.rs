//! # themis-harness — experiment assembly and figure reproduction
//!
//! Glues the substrate crates into runnable experiments:
//!
//! * [`scheme`] — the load-balancing schemes under comparison (§5
//!   baselines + ablations).
//! * [`cluster`] — fabric + NICs + Themis middleware assembly.
//! * [`experiment`] — generic collective runner and the metrics bundle.
//! * [`fat_tree`] — 3-tier Clos clusters with two-tier PathMap Themis.
//! * [`faults`] — deterministic fault-injection scenarios ([`FaultPlan`])
//!   scheduled through ordinary simulator events.
//! * [`oracle`] — the trace-driven protocol-invariant oracle every run
//!   can be audited against.
//! * [`fig1`] — the §2.2 motivation experiment (Fig 1b/1c/1d).
//! * [`fig5`] — the §5 DCQCN-sweep evaluation (Fig 5a/5b).
//! * [`report`] — plain-text tables and series for terminal output.
//! * [`sweep`] — parallel fan-out of independent sweep cells
//!   (`--jobs N` in the binaries), deterministic in cell order.
//! * [`knobs`] — shared `--jobs`/`THEMIS_JOBS` and
//!   `--shards`/`THEMIS_SHARDS` parsing, and how the two axes compose.
//! * [`shrink`] — greedy delta-debugging (`ddmin`) shared by the fuzzer
//!   and the parallel-engine property tests.
//! * [`telemetry_out`] — `--telemetry` / `--trace-last` CLI plumbing
//!   shared by the binaries (JSON report writing, event-ring dumps).

#![warn(missing_docs)]

pub mod cluster;
pub mod experiment;
pub mod fat_tree;
pub mod faults;
pub mod fig1;
pub mod fig5;
pub mod knobs;
pub mod oracle;
pub mod report;
pub mod scheme;
pub mod shrink;
pub mod sweep;
pub mod telemetry_out;

pub use cluster::{build_cluster, build_cluster_sharded, Cluster, ThemisAggregate};
pub use experiment::{
    expected_delivered_bytes, planned_transfers, run_collective, run_collective_on,
    run_collective_with_faults, run_fat_tree_rings, run_point_to_point, run_seed_sweep, Collective,
    ExperimentConfig, ExperimentResult, NicAggregate, SchemeAggregate,
};
pub use fat_tree::{build_fat_tree_cluster, build_fat_tree_cluster_sharded};
pub use faults::{Fault, FaultEvent, FaultPlan, FaultSpace};
pub use fig5::{run_fig5, run_fig5_fat_tree, run_fig5_with, FatTreeLegConfig, FatTreePoint};
pub use knobs::{jobs_from_env, shards_from_env, take_jobs_arg, take_shards_arg};
pub use oracle::{assert_conformant, OracleConfig, OracleReport, Violation};
pub use scheme::Scheme;
pub use shrink::ddmin;
pub use sweep::SweepRunner;
pub use telemetry_out::{take_telemetry_args, TelemetryArgs};
