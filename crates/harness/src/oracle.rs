//! Trace-driven protocol-invariant oracle.
//!
//! After (or instead of) asserting on headline metrics, a test hands the
//! finished [`Cluster`] to [`check`], which audits the run against the
//! transport/Themis contract using *ground truth* the simulator keeps
//! precisely for this purpose — per-switch [`DropRecord`] logs, per-QP
//! NIC counters, per-ToR Themis-D counters, and the collective driver's
//! duplicate-delivery canary:
//!
//! 1. **Exactly-once delivery** — no transfer completes twice
//!    (`stray_deliveries == 0`) and the delivered payload equals the
//!    workload's byte count.
//! 2. **Loss recovery** — when the run is expected to complete, every
//!    sender drained (`snd_una == snd_end`, empty retransmit queue) and
//!    at least one retransmission was emitted per distinct dropped data
//!    `(qp, psn)` (a retransmission names a single PSN, so distinct drops
//!    bound retransmissions from below).
//! 3. **NACK filtering** — in a run with no loss of any kind, no RTOs and
//!    no compensation activity, a filtering ToR forwards no NACK to the
//!    sender, and the sender retransmits nothing. In lossy runs the
//!    spurious-retransmission *ratio* stays under a configurable bound
//!    (out-of-PSN-order retransmissions can cascade a bounded number of
//!    Eq. 3-"valid" spurious NACKs — see `tests/pfc.rs`).
//! 4. **Compensation discipline** — a build without compensation never
//!    compensates; with it, every arming traces back to a blocked NACK
//!    (`compensations + cancels + suppressed ≤ nacks_blocked`), and under
//!    deterministic-loss-only plans the RTO backstop stays (nearly)
//!    silent because blocked-NACK losses are recovered in-band.
//! 5. **Packet conservation** — data packets sent equal data packets
//!    received plus logged drops (exactly, once the fabric has drained;
//!    as an inequality otherwise), and the drop log reconciles with the
//!    switch counters: nothing vanishes without a [`DropRecord`].
//!
//! The low-level predicates live in [`predicates`] so the exhaustive
//! model checker (`tests/model_check.rs`) can reuse them verbatim on its
//! abstract executions.

use crate::cluster::Cluster;
use crate::scheme::Scheme;
use collectives::driver::Driver;
use netsim::switch::Switch;
use netsim::trace::{DropCause, DropRecord};
use std::collections::HashSet;
use themis_core::ThemisMiddleware;

/// What the oracle may assume about the run it audits.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// The workload was sized to finish before the horizon: senders must
    /// have drained and every group completed.
    pub expect_complete: bool,
    /// The scheme under test filters NACKs at the ToR (Themis-D present).
    pub filtering: bool,
    /// The scheme under test arms blocked-NACK compensation.
    pub compensation: bool,
    /// Exact payload bytes the workload delivers, when the caller knows
    /// it (`groups × schedule bytes`).
    pub expected_bytes: Option<u64>,
    /// Upper bound on sender RTO expirations. `None` disables the check —
    /// required for plans that destroy control packets (lost ACKs leave
    /// the RTO as the only backstop, which is correct behaviour).
    pub max_rto_fires: Option<u64>,
    /// Bound on `retx / (data + retx)` in runs with zero data drops
    /// (spurious-cascade tolerance; see invariant 3).
    pub max_spurious_retx_ratio: f64,
    /// The event queue drained before the horizon: nothing is in flight,
    /// so conservation must hold with equality.
    pub quiesced: bool,
}

impl OracleConfig {
    /// Baseline expectations for a fault-free, sized-to-complete run of
    /// `scheme` (the e2e-test configuration).
    pub fn for_scheme(scheme: Scheme) -> OracleConfig {
        let (filtering, compensation) = match scheme {
            Scheme::Themis | Scheme::ThemisPathMap => (true, true),
            Scheme::ThemisNoCompensation => (true, false),
            Scheme::Ecmp
            | Scheme::AdaptiveRouting
            | Scheme::RandomSpray
            | Scheme::Flowlet
            | Scheme::SprayNoFilter
            | Scheme::Oracle
            | Scheme::Reps
            | Scheme::Eunomia
            | Scheme::Sprinklers => (false, false),
        };
        OracleConfig {
            expect_complete: true,
            filtering,
            compensation,
            expected_bytes: None,
            max_rto_fires: Some(2),
            max_spurious_retx_ratio: 0.02,
            quiesced: false,
        }
    }

    /// Same, but with the exact delivered-byte count pinned.
    pub fn with_expected_bytes(mut self, bytes: u64) -> OracleConfig {
        self.expected_bytes = Some(bytes);
        self
    }

    /// Disable the RTO bound (plans that may destroy control packets).
    pub fn without_rto_bound(mut self) -> OracleConfig {
        self.max_rto_fires = None;
        self
    }
}

/// One invariant breach.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable invariant tag (`delivery`, `recovery`, `filtering`,
    /// `compensation`, `conservation`, `accounting`).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Everything the oracle measured while auditing, for callers that want
/// to assert further (or print context on failure).
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Invariant breaches (empty = conformant).
    pub violations: Vec<Violation>,
    /// Data packets sent (first transmissions + retransmissions).
    pub data_sent: u64,
    /// Data packets received at known recv QPs.
    pub data_received: u64,
    /// Data drops recorded in switch drop logs.
    pub data_dropped: u64,
    /// Distinct `(qp, psn)` pairs among dropped data packets.
    pub distinct_losses: u64,
    /// Control (ACK/NACK/CNP/handshake) drops recorded anywhere,
    /// including NIC receive-path corruption.
    pub control_dropped: u64,
    /// Total sender retransmissions.
    pub retx_packets: u64,
    /// Total sender RTO expirations.
    pub rto_fires: u64,
}

/// Audit `cluster` (after its run) against `cfg`. Empty vec = pass.
pub fn check(cluster: &Cluster, cfg: &OracleConfig) -> Vec<Violation> {
    audit(cluster, cfg).violations
}

/// [`check`] + panic with every violation listed — the one-liner for
/// e2e tests.
pub fn assert_conformant(cluster: &Cluster, cfg: &OracleConfig) {
    let report = audit(cluster, cfg);
    assert!(
        report.violations.is_empty(),
        "protocol-invariant oracle found {} violation(s):\n  {}",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}

/// Full audit with measurements.
pub fn audit(cluster: &Cluster, cfg: &OracleConfig) -> OracleReport {
    let mut r = OracleReport::default();

    // ---- Gather ground truth. -------------------------------------
    let mut drop_records: Vec<DropRecord> = Vec::new();
    for id in cluster.all_switches() {
        if let Some(sw) = cluster.world.get::<Switch>(id) {
            drop_records.extend_from_slice(sw.drop_log());
        }
    }
    let mut distinct: HashSet<(u32, u32)> = HashSet::new();
    for d in &drop_records {
        if d.data {
            r.data_dropped += 1;
            distinct.insert((d.qp.0, d.psn));
        } else {
            r.control_dropped += 1;
        }
    }
    r.distinct_losses = distinct.len() as u64;

    let mut stray = 0u64;
    let mut incomplete = 0usize;
    if let Some(driver) = cluster.world.get::<Driver>(cluster.driver) {
        stray = driver.stray_deliveries;
        incomplete = driver.completions().iter().filter(|c| c.is_none()).count();
    }

    let mut bytes_delivered = 0u64;
    let mut undrained: Vec<String> = Vec::new();
    let mut nic_unknown = 0u64;
    let mut nic_corrupted = 0u64;
    for &h in &cluster.hosts {
        let nic = cluster.nic(h);
        nic_unknown += nic.stats.unknown_qp;
        nic_corrupted += nic.stats.corrupted_rx;
        for s in nic.send_qps() {
            r.data_sent += s.stats.data_packets + s.stats.retx_packets;
            r.retx_packets += s.stats.retx_packets;
            r.rto_fires += s.stats.rto_fires;
            if s.has_work() || s.has_unacked() {
                undrained.push(format!(
                    "qp {} on host {}: snd_una {} snd_nxt {} retx_pending {}",
                    s.qp.0,
                    h.0,
                    s.snd_una(),
                    s.snd_nxt(),
                    s.retx_pending()
                ));
            }
        }
        for q in nic.recv_qps() {
            r.data_received += q.stats.data_packets;
            bytes_delivered += q.stats.bytes_delivered;
        }
    }
    r.control_dropped += nic_corrupted;

    let themis = themis_totals(cluster);

    // ---- Invariant 1: exactly-once delivery. ----------------------
    if let Some(v) = predicates::no_duplicate_delivery(stray) {
        r.violations.push(v);
    }
    if let Some(expected) = cfg.expected_bytes {
        if cfg.expect_complete && bytes_delivered != expected {
            r.violations.push(Violation {
                invariant: "delivery",
                detail: format!("delivered {bytes_delivered} bytes, workload carries {expected}"),
            });
        }
    }

    // ---- Invariant 2: loss recovery before the horizon. -----------
    if cfg.expect_complete {
        if incomplete > 0 {
            r.violations.push(Violation {
                invariant: "recovery",
                detail: format!("{incomplete} group(s) never completed"),
            });
        }
        for u in &undrained {
            r.violations.push(Violation {
                invariant: "recovery",
                detail: format!("sender not drained at horizon: {u}"),
            });
        }
        if let Some(v) = predicates::losses_retransmitted(r.distinct_losses, r.retx_packets) {
            r.violations.push(v);
        }
    }

    // ---- Invariant 3: NACK filtering. -----------------------------
    if cfg.filtering {
        let clean = r.data_dropped == 0
            && r.control_dropped == 0
            && r.rto_fires == 0
            && themis.compensations == 0
            && themis.nacks_forwarded_unknown == 0;
        if clean && themis.nacks_forwarded_valid > 0 {
            r.violations.push(Violation {
                invariant: "filtering",
                detail: format!(
                    "{} NACK(s) forwarded as valid in a loss-free run",
                    themis.nacks_forwarded_valid
                ),
            });
        }
        if clean && r.retx_packets > 0 {
            r.violations.push(Violation {
                invariant: "filtering",
                detail: format!(
                    "{} spurious retransmission(s) in a loss-free run",
                    r.retx_packets
                ),
            });
        }
        // Unfiltered baselines (raw NIC-SR under spraying) legitimately
        // retransmit heavily with zero drops — the bound only binds when
        // a filter is claimed.
        if r.data_dropped == 0 {
            if let Some(v) = predicates::spurious_retx_bounded(
                r.data_sent - r.retx_packets,
                r.retx_packets,
                cfg.max_spurious_retx_ratio,
            ) {
                r.violations.push(v);
            }
        }
    }

    // ---- Invariant 4: compensation discipline. --------------------
    if !cfg.compensation && themis.compensations + themis.compensation_cancels > 0 {
        r.violations.push(Violation {
            invariant: "compensation",
            detail: format!(
                "compensation disabled but fired {} time(s) (+{} cancels)",
                themis.compensations, themis.compensation_cancels
            ),
        });
    }
    if cfg.filtering {
        let armings =
            themis.compensations + themis.compensation_cancels + themis.compensation_suppressed;
        if armings > themis.nacks_blocked {
            r.violations.push(Violation {
                invariant: "compensation",
                detail: format!(
                    "{} compensation outcomes but only {} blocked NACKs — \
                     compensation fired without a blocked NACK",
                    armings, themis.nacks_blocked
                ),
            });
        }
    }
    if let Some(max_rto) = cfg.max_rto_fires {
        if r.rto_fires > max_rto {
            r.violations.push(Violation {
                invariant: "compensation",
                detail: format!(
                    "{} RTO expirations (bound {max_rto}) — blocked-NACK losses \
                     were not recovered in-band",
                    r.rto_fires
                ),
            });
        }
    }

    // ---- Invariant 5: packet conservation. ------------------------
    if let Some(v) = predicates::conservation(
        r.data_sent,
        r.data_received,
        r.data_dropped,
        nic_unknown,
        cfg.quiesced,
    ) {
        r.violations.push(v);
    }

    // Drop-log ↔ switch-counter reconciliation (the telemetry exports
    // are derived from these same counters).
    let fabric = netsim::trace::fabric_summary(&cluster.world, &cluster.all_switches());
    let by_cause =
        |cause: DropCause| drop_records.iter().filter(|d| d.cause == cause).count() as u64;
    let injected_like = by_cause(DropCause::Targeted)
        + by_cause(DropCause::Injected)
        + by_cause(DropCause::PortDown)
        + by_cause(DropCause::ReverseCorrupt);
    for (name, counter, logged) in [
        (
            "fabric.drops.buffer",
            fabric.drops_buffer,
            by_cause(DropCause::Buffer),
        ),
        (
            "fabric.drops.targeted",
            fabric.drops_targeted,
            injected_like,
        ),
        (
            "fabric.drops.no_route",
            fabric.drops_no_route,
            by_cause(DropCause::NoRoute),
        ),
    ] {
        if counter != logged {
            r.violations.push(Violation {
                invariant: "accounting",
                detail: format!("{name} counts {counter} but the drop log records {logged}"),
            });
        }
    }

    r
}

/// Themis-D totals including the fields `ThemisAggregate` omits.
#[derive(Debug, Clone, Copy, Default)]
struct ThemisTotals {
    nacks_blocked: u64,
    nacks_forwarded_valid: u64,
    nacks_forwarded_unknown: u64,
    compensations: u64,
    compensation_cancels: u64,
    compensation_suppressed: u64,
}

fn themis_totals(cluster: &Cluster) -> ThemisTotals {
    let mut t = ThemisTotals::default();
    for &leaf in &cluster.leaves {
        let Some(sw) = cluster.world.get::<Switch>(leaf) else {
            continue;
        };
        let Some(hook) = sw.hook() else { continue };
        let Some(m) = hook.as_any().downcast_ref::<ThemisMiddleware>() else {
            continue;
        };
        if let Some(d) = &m.d {
            t.nacks_blocked += d.stats.nacks_blocked;
            t.nacks_forwarded_valid += d.stats.nacks_forwarded_valid;
            t.nacks_forwarded_unknown += d.stats.nacks_forwarded_unknown;
            t.compensations += d.stats.compensations;
            t.compensation_cancels += d.stats.compensation_cancels;
            t.compensation_suppressed += d.stats.compensation_suppressed;
        }
    }
    t
}

/// The oracle's pure invariant predicates, shared with the exhaustive
/// model checker. Each returns `None` on pass.
pub mod predicates {
    use super::Violation;

    /// Invariant 1 core: the application layer saw no duplicate
    /// completion.
    pub fn no_duplicate_delivery(stray_deliveries: u64) -> Option<Violation> {
        (stray_deliveries > 0).then(|| Violation {
            invariant: "delivery",
            detail: format!("{stray_deliveries} duplicate deliveries to the application"),
        })
    }

    /// Invariant 2 core: a retransmission names one PSN, so distinct
    /// dropped `(qp, psn)` pairs lower-bound the retransmission count in
    /// any run that delivered everything.
    pub fn losses_retransmitted(distinct_losses: u64, retx_packets: u64) -> Option<Violation> {
        (retx_packets < distinct_losses).then(|| Violation {
            invariant: "recovery",
            detail: format!(
                "{distinct_losses} distinct data (qp, psn) drops but only \
                 {retx_packets} retransmissions"
            ),
        })
    }

    /// Invariant 3 core: with zero real data loss, retransmissions are
    /// spurious by definition and their ratio must stay under `bound`.
    pub fn spurious_retx_bounded(
        first_tx: u64,
        retx_packets: u64,
        bound: f64,
    ) -> Option<Violation> {
        let total = first_tx + retx_packets;
        if total == 0 {
            return None;
        }
        let ratio = retx_packets as f64 / total as f64;
        (ratio > bound).then(|| Violation {
            invariant: "filtering",
            detail: format!(
                "spurious retransmission ratio {ratio:.4} exceeds {bound} \
                 ({retx_packets}/{total}) with zero data drops"
            ),
        })
    }

    /// Model-checker form of invariant 3: every NACK that reached the
    /// sender names the one genuinely lost PSN (no collateral damage).
    pub fn no_collateral_nacks(sender_nacks: &[u32], lost: Option<u32>) -> Option<Violation> {
        let bad: Vec<u32> = sender_nacks
            .iter()
            .copied()
            .filter(|&e| Some(e) != lost)
            .collect();
        (!bad.is_empty()).then(|| Violation {
            invariant: "filtering",
            detail: format!("collateral NACKs {bad:?} for loss {lost:?}"),
        })
    }

    /// Model-checker form of invariant 4 (liveness): when a same-path
    /// successor proves the loss after the NACK armed compensation, the
    /// sender must have been told about exactly that PSN.
    pub fn loss_signalled(compensable: bool, sender_nacks: &[u32], lost: u32) -> Option<Violation> {
        (compensable && !sender_nacks.contains(&lost)).then(|| Violation {
            invariant: "compensation",
            detail: format!("provable loss of PSN {lost} never signalled to the sender"),
        })
    }

    /// Invariant 5 core: sent = received + dropped (+ slack for packets
    /// that landed on a NIC without a provisioned QP), with equality
    /// required once the fabric has drained.
    pub fn conservation(
        sent: u64,
        received: u64,
        dropped: u64,
        unknown_qp_slack: u64,
        quiesced: bool,
    ) -> Option<Violation> {
        if received + dropped > sent {
            return Some(Violation {
                invariant: "conservation",
                detail: format!(
                    "received {received} + dropped {dropped} exceeds sent {sent} — \
                     the fabric duplicated packets"
                ),
            });
        }
        if quiesced {
            let missing = sent - received - dropped;
            if missing > unknown_qp_slack {
                return Some(Violation {
                    invariant: "conservation",
                    detail: format!(
                        "{missing} data packet(s) vanished without a drop record \
                         (sent {sent}, received {received}, dropped {dropped}, \
                         unknown-QP slack {unknown_qp_slack})"
                    ),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::predicates::*;

    #[test]
    fn predicate_edges() {
        assert!(no_duplicate_delivery(0).is_none());
        assert!(no_duplicate_delivery(1).is_some());

        assert!(losses_retransmitted(0, 0).is_none());
        assert!(losses_retransmitted(3, 3).is_none());
        assert!(losses_retransmitted(3, 2).is_some());

        assert!(spurious_retx_bounded(0, 0, 0.01).is_none());
        assert!(spurious_retx_bounded(1000, 5, 0.01).is_none());
        assert!(spurious_retx_bounded(1000, 50, 0.01).is_some());

        assert!(no_collateral_nacks(&[7], Some(7)).is_none());
        assert!(no_collateral_nacks(&[7, 8], Some(7)).is_some());
        assert!(no_collateral_nacks(&[], None).is_none());
        assert!(no_collateral_nacks(&[3], None).is_some());

        assert!(loss_signalled(true, &[5], 5).is_none());
        assert!(loss_signalled(true, &[], 5).is_some());
        assert!(loss_signalled(false, &[], 5).is_none());
    }

    #[test]
    fn conservation_edges() {
        assert!(conservation(10, 8, 2, 0, true).is_none());
        assert!(conservation(10, 8, 1, 0, false).is_none(), "in flight ok");
        assert!(conservation(10, 8, 1, 0, true).is_some(), "vanished");
        assert!(
            conservation(10, 8, 1, 1, true).is_none(),
            "unknown-QP slack"
        );
        assert!(conservation(10, 9, 2, 0, false).is_some(), "duplication");
    }
}
