//! Plain-text report rendering: aligned tables and (time, value) series,
//! matching the rows/figures the paper reports.

use simcore::time::TimeDelta;
use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                let pad = widths[i];
                let _ = write!(line, "{:<pad$}  ", cells[i], pad = pad);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a completion time as milliseconds with three decimals.
pub fn fmt_ms(td: Option<TimeDelta>) -> String {
    match td {
        Some(t) => format!("{:.3}", t.as_nanos() as f64 / 1e6),
        None => "DNF".to_string(),
    }
}

/// Format a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format Gbit/s.
pub fn fmt_gbps(x: f64) -> String {
    format!("{x:.2}")
}

/// Render a `(time µs, value)` series as a compact two-column listing,
/// down-sampled to at most `max_points` evenly spaced points.
pub fn render_series(title: &str, series: &[(f64, f64)], max_points: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {title} --");
    if series.is_empty() {
        let _ = writeln!(out, "(empty)");
        return out;
    }
    let step = series.len().div_ceil(max_points.max(1));
    for chunk in series.chunks(step) {
        // Average each chunk so down-sampling does not alias.
        let t = chunk[0].0;
        let v = chunk.iter().map(|p| p.1).sum::<f64>() / chunk.len() as f64;
        let _ = writeln!(out, "{t:>12.1}us  {v:.4}");
    }
    out
}

/// Render a `(time µs, value)` series as a fixed-height ASCII chart —
/// enough to eyeball the Fig 1b/1c shapes in a terminal.
///
/// `height` rows of `width` columns; samples are bucketed into columns by
/// time and averaged, then scaled between the series min and max.
pub fn render_ascii_chart(
    title: &str,
    series: &[(f64, f64)],
    width: usize,
    height: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {title} --");
    if series.is_empty() || width == 0 || height == 0 {
        let _ = writeln!(out, "(empty)");
        return out;
    }
    let t0 = series.first().map(|p| p.0).unwrap_or(0.0);
    let t1 = series.last().map(|p| p.0).unwrap_or(1.0);
    let span = (t1 - t0).max(f64::MIN_POSITIVE);
    // Bucket samples by column.
    let mut sums = vec![0.0f64; width];
    let mut counts = vec![0usize; width];
    for &(t, v) in series {
        let col = (((t - t0) / span) * (width as f64 - 1.0)).round() as usize;
        let col = col.min(width - 1);
        sums[col] += v;
        counts[col] += 1;
    }
    let cols: Vec<Option<f64>> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { Some(s / c as f64) } else { None })
        .collect();
    let lo = cols.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
    let hi = cols
        .iter()
        .flatten()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    // Draw top to bottom.
    for row in (0..height).rev() {
        let threshold = lo + range * (row as f64 + 0.5) / height as f64;
        let label = if row == height - 1 {
            format!("{hi:>9.1} |")
        } else if row == 0 {
            format!("{lo:>9.1} |")
        } else {
            format!("{:>9} |", "")
        };
        let mut line = label;
        for c in &cols {
            line.push(match c {
                Some(v) if *v >= threshold => '#',
                Some(_) => ' ',
                None => ' ',
            });
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(width));
    let _ = writeln!(out, "{:>11}{:<.1}us .. {:.1}us", "", t0, t1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["scheme", "ct(ms)"]);
        t.row(&["ECMP".into(), "42.000".into()]);
        t.row(&["Themis".into(), "7.5".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("scheme"));
        assert!(r.contains("Themis"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(Some(TimeDelta::from_micros(1500))), "1.500");
        assert_eq!(fmt_ms(None), "DNF");
        assert_eq!(fmt_pct(0.163), "16.3%");
        assert_eq!(fmt_gbps(86.0), "86.00");
    }

    #[test]
    fn ascii_chart_renders_shape() {
        // A rising ramp: the '#' count per column must not decrease.
        let series: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, i as f64)).collect();
        let chart = render_ascii_chart("ramp", &series, 25, 6);
        assert!(chart.contains("-- ramp --"));
        let rows: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 6);
        // Bottom row has the most marks; top row the fewest.
        let marks = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert!(marks(rows[5]) >= marks(rows[0]));
        // Empty input degrades gracefully.
        assert!(render_ascii_chart("e", &[], 10, 4).contains("(empty)"));
    }

    #[test]
    fn ascii_chart_constant_series() {
        let series: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 5.0)).collect();
        let chart = render_ascii_chart("flat", &series, 10, 3);
        // Must not panic on zero range and must render something.
        assert!(chart.contains("flat"));
    }

    #[test]
    fn series_downsamples() {
        let series: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 1.0)).collect();
        let r = render_series("s", &series, 10);
        let lines = r.lines().count();
        assert!(lines <= 12, "{lines} lines");
        assert!(r.contains("-- s --"));
        assert_eq!(render_series("e", &[], 10).lines().count(), 2);
    }
}
