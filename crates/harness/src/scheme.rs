//! Load-balancing schemes under evaluation.
//!
//! The paper's §5 comparison plus the ablations called out in DESIGN.md.
//! A [`Scheme`] bundles the switch-level LB policy with the Themis
//! middleware configuration (if any).

use netsim::lb::LbPolicy;
use simcore::time::TimeDelta;
use themis_core::themis_s::SprayMode;
use themis_core::ThemisConfig;

/// A complete load-balancing configuration for a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Flow-level ECMP — the de-facto baseline whose collisions motivate
    /// the paper (§2.1).
    Ecmp,
    /// Per-packet adaptive routing (least-loaded uplink) with raw NIC-SR —
    /// the "AR" baseline of Fig 5.
    AdaptiveRouting,
    /// Random packet spraying with raw NIC-SR — the Fig 1 motivation
    /// configuration.
    RandomSpray,
    /// Flowlet switching (§2.3 related work): re-pick a path only after a
    /// 50 µs inter-packet gap. RNIC hardware pacing rarely produces such
    /// gaps, so this degenerates to per-flow placement — the paper's
    /// argument for why flowlet LB does not help RDMA.
    Flowlet,
    /// Full Themis: PSN spraying + NACK filtering + compensation (§3).
    Themis,
    /// Themis with PathMap sport rewriting instead of direct egress
    /// selection (multi-tier deployment mode, §3.2).
    ThemisPathMap,
    /// Ablation: Themis without the §3.4 compensation mechanism.
    ThemisNoCompensation,
    /// Ablation: PSN spraying without NACK filtering — isolates how much
    /// of Themis's win comes from filtering vs. deterministic spraying.
    SprayNoFilter,
}

impl Scheme {
    /// All schemes, for sweeps.
    pub const ALL: [Scheme; 8] = [
        Scheme::Ecmp,
        Scheme::AdaptiveRouting,
        Scheme::RandomSpray,
        Scheme::Flowlet,
        Scheme::Themis,
        Scheme::ThemisPathMap,
        Scheme::ThemisNoCompensation,
        Scheme::SprayNoFilter,
    ];

    /// The flowlet gap threshold used by [`Scheme::Flowlet`] (LetFlow-ish).
    pub const FLOWLET_GAP: TimeDelta = TimeDelta::from_micros(50);

    /// The Fig 5 comparison set.
    pub const PAPER_FIG5: [Scheme; 3] = [Scheme::Ecmp, Scheme::AdaptiveRouting, Scheme::Themis];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Ecmp => "ECMP",
            Scheme::AdaptiveRouting => "AdaptiveRouting",
            Scheme::RandomSpray => "RandomSpray",
            Scheme::Flowlet => "Flowlet",
            Scheme::Themis => "Themis",
            Scheme::ThemisPathMap => "Themis(PathMap)",
            Scheme::ThemisNoCompensation => "Themis(no-comp)",
            Scheme::SprayNoFilter => "Spray(no-filter)",
        }
    }

    /// The switch LB policy the leaves run.
    ///
    /// Themis variants leave the policy at ECMP: data packets are overridden
    /// per packet by Themis-S, while control/reverse traffic follows its
    /// flow's ECMP path.
    pub fn lb_policy(&self) -> LbPolicy {
        match self {
            Scheme::Ecmp => LbPolicy::Ecmp,
            Scheme::AdaptiveRouting => LbPolicy::AdaptiveRouting,
            Scheme::RandomSpray => LbPolicy::RandomSpray,
            Scheme::Flowlet => LbPolicy::Flowlet {
                gap: Self::FLOWLET_GAP,
            },
            Scheme::Themis
            | Scheme::ThemisPathMap
            | Scheme::ThemisNoCompensation
            | Scheme::SprayNoFilter => LbPolicy::Ecmp,
        }
    }

    /// Whether this scheme deploys Themis middleware on the ToRs, and if
    /// so, how. `base` supplies the fabric-derived parameters.
    pub fn themis_config(&self, base: ThemisConfig) -> Option<ThemisConfig> {
        match self {
            Scheme::Ecmp | Scheme::AdaptiveRouting | Scheme::RandomSpray | Scheme::Flowlet => None,
            Scheme::Themis => Some(ThemisConfig {
                spray_mode: SprayMode::DirectEgress,
                ..base
            }),
            Scheme::ThemisPathMap => Some(base.with_pathmap()),
            Scheme::ThemisNoCompensation => Some(base.without_compensation()),
            Scheme::SprayNoFilter => Some(base.without_filtering()),
        }
    }

    /// Whether the scheme sprays packets (out-of-order arrivals expected).
    /// Flowlet switching only re-routes across genuine gaps, which cannot
    /// reorder packets within a flowlet, so it does not count as spraying.
    pub fn sprays(&self) -> bool {
        !matches!(self, Scheme::Ecmp | Scheme::Flowlet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::TimeDelta;

    fn base() -> ThemisConfig {
        ThemisConfig::for_fabric(16, 400_000_000_000, TimeDelta::from_micros(2), 1500)
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Scheme::ALL {
            assert!(seen.insert(s.label()));
        }
    }

    #[test]
    fn baselines_have_no_themis() {
        for s in [
            Scheme::Ecmp,
            Scheme::AdaptiveRouting,
            Scheme::RandomSpray,
            Scheme::Flowlet,
        ] {
            assert!(s.themis_config(base()).is_none());
        }
    }

    #[test]
    fn flowlet_uses_flowlet_policy() {
        assert_eq!(
            Scheme::Flowlet.lb_policy(),
            LbPolicy::Flowlet {
                gap: Scheme::FLOWLET_GAP
            }
        );
        assert!(!Scheme::Flowlet.sprays());
    }

    #[test]
    fn themis_variants_configure_correctly() {
        let t = Scheme::Themis.themis_config(base()).unwrap();
        assert!(t.filtering && t.compensation);
        assert_eq!(t.spray_mode, SprayMode::DirectEgress);
        let pm = Scheme::ThemisPathMap.themis_config(base()).unwrap();
        assert_eq!(pm.spray_mode, SprayMode::PathMapRewrite);
        let nc = Scheme::ThemisNoCompensation.themis_config(base()).unwrap();
        assert!(nc.filtering && !nc.compensation);
        let nf = Scheme::SprayNoFilter.themis_config(base()).unwrap();
        assert!(!nf.filtering);
    }

    #[test]
    fn themis_rides_on_ecmp_policy() {
        assert_eq!(Scheme::Themis.lb_policy(), LbPolicy::Ecmp);
        assert_eq!(
            Scheme::AdaptiveRouting.lb_policy(),
            LbPolicy::AdaptiveRouting
        );
        assert!(!Scheme::Ecmp.sprays());
        assert!(Scheme::Themis.sprays());
    }
}
