//! Load-balancing schemes under evaluation.
//!
//! The paper's §5 comparison plus the ablations called out in DESIGN.md
//! and the rival designs of SCHEMES.md. A [`Scheme`] bundles the three
//! orthogonal pieces that make a complete load balancer:
//!
//! * the switch-level LB policy ([`Scheme::lb_policy`]),
//! * the Themis ToR middleware configuration, if any
//!   ([`Scheme::themis_config`]),
//! * the NIC transport reaction — sender entropy policy and receiver
//!   OOO escalation ([`Scheme::nic_config`]).
//!
//! Adding a scheme means adding a variant and filling in those three
//! answers; every runner (point-to-point, collectives, fat-tree rings,
//! fig binaries, fuzzer) picks the changes up through the cluster
//! builders. See DESIGN.md "Scheme zoo".

use netsim::lb::LbPolicy;
use rnic::{
    CcConfig, NicConfig, OooReactionKind, SenderEntropyKind, TransportMode, TransportReaction,
};
use simcore::time::TimeDelta;
use themis_core::themis_s::SprayMode;
use themis_core::ThemisConfig;

/// A complete load-balancing configuration for a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Flow-level ECMP — the de-facto baseline whose collisions motivate
    /// the paper (§2.1).
    Ecmp,
    /// Per-packet adaptive routing (least-loaded uplink) with raw NIC-SR —
    /// the "AR" baseline of Fig 5.
    AdaptiveRouting,
    /// Random packet spraying with raw NIC-SR — the Fig 1 motivation
    /// configuration.
    RandomSpray,
    /// Flowlet switching (§2.3 related work): re-pick a path only after a
    /// 50 µs inter-packet gap. RNIC hardware pacing rarely produces such
    /// gaps, so this degenerates to per-flow placement — the paper's
    /// argument for why flowlet LB does not help RDMA.
    Flowlet,
    /// Full Themis: PSN spraying + NACK filtering + compensation (§3).
    Themis,
    /// Themis with PathMap sport rewriting instead of direct egress
    /// selection (multi-tier deployment mode, §3.2).
    ThemisPathMap,
    /// Ablation: Themis without the §3.4 compensation mechanism.
    ThemisNoCompensation,
    /// Ablation: PSN spraying without NACK filtering — isolates how much
    /// of Themis's win comes from filtering vs. deterministic spraying.
    SprayNoFilter,
    /// Upper bound: random spraying over the loss-oracle transport with
    /// congestion control disabled (the Fig 1d "Ideal" leg as a
    /// first-class scheme).
    Oracle,
    /// REPS (arXiv 2407.21625): sender-driven spraying over plain-ECMP
    /// switches that recycles ACK-echoed "known good" entropy values and
    /// flushes them on loss signals. See SCHEMES.md.
    Reps,
    /// Eunomia (arXiv 2412.08540): random spraying absorbed by an in-NIC
    /// per-QP ordering buffer with a bounded OOO window — NACKs fire only
    /// on window overflow or gap timeout. See SCHEMES.md.
    Eunomia,
    /// Sprinklers (arXiv 1407.0006): sender-driven randomized
    /// variable-size striping over plain-ECMP switches. See SCHEMES.md.
    Sprinklers,
}

impl Scheme {
    /// All schemes, for sweeps.
    pub const ALL: [Scheme; 12] = [
        Scheme::Ecmp,
        Scheme::AdaptiveRouting,
        Scheme::RandomSpray,
        Scheme::Flowlet,
        Scheme::Themis,
        Scheme::ThemisPathMap,
        Scheme::ThemisNoCompensation,
        Scheme::SprayNoFilter,
        Scheme::Oracle,
        Scheme::Reps,
        Scheme::Eunomia,
        Scheme::Sprinklers,
    ];

    /// The flowlet gap threshold used by [`Scheme::Flowlet`] (LetFlow-ish).
    pub const FLOWLET_GAP: TimeDelta = TimeDelta::from_micros(50);

    /// The Fig 5 comparison set.
    pub const PAPER_FIG5: [Scheme; 3] = [Scheme::Ecmp, Scheme::AdaptiveRouting, Scheme::Themis];

    /// The full cross-scheme comparison set (`fig5 --scheme zoo`): the
    /// paper trio plus the oracle upper bound and the three rivals.
    pub const ZOO: [Scheme; 7] = [
        Scheme::Ecmp,
        Scheme::AdaptiveRouting,
        Scheme::Themis,
        Scheme::Oracle,
        Scheme::Reps,
        Scheme::Eunomia,
        Scheme::Sprinklers,
    ];

    /// REPS recycled-entropy cache capacity (default knob).
    pub const REPS_POOL: u16 = 16;

    /// Eunomia ordering-buffer window in packets (default knob).
    pub const EUNOMIA_WINDOW: u64 = 256;

    /// Eunomia head-gap timeout before a NACK is forced (default knob;
    /// well above per-path delay skew, well below the 1 ms RTO).
    pub const EUNOMIA_GAP_TIMEOUT: TimeDelta = TimeDelta::from_micros(100);

    /// Sprinklers stripe-length range in packets (default knob).
    pub const SPRINKLERS_STRIPE: (u16, u16) = (16, 64);

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Ecmp => "ECMP",
            Scheme::AdaptiveRouting => "AdaptiveRouting",
            Scheme::RandomSpray => "RandomSpray",
            Scheme::Flowlet => "Flowlet",
            Scheme::Themis => "Themis",
            Scheme::ThemisPathMap => "Themis(PathMap)",
            Scheme::ThemisNoCompensation => "Themis(no-comp)",
            Scheme::SprayNoFilter => "Spray(no-filter)",
            Scheme::Oracle => "Oracle",
            Scheme::Reps => "REPS",
            Scheme::Eunomia => "Eunomia",
            Scheme::Sprinklers => "Sprinklers",
        }
    }

    /// Parse a CLI spelling (`--scheme` in the fig binaries). Accepted
    /// spellings per scheme are documented in EXPERIMENTS.md.
    pub fn parse(s: &str) -> Option<Scheme> {
        Some(match s.to_ascii_lowercase().as_str() {
            "ecmp" => Scheme::Ecmp,
            "ar" | "adaptive" => Scheme::AdaptiveRouting,
            "spray" | "random" => Scheme::RandomSpray,
            "flowlet" => Scheme::Flowlet,
            "themis" => Scheme::Themis,
            "themis-pathmap" => Scheme::ThemisPathMap,
            "themis-nocomp" => Scheme::ThemisNoCompensation,
            "spray-nofilter" => Scheme::SprayNoFilter,
            "oracle" | "ideal" => Scheme::Oracle,
            "reps" => Scheme::Reps,
            "eunomia" => Scheme::Eunomia,
            "sprinklers" => Scheme::Sprinklers,
            _ => return None,
        })
    }

    /// The switch LB policy the leaves run.
    ///
    /// Themis variants leave the policy at ECMP: data packets are overridden
    /// per packet by Themis-S, while control/reverse traffic follows its
    /// flow's ECMP path. REPS and Sprinklers likewise ride on plain ECMP —
    /// the *sender* re-rolls the entropy the switches hash on, which is the
    /// whole point of sender-driven spraying over commodity fabrics.
    pub fn lb_policy(&self) -> LbPolicy {
        match self {
            Scheme::Ecmp => LbPolicy::Ecmp,
            Scheme::AdaptiveRouting => LbPolicy::AdaptiveRouting,
            Scheme::RandomSpray | Scheme::Oracle | Scheme::Eunomia => LbPolicy::RandomSpray,
            Scheme::Flowlet => LbPolicy::Flowlet {
                gap: Self::FLOWLET_GAP,
            },
            Scheme::Themis
            | Scheme::ThemisPathMap
            | Scheme::ThemisNoCompensation
            | Scheme::SprayNoFilter
            | Scheme::Reps
            | Scheme::Sprinklers => LbPolicy::Ecmp,
        }
    }

    /// Whether this scheme deploys Themis middleware on the ToRs, and if
    /// so, how. `base` supplies the fabric-derived parameters.
    pub fn themis_config(&self, base: ThemisConfig) -> Option<ThemisConfig> {
        match self {
            Scheme::Ecmp
            | Scheme::AdaptiveRouting
            | Scheme::RandomSpray
            | Scheme::Flowlet
            | Scheme::Oracle
            | Scheme::Reps
            | Scheme::Eunomia
            | Scheme::Sprinklers => None,
            Scheme::Themis => Some(ThemisConfig {
                spray_mode: SprayMode::DirectEgress,
                ..base
            }),
            Scheme::ThemisPathMap => Some(base.with_pathmap()),
            Scheme::ThemisNoCompensation => Some(base.without_compensation()),
            Scheme::SprayNoFilter => Some(base.without_filtering()),
        }
    }

    /// The NIC configuration this scheme needs, derived from `base`.
    /// Applied once by the cluster builders, so every runner — point to
    /// point, collectives, fat-tree rings, fuzzer — gets it for free.
    pub fn nic_config(&self, base: NicConfig) -> NicConfig {
        match self {
            Scheme::Oracle => NicConfig {
                transport: TransportMode::IdealOracle,
                cc: CcConfig::disabled(base.line_rate_bps),
                ..base
            },
            Scheme::Reps => NicConfig {
                reaction: TransportReaction {
                    entropy: SenderEntropyKind::Reps {
                        pool: Self::REPS_POOL,
                    },
                    ooo: OooReactionKind::Eager,
                },
                ..base
            },
            Scheme::Sprinklers => NicConfig {
                reaction: TransportReaction {
                    entropy: SenderEntropyKind::Sprinklers {
                        min_stripe: Self::SPRINKLERS_STRIPE.0,
                        max_stripe: Self::SPRINKLERS_STRIPE.1,
                    },
                    ooo: OooReactionKind::Eager,
                },
                ..base
            },
            Scheme::Eunomia => NicConfig {
                reaction: TransportReaction {
                    entropy: SenderEntropyKind::Fixed,
                    ooo: OooReactionKind::Eunomia {
                        window: Self::EUNOMIA_WINDOW,
                        gap_timeout: Self::EUNOMIA_GAP_TIMEOUT,
                    },
                },
                ..base
            },
            _ => base,
        }
    }

    /// Whether the scheme sprays packets (out-of-order arrivals expected).
    /// Flowlet switching only re-routes across genuine gaps, which cannot
    /// reorder packets within a flowlet, so it does not count as spraying.
    pub fn sprays(&self) -> bool {
        !matches!(self, Scheme::Ecmp | Scheme::Flowlet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::TimeDelta;

    fn base() -> ThemisConfig {
        ThemisConfig::for_fabric(16, 400_000_000_000, TimeDelta::from_micros(2), 1500)
    }

    fn base_nic() -> NicConfig {
        NicConfig::nic_sr(400_000_000_000)
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in Scheme::ALL {
            assert!(seen.insert(s.label()));
        }
    }

    #[test]
    fn baselines_have_no_themis() {
        for s in [
            Scheme::Ecmp,
            Scheme::AdaptiveRouting,
            Scheme::RandomSpray,
            Scheme::Flowlet,
            Scheme::Oracle,
            Scheme::Reps,
            Scheme::Eunomia,
            Scheme::Sprinklers,
        ] {
            assert!(s.themis_config(base()).is_none());
        }
    }

    #[test]
    fn flowlet_uses_flowlet_policy() {
        assert_eq!(
            Scheme::Flowlet.lb_policy(),
            LbPolicy::Flowlet {
                gap: Scheme::FLOWLET_GAP
            }
        );
        assert!(!Scheme::Flowlet.sprays());
    }

    #[test]
    fn themis_variants_configure_correctly() {
        let t = Scheme::Themis.themis_config(base()).unwrap();
        assert!(t.filtering && t.compensation);
        assert_eq!(t.spray_mode, SprayMode::DirectEgress);
        let pm = Scheme::ThemisPathMap.themis_config(base()).unwrap();
        assert_eq!(pm.spray_mode, SprayMode::PathMapRewrite);
        let nc = Scheme::ThemisNoCompensation.themis_config(base()).unwrap();
        assert!(nc.filtering && !nc.compensation);
        let nf = Scheme::SprayNoFilter.themis_config(base()).unwrap();
        assert!(!nf.filtering);
    }

    #[test]
    fn themis_rides_on_ecmp_policy() {
        assert_eq!(Scheme::Themis.lb_policy(), LbPolicy::Ecmp);
        assert_eq!(
            Scheme::AdaptiveRouting.lb_policy(),
            LbPolicy::AdaptiveRouting
        );
        assert!(!Scheme::Ecmp.sprays());
        assert!(Scheme::Themis.sprays());
    }

    #[test]
    fn zoo_schemes_configure_their_nic_half() {
        let oracle = Scheme::Oracle.nic_config(base_nic());
        assert_eq!(oracle.transport, TransportMode::IdealOracle);
        assert!(!oracle.cc.enabled && !oracle.cc.nack_slowdown);

        let reps = Scheme::Reps.nic_config(base_nic());
        assert_eq!(
            reps.reaction.entropy,
            SenderEntropyKind::Reps {
                pool: Scheme::REPS_POOL
            }
        );
        assert_eq!(reps.reaction.ooo, OooReactionKind::Eager);
        assert_eq!(reps.transport, TransportMode::SelectiveRepeat);

        let eu = Scheme::Eunomia.nic_config(base_nic());
        assert_eq!(eu.reaction.entropy, SenderEntropyKind::Fixed);
        assert_eq!(
            eu.reaction.ooo,
            OooReactionKind::Eunomia {
                window: Scheme::EUNOMIA_WINDOW,
                gap_timeout: Scheme::EUNOMIA_GAP_TIMEOUT,
            }
        );

        let spr = Scheme::Sprinklers.nic_config(base_nic());
        assert_eq!(
            spr.reaction.entropy,
            SenderEntropyKind::Sprinklers {
                min_stripe: Scheme::SPRINKLERS_STRIPE.0,
                max_stripe: Scheme::SPRINKLERS_STRIPE.1,
            }
        );

        // The incumbents keep the commodity NIC untouched.
        for s in [Scheme::Ecmp, Scheme::Themis, Scheme::RandomSpray] {
            let n = s.nic_config(base_nic());
            assert_eq!(n.reaction, TransportReaction::COMMODITY);
            assert_eq!(n.transport, TransportMode::SelectiveRepeat);
        }
    }

    #[test]
    fn sender_driven_schemes_ride_on_plain_ecmp() {
        assert_eq!(Scheme::Reps.lb_policy(), LbPolicy::Ecmp);
        assert_eq!(Scheme::Sprinklers.lb_policy(), LbPolicy::Ecmp);
        assert_eq!(Scheme::Eunomia.lb_policy(), LbPolicy::RandomSpray);
        assert_eq!(Scheme::Oracle.lb_policy(), LbPolicy::RandomSpray);
        for s in [
            Scheme::Oracle,
            Scheme::Reps,
            Scheme::Eunomia,
            Scheme::Sprinklers,
        ] {
            assert!(s.sprays());
        }
    }

    #[test]
    fn parse_covers_every_scheme_and_rejects_junk() {
        for s in Scheme::ALL {
            // Every scheme has at least one spelling that round-trips.
            let spelling = match s {
                Scheme::Ecmp => "ecmp",
                Scheme::AdaptiveRouting => "ar",
                Scheme::RandomSpray => "spray",
                Scheme::Flowlet => "flowlet",
                Scheme::Themis => "themis",
                Scheme::ThemisPathMap => "themis-pathmap",
                Scheme::ThemisNoCompensation => "themis-nocomp",
                Scheme::SprayNoFilter => "spray-nofilter",
                Scheme::Oracle => "oracle",
                Scheme::Reps => "reps",
                Scheme::Eunomia => "eunomia",
                Scheme::Sprinklers => "sprinklers",
            };
            assert_eq!(Scheme::parse(spelling), Some(s));
        }
        assert_eq!(Scheme::parse("REPS"), Some(Scheme::Reps), "case-blind");
        assert_eq!(Scheme::parse("ideal"), Some(Scheme::Oracle));
        assert_eq!(Scheme::parse("bogus"), None);
    }
}
