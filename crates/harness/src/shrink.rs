//! Greedy delta-debugging (`ddmin`) over an item list.
//!
//! Shared by the scenario fuzzer (shrinking failing fault plans) and
//! the parallel-engine property tests (shrinking seed-event lists that
//! trip the lookahead-safety checker). The algorithm drops ever-smaller
//! chunks while the caller's predicate still fails, down to
//! 1-minimality: removing any single remaining item makes the failure
//! disappear.

/// Shrink `items` to a 1-minimal failing subsequence.
///
/// `still_fails` must return `true` when the given candidate list still
/// reproduces the failure; it is assumed to hold for `items` itself
/// (callers check that before shrinking). Returns the shrunk list and
/// the number of predicate evaluations spent.
///
/// The predicate is re-run on *candidates*, so it must be deterministic
/// for the shrink result to be reproducible.
pub fn ddmin<T: Clone>(items: &[T], mut still_fails: impl FnMut(&[T]) -> bool) -> (Vec<T>, usize) {
    let mut events: Vec<T> = items.to_vec();
    let mut runs = 0usize;
    let mut chunk = events.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            let mut candidate = events.clone();
            candidate.drain(start..end);
            runs += 1;
            if still_fails(&candidate) {
                events = candidate;
                removed_any = true;
                // Re-test from the same offset: the next chunk slid here.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
    (events, runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_single_culprit() {
        let items: Vec<u32> = (0..32).collect();
        let (min, _) = ddmin(&items, |c| c.contains(&17));
        assert_eq!(min, vec![17]);
    }

    #[test]
    fn shrinks_to_interacting_pair() {
        let items: Vec<u32> = (0..16).collect();
        let (min, _) = ddmin(&items, |c| c.contains(&3) && c.contains(&12));
        assert_eq!(min, vec![3, 12]);
    }

    #[test]
    fn keeps_everything_when_all_needed() {
        let items = vec![1u32, 2, 3];
        let (min, _) = ddmin(&items, |c| c.len() == 3);
        assert_eq!(min, items);
    }

    #[test]
    fn empty_failure_shrinks_to_empty() {
        let items = vec![1u32, 2, 3, 4];
        let (min, runs) = ddmin(&items, |_| true);
        assert!(min.is_empty());
        assert!(runs >= 1);
    }
}
