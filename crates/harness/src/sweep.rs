//! Parallel sweep execution.
//!
//! Figure-style experiments are embarrassingly parallel: every
//! `(config, seed, scheme)` cell is an independent simulation with its
//! own `World`, engine, and RNG streams (simcore has no global state).
//! [`SweepRunner`] fans cells out over `std::thread::scope` workers —
//! no external thread-pool crate — and returns results **in cell
//! order**, so output is byte-identical regardless of worker count or
//! scheduling:
//!
//! * each cell's simulation is deterministic in isolation (seeded RNG
//!   substreams, `(time, seq)`-ordered events);
//! * workers claim cells from a shared atomic counter but write results
//!   into the cell's own slot, so collection order never depends on
//!   completion order.
//!
//! `--jobs 1` (the default) bypasses threads entirely. A determinism
//! test in `tests/` asserts serial and parallel runs produce bit-equal
//! per-cell metrics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fans independent sweep cells over a bounded set of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new(1)
    }
}

impl SweepRunner {
    /// A runner with `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> SweepRunner {
        SweepRunner { jobs: jobs.max(1) }
    }

    /// A runner honouring the `THEMIS_JOBS` environment variable
    /// (default 1; binaries let `--jobs` override it). Parsing lives in
    /// [`crate::knobs`], alongside the orthogonal `--shards` knob.
    pub fn from_env() -> SweepRunner {
        SweepRunner::new(crate::knobs::jobs_from_env())
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluate `f` on every cell, returning results in cell order.
    ///
    /// `f` must be a pure function of its cell (it runs concurrently on
    /// worker threads). With `jobs == 1`, or a single cell, everything
    /// runs on the calling thread. A panic inside `f` propagates to the
    /// caller once all workers have stopped.
    pub fn run<C, R, F>(&self, cells: &[C], f: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(&C) -> R + Sync,
    {
        let n = cells.len();
        if self.jobs == 1 || n <= 1 {
            return cells.iter().map(&f).collect();
        }
        // One slot per cell; workers claim the next unclaimed index and
        // park their result in its slot. Per-slot mutexes are never
        // contended (exactly one worker writes each).
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&cells[i]);
                    *slots[i].lock().expect("sweep slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.into_inner()
                    .expect("sweep slot poisoned")
                    .unwrap_or_else(|| panic!("sweep cell {i} produced no result"))
            })
            .collect()
    }
}

/// Parse a `--jobs N` / `-j N` argument list fragment; re-exported from
/// [`crate::knobs::take_jobs_arg`] for the binaries.
pub use crate::knobs::take_jobs_arg;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_preserves_order() {
        let cells: Vec<u64> = (0..10).collect();
        let out = SweepRunner::new(1).run(&cells, |&c| c * c);
        assert_eq!(out, (0..10).map(|c| c * c).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_preserves_order() {
        let cells: Vec<u64> = (0..64).collect();
        let out = SweepRunner::new(4).run(&cells, |&c| c * 3 + 1);
        assert_eq!(out, (0..64).map(|c| c * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn more_jobs_than_cells() {
        let cells = vec![1u32, 2];
        let out = SweepRunner::new(16).run(&cells, |&c| c + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_cells() {
        let out: Vec<u32> = SweepRunner::new(4).run(&Vec::<u32>::new(), |&c| c);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
    }

    #[test]
    fn take_jobs_arg_strips_flag() {
        let (jobs, rest) = take_jobs_arg(
            ["--mb", "4", "--jobs", "8", "--seed", "1"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(jobs, 8);
        assert_eq!(rest, vec!["--mb", "4", "--seed", "1"]);
    }

    #[test]
    fn take_jobs_arg_defaults_without_flag() {
        if std::env::var("THEMIS_JOBS").is_err() {
            let (jobs, rest) = take_jobs_arg(vec!["x".into()]);
            assert_eq!(jobs, 1);
            assert_eq!(rest, vec!["x"]);
        }
    }
}
