//! Telemetry CLI plumbing shared by the figure binaries.
//!
//! Every binary accepts two flags (documented in EXPERIMENTS.md):
//!
//! * `--telemetry PATH` — write the run's full metric snapshot as a
//!   versioned `themis-telemetry` JSON document (schema in the
//!   [`telemetry::report`] module docs and DESIGN.md "Observability").
//! * `--trace-last N` — on abnormal exit (a run that did not complete
//!   before the horizon), dump the last `N` retained structured events
//!   to stderr before the process exits.
//!
//! [`take_telemetry_args`] strips both flags from an argument list the
//! same way [`crate::sweep::take_jobs_arg`] strips `--jobs`, so binaries
//! can compose the helpers in any order.

use telemetry::{Report, RunReport};

/// Parsed telemetry CLI flags.
#[derive(Debug, Clone, Default)]
pub struct TelemetryArgs {
    /// `--telemetry PATH`: where to write the JSON report (None = off).
    pub out: Option<String>,
    /// `--trace-last N`: events to dump on abnormal exit (None = off).
    pub trace_last: Option<usize>,
}

impl TelemetryArgs {
    /// Whether any telemetry output was requested.
    pub fn active(&self) -> bool {
        self.out.is_some() || self.trace_last.is_some()
    }

    /// Write `report` to the configured path, if one was given.
    /// Prints a confirmation line; exits with status 1 on I/O failure.
    pub fn write(&self, report: &Report) {
        let Some(path) = &self.out else { return };
        if let Err(e) = report.write(path.as_ref()) {
            eprintln!("error: failed to write telemetry to {path}: {e}");
            std::process::exit(1);
        }
        println!("telemetry written to {path}");
    }

    /// Dump the tail of `run`'s event ring to stderr if `--trace-last`
    /// was given. Call only on abnormal exit (incomplete run).
    pub fn dump_trace(&self, label: &str, run: &RunReport) {
        let Some(n) = self.trace_last else { return };
        dump_trace_last(label, run, n);
    }
}

/// Strip `--telemetry PATH` and `--trace-last N` from `args`, returning
/// the parsed flags and the remaining arguments in order.
pub fn take_telemetry_args(args: Vec<String>) -> (TelemetryArgs, Vec<String>) {
    let mut out = TelemetryArgs::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--telemetry" && i + 1 < args.len() {
            out.out = Some(args[i + 1].clone());
            i += 2;
            continue;
        }
        if args[i] == "--trace-last" && i + 1 < args.len() {
            if let Ok(n) = args[i + 1].parse() {
                out.trace_last = Some(n);
                i += 2;
                continue;
            }
        }
        rest.push(args[i].clone());
        i += 1;
    }
    (out, rest)
}

/// Write the last `n` retained events of `run` to stderr, oldest first,
/// one line per event. Used by the binaries' abnormal-exit path.
pub fn dump_trace_last(label: &str, run: &RunReport, n: usize) {
    let ring = &run.events.ring;
    let shown = ring.len().min(n);
    eprintln!(
        "--- trace [{label}]: last {shown} of {} retained events ({} seen) ---",
        ring.len(),
        run.events.total
    );
    for ev in &ring[ring.len() - shown..] {
        eprintln!(
            "  t={}ns kind={} qp={} arg={}",
            ev.at_ns, ev.kind, ev.qp, ev.arg
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn strips_both_flags_and_keeps_rest() {
        let (t, rest) = take_telemetry_args(argv(&[
            "--mb",
            "4",
            "--telemetry",
            "out.json",
            "--trace-last",
            "16",
            "--seed",
            "1",
        ]));
        assert_eq!(t.out.as_deref(), Some("out.json"));
        assert_eq!(t.trace_last, Some(16));
        assert!(t.active());
        assert_eq!(rest, argv(&["--mb", "4", "--seed", "1"]));
    }

    #[test]
    fn defaults_without_flags() {
        let (t, rest) = take_telemetry_args(argv(&["collective", "--mb", "4"]));
        assert!(t.out.is_none());
        assert!(t.trace_last.is_none());
        assert!(!t.active());
        assert_eq!(rest, argv(&["collective", "--mb", "4"]));
    }

    #[test]
    fn non_numeric_trace_last_left_in_place() {
        let (t, rest) = take_telemetry_args(argv(&["--trace-last", "soon"]));
        assert!(t.trace_last.is_none());
        assert_eq!(rest, argv(&["--trace-last", "soon"]));
    }

    #[test]
    fn dump_trace_noop_without_flag() {
        // Must not panic on an empty run report.
        TelemetryArgs::default().dump_trace("x", &RunReport::new());
    }
}
