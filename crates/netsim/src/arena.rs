//! Arena-backed packet pool.
//!
//! Port queues at a congested switch can hold tens of thousands of
//! packets; storing whole [`Packet`] values in per-port `VecDeque`s
//! means every queue grows (and reallocates) to its own high-water mark
//! and every enqueue/dequeue moves the full struct through ring-buffer
//! memory that the allocator never recycles across ports. A
//! [`PacketArena`] gives each switch (and each NIC) one pool of packet
//! slots with a free list: queues store 8-byte generation-checked
//! [`PacketRef`] handles, slots are recycled in LIFO order (hot in
//! cache), and the pool's high-water mark is shared across all ports of
//! the entity instead of being paid per port.
//!
//! Handles are *owning*: allocating returns a `PacketRef`, and exactly
//! one [`PacketArena::take`] must consume it. The generation check turns
//! any use-after-free or double-free in queue bookkeeping into an
//! immediate panic instead of silent packet corruption.

use crate::packet::Packet;

/// Generation-checked handle to a packet slot in a [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef {
    idx: u32,
    generation: u32,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u32,
    pkt: Packet,
}

/// A pool of packet slots with free-list recycling.
#[derive(Debug, Clone, Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: u32,
    peak_live: u32,
}

impl PacketArena {
    /// An empty pool; slots are created on demand and recycled forever.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// Store `pkt`, returning its owning handle.
    pub fn alloc(&mut self, pkt: Packet) -> PacketRef {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.pkt = pkt;
                PacketRef {
                    idx,
                    generation: slot.generation,
                }
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("packet arena exhausted u32");
                self.slots.push(Slot { generation: 0, pkt });
                PacketRef { idx, generation: 0 }
            }
        }
    }

    /// Read a stored packet without consuming the handle.
    ///
    /// # Panics
    /// Panics if the handle is stale (its slot was already taken).
    pub fn get(&self, r: PacketRef) -> &Packet {
        let slot = &self.slots[r.idx as usize];
        assert_eq!(slot.generation, r.generation, "stale packet handle");
        &slot.pkt
    }

    /// Remove and return the packet, recycling its slot.
    ///
    /// # Panics
    /// Panics if the handle is stale (double free / use after free).
    pub fn take(&mut self, r: PacketRef) -> Packet {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(slot.generation, r.generation, "stale packet handle");
        slot.generation = slot.generation.wrapping_add(1);
        self.live -= 1;
        self.free.push(r.idx);
        slot.pkt
    }

    /// Packets currently stored.
    pub fn live(&self) -> usize {
        self.live as usize
    }

    /// High-water mark of simultaneously stored packets.
    pub fn peak_live(&self) -> usize {
        self.peak_live as usize
    }

    /// Slots ever created (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Heap bytes held by the pool.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{HostId, QpId};

    fn pkt(psn: u16) -> Packet {
        Packet::data(
            QpId(1),
            HostId(0),
            HostId(1),
            7,
            psn as u32,
            0,
            false,
            1000,
            false,
        )
    }

    #[test]
    fn alloc_take_roundtrip() {
        let mut a = PacketArena::new();
        let r0 = a.alloc(pkt(0));
        let r1 = a.alloc(pkt(1));
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(r1).data_psn(), Some(1));
        assert_eq!(a.take(r0).data_psn(), Some(0));
        assert_eq!(a.take(r1).data_psn(), Some(1));
        assert_eq!(a.live(), 0);
        assert_eq!(a.peak_live(), 2);
    }

    #[test]
    fn slots_are_recycled() {
        let mut a = PacketArena::new();
        for i in 0..100u16 {
            let r = a.alloc(pkt(i));
            assert_eq!(a.take(r).data_psn(), Some(i as u32));
        }
        assert_eq!(a.capacity(), 1, "LIFO recycling reuses one slot");
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn double_take_is_caught() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(0));
        let _ = a.take(r);
        let _ = a.take(r);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn use_after_recycle_is_caught() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(0));
        let _ = a.take(r);
        let _r2 = a.alloc(pkt(1)); // recycles the slot, new generation
        let _ = a.get(r);
    }
}
