//! Simulation events.
//!
//! Every event is addressed to one entity ([`Routed`]) and carries an
//! [`Event`]: a packet arrival, an egress-port transmit completion, a
//! timer, or an out-of-band [`ControlMsg`] (workload commands, completion
//! notifications, and the loss oracle used by the Ideal baseline).

use crate::packet::Packet;
use crate::types::{NodeId, PortId, QpId};

/// An event addressed to an entity.
#[derive(Debug, Clone)]
pub struct Routed {
    /// Target entity.
    pub node: NodeId,
    /// The event payload.
    pub ev: Event,
}

/// What happened.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet finished arriving on `in_port`.
    Packet {
        /// The packet.
        pkt: Packet,
        /// Ingress port at the receiving entity.
        in_port: PortId,
    },
    /// The egress port `port` finished serializing its current packet.
    TxDone {
        /// Which port completed.
        port: PortId,
    },
    /// A timer armed by the entity itself fired.
    Timer {
        /// Opaque token chosen by the entity when arming the timer.
        token: u64,
    },
    /// Out-of-band control message (no wire representation).
    Control(ControlMsg),
    /// Link-level priority-flow-control frame from the peer on `in_port`:
    /// pause (or resume) the egress port facing that peer. Modeled as an
    /// instantaneous link event — real PFC frames are 64 B and preempt
    /// data, so their serialization delay is negligible at these rates.
    Pfc {
        /// Our port facing the sender of the PFC frame.
        in_port: PortId,
        /// True = pause, false = resume.
        pause: bool,
    },
}

/// Control-plane messages between entities.
///
/// These have no network footprint: workload drivers commanding NICs,
/// NICs reporting completions, and the simulator's loss oracle (used only
/// by the `IdealOracle` transport baseline of Fig 1d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMsg {
    /// Post a message for transmission on a QP (driver → sender NIC).
    PostSend {
        /// Connection to send on.
        qp: QpId,
        /// Message length in bytes.
        bytes: u64,
        /// Caller-chosen tag reported back in completions.
        msg_tag: u64,
    },
    /// A message was fully received in order (receiver NIC → driver).
    MessageDelivered {
        /// Connection it arrived on.
        qp: QpId,
        /// Tag from the matching [`ControlMsg::PostSend`].
        msg_tag: u64,
    },
    /// A message was fully acknowledged (sender NIC → driver).
    MessageAcked {
        /// Connection it was sent on.
        qp: QpId,
        /// Tag from the matching [`ControlMsg::PostSend`].
        msg_tag: u64,
    },
    /// Oracle notification: a data packet of `qp` with PSN `psn` was
    /// dropped somewhere in the fabric. Only delivered when the world's
    /// loss oracle is enabled; implements the "Ideal" transport of Fig 1d,
    /// whose receiver NACKs real losses and nothing else.
    OracleLoss {
        /// Affected connection.
        qp: QpId,
        /// PSN of the dropped packet.
        psn: u32,
    },
    /// Failure-monitor notification to a ToR (Pingmesh-style, §6): a
    /// fabric link failed. The switch reverts its uplink policy to ECMP
    /// and tells its hook to stop spraying.
    TorLinkFailure,
    /// The failed link recovered: restore the given LB policy and resume
    /// the hook.
    TorLinkRecovery {
        /// Policy to restore on the uplink group.
        lb: crate::lb::LbPolicy,
    },
    /// Fault injection (switch): administratively take egress port `port`
    /// down (or bring it back up). A down port blackholes everything
    /// offered to it — data and control alike — as a dead cable would;
    /// packets already queued behind the port drain normally.
    SetPortDown {
        /// Egress-port index at the addressed switch.
        port: u16,
        /// True = down (blackhole), false = restore.
        down: bool,
    },
    /// Fault injection (switch): random data-packet loss on egress `port`
    /// at the given rate in parts per million (integer so the message
    /// stays `Copy + Eq`); 0 clears the fault.
    SetPortLossRate {
        /// Egress-port index at the addressed switch.
        port: u16,
        /// Loss probability in packets-per-million.
        rate_ppm: u32,
    },
    /// Fault injection (switch): add `extra_ns` of one-way propagation
    /// delay on egress `port` (a delay-jitter spike); 0 clears it.
    SetPortExtraDelay {
        /// Egress-port index at the addressed switch.
        port: u16,
        /// Additional propagation delay in nanoseconds.
        extra_ns: u64,
    },
    /// Fault injection (switch): drop reverse-direction packets
    /// (ACK/NACK/CNP) traversing the addressed switch with the given
    /// probability in parts per million — models corruption loss on the
    /// reverse path; 0 clears the fault.
    SetReverseCorruptRate {
        /// Drop probability in packets-per-million.
        rate_ppm: u32,
    },
    /// Administrative mid-run toggle of the ToR hook's spraying (Themis
    /// enable/disable), independent of the link-failure fallback path.
    SetSprayEnabled {
        /// True = spraying active.
        on: bool,
    },
    /// Fault injection (NIC): discard received ACK/NACK/CNP packets with
    /// the given probability in parts per million — models receive-path
    /// corruption at the RNIC; 0 clears the fault.
    SetRxCorruptRate {
        /// Discard probability in packets-per-million.
        rate_ppm: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::types::HostId;

    #[test]
    fn events_are_constructible_and_cloneable() {
        let pkt = Packet::cnp(QpId(0), HostId(0), HostId(1), 99);
        let e = Event::Packet {
            pkt,
            in_port: PortId(2),
        };
        let r = Routed {
            node: NodeId(3),
            ev: e.clone(),
        };
        match r.ev {
            Event::Packet { in_port, .. } => assert_eq!(in_port, PortId(2)),
            _ => panic!(),
        }
        let c = ControlMsg::PostSend {
            qp: QpId(1),
            bytes: 100,
            msg_tag: 7,
        };
        assert_eq!(c, c);
    }
}
