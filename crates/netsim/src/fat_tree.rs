//! 3-tier fat-tree fabric (Al-Fares et al. \[9\]).
//!
//! The paper's multi-tier deployment story (§3.2): in a 3-tier Clos the
//! source ToR cannot pick the whole path by egress port — it controls
//! only the edge → aggregation hop, while the aggregation switch's ECMP
//! picks the core. Themis therefore rewrites the UDP source port through
//! a PathMap so that *both* ECMP stages land on the desired relative
//! path, with programmability required **only at the ToR**.
//!
//! ## Structure (radix `k`, `m = k/2`)
//!
//! * `k` pods; per pod `m` edge (ToR) switches and `m` aggregation
//!   switches; `m²` core switches.
//! * Edge `(p, e)`: `m` hosts + one uplink to each agg of pod `p`.
//! * Agg `(p, a)`: downlinks to the pod's edges + uplinks to cores
//!   `a·m + j` for `j < m`.
//! * Core `c = a·m + j`: one port per pod, to agg `a` of that pod.
//!
//! Between hosts in different pods there are exactly `m²` equal-cost
//! paths, indexed `path = agg_choice · m + core_choice` — realized by the
//! edge ECMP stage reading hash bits `[0, log2 m)` and the agg stage
//! reading bits `[8, 8 + log2 m)` (decorrelated views of one GF(2)-linear
//! hash, as on real ASICs; see [`crate::lb::LbState::ecmp_shift`]).
//!
//! `m` must be a power of two so both stages are XOR-steerable.

use crate::lb::LbPolicy;
use crate::port::{EcnConfig, EgressPort, LinkSpec};
use crate::switch::{PfcConfig, RouteEntry, RouteTable, Switch, SwitchConfig};
use crate::topology::HostAttachment;
use crate::types::{HostId, NodeId, PortId};
use crate::world::World;
use std::sync::Arc;

/// Hash-view shift used by the aggregation tier (edges use shift 0).
pub const AGG_ECMP_SHIFT: u32 = 8;

/// Fat-tree fabric parameters.
#[derive(Debug, Clone)]
pub struct FatTreeConfig {
    /// Switch radix `k` (even; `k/2` must be a power of two).
    pub k: usize,
    /// Host-to-edge link.
    pub host_link: LinkSpec,
    /// All switch-to-switch links.
    pub fabric_link: LinkSpec,
    /// Per-switch shared buffer.
    pub buffer_bytes: u64,
    /// Uplink LB policy on edges and aggs.
    pub lb: LbPolicy,
    /// Enable WRED/ECN marking on all ports.
    pub ecn: bool,
    /// Enable the loss oracle.
    pub oracle_loss_notify: bool,
    /// Hop-by-hop PFC on every switch; `None` = lossy fabric.
    pub pfc: Option<PfcConfig>,
    /// Strict control-packet priority on every switch port.
    pub ctrl_priority: bool,
    /// Root seed.
    pub seed: u64,
}

impl FatTreeConfig {
    /// A k=4 test fabric (16 hosts, 4 equal-cost inter-pod paths) at
    /// 100 Gbps.
    pub fn small(k: usize) -> FatTreeConfig {
        FatTreeConfig {
            k,
            host_link: LinkSpec::gbps(100, 1),
            fabric_link: LinkSpec::gbps(100, 1),
            buffer_bytes: 64 * 1024 * 1024,
            lb: LbPolicy::Ecmp,
            ecn: true,
            oracle_loss_notify: false,
            pfc: None,
            ctrl_priority: false,
            seed: 1,
        }
    }

    /// Hosts per pod: `(k/2)²`.
    pub fn hosts_per_pod(&self) -> usize {
        (self.k / 2) * (self.k / 2)
    }

    /// Total hosts: `k³/4`.
    pub fn n_hosts(&self) -> usize {
        self.k * self.hosts_per_pod()
    }

    /// Equal-cost paths between hosts in different pods: `(k/2)²`.
    pub fn n_paths(&self) -> usize {
        (self.k / 2) * (self.k / 2)
    }
}

/// A built fat-tree: switches installed, host slots reserved.
pub struct FatTreePlan {
    /// The world (host slots empty).
    pub world: World,
    /// Host attachments, indexed by host id.
    pub hosts: Vec<HostAttachment>,
    /// Edge (ToR) switches, indexed `pod * m + e`.
    pub edges: Vec<NodeId>,
    /// Aggregation switches, indexed `pod * m + a`.
    pub aggs: Vec<NodeId>,
    /// Core switches, indexed `a * m + j`.
    pub cores: Vec<NodeId>,
    /// Inter-pod equal-cost path count `(k/2)²`.
    pub n_paths: usize,
    /// Radix.
    pub k: usize,
}

impl FatTreePlan {
    /// Pod of `host`.
    pub fn pod_of(&self, host: HostId) -> usize {
        let m = self.k / 2;
        host.index() / (m * m)
    }

    /// Edge switch of `host`.
    pub fn edge_of(&self, host: HostId) -> NodeId {
        self.hosts[host.index()].tor
    }
}

/// One port to wire onto a switch: plain data, so pod blueprints can be
/// produced on worker threads and instantiated on the main thread (the
/// `Switch` itself is not `Send`).
struct PortSpec {
    peer: NodeId,
    peer_in_port: PortId,
    link: LinkSpec,
    host_facing: bool,
}

/// Everything needed to instantiate one switch.
struct SwitchBlueprint {
    salt: u64,
    ecmp_shift: u32,
    ports: Vec<PortSpec>,
    uplinks: Vec<usize>,
    routes: RouteTable,
}

/// One pod's edge and aggregation switches.
struct PodBlueprint {
    edges: Vec<SwitchBlueprint>,
    aggs: Vec<SwitchBlueprint>,
}

/// First entity slot of the edge tier: hosts occupy `0..n_hosts`, then
/// edges, aggs, cores follow in installation order.
fn edge_node(n_hosts: usize, i: usize) -> NodeId {
    NodeId((n_hosts + i) as u32)
}
fn agg_node(n_hosts: usize, k: usize, i: usize) -> NodeId {
    NodeId((n_hosts + k * (k / 2) + i) as u32)
}
fn core_node(n_hosts: usize, k: usize, i: usize) -> NodeId {
    NodeId((n_hosts + 2 * k * (k / 2) + i) as u32)
}

/// Blueprint for pod `p`: all its edge and agg switches, with interned
/// route tables (one shared "everything via uplinks" table for edges —
/// their local hosts are a closed-form window — and one table for the
/// whole pod's aggs).
fn build_pod_blueprint(
    cfg: &FatTreeConfig,
    p: usize,
    uplinks_only: &Arc<[RouteEntry]>,
) -> PodBlueprint {
    let k = cfg.k;
    let m = k / 2;
    let n_hosts = cfg.n_hosts();
    let host_id = |e: usize, s: usize| p * m * m + e * m + s;

    let pod_table: Arc<[RouteEntry]> = (0..n_hosts)
        .map(|h| {
            if h / (m * m) == p {
                RouteEntry::Port(((h / m) % m) as u16)
            } else {
                RouteEntry::Uplinks
            }
        })
        .collect();

    let edges = (0..m)
        .map(|e| {
            let mut ports = Vec::with_capacity(2 * m);
            // Host ports 0..m.
            for s in 0..m {
                ports.push(PortSpec {
                    peer: NodeId(host_id(e, s) as u32),
                    peer_in_port: PortId(0),
                    link: cfg.host_link,
                    host_facing: true,
                });
            }
            // Uplinks m..2m: to each agg of this pod. Our packets arrive
            // at agg (p, a) on its downlink port e.
            for a in 0..m {
                ports.push(PortSpec {
                    peer: agg_node(n_hosts, k, p * m + a),
                    peer_in_port: PortId(e as u16),
                    link: cfg.fabric_link,
                    host_facing: false,
                });
            }
            SwitchBlueprint {
                salt: (p * m + e) as u64,
                ecmp_shift: 0,
                ports,
                uplinks: (m..2 * m).collect(),
                routes: RouteTable::Interned {
                    base: uplinks_only.clone(),
                    start: host_id(e, 0) as u32,
                    len: m as u32,
                    first_port: 0,
                },
            }
        })
        .collect();

    let aggs = (0..m)
        .map(|a| {
            let mut ports = Vec::with_capacity(2 * m);
            // Downlinks 0..m to edges; our packets arrive at edge (p, e)
            // on its uplink port m + a.
            for e in 0..m {
                ports.push(PortSpec {
                    peer: edge_node(n_hosts, p * m + e),
                    peer_in_port: PortId((m + a) as u16),
                    link: cfg.fabric_link,
                    host_facing: false,
                });
            }
            // Uplinks m..2m to cores a*m + j; arrive at core port p.
            for j in 0..m {
                ports.push(PortSpec {
                    peer: core_node(n_hosts, k, a * m + j),
                    peer_in_port: PortId(p as u16),
                    link: cfg.fabric_link,
                    host_facing: false,
                });
            }
            SwitchBlueprint {
                salt: 10_000 + (p * m + a) as u64,
                ecmp_shift: AGG_ECMP_SHIFT,
                ports,
                uplinks: (m..2 * m).collect(),
                routes: RouteTable::Interned {
                    base: pod_table.clone(),
                    start: 0,
                    len: 0,
                    first_port: 0,
                },
            }
        })
        .collect();

    PodBlueprint { edges, aggs }
}

/// Build a `k`-ary fat-tree. Host `h` (pod `h / m²`, edge `(h / m) % m`,
/// slot `h % m`) occupies entity slot `NodeId(h)`.
///
/// Pods are laid out in parallel and all route tables are interned
/// ([`RouteTable::Interned`]), so construction stays in the tens of
/// milliseconds and a few MB even at k=32 (8192 hosts, 1280 switches),
/// where dense per-switch tables alone would cost ~42 MB.
pub fn build_fat_tree(cfg: &FatTreeConfig) -> FatTreePlan {
    let k = cfg.k;
    let m = k / 2;
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree radix must be even");
    assert!(
        m.is_power_of_two(),
        "k/2 must be a power of two for XOR path steering"
    );
    let n_hosts = cfg.n_hosts();
    let mut world = World::new();

    let host_nodes: Vec<NodeId> = (0..n_hosts).map(|_| world.reserve()).collect();
    for (h, node) in host_nodes.iter().enumerate() {
        assert_eq!(node.0 as usize, h, "host node-id convention violated");
    }

    // Shared tables: every edge routes "everything via uplinks" outside
    // its local-host window; every core steers each host to its pod.
    let uplinks_only: Arc<[RouteEntry]> = (0..n_hosts).map(|_| RouteEntry::Uplinks).collect();
    let core_table: Arc<[RouteEntry]> = (0..n_hosts)
        .map(|h| RouteEntry::Port((h / (m * m)) as u16))
        .collect();

    // Pod blueprints in parallel (one thread per pod; plain data out).
    let mut pods: Vec<Option<PodBlueprint>> = (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (p, slot) in pods.iter_mut().enumerate() {
            let uplinks_only = &uplinks_only;
            scope.spawn(move || {
                *slot = Some(build_pod_blueprint(cfg, p, uplinks_only));
            });
        }
    });
    let mut pods: Vec<PodBlueprint> = pods
        .into_iter()
        .map(|p| p.expect("pod blueprint built"))
        .collect();

    let instantiate = |world: &mut World, bp: SwitchBlueprint| -> NodeId {
        let mut sw = Switch::new(&SwitchConfig {
            buffer_bytes: cfg.buffer_bytes,
            lb: cfg.lb,
            oracle_loss_notify: cfg.oracle_loss_notify,
            seed: cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(bp.salt),
            ecmp_shift: bp.ecmp_shift,
            pfc: cfg.pfc,
            ctrl_priority: cfg.ctrl_priority,
        });
        for ps in bp.ports {
            sw.add_port(
                EgressPort::new(ps.peer, ps.peer_in_port, ps.link),
                ps.host_facing,
            );
        }
        sw.set_uplinks(bp.uplinks);
        sw.set_route_table(bp.routes);
        if cfg.ecn {
            sw.set_ecn_all_ports(|pt| Some(EcnConfig::for_bandwidth(pt.link.bandwidth_bps)));
        }
        world.add(Box::new(sw))
    };

    // Installation order (edges, aggs, cores) must match the arithmetic
    // node ids the blueprints were wired against.
    let mut hosts = Vec::with_capacity(n_hosts);
    let mut edges = Vec::with_capacity(k * m);
    for (p, pod) in pods.iter_mut().enumerate() {
        for (e, bp) in pod.edges.drain(..).enumerate() {
            let id = instantiate(&mut world, bp);
            assert_eq!(id, edge_node(n_hosts, p * m + e), "edge node-id drift");
            for s in 0..m {
                let h = p * m * m + e * m + s;
                hosts.push(HostAttachment {
                    host: HostId(h as u32),
                    node: host_nodes[h],
                    tor: id,
                    tor_port: PortId(s as u16),
                    link: cfg.host_link,
                });
            }
            edges.push(id);
        }
    }
    let mut aggs = Vec::with_capacity(k * m);
    for (p, pod) in pods.iter_mut().enumerate() {
        for (a, bp) in pod.aggs.drain(..).enumerate() {
            let id = instantiate(&mut world, bp);
            assert_eq!(id, agg_node(n_hosts, k, p * m + a), "agg node-id drift");
            aggs.push(id);
        }
    }
    let mut cores = Vec::with_capacity(m * m);
    for a in 0..m {
        for j in 0..m {
            // Port p towards agg (p, a); arrives at agg uplink port m + j.
            let ports = (0..k)
                .map(|p| PortSpec {
                    peer: agg_node(n_hosts, k, p * m + a),
                    peer_in_port: PortId((m + j) as u16),
                    link: cfg.fabric_link,
                    host_facing: false,
                })
                .collect();
            let id = instantiate(
                &mut world,
                SwitchBlueprint {
                    salt: 20_000 + (a * m + j) as u64,
                    ecmp_shift: 0,
                    ports,
                    uplinks: Vec::new(),
                    routes: RouteTable::Interned {
                        base: core_table.clone(),
                        start: 0,
                        len: 0,
                        first_port: 0,
                    },
                },
            );
            assert_eq!(id, core_node(n_hosts, k, a * m + j), "core node-id drift");
            cores.push(id);
        }
    }

    FatTreePlan {
        world,
        hosts,
        edges,
        aggs,
        cores,
        n_paths: cfg.n_paths(),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::packet::Packet;
    use crate::types::QpId;
    use crate::world::{Ctx, Entity};
    use simcore::time::Nanos;

    #[test]
    fn k4_dimensions() {
        let cfg = FatTreeConfig::small(4);
        assert_eq!(cfg.n_hosts(), 16);
        assert_eq!(cfg.n_paths(), 4);
        let plan = build_fat_tree(&cfg);
        assert_eq!(plan.hosts.len(), 16);
        assert_eq!(plan.edges.len(), 8);
        assert_eq!(plan.aggs.len(), 8);
        assert_eq!(plan.cores.len(), 4);
        assert_eq!(plan.world.len(), 16 + 8 + 8 + 4);
    }

    #[test]
    fn k8_dimensions() {
        let cfg = FatTreeConfig::small(8);
        let plan = build_fat_tree(&cfg);
        assert_eq!(plan.hosts.len(), 128);
        assert_eq!(plan.n_paths, 16);
        assert_eq!(plan.cores.len(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_k6() {
        build_fat_tree(&FatTreeConfig::small(6));
    }

    #[test]
    fn pods_and_edges_assigned_correctly() {
        let plan = build_fat_tree(&FatTreeConfig::small(4));
        assert_eq!(plan.pod_of(HostId(0)), 0);
        assert_eq!(plan.pod_of(HostId(3)), 0);
        assert_eq!(plan.pod_of(HostId(4)), 1);
        assert_eq!(plan.pod_of(HostId(15)), 3);
        // Hosts 0,1 share edge (0,0); hosts 2,3 share edge (0,1).
        assert_eq!(plan.edge_of(HostId(0)), plan.edge_of(HostId(1)));
        assert_ne!(plan.edge_of(HostId(0)), plan.edge_of(HostId(2)));
    }

    /// Sink that records arrivals.
    struct Sink {
        got: Vec<Packet>,
    }
    impl Entity for Sink {
        fn handle(&mut self, ev: Event, _ctx: &mut Ctx<'_>) {
            if let Event::Packet { pkt, .. } = ev {
                self.got.push(pkt);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Inject packets at a source edge and verify they reach the right
    /// host across pods, for many entropy values (all 4 paths work).
    #[test]
    fn inter_pod_forwarding_reaches_destination_on_every_path() {
        let cfg = FatTreeConfig::small(4);
        let mut plan = build_fat_tree(&cfg);
        // Install sinks at every host slot.
        for att in &plan.hosts {
            plan.world.install(att.node, Box::new(Sink { got: vec![] }));
        }
        // Host 0 (pod 0) -> host 15 (pod 3), 64 different sports.
        let src_edge = plan.edge_of(HostId(0));
        for sport in 0..64u16 {
            let pkt = Packet::data(
                QpId(sport as u32),
                HostId(0),
                HostId(15),
                1000 + sport * 7,
                0,
                0,
                false,
                1000,
                false,
            );
            plan.world.seed_event(
                Nanos(sport as u64),
                src_edge,
                Event::Packet {
                    pkt,
                    in_port: PortId(0), // host-facing
                },
            );
        }
        plan.world.run();
        let sink: &Sink = plan.world.get(NodeId(15)).unwrap();
        assert_eq!(sink.got.len(), 64, "every packet must arrive");
        // And nothing leaked to other hosts.
        for h in 0..15u32 {
            let s: &Sink = plan.world.get(NodeId(h)).unwrap();
            assert!(s.got.is_empty(), "host {h} received stray packets");
        }
    }

    #[test]
    fn intra_pod_cross_edge_goes_via_agg_only() {
        let cfg = FatTreeConfig::small(4);
        let mut plan = build_fat_tree(&cfg);
        for att in &plan.hosts {
            plan.world.install(att.node, Box::new(Sink { got: vec![] }));
        }
        // Host 0 (edge 0,0) -> host 2 (edge 0,1): same pod.
        let pkt = Packet::data(QpId(1), HostId(0), HostId(2), 777, 0, 0, false, 1000, false);
        plan.world.seed_event(
            Nanos::ZERO,
            plan.edge_of(HostId(0)),
            Event::Packet {
                pkt,
                in_port: PortId(0),
            },
        );
        plan.world.run();
        let sink: &Sink = plan.world.get(NodeId(2)).unwrap();
        assert_eq!(sink.got.len(), 1);
        // Cores saw nothing.
        for &c in &plan.cores {
            let sw: &Switch = plan.world.get(c).unwrap();
            assert_eq!(
                sw.stats.rx_packets, 0,
                "intra-pod traffic must not hit cores"
            );
        }
    }

    #[test]
    fn ecmp_uses_all_four_inter_pod_paths() {
        let cfg = FatTreeConfig::small(4);
        let mut plan = build_fat_tree(&cfg);
        for att in &plan.hosts {
            plan.world.install(att.node, Box::new(Sink { got: vec![] }));
        }
        let src_edge = plan.edge_of(HostId(0));
        // Many flows with different entropy: every core should see some.
        for sport in 0..256u16 {
            let pkt = Packet::data(
                QpId(sport as u32),
                HostId(0),
                HostId(15),
                sport.wrapping_mul(2654),
                0,
                0,
                false,
                1000,
                false,
            );
            plan.world.seed_event(
                Nanos(sport as u64 * 200),
                src_edge,
                Event::Packet {
                    pkt,
                    in_port: PortId(0),
                },
            );
        }
        plan.world.run();
        for &c in &plan.cores {
            let sw: &Switch = plan.world.get(c).unwrap();
            assert!(
                sw.stats.rx_packets > 0,
                "core {c} unused: hash views too correlated"
            );
        }
    }
}
