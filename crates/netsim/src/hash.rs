//! GF(2)-linear flow hashing.
//!
//! Commodity switch ASICs hash the 5-tuple with CRC-like functions that are
//! *linear over GF(2)*: `H(x ⊕ y) = H(x) ⊕ H(y)` (for equal-length inputs,
//! zero initial value, no final XOR). Zhang et al. ("Hashing Linearity
//! Enables Relative Path Control in Data Centers", ATC'21 — the paper's
//! reference \[37\]) exploit exactly this property to steer a flow onto a
//! *relative* path by XOR-ing a precomputed delta into the UDP source port.
//! Themis-S builds its PathMap the same way (§3.2, Figure 3).
//!
//! We implement a CRC-16/CCITT (polynomial 0x1021) over the packed 5-tuple
//! with those linearity-preserving parameters, and expose
//! [`sport_delta_for_hash_delta`], the offline PathMap ingredient: a UDP
//! source-port XOR delta that changes the hash output by a chosen XOR delta.

use crate::packet::Packet;
use crate::types::HostId;

/// CRC-16 polynomial (CCITT), used with init = 0 and no final XOR so the
/// function is GF(2)-linear.
const POLY: u16 = 0x1021;

/// Bit-at-a-time CRC-16 update.
#[inline]
fn crc16_update(mut crc: u16, byte: u8) -> u16 {
    crc ^= (byte as u16) << 8;
    for _ in 0..8 {
        if crc & 0x8000 != 0 {
            crc = (crc << 1) ^ POLY;
        } else {
            crc <<= 1;
        }
    }
    crc
}

/// CRC-16 of a byte slice (init 0, no reflection, no final XOR — linear).
pub fn crc16(data: &[u8]) -> u16 {
    data.iter().fold(0u16, |c, &b| crc16_update(c, b))
}

/// The fields ECMP hashes on: (src ip, dst ip, sport, dport, proto).
/// `dport` and `proto` are fixed for RoCEv2 (4791/UDP) but participate in
/// the hash as they would on a real ASIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiveTuple {
    /// Synthetic source IP (host id).
    pub src: u32,
    /// Synthetic destination IP (host id).
    pub dst: u32,
    /// UDP source port (the entropy field).
    pub sport: u16,
    /// UDP destination port (RoCEv2: 4791).
    pub dport: u16,
    /// IP protocol (UDP: 17).
    pub proto: u8,
}

/// RoCEv2 UDP destination port.
pub const ROCE_DPORT: u16 = 4791;
/// UDP protocol number.
pub const UDP_PROTO: u8 = 17;

impl FiveTuple {
    /// Extract the hashed fields from a packet.
    pub fn of_packet(p: &Packet) -> FiveTuple {
        FiveTuple {
            src: p.src.0,
            dst: p.dst.0,
            sport: p.udp_sport,
            dport: ROCE_DPORT,
            proto: UDP_PROTO,
        }
    }

    /// A tuple for an explicit host pair + sport (used in tests and the
    /// connection setup path).
    pub fn new(src: HostId, dst: HostId, sport: u16) -> FiveTuple {
        FiveTuple {
            src: src.0,
            dst: dst.0,
            sport,
            dport: ROCE_DPORT,
            proto: UDP_PROTO,
        }
    }

    /// Pack into the canonical 13-byte key the hash runs over.
    pub fn pack(&self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst.to_be_bytes());
        b[8..10].copy_from_slice(&self.sport.to_be_bytes());
        b[10..12].copy_from_slice(&self.dport.to_be_bytes());
        b[12] = self.proto;
        b
    }
}

/// The switch's ECMP hash of a 5-tuple.
///
/// GF(2)-linearity in the sport field — the property PathMaps exploit:
/// ```
/// use netsim::hash::{ecmp_hash, hash_delta_of_sport_delta, FiveTuple};
/// use netsim::types::HostId;
/// let t = FiveTuple::new(HostId(1), HostId(2), 4000);
/// let mut moved = t;
/// moved.sport ^= 0x0ABC;
/// assert_eq!(
///     ecmp_hash(&moved),
///     ecmp_hash(&t) ^ hash_delta_of_sport_delta(0x0ABC),
/// );
/// ```
pub fn ecmp_hash(t: &FiveTuple) -> u16 {
    crc16(&t.pack())
}

/// Hash delta caused by XOR-ing `sport_delta` into the UDP source port.
///
/// By linearity this is independent of the rest of the tuple: it equals the
/// CRC of a key that is zero everywhere except the sport field.
pub fn hash_delta_of_sport_delta(sport_delta: u16) -> u16 {
    let zeroed = FiveTuple {
        src: 0,
        dst: 0,
        sport: sport_delta,
        dport: 0,
        proto: 0,
    };
    crc16(&zeroed.pack())
}

/// Find a UDP source-port XOR delta whose hash contribution equals
/// `target` on the bit positions selected by `mask` (arbitrary elsewhere).
///
/// This is the general offline PathMap ingredient. Multi-tier fabrics use
/// *different views* of the same hash per tier (e.g. edge switches read
/// bits `[0, b)`, aggregation switches bits `[8, 8+b)`); a single sport
/// rewrite must then steer both stages at once, i.e. satisfy constraints
/// on a non-contiguous bit mask — exactly what this solver does.
///
/// Works by Gaussian elimination over GF(2): each of the 16 sport bits
/// contributes a fixed hash-delta vector; we solve for a combination
/// matching `target` on the masked positions. Returns `None` only if the
/// system is singular on those positions, which cannot happen for
/// CRC-16/CCITT with ≤ 16 constrained bits (the basis vectors are
/// linearly independent — verified by unit tests).
pub fn sport_delta_for_masked_delta(target: u16, mask: u16) -> Option<u16> {
    debug_assert_eq!(target & !mask, 0, "target outside mask");
    // Basis: hash delta of each single sport bit.
    let mut rows: Vec<(u16, u16)> = (0..16)
        .map(|i| {
            let sd = 1u16 << i;
            (hash_delta_of_sport_delta(sd), sd)
        })
        .collect();
    let mut target = target & mask;
    let mut solution: u16 = 0;
    // Eliminate over each masked position.
    for bit in 0..16 {
        let pos = 1u16 << bit;
        if mask & pos == 0 {
            continue;
        }
        // Find a row with this bit set.
        let idx = rows.iter().position(|(h, _)| h & pos != 0)?;
        let (h, s) = rows.remove(idx);
        // Reduce remaining rows.
        for (rh, rs) in rows.iter_mut() {
            if *rh & pos != 0 {
                *rh ^= h;
                *rs ^= s;
            }
        }
        if target & pos != 0 {
            target ^= h;
            solution ^= s;
        }
    }
    if target & mask != 0 {
        return None;
    }
    Some(solution)
}

/// [`sport_delta_for_masked_delta`] specialized to the low `bits` bits:
/// with `n = 2^bits` paths selected by the low hash bits, XOR-ing the
/// returned delta into the sport moves a packet from path `p` to
/// `p ⊕ target_hash_delta`.
pub fn sport_delta_for_hash_delta(target_hash_delta: u16, bits: u32) -> Option<u16> {
    debug_assert!(bits <= 16);
    let mask = if bits >= 16 {
        0xFFFF
    } else {
        ((1u32 << bits) - 1) as u16
    };
    sport_delta_for_masked_delta(target_hash_delta & mask, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_is_deterministic() {
        let t = FiveTuple::new(HostId(3), HostId(9), 5000);
        assert_eq!(ecmp_hash(&t), ecmp_hash(&t));
    }

    #[test]
    fn crc_is_gf2_linear_in_sport() {
        // H(sport ⊕ d) = H(sport) ⊕ H_delta(d) for every tuple.
        for sport in [0u16, 1, 999, 4096, 65535] {
            for d in [1u16, 2, 0x00FF, 0xABCD] {
                let base = FiveTuple::new(HostId(7), HostId(11), sport);
                let moved = FiveTuple::new(HostId(7), HostId(11), sport ^ d);
                assert_eq!(
                    ecmp_hash(&moved),
                    ecmp_hash(&base) ^ hash_delta_of_sport_delta(d),
                    "sport={sport} d={d}"
                );
            }
        }
    }

    #[test]
    fn sport_basis_is_linearly_independent() {
        // All 2^16 XOR combinations of the 16 basis vectors must be
        // distinct; equivalently the map d -> hash_delta(d) is injective.
        // Spot-check injectivity on the low 8 bits via full enumeration of
        // one byte and check the solver round-trips everywhere.
        for bits in [1u32, 2, 3, 4, 8] {
            let n = 1u16 << bits;
            for delta in 0..n {
                let sd = sport_delta_for_hash_delta(delta, bits).expect("solver must find a delta");
                let got = hash_delta_of_sport_delta(sd);
                assert_eq!(
                    got & (n - 1),
                    delta,
                    "bits={bits} delta={delta} sd={sd:#x} got={got:#x}"
                );
            }
        }
    }

    #[test]
    fn pathmap_moves_paths_as_designed() {
        // With n = 2^bits paths chosen by low hash bits, rewriting the
        // sport with the solved delta moves path p to p ⊕ delta for every
        // flow — the property Themis-S relies on.
        let bits = 4;
        let n = 1u16 << bits;
        for delta in 0..n {
            let sd = sport_delta_for_hash_delta(delta, bits as u32).unwrap();
            for (src, dst, sport) in [(0u32, 5u32, 100u16), (9, 2, 60000), (100, 101, 4791)] {
                let t = FiveTuple {
                    src,
                    dst,
                    sport,
                    dport: ROCE_DPORT,
                    proto: UDP_PROTO,
                };
                let mut t2 = t;
                t2.sport ^= sd;
                let p1 = ecmp_hash(&t) & (n - 1);
                let p2 = ecmp_hash(&t2) & (n - 1);
                assert_eq!(p2, p1 ^ delta);
            }
        }
    }

    #[test]
    fn hash_spreads_flows() {
        // 256 flows across 16 buckets: no bucket should be empty and no
        // bucket should hold more than ~3x its fair share.
        let mut counts = [0u32; 16];
        for src in 0..16u32 {
            for sport in 0..16u16 {
                let t = FiveTuple {
                    src,
                    dst: 1000,
                    sport: 49152 + sport * 7,
                    dport: ROCE_DPORT,
                    proto: UDP_PROTO,
                };
                counts[(ecmp_hash(&t) % 16) as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "bucket {i} empty");
            assert!(c < 48, "bucket {i} overloaded: {c}");
        }
    }

    #[test]
    fn masked_solver_handles_non_contiguous_masks() {
        // Constrain bits {0,1} and {8,9} simultaneously — the two-tier
        // fabric case (edge reads low bits, agg reads bits 8..).
        let mask: u16 = 0b0000_0011_0000_0011;
        for t0 in 0..4u16 {
            for t1 in 0..4u16 {
                let target = t0 | (t1 << 8);
                let sd = sport_delta_for_masked_delta(target, mask)
                    .expect("solvable for 4 constrained bits");
                let got = hash_delta_of_sport_delta(sd);
                assert_eq!(got & mask, target, "t0={t0} t1={t1} sd={sd:#x}");
            }
        }
    }

    #[test]
    fn masked_solver_covers_full_16_bits() {
        // Even all 16 bits constrained at once is solvable (the CRC-16
        // sport basis is full rank).
        for target in [0u16, 1, 0xBEEF, 0xFFFF] {
            let sd = sport_delta_for_masked_delta(target, 0xFFFF).expect("full rank");
            assert_eq!(hash_delta_of_sport_delta(sd), target);
        }
    }

    #[test]
    fn packed_key_is_13_bytes() {
        // Matches the 13-byte QP/flow key of the §4 memory accounting.
        let t = FiveTuple::new(HostId(1), HostId(2), 3);
        assert_eq!(t.pack().len(), 13);
    }
}
