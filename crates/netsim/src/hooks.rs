//! ToR-switch extension hooks — the deployment surface of Themis.
//!
//! The paper deploys Themis "only on ToR switches" (§3.1). The simulator
//! mirrors that: a ToR switch may carry one [`TorHook`] object that gets
//! invoked at the three places a programmable ToR pipeline can act:
//!
//! * **Upstream data** ([`TorHook::on_upstream_data`]): a data packet from a
//!   directly attached host is about to be forwarded into the fabric. This
//!   is where Themis-S applies the PSN-based spraying policy — either by
//!   choosing the egress uplink directly (2-tier mode) or by rewriting the
//!   UDP source port through the PathMap (multi-tier mode, Figure 3).
//! * **Downstream delivery** ([`TorHook::on_downstream`]): a packet is about
//!   to be queued on the last hop towards a local host. Themis-D records
//!   data-packet PSNs in its ring queue here and runs the NACK-compensation
//!   check (§3.3, §3.4).
//! * **Reverse control** ([`TorHook::on_reverse`]): an ACK/NACK/CNP from a
//!   local host is entering the fabric. Themis-D validates NACKs here and
//!   blocks the invalid ones (§3.3).
//!
//! Hooks can also *emit* packets (compensated NACKs); the switch injects
//! them into normal forwarding without re-running hooks on them.

use crate::packet::Packet;
use simcore::time::Nanos;
use std::any::Any;

/// Verdict for a reverse-direction control packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReverseAction {
    /// Let the packet through to the sender.
    Forward,
    /// Drop the packet at the ToR (an "invalid NACK" in Themis terms).
    Block,
}

/// Context passed to hook invocations.
pub struct HookCtx<'a> {
    /// Current simulation time.
    pub now: Nanos,
    /// Packets the hook wants the switch to originate (e.g. compensated
    /// NACKs). The switch routes them normally but does not re-invoke
    /// hooks on them.
    pub emit: &'a mut Vec<Packet>,
}

/// A programmable-ToR extension.
///
/// All methods have pass-through defaults so implementations override only
/// the pipeline stages they care about.
pub trait TorHook {
    /// Data packet from a local host about to be load-balanced upstream.
    ///
    /// May rewrite the packet header (PathMap mode). Returning `Some(i)`
    /// overrides the switch's load-balancing policy with uplink index `i`
    /// (0-based within the uplink group — 2-tier direct mode).
    fn on_upstream_data(
        &mut self,
        _pkt: &mut Packet,
        _n_uplinks: usize,
        _ctx: &mut HookCtx<'_>,
    ) -> Option<usize> {
        None
    }

    /// Packet about to be enqueued on the last hop toward a local host.
    fn on_downstream(&mut self, _pkt: &Packet, _ctx: &mut HookCtx<'_>) {}

    /// ACK/NACK/CNP from a local host entering the fabric.
    fn on_reverse(&mut self, _pkt: &Packet, _ctx: &mut HookCtx<'_>) -> ReverseAction {
        ReverseAction::Forward
    }

    /// A fabric link failed (`failed = true`) or recovered (`false`),
    /// per the §6 monitoring integration. Default: ignore.
    fn on_link_event(&mut self, _failed: bool) {}

    /// Administrative mid-run toggle of the hook's spraying (operator
    /// enabling/disabling Themis on a live ToR), distinct from the
    /// link-failure fallback. Default: ignore.
    fn on_admin_spray(&mut self, _enabled: bool) {}

    /// Downcast support for stats extraction.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support (runtime reconfiguration, e.g. reverting
    /// to ECMP on link failure, §6).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A hook that blocks nothing and records nothing; useful as a control in
/// A/B tests (hook dispatch overhead without Themis logic).
#[derive(Debug, Default)]
pub struct NullHook;

impl TorHook for NullHook {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::types::{HostId, QpId};

    #[test]
    fn null_hook_passes_everything() {
        let mut h = NullHook;
        let mut emit = Vec::new();
        let mut ctx = HookCtx {
            now: Nanos::ZERO,
            emit: &mut emit,
        };
        let mut pkt = Packet::data(QpId(0), HostId(0), HostId(1), 7, 0, 0, false, 100, false);
        assert_eq!(h.on_upstream_data(&mut pkt, 4, &mut ctx), None);
        let nack = Packet::nack(QpId(0), HostId(1), HostId(0), 7, 0, false);
        assert_eq!(h.on_reverse(&nack, &mut ctx), ReverseAction::Forward);
        h.on_downstream(&pkt, &mut ctx);
        assert!(emit.is_empty());
    }
}
