//! Uplink load-balancing policies.
//!
//! These are the baselines the paper compares against (§5) plus the
//! flowlet approach its related-work section dismisses (§2.3):
//!
//! * [`LbPolicy::Ecmp`] — flow-level hashing of the 5-tuple; the de-facto
//!   RDMA-network default whose collisions motivate the work (§2.1).
//! * [`LbPolicy::RandomSpray`] — random packet spraying \[13\]; used in the
//!   Fig 1 motivation experiment.
//! * [`LbPolicy::AdaptiveRouting`] — per-packet least-loaded uplink
//!   selection, the "AR" baseline of Fig 5.
//! * [`LbPolicy::RoundRobin`] — deterministic per-switch rotation; a
//!   simple additional spraying baseline used in tests and ablations.
//! * [`LbPolicy::Flowlet`] — flowlet switching (CONGA/LetFlow style):
//!   re-pick the least-loaded uplink only when a flow pauses longer than
//!   the gap threshold. The paper argues RNIC hardware pacing never
//!   creates such gaps, so flowlet LB degenerates to per-flow placement —
//!   an ablation in this repo demonstrates exactly that.
//!
//! Themis's PSN-based spraying is *not* an `LbPolicy`: it is applied by
//! the Themis-S ToR hook, which overrides the policy's choice per packet.

use crate::hash::{ecmp_hash, FiveTuple};
use crate::packet::Packet;
use crate::port::EgressPort;
use crate::types::QpId;
use simcore::fx::FxHashMap;
use simcore::rng::Xoshiro256;
use simcore::time::{Nanos, TimeDelta};

/// How a switch picks among its equal-cost uplinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbPolicy {
    /// Hash the 5-tuple once per flow (per packet, but the hash is
    /// flow-stable), as ECMP does.
    Ecmp,
    /// Pick a uniformly random uplink per packet.
    RandomSpray,
    /// Pick the uplink with the least queued bytes per packet, breaking
    /// ties uniformly at random.
    AdaptiveRouting,
    /// Rotate through uplinks per packet.
    RoundRobin,
    /// Flowlet switching: keep a flow's uplink while packets arrive
    /// within `gap` of each other; re-pick (least loaded) on a gap.
    Flowlet {
        /// Minimum inter-packet gap that starts a new flowlet.
        gap: TimeDelta,
    },
}

/// Per-flow flowlet bookkeeping.
#[derive(Debug, Clone, Copy)]
struct FlowletEntry {
    last_seen: Nanos,
    uplink: usize,
}

/// Mutable per-switch load-balancing state.
#[derive(Debug)]
pub struct LbState {
    rr_cursor: usize,
    flowlets: FxHashMap<QpId, FlowletEntry>,
    rng: Xoshiro256,
    /// How many bits to shift the ECMP hash before taking the modulus.
    /// Different tiers of a multi-tier fabric use different views of the
    /// hash so their choices decorrelate (see `topology::fat_tree`).
    pub ecmp_shift: u32,
    /// Flowlet statistics: new flowlets started (uplink re-picks).
    pub flowlet_switches: u64,
}

impl LbState {
    /// Fresh state with its own RNG substream.
    pub fn new(seed: u64, ecmp_shift: u32) -> LbState {
        LbState {
            rr_cursor: 0,
            flowlets: FxHashMap::default(),
            rng: Xoshiro256::substream(seed, 0x1b),
            ecmp_shift,
            flowlet_switches: 0,
        }
    }

    /// Number of flows with live flowlet state.
    pub fn tracked_flowlets(&self) -> usize {
        self.flowlets.len()
    }
}

/// Least-loaded member of `uplinks` (ties broken uniformly at random).
fn least_loaded(uplinks: &[usize], ports: &[EgressPort], rng: &mut Xoshiro256) -> usize {
    let mut best = u64::MAX;
    let mut best_count = 0usize;
    for &p in uplinks {
        let q = ports[p].queued_bytes();
        if q < best {
            best = q;
            best_count = 1;
        } else if q == best {
            best_count += 1;
        }
    }
    let mut pick = rng.next_index(best_count);
    for (i, &p) in uplinks.iter().enumerate() {
        if ports[p].queued_bytes() == best {
            if pick == 0 {
                return i;
            }
            pick -= 1;
        }
    }
    unreachable!("tie-break walked past all minima")
}

impl LbPolicy {
    /// Select an index into `uplinks` for `pkt` at time `now`.
    ///
    /// `ports` is the switch's full port array (for queue-depth inspection
    /// by adaptive routing and flowlet re-picks); `st` carries the
    /// policy's mutable per-switch state.
    pub fn select(
        &self,
        pkt: &Packet,
        uplinks: &[usize],
        ports: &[EgressPort],
        now: Nanos,
        st: &mut LbState,
    ) -> usize {
        debug_assert!(!uplinks.is_empty(), "LB called with no uplinks");
        let n = uplinks.len();
        match self {
            LbPolicy::Ecmp => {
                let h = ecmp_hash(&FiveTuple::of_packet(pkt)) as usize;
                (h >> st.ecmp_shift) % n
            }
            LbPolicy::RandomSpray => st.rng.next_index(n),
            LbPolicy::AdaptiveRouting => least_loaded(uplinks, ports, &mut st.rng),
            LbPolicy::RoundRobin => {
                let i = st.rr_cursor % n;
                st.rr_cursor = (st.rr_cursor + 1) % n;
                i
            }
            LbPolicy::Flowlet { gap } => {
                match st.flowlets.get_mut(&pkt.qp) {
                    Some(e) if now.since(e.last_seen) < *gap && e.uplink < n => {
                        e.last_seen = now;
                        e.uplink
                    }
                    _ => {
                        // Gap elapsed (or first packet): start a new
                        // flowlet on the least-loaded uplink.
                        let uplink = least_loaded(uplinks, ports, &mut st.rng);
                        st.flowlets.insert(
                            pkt.qp,
                            FlowletEntry {
                                last_seen: now,
                                uplink,
                            },
                        );
                        st.flowlet_switches += 1;
                        uplink
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::LinkSpec;
    use crate::types::{HostId, NodeId, PortId};

    fn mk_ports(n: usize) -> Vec<EgressPort> {
        (0..n)
            .map(|i| EgressPort::new(NodeId(100 + i as u32), PortId(0), LinkSpec::gbps(100, 1)))
            .collect()
    }

    fn data_pkt(src: u32, sport: u16, psn: u32) -> Packet {
        Packet::data(
            QpId(src),
            HostId(src),
            HostId(99),
            sport,
            psn,
            0,
            false,
            1000,
            false,
        )
    }

    fn st() -> LbState {
        LbState::new(1, 0)
    }

    #[test]
    fn ecmp_is_flow_stable() {
        let ports = mk_ports(4);
        let uplinks = [0, 1, 2, 3];
        let mut s = st();
        let p = data_pkt(1, 777, 0);
        let first = LbPolicy::Ecmp.select(&p, &uplinks, &ports, Nanos::ZERO, &mut s);
        for psn in 1..100 {
            let p = data_pkt(1, 777, psn);
            assert_eq!(
                LbPolicy::Ecmp.select(&p, &uplinks, &ports, Nanos(psn as u64), &mut s),
                first
            );
        }
    }

    #[test]
    fn ecmp_distinguishes_flows() {
        let ports = mk_ports(8);
        let uplinks: Vec<usize> = (0..8).collect();
        let mut s = st();
        let mut seen = std::collections::HashSet::new();
        for sport in 0..64u16 {
            let p = data_pkt(1, 1000 + sport * 13, 0);
            seen.insert(LbPolicy::Ecmp.select(&p, &uplinks, &ports, Nanos::ZERO, &mut s));
        }
        assert!(seen.len() >= 6, "ECMP should spread flows, got {seen:?}");
    }

    #[test]
    fn ecmp_shift_changes_the_view() {
        // The same flow can land differently under a shifted hash view —
        // the decorrelation property multi-tier fabrics rely on. At least
        // one of a set of flows must differ between shift 0 and shift 8.
        let ports = mk_ports(4);
        let uplinks = [0, 1, 2, 3];
        let mut s0 = LbState::new(1, 0);
        let mut s8 = LbState::new(1, 8);
        let differs = (0..32u16).any(|i| {
            let p = data_pkt(1, 1000 + i * 101, 0);
            LbPolicy::Ecmp.select(&p, &uplinks, &ports, Nanos::ZERO, &mut s0)
                != LbPolicy::Ecmp.select(&p, &uplinks, &ports, Nanos::ZERO, &mut s8)
        });
        assert!(differs, "shifted hash views should decorrelate");
    }

    #[test]
    fn random_spray_covers_all_uplinks() {
        let ports = mk_ports(4);
        let uplinks = [0, 1, 2, 3];
        let mut s = st();
        let mut counts = [0u32; 4];
        for psn in 0..4000 {
            let p = data_pkt(1, 777, psn);
            counts[LbPolicy::RandomSpray.select(&p, &uplinks, &ports, Nanos::ZERO, &mut s)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "uneven spray: {counts:?}");
        }
    }

    #[test]
    fn round_robin_rotates() {
        let ports = mk_ports(3);
        let uplinks = [0, 1, 2];
        let mut s = st();
        let picks: Vec<usize> = (0..6)
            .map(|psn| {
                let p = data_pkt(1, 777, psn);
                LbPolicy::RoundRobin.select(&p, &uplinks, &ports, Nanos::ZERO, &mut s)
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn adaptive_routing_tie_break_reaches_every_uplink() {
        let ports = mk_ports(3);
        let uplinks = [0, 1, 2];
        let mut s = st();
        let p = data_pkt(1, 777, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(LbPolicy::AdaptiveRouting.select(
                &p,
                &uplinks,
                &ports,
                Nanos::ZERO,
                &mut s,
            ));
        }
        assert_eq!(seen.len(), 3, "tie-break should reach every uplink");
    }

    #[test]
    fn flowlet_sticks_within_gap() {
        let ports = mk_ports(4);
        let uplinks = [0, 1, 2, 3];
        let mut s = st();
        let gap = TimeDelta::from_micros(50);
        let policy = LbPolicy::Flowlet { gap };
        // Back-to-back packets (1us apart, inside the gap): same uplink.
        let first = policy.select(&data_pkt(1, 7, 0), &uplinks, &ports, Nanos::ZERO, &mut s);
        for i in 1..100u64 {
            let pick = policy.select(
                &data_pkt(1, 7, i as u32),
                &uplinks,
                &ports,
                Nanos::from_micros(i),
                &mut s,
            );
            assert_eq!(pick, first, "no gap -> no switch");
        }
        assert_eq!(s.flowlet_switches, 1, "only the initial placement");
    }

    #[test]
    fn flowlet_repicks_after_gap() {
        let ports = mk_ports(4);
        let uplinks = [0, 1, 2, 3];
        let mut s = st();
        let policy = LbPolicy::Flowlet {
            gap: TimeDelta::from_micros(10),
        };
        policy.select(&data_pkt(1, 7, 0), &uplinks, &ports, Nanos::ZERO, &mut s);
        // 11us silence -> new flowlet.
        policy.select(
            &data_pkt(1, 7, 1),
            &uplinks,
            &ports,
            Nanos::from_micros(11),
            &mut s,
        );
        assert_eq!(s.flowlet_switches, 2);
        assert_eq!(s.tracked_flowlets(), 1);
    }

    #[test]
    fn flowlet_tracks_flows_independently() {
        let ports = mk_ports(4);
        let uplinks = [0, 1, 2, 3];
        let mut s = st();
        let policy = LbPolicy::Flowlet {
            gap: TimeDelta::from_micros(10),
        };
        for qp in 0..8u32 {
            policy.select(&data_pkt(qp, 7, 0), &uplinks, &ports, Nanos::ZERO, &mut s);
        }
        assert_eq!(s.tracked_flowlets(), 8);
        assert_eq!(s.flowlet_switches, 8);
    }
}
