//! # netsim — packet-level network substrate
//!
//! A packet-level datacenter-network simulator in the NS-3 methodology,
//! purpose-built for the Themis reproduction:
//!
//! * [`packet`] — RoCEv2-shaped packets: Data (PSN-carrying), ACK/NACK
//!   (carrying only the expected PSN, like commodity RNICs), CNP, Handshake.
//! * [`port`] — egress ports with store-and-forward serialization, finite
//!   shared buffers, WRED/ECN marking, loss injection.
//! * [`switch`] — output-queued switches with destination routing, uplink
//!   load-balancing policies, and the ToR hook extension point that
//!   Themis-S / Themis-D plug into.
//! * [`lb`] — ECMP (GF(2)-linear hash), random packet spraying, adaptive
//!   routing, round-robin.
//! * [`hash`] — CRC-16 based flow hash whose *linearity* enables the
//!   PathMap construction of the paper (§3.2, \[37\]).
//! * [`topology`] — leaf-spine builder, the Fig 1a motivation topology,
//!   and fat-tree arithmetic for the §4 memory example.
//! * [`world`] — entity registry and event dispatch on top of
//!   [`simcore::Engine`].
//!
//! The crate knows nothing about RNIC internals or Themis itself; those
//! live in the `rnic` and `themis-core` crates and plug in through the
//! [`world::Entity`] and [`hooks::TorHook`] traits.

#![warn(missing_docs)]

pub mod arena;
pub mod event;
pub mod fat_tree;
pub mod hash;
pub mod hooks;
pub mod lb;
pub mod packet;
pub mod port;
pub mod switch;
pub mod telem;
pub mod topology;
pub mod trace;
pub mod types;
pub mod world;

pub use event::{ControlMsg, Event, Routed};
pub use fat_tree::{build_fat_tree, FatTreeConfig, FatTreePlan};
pub use hooks::{HookCtx, ReverseAction, TorHook};
pub use lb::LbPolicy;
pub use packet::{Packet, PacketKind};
pub use port::{EcnConfig, EgressPort, LinkSpec, SharedBuffer};
pub use switch::{Switch, SwitchConfig};
pub use topology::{FabricPlan, HostAttachment, LeafSpineConfig};
pub use types::{HostId, NodeId, PortId, QpId};
pub use world::{Ctx, Entity, World};
