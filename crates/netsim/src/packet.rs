//! Packets.
//!
//! The simulator models RoCEv2-shaped traffic. Three properties of
//! commodity-RNIC packets matter for Themis and are modeled faithfully:
//!
//! 1. Data packets carry a 24-bit packet sequence number (PSN).
//! 2. ACK/NACK packets carry **only the expected PSN (ePSN)** — never the
//!    PSN of the out-of-order packet that triggered them (§2.2). This is
//!    what forces Themis-D's PSN-queue design.
//! 3. The UDP source port is the entropy field ECMP hashes on; rewriting
//!    it (Themis-S PathMap) changes the path taken by core switches.

use crate::types::{HostId, QpId};

/// 24-bit PSN modulus used on the wire (RoCE BTH PSN is 3 bytes).
pub const PSN_MODULUS: u32 = 1 << 24;

/// Fixed per-packet wire overhead in bytes
/// (Ethernet + IPv4 + UDP + BTH + ICRC, rounded).
pub const WIRE_HEADER_BYTES: u32 = 64;

/// Wire size of control packets (ACK / NACK / CNP / handshake).
pub const CONTROL_PACKET_BYTES: u32 = 64;

/// The role-specific part of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment of a message.
    Data {
        /// 24-bit packet sequence number.
        psn: u32,
        /// Tag of the application message this segment belongs to.
        msg_tag: u64,
        /// Whether this is the final segment of the message.
        last: bool,
        /// Payload bytes carried (≤ MTU).
        payload: u32,
        /// True when this transmission is a retransmission.
        retransmission: bool,
    },
    /// Positive acknowledgment: everything below `epsn` was received.
    Ack {
        /// Receiver's expected PSN (cumulative).
        epsn: u32,
        /// UDP source port of the most recent data packet the receiver
        /// saw on this QP — the entropy value that packet travelled on.
        /// RoCE ACKs reflect the data path's entropy in practice (the
        /// ACK flows back over the reverse ECMP path); REPS-style
        /// senders read it as "this entropy value currently works".
        echo_sport: u16,
    },
    /// Negative acknowledgment. Carries only the receiver's expected PSN;
    /// commodity RNICs do not reveal which out-of-order packet triggered it.
    Nack {
        /// Receiver's expected PSN at NACK-generation time.
        epsn: u32,
        /// True when this NACK was synthesized by a ToR switch on behalf of
        /// the RNIC (Themis NACK compensation, §3.4). Exists for tracing
        /// only; senders treat compensated NACKs identically.
        compensated: bool,
    },
    /// DCQCN congestion notification packet (receiver → sender).
    Cnp,
    /// Connection-setup notification; lets ToR middleware provision per-QP
    /// state, mirroring the paper's interception of RNIC handshakes (§3.3).
    Handshake,
}

impl PacketKind {
    /// Short label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            PacketKind::Data { .. } => "DATA",
            PacketKind::Ack { .. } => "ACK",
            PacketKind::Nack { .. } => "NACK",
            PacketKind::Cnp => "CNP",
            PacketKind::Handshake => "HS",
        }
    }
}

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Connection this packet belongs to.
    pub qp: QpId,
    /// Sending host (synthetic source IP).
    pub src: HostId,
    /// Destination host (synthetic destination IP).
    pub dst: HostId,
    /// UDP source port — the ECMP entropy field. Themis-S rewrites this in
    /// PathMap mode.
    pub udp_sport: u16,
    /// Role-specific contents.
    pub kind: PacketKind,
    /// Total wire size in bytes (headers + payload).
    pub wire_bytes: u32,
    /// ECN Congestion-Experienced mark.
    pub ecn_ce: bool,
}

impl Packet {
    /// Build a data packet. `wire_bytes` = payload + fixed header overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        qp: QpId,
        src: HostId,
        dst: HostId,
        udp_sport: u16,
        psn: u32,
        msg_tag: u64,
        last: bool,
        payload: u32,
        retransmission: bool,
    ) -> Packet {
        debug_assert!(psn < PSN_MODULUS);
        Packet {
            qp,
            src,
            dst,
            udp_sport,
            kind: PacketKind::Data {
                psn,
                msg_tag,
                last,
                payload,
                retransmission,
            },
            wire_bytes: payload + WIRE_HEADER_BYTES,
            ecn_ce: false,
        }
    }

    /// Build an ACK carrying the receiver's cumulative expected PSN and
    /// the entropy value (`echo_sport`) of the data packet that
    /// triggered it.
    pub fn ack(
        qp: QpId,
        src: HostId,
        dst: HostId,
        udp_sport: u16,
        epsn: u32,
        echo_sport: u16,
    ) -> Packet {
        Packet {
            qp,
            src,
            dst,
            udp_sport,
            kind: PacketKind::Ack { epsn, echo_sport },
            wire_bytes: CONTROL_PACKET_BYTES,
            ecn_ce: false,
        }
    }

    /// Build a NACK. `compensated` marks ToR-synthesized NACKs (§3.4).
    pub fn nack(
        qp: QpId,
        src: HostId,
        dst: HostId,
        udp_sport: u16,
        epsn: u32,
        compensated: bool,
    ) -> Packet {
        Packet {
            qp,
            src,
            dst,
            udp_sport,
            kind: PacketKind::Nack { epsn, compensated },
            wire_bytes: CONTROL_PACKET_BYTES,
            ecn_ce: false,
        }
    }

    /// Build a congestion notification packet.
    pub fn cnp(qp: QpId, src: HostId, dst: HostId, udp_sport: u16) -> Packet {
        Packet {
            qp,
            src,
            dst,
            udp_sport,
            kind: PacketKind::Cnp,
            wire_bytes: CONTROL_PACKET_BYTES,
            ecn_ce: false,
        }
    }

    /// Build a handshake/connection-setup notification.
    pub fn handshake(qp: QpId, src: HostId, dst: HostId, udp_sport: u16) -> Packet {
        Packet {
            qp,
            src,
            dst,
            udp_sport,
            kind: PacketKind::Handshake,
            wire_bytes: CONTROL_PACKET_BYTES,
            ecn_ce: false,
        }
    }

    /// The PSN if this is a data packet.
    #[inline]
    pub fn data_psn(&self) -> Option<u32> {
        match self.kind {
            PacketKind::Data { psn, .. } => Some(psn),
            _ => None,
        }
    }

    /// True for data packets.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }

    /// True for NACK packets.
    #[inline]
    pub fn is_nack(&self) -> bool {
        matches!(self.kind, PacketKind::Nack { .. })
    }

    /// Payload bytes (0 for control packets).
    #[inline]
    pub fn payload_bytes(&self) -> u32 {
        match self.kind {
            PacketKind::Data { payload, .. } => payload,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp() -> QpId {
        QpId(1)
    }

    #[test]
    fn data_packet_wire_size_includes_headers() {
        let p = Packet::data(qp(), HostId(0), HostId(1), 4000, 7, 0, false, 1000, false);
        assert_eq!(p.wire_bytes, 1000 + WIRE_HEADER_BYTES);
        assert_eq!(p.payload_bytes(), 1000);
        assert!(p.is_data());
        assert_eq!(p.data_psn(), Some(7));
    }

    #[test]
    fn control_packets_have_fixed_size() {
        let a = Packet::ack(qp(), HostId(1), HostId(0), 4000, 10, 4321);
        let n = Packet::nack(qp(), HostId(1), HostId(0), 4000, 10, false);
        let c = Packet::cnp(qp(), HostId(1), HostId(0), 4000);
        for p in [a, n, c] {
            assert_eq!(p.wire_bytes, CONTROL_PACKET_BYTES);
            assert_eq!(p.payload_bytes(), 0);
            assert!(!p.is_data());
        }
        assert!(n.is_nack());
        assert!(!a.is_nack());
    }

    #[test]
    fn nack_carries_only_epsn() {
        // The type system enforces the paper's §2.2 constraint: there is no
        // field for the triggering PSN on a NACK.
        let n = Packet::nack(qp(), HostId(1), HostId(0), 4000, 42, false);
        match n.kind {
            PacketKind::Nack { epsn, compensated } => {
                assert_eq!(epsn, 42);
                assert!(!compensated);
            }
            _ => panic!("expected NACK"),
        }
    }

    #[test]
    fn labels() {
        assert_eq!(
            Packet::handshake(qp(), HostId(0), HostId(1), 1)
                .kind
                .label(),
            "HS"
        );
        assert_eq!(
            Packet::cnp(qp(), HostId(0), HostId(1), 1).kind.label(),
            "CNP"
        );
    }
}
