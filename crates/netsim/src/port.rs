//! Egress ports: store-and-forward serialization, FIFO queues, shared
//! buffer accounting, WRED/ECN marking and loss injection.
//!
//! Each entity (switch or NIC) owns its egress ports. A port serializes one
//! packet at a time at link bandwidth; when serialization completes
//! ([`EgressPort::on_tx_done`]) the packet propagates to the peer entity
//! after the link latency, and the next queued packet starts serializing.
//!
//! ECN marking follows the WRED scheme DCQCN assumes: a *data* packet
//! enqueued while the port queue holds more than `kmin` bytes is marked
//! Congestion-Experienced with probability rising linearly to `pmax` at
//! `kmax`, and always beyond `kmax`. Control packets (ACK/NACK/CNP) are
//! never marked — RoCE switches only mark data traffic.

use crate::arena::{PacketArena, PacketRef};
use crate::packet::Packet;
use crate::types::{NodeId, PortId};
use crate::world::Ctx;
use simcore::rng::Xoshiro256;
use simcore::time::TimeDelta;
use std::collections::VecDeque;

/// Physical link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency.
    pub latency: TimeDelta,
}

impl LinkSpec {
    /// A link with the given Gbit/s bandwidth and latency in microseconds.
    pub fn gbps(gbps: u64, latency_us: u64) -> LinkSpec {
        LinkSpec {
            bandwidth_bps: gbps * 1_000_000_000,
            latency: TimeDelta::from_micros(latency_us),
        }
    }

    /// Serialization delay of `bytes` on this link.
    #[inline]
    pub fn serialization(&self, bytes: u64) -> TimeDelta {
        TimeDelta::serialization(bytes, self.bandwidth_bps)
    }
}

/// WRED/ECN marking thresholds (bytes of queued data at enqueue time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcnConfig {
    /// No marking below this queue depth.
    pub kmin_bytes: u64,
    /// Always mark at or above this queue depth.
    pub kmax_bytes: u64,
    /// Marking probability at `kmax` (linear ramp from `kmin`).
    pub pmax: f64,
}

impl EcnConfig {
    /// DCQCN-style defaults scaled to link speed: Kmin = 100 KB and
    /// Kmax = 400 KB at 100 Gbps, scaled linearly with bandwidth
    /// (the common NS-3 RDMA configuration).
    pub fn for_bandwidth(bandwidth_bps: u64) -> EcnConfig {
        let scale = bandwidth_bps as f64 / 100e9;
        EcnConfig {
            kmin_bytes: (100_000.0 * scale) as u64,
            kmax_bytes: (400_000.0 * scale) as u64,
            pmax: 0.2,
        }
    }

    /// Marking decision for a queue currently `queued_bytes` deep.
    pub fn should_mark(&self, queued_bytes: u64, rng: &mut Xoshiro256) -> bool {
        if queued_bytes < self.kmin_bytes {
            false
        } else if queued_bytes >= self.kmax_bytes {
            true
        } else {
            let span = (self.kmax_bytes - self.kmin_bytes) as f64;
            let p = self.pmax * (queued_bytes - self.kmin_bytes) as f64 / span;
            rng.next_bool(p)
        }
    }
}

/// Shared buffer pool of a switch. All egress queues of the switch draw
/// from this pool; when it is exhausted, arriving packets are dropped.
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    capacity: u64,
    used: u64,
    /// Packets dropped because the pool was full.
    pub drops: u64,
    /// High-water mark of pool usage.
    pub peak_used: u64,
}

impl SharedBuffer {
    /// A pool holding `capacity` bytes.
    pub fn new(capacity: u64) -> SharedBuffer {
        SharedBuffer {
            capacity,
            used: 0,
            drops: 0,
            peak_used: 0,
        }
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Try to reserve `bytes`; returns false (and counts a drop) when full.
    pub fn try_reserve(&mut self, bytes: u64) -> bool {
        if self.used + bytes > self.capacity {
            self.drops += 1;
            false
        } else {
            self.used += bytes;
            self.peak_used = self.peak_used.max(self.used);
            true
        }
    }

    /// Release a previous reservation.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(self.used >= bytes, "buffer release underflow");
        self.used = self.used.saturating_sub(bytes);
    }
}

/// Outcome of [`EgressPort::enqueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Port was idle; transmission started immediately.
    TxStarted,
    /// Packet joined the queue.
    Queued,
    /// Dropped: shared buffer exhausted.
    DroppedBuffer,
    /// Dropped: random loss injection.
    DroppedInjected,
}

impl EnqueueOutcome {
    /// True if the packet was accepted (queued or transmitting).
    pub fn accepted(self) -> bool {
        matches!(self, EnqueueOutcome::TxStarted | EnqueueOutcome::Queued)
    }
}

/// Per-port statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortStats {
    /// Packets fully transmitted.
    pub tx_packets: u64,
    /// Bytes fully transmitted.
    pub tx_bytes: u64,
    /// Packets dropped for lack of buffer space.
    pub drops_buffer: u64,
    /// Packets dropped by loss injection.
    pub drops_injected: u64,
    /// Data packets ECN-marked at this port.
    pub ecn_marked: u64,
    /// Maximum queue depth seen, in bytes.
    pub peak_queue_bytes: u64,
}

/// One egress port: link to a peer entity plus a FIFO queue.
#[derive(Debug)]
pub struct EgressPort {
    /// Entity on the other end of the link.
    pub peer: NodeId,
    /// The ingress-port id the peer sees our packets arrive on.
    pub peer_in_port: PortId,
    /// Link physics.
    pub link: LinkSpec,
    /// ECN marking configuration; `None` disables marking.
    pub ecn: Option<EcnConfig>,
    /// Probability of dropping each enqueued packet (loss injection).
    pub loss_rate: f64,
    /// Administratively down (fault injection): every packet offered to
    /// the port — data and control alike — is dropped, as on a dead
    /// cable. Packets already queued drain normally.
    pub down: bool,
    /// Extra one-way propagation delay added on top of the link latency
    /// (fault injection: delay-jitter spikes).
    pub extra_delay: TimeDelta,
    /// Strict priority for control packets (ACK/NACK/CNP/handshake):
    /// they queue separately and always transmit before data, as RoCE
    /// deployments configure for CNPs. Off by default.
    pub ctrl_priority: bool,
    /// Statistics.
    pub stats: PortStats,
    /// Queued packets live in the owning entity's [`PacketArena`]; the
    /// FIFOs hold 8-byte generation-checked handles.
    queue: VecDeque<PacketRef>,
    ctrl_queue: VecDeque<PacketRef>,
    queued_bytes: u64,
    in_flight: Option<Packet>,
    paused: bool,
}

impl EgressPort {
    /// A port towards `peer` (arriving there on `peer_in_port`) over `link`.
    pub fn new(peer: NodeId, peer_in_port: PortId, link: LinkSpec) -> EgressPort {
        EgressPort {
            peer,
            peer_in_port,
            link,
            ecn: None,
            loss_rate: 0.0,
            down: false,
            extra_delay: TimeDelta::ZERO,
            ctrl_priority: false,
            stats: PortStats::default(),
            queue: VecDeque::new(),
            ctrl_queue: VecDeque::new(),
            queued_bytes: 0,
            in_flight: None,
            paused: false,
        }
    }

    /// Pop the next packet to transmit, respecting control priority.
    fn pop_next(&mut self, arena: &mut PacketArena) -> Option<Packet> {
        let r = match self.ctrl_queue.pop_front() {
            Some(r) => r,
            None => self.queue.pop_front()?,
        };
        let p = arena.take(r);
        self.queued_bytes -= p.wire_bytes as u64;
        Some(p)
    }

    /// Bytes waiting in the queues (excludes the packet on the wire).
    #[inline]
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets waiting in the queues.
    #[inline]
    pub fn queued_packets(&self) -> usize {
        self.queue.len() + self.ctrl_queue.len()
    }

    /// Whether the port is currently serializing a packet.
    #[inline]
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Whether the port is PFC-paused.
    #[inline]
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Pause or resume this port (link-level flow control). The packet
    /// currently on the wire finishes; resuming restarts transmission
    /// from the queue.
    pub fn set_paused(
        &mut self,
        paused: bool,
        self_port: PortId,
        ctx: &mut Ctx<'_>,
        arena: &mut PacketArena,
    ) {
        self.paused = paused;
        if !paused && self.in_flight.is_none() {
            if let Some(next) = self.pop_next(arena) {
                self.start_tx(next, self_port, ctx);
            }
        }
    }

    /// Offer a packet to this port.
    ///
    /// `self_port` is this port's id within the owning entity (used to
    /// address the TxDone event back to it). `shared` is the owning
    /// switch's buffer pool (None for NIC ports); `arena` its packet
    /// pool. Marks data packets per WRED, applies loss injection, and
    /// starts transmission when idle.
    pub fn enqueue(
        &mut self,
        mut pkt: Packet,
        self_port: PortId,
        ctx: &mut Ctx<'_>,
        shared: Option<&mut SharedBuffer>,
        rng: &mut Xoshiro256,
        arena: &mut PacketArena,
    ) -> EnqueueOutcome {
        if self.down {
            self.stats.drops_injected += 1;
            return EnqueueOutcome::DroppedInjected;
        }
        if self.loss_rate > 0.0 && pkt.is_data() && rng.next_bool(self.loss_rate) {
            self.stats.drops_injected += 1;
            return EnqueueOutcome::DroppedInjected;
        }
        if let Some(pool) = shared {
            if !pool.try_reserve(pkt.wire_bytes as u64) {
                self.stats.drops_buffer += 1;
                return EnqueueOutcome::DroppedBuffer;
            }
        }
        // WRED marking on data packets, based on the queue depth the packet
        // joins behind.
        if pkt.is_data() {
            if let Some(ecn) = &self.ecn {
                if ecn.should_mark(self.queued_bytes, rng) {
                    pkt.ecn_ce = true;
                    self.stats.ecn_marked += 1;
                }
            }
        }
        if self.in_flight.is_none() && !self.paused {
            self.start_tx(pkt, self_port, ctx);
            EnqueueOutcome::TxStarted
        } else {
            self.queued_bytes += pkt.wire_bytes as u64;
            self.stats.peak_queue_bytes = self.stats.peak_queue_bytes.max(self.queued_bytes);
            let ctrl = self.ctrl_priority && !pkt.is_data();
            let r = arena.alloc(pkt);
            if ctrl {
                self.ctrl_queue.push_back(r);
            } else {
                self.queue.push_back(r);
            }
            EnqueueOutcome::Queued
        }
    }

    fn start_tx(&mut self, pkt: Packet, self_port: PortId, ctx: &mut Ctx<'_>) {
        let ser = self.link.serialization(pkt.wire_bytes as u64);
        ctx.tx_done_in(ser, self_port);
        self.in_flight = Some(pkt);
    }

    /// Handle serialization completion: propagate the packet to the peer,
    /// release its buffer reservation, and start the next transmission.
    ///
    /// Returns the packet that departed (for tracing).
    pub fn on_tx_done(
        &mut self,
        self_port: PortId,
        ctx: &mut Ctx<'_>,
        shared: Option<&mut SharedBuffer>,
        arena: &mut PacketArena,
    ) -> Packet {
        let pkt = self
            .in_flight
            .take()
            .expect("TxDone on idle port: event/port state mismatch");
        if let Some(pool) = shared {
            pool.release(pkt.wire_bytes as u64);
        }
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += pkt.wire_bytes as u64;
        ctx.send_packet(
            self.peer,
            self.peer_in_port,
            pkt,
            self.link.latency + self.extra_delay,
        );
        if !self.paused {
            if let Some(next) = self.pop_next(arena) {
                self.start_tx(next, self_port, ctx);
            }
        }
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_spec_math() {
        let l = LinkSpec::gbps(100, 1);
        assert_eq!(l.bandwidth_bps, 100_000_000_000);
        assert_eq!(l.latency.as_nanos(), 1_000);
        assert_eq!(l.serialization(1500).as_nanos(), 120);
    }

    #[test]
    fn ecn_config_scales_with_bandwidth() {
        let c100 = EcnConfig::for_bandwidth(100_000_000_000);
        let c400 = EcnConfig::for_bandwidth(400_000_000_000);
        assert_eq!(c100.kmin_bytes, 100_000);
        assert_eq!(c100.kmax_bytes, 400_000);
        assert_eq!(c400.kmin_bytes, 400_000);
        assert_eq!(c400.kmax_bytes, 1_600_000);
    }

    #[test]
    fn ecn_marking_regions() {
        let cfg = EcnConfig {
            kmin_bytes: 100,
            kmax_bytes: 200,
            pmax: 1.0,
        };
        let mut rng = Xoshiro256::seeded(1);
        assert!(!cfg.should_mark(0, &mut rng));
        assert!(!cfg.should_mark(99, &mut rng));
        assert!(cfg.should_mark(200, &mut rng));
        assert!(cfg.should_mark(10_000, &mut rng));
        // Mid-region probability ~ (150-100)/100 * pmax = 0.5.
        let hits = (0..10_000)
            .filter(|_| cfg.should_mark(150, &mut rng))
            .count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn paused_port_holds_queue_and_resumes() {
        use crate::event::Routed;
        use crate::packet::Packet;
        use crate::types::{HostId, QpId};
        use simcore::engine::Engine;
        use simcore::time::Nanos;

        // Drive a port directly with a hand-rolled Ctx via a tiny engine.
        let mut engine: Engine<Routed> = Engine::new();
        let mut port = EgressPort::new(NodeId(1), PortId(0), LinkSpec::gbps(100, 1));
        let mut rng = Xoshiro256::seeded(3);
        let mut arena = PacketArena::new();
        let pkt = |psn| Packet::data(QpId(0), HostId(0), HostId(1), 7, psn, 0, false, 1000, false);

        let mut ctx = crate::world::Ctx::for_tests(NodeId(0), Nanos::ZERO, &mut engine);
        // Pause first, then enqueue: nothing starts.
        port.set_paused(true, PortId(0), &mut ctx, &mut arena);
        assert_eq!(
            port.enqueue(pkt(0), PortId(0), &mut ctx, None, &mut rng, &mut arena),
            EnqueueOutcome::Queued
        );
        assert!(!port.is_busy());
        assert!(port.is_paused());
        assert_eq!(port.queued_packets(), 1);
        // Resume: transmission starts from the queue.
        port.set_paused(false, PortId(0), &mut ctx, &mut arena);
        assert!(port.is_busy());
        assert_eq!(port.queued_packets(), 0);
    }

    #[test]
    fn pause_mid_transmission_finishes_current_packet() {
        use crate::event::Routed;
        use crate::packet::Packet;
        use crate::types::{HostId, QpId};
        use simcore::engine::Engine;
        use simcore::time::Nanos;

        let mut engine: Engine<Routed> = Engine::new();
        let mut port = EgressPort::new(NodeId(1), PortId(0), LinkSpec::gbps(100, 1));
        let mut rng = Xoshiro256::seeded(3);
        let mut arena = PacketArena::new();
        let pkt = |psn| Packet::data(QpId(0), HostId(0), HostId(1), 7, psn, 0, false, 1000, false);
        let mut ctx = crate::world::Ctx::for_tests(NodeId(0), Nanos::ZERO, &mut engine);
        // Start a transmission, queue another, then pause.
        port.enqueue(pkt(0), PortId(0), &mut ctx, None, &mut rng, &mut arena);
        port.enqueue(pkt(1), PortId(0), &mut ctx, None, &mut rng, &mut arena);
        port.set_paused(true, PortId(0), &mut ctx, &mut arena);
        assert!(port.is_busy(), "wire packet keeps going");
        // Completion: packet departs but the next one must NOT start.
        let departed = port.on_tx_done(PortId(0), &mut ctx, None, &mut arena);
        assert_eq!(departed.data_psn(), Some(0));
        assert!(!port.is_busy());
        assert_eq!(port.queued_packets(), 1, "psn 1 held back");
        // Resume releases it.
        port.set_paused(false, PortId(0), &mut ctx, &mut arena);
        assert!(port.is_busy());
    }

    #[test]
    fn ctrl_priority_overtakes_queued_data() {
        use crate::event::Routed;
        use crate::packet::Packet;
        use crate::types::{HostId, QpId};
        use simcore::engine::Engine;
        use simcore::time::Nanos;

        let mut engine: Engine<Routed> = Engine::new();
        let mut port = EgressPort::new(NodeId(1), PortId(0), LinkSpec::gbps(100, 1));
        port.ctrl_priority = true;
        let mut rng = Xoshiro256::seeded(3);
        let mut arena = PacketArena::new();
        let data = |psn| Packet::data(QpId(0), HostId(0), HostId(1), 7, psn, 0, false, 1000, false);
        let cnp = Packet::cnp(QpId(0), HostId(1), HostId(0), 7);
        let mut ctx = crate::world::Ctx::for_tests(NodeId(0), Nanos::ZERO, &mut engine);
        // First data starts immediately; second data and a CNP queue up.
        port.enqueue(data(0), PortId(0), &mut ctx, None, &mut rng, &mut arena);
        port.enqueue(data(1), PortId(0), &mut ctx, None, &mut rng, &mut arena);
        port.enqueue(cnp, PortId(0), &mut ctx, None, &mut rng, &mut arena);
        assert_eq!(port.queued_packets(), 2);
        // TxDone: the CNP must jump ahead of data packet 1.
        let departed = port.on_tx_done(PortId(0), &mut ctx, None, &mut arena);
        assert_eq!(departed.data_psn(), Some(0));
        let next_done = port.on_tx_done(PortId(0), &mut ctx, None, &mut arena);
        assert!(matches!(next_done.kind, crate::packet::PacketKind::Cnp));
        let last = port.on_tx_done(PortId(0), &mut ctx, None, &mut arena);
        assert_eq!(last.data_psn(), Some(1));
    }

    #[test]
    fn without_ctrl_priority_fifo_holds() {
        use crate::event::Routed;
        use crate::packet::Packet;
        use crate::types::{HostId, QpId};
        use simcore::engine::Engine;
        use simcore::time::Nanos;

        let mut engine: Engine<Routed> = Engine::new();
        let mut port = EgressPort::new(NodeId(1), PortId(0), LinkSpec::gbps(100, 1));
        let mut rng = Xoshiro256::seeded(3);
        let mut arena = PacketArena::new();
        let data = |psn| Packet::data(QpId(0), HostId(0), HostId(1), 7, psn, 0, false, 1000, false);
        let cnp = Packet::cnp(QpId(0), HostId(1), HostId(0), 7);
        let mut ctx = crate::world::Ctx::for_tests(NodeId(0), Nanos::ZERO, &mut engine);
        port.enqueue(data(0), PortId(0), &mut ctx, None, &mut rng, &mut arena);
        port.enqueue(data(1), PortId(0), &mut ctx, None, &mut rng, &mut arena);
        port.enqueue(cnp, PortId(0), &mut ctx, None, &mut rng, &mut arena);
        port.on_tx_done(PortId(0), &mut ctx, None, &mut arena);
        let second = port.on_tx_done(PortId(0), &mut ctx, None, &mut arena);
        assert_eq!(second.data_psn(), Some(1), "FIFO without priority");
    }

    #[test]
    fn shared_buffer_reserve_release() {
        let mut b = SharedBuffer::new(1000);
        assert!(b.try_reserve(600));
        assert!(!b.try_reserve(500));
        assert_eq!(b.drops, 1);
        assert!(b.try_reserve(400));
        assert_eq!(b.used(), 1000);
        assert_eq!(b.peak_used, 1000);
        b.release(1000);
        assert_eq!(b.used(), 0);
        assert!(b.try_reserve(1));
    }
}
