//! Output-queued switches.
//!
//! A [`Switch`] forwards packets by destination-host lookup. Leaf (ToR)
//! switches have host-facing ports plus an *uplink group* over which a
//! [`LbPolicy`] (or a Themis-S override) balances fabric-bound traffic;
//! spine switches have exactly one route per destination.
//!
//! ToR middleware ([`TorHook`]) is invoked at three pipeline points — see
//! [`crate::hooks`]. Hook-emitted packets (compensated NACKs) are routed
//! normally but never re-enter hooks, matching a real P4 pipeline where
//! recirculated packets carry a "generated" flag.

use crate::arena::PacketArena;
use crate::event::{ControlMsg, Event};
use crate::hooks::{HookCtx, ReverseAction, TorHook};
use crate::lb::{LbPolicy, LbState};
use crate::packet::{Packet, PacketKind};
use crate::port::{EcnConfig, EgressPort, EnqueueOutcome, SharedBuffer};
use crate::trace::{DropCause, DropRecord};
use crate::types::{HostId, NodeId, PortId, QpId};
use crate::world::{Ctx, Entity};
use simcore::fx::FxHashSet;
use simcore::rng::Xoshiro256;
use simcore::time::TimeDelta;

/// Per-destination routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteEntry {
    /// Forward on a specific port (local host or fixed downlink).
    Port(u16),
    /// Forward via the uplink group, subject to load balancing.
    Uplinks,
    /// No route; packet is dropped and counted.
    None,
}

/// Storage backing a switch's per-destination routing table.
///
/// Regular fat-trees have massively redundant tables — every core shares
/// one table, every aggregation switch in a pod shares one, and edge
/// switches differ from "everything via uplinks" only on their handful
/// of directly attached hosts. Interning those shared tables behind
/// `Arc` (plus a closed-form local-host window for edges) collapses the
/// k=32 route state from `1280 switches × 8192 hosts` dense entries
/// (~42 MB) to ~1 MB, and the `Arc`s are read-only during a run so
/// sharded execution shares them safely across threads.
#[derive(Debug, Clone)]
pub enum RouteTable {
    /// One privately owned entry per destination (default; grown lazily
    /// by [`Switch::set_route`]).
    Dense(Vec<RouteEntry>),
    /// `base[dst]` for every destination except hosts in
    /// `[start, start + len)`, which map to consecutive ports
    /// `first_port + (dst - start)` (an edge switch's directly attached
    /// hosts). `len == 0` degenerates to a pure shared table.
    Interned {
        /// The shared table (typically one per pod or per tier).
        base: std::sync::Arc<[RouteEntry]>,
        /// First destination handled by the local window.
        start: u32,
        /// Number of consecutive destinations in the local window.
        len: u32,
        /// Port for destination `start`; subsequent destinations use
        /// subsequent ports.
        first_port: u16,
    },
}

impl RouteTable {
    /// The routing decision for `dst`.
    #[inline]
    pub fn lookup(&self, dst: usize) -> RouteEntry {
        match self {
            RouteTable::Dense(v) => v.get(dst).copied().unwrap_or(RouteEntry::None),
            RouteTable::Interned {
                base,
                start,
                len,
                first_port,
            } => {
                let d = dst as u64;
                if d >= *start as u64 && d < *start as u64 + *len as u64 {
                    RouteEntry::Port(first_port + (dst as u32 - start) as u16)
                } else {
                    base.get(dst).copied().unwrap_or(RouteEntry::None)
                }
            }
        }
    }

    /// Heap bytes privately owned by this table (shared `Arc` storage is
    /// excluded; count it once via [`Self::shared_table`]).
    pub fn owned_heap_bytes(&self) -> usize {
        match self {
            RouteTable::Dense(v) => v.capacity() * std::mem::size_of::<RouteEntry>(),
            RouteTable::Interned { .. } => 0,
        }
    }

    /// The shared backing table, when interned (memory accounting:
    /// deduplicate by `Arc::as_ptr`).
    pub fn shared_table(&self) -> Option<&std::sync::Arc<[RouteEntry]>> {
        match self {
            RouteTable::Interned { base, .. } => Some(base),
            RouteTable::Dense(_) => None,
        }
    }
}

/// Hop-by-hop priority-flow-control thresholds on the shared buffer.
///
/// When pool usage crosses `pause_bytes`, the switch sends PFC pause
/// frames to every link peer; when it drains below `resume_bytes`, it
/// sends resumes. A simplification of per-ingress-priority PFC that
/// preserves the property the experiments need: losslessness under
/// incast at the price of head-of-line blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcConfig {
    /// Send pause when shared-buffer usage reaches this many bytes.
    pub pause_bytes: u64,
    /// Send resume when usage falls back to this many bytes.
    pub resume_bytes: u64,
}

impl PfcConfig {
    /// Thresholds as fractions of the buffer: pause at 50%, resume at 25%.
    pub fn for_buffer(buffer_bytes: u64) -> PfcConfig {
        PfcConfig {
            pause_bytes: buffer_bytes / 2,
            resume_bytes: buffer_bytes / 4,
        }
    }
}

/// Switch construction parameters.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Shared buffer pool size in bytes (paper: 64 MB).
    pub buffer_bytes: u64,
    /// Load-balancing policy for the uplink group.
    pub lb: LbPolicy,
    /// Whether dropped data packets trigger an out-of-band
    /// [`ControlMsg::OracleLoss`] to the destination NIC (Ideal baseline).
    pub oracle_loss_notify: bool,
    /// RNG seed for this switch's random decisions.
    pub seed: u64,
    /// Bits to shift the ECMP hash before the uplink modulus; different
    /// tiers of a multi-tier fabric use different views (see
    /// [`crate::lb::LbState::ecmp_shift`]).
    pub ecmp_shift: u32,
    /// Hop-by-hop PFC; `None` = lossy fabric (drops on buffer overflow).
    pub pfc: Option<PfcConfig>,
    /// Strict priority for control packets on every egress port.
    pub ctrl_priority: bool,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            buffer_bytes: 64 * 1024 * 1024,
            lb: LbPolicy::Ecmp,
            oracle_loss_notify: false,
            seed: 0,
            ecmp_shift: 0,
            pfc: None,
            ctrl_priority: false,
        }
    }
}

/// Forwarding statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchStats {
    /// Packets received.
    pub rx_packets: u64,
    /// Packets accepted for forwarding.
    pub forwarded: u64,
    /// Packets dropped: no route for destination.
    pub drops_no_route: u64,
    /// Packets dropped: shared buffer full.
    pub drops_buffer: u64,
    /// Packets dropped by targeted loss injection.
    pub drops_targeted: u64,
    /// Reverse-direction packets blocked by the ToR hook.
    pub hook_blocked: u64,
    /// Packets emitted (originated) by the ToR hook.
    pub hook_emitted: u64,
    /// PFC pause broadcasts sent.
    pub pfc_pauses: u64,
    /// PFC resume broadcasts sent.
    pub pfc_resumes: u64,
}

/// An output-queued switch entity.
pub struct Switch {
    ports: Vec<EgressPort>,
    host_facing: Vec<bool>,
    routes: RouteTable,
    uplinks: Vec<usize>,
    lb: LbPolicy,
    lb_state: LbState,
    buffer: SharedBuffer,
    hook: Option<Box<dyn TorHook>>,
    rng: Xoshiro256,
    oracle_loss_notify: bool,
    targeted_drops: FxHashSet<(QpId, u32)>,
    reverse_corrupt_ppm: u32,
    drop_log: Vec<DropRecord>,
    tap: Option<Box<dyn crate::trace::PacketTap>>,
    telem: Option<crate::telem::SwitchTelem>,
    ctrl_priority: bool,
    pfc: Option<PfcConfig>,
    pfc_upstream_paused: bool,
    /// Forwarding statistics.
    pub stats: SwitchStats,
    emit_scratch: Vec<Packet>,
    /// Pool backing every port queue of this switch.
    arena: PacketArena,
}

impl Switch {
    /// An empty switch; wire ports and routes via the builder methods.
    pub fn new(cfg: &SwitchConfig) -> Switch {
        Switch {
            ports: Vec::new(),
            host_facing: Vec::new(),
            routes: RouteTable::Dense(Vec::new()),
            uplinks: Vec::new(),
            lb: cfg.lb,
            lb_state: LbState::new(cfg.seed, cfg.ecmp_shift),
            buffer: SharedBuffer::new(cfg.buffer_bytes),
            hook: None,
            rng: Xoshiro256::seeded(cfg.seed),
            oracle_loss_notify: cfg.oracle_loss_notify,
            targeted_drops: FxHashSet::default(),
            reverse_corrupt_ppm: 0,
            drop_log: Vec::new(),
            tap: None,
            telem: None,
            ctrl_priority: cfg.ctrl_priority,
            pfc: cfg.pfc,
            pfc_upstream_paused: false,
            stats: SwitchStats::default(),
            emit_scratch: Vec::new(),
            arena: PacketArena::new(),
        }
    }

    /// Broadcast PFC pause/resume to every link peer.
    fn broadcast_pfc(&mut self, pause: bool, ctx: &mut Ctx<'_>) {
        for p in &self.ports {
            ctx.send_pfc(p.peer, p.peer_in_port, pause, p.link.latency);
        }
        if pause {
            self.stats.pfc_pauses += 1;
        } else {
            self.stats.pfc_resumes += 1;
        }
    }

    /// Re-evaluate the shared-buffer watermarks after occupancy changed.
    fn check_pfc(&mut self, ctx: &mut Ctx<'_>) {
        let Some(cfg) = self.pfc else { return };
        if !self.pfc_upstream_paused && self.buffer.used() >= cfg.pause_bytes {
            self.pfc_upstream_paused = true;
            self.broadcast_pfc(true, ctx);
        } else if self.pfc_upstream_paused && self.buffer.used() <= cfg.resume_bytes {
            self.pfc_upstream_paused = false;
            self.broadcast_pfc(false, ctx);
        }
    }

    /// Append a port; returns its index. `host_facing` marks last-hop ports.
    pub fn add_port(&mut self, mut port: EgressPort, host_facing: bool) -> usize {
        port.ctrl_priority = self.ctrl_priority;
        self.ports.push(port);
        self.host_facing.push(host_facing);
        self.ports.len() - 1
    }

    /// Declare which ports form the load-balanced uplink group.
    ///
    /// The order of this list defines *path indices*: uplink `i` of the
    /// source ToR reaches spine `i`, which is path `i` in the paper's
    /// Eq. 1. Themis-S overrides return indices into this list.
    pub fn set_uplinks(&mut self, uplinks: Vec<usize>) {
        self.uplinks = uplinks;
    }

    /// Set the route for `dst`.
    ///
    /// An interned table is materialized into a private dense copy first
    /// (route surgery is a cold path; interning only matters for the
    /// untouched regular fabric).
    pub fn set_route(&mut self, dst: HostId, entry: RouteEntry) {
        if let RouteTable::Interned { .. } = self.routes {
            let max_dst = match self.routes.shared_table() {
                Some(base) => base.len().max(dst.index() + 1),
                None => dst.index() + 1,
            };
            let dense: Vec<RouteEntry> = (0..max_dst).map(|d| self.routes.lookup(d)).collect();
            self.routes = RouteTable::Dense(dense);
        }
        let RouteTable::Dense(routes) = &mut self.routes else {
            unreachable!("interned table materialized above");
        };
        if routes.len() <= dst.index() {
            routes.resize(dst.index() + 1, RouteEntry::None);
        }
        routes[dst.index()] = entry;
    }

    /// Replace the whole routing table (topology builders interning
    /// shared tables across switches).
    pub fn set_route_table(&mut self, table: RouteTable) {
        self.routes = table;
    }

    /// The routing table (memory accounting, inspection).
    pub fn route_table(&self) -> &RouteTable {
        &self.routes
    }

    /// Install ToR middleware.
    pub fn set_hook(&mut self, hook: Box<dyn TorHook>) {
        self.hook = Some(hook);
    }

    /// Replace the load-balancing policy (used by failure handling to
    /// revert a ToR to ECMP, §6).
    pub fn set_lb(&mut self, lb: LbPolicy) {
        self.lb = lb;
    }

    /// Current load-balancing policy.
    pub fn lb(&self) -> LbPolicy {
        self.lb
    }

    /// Load-balancing state (flowlet statistics, hash view).
    pub fn lb_state(&self) -> &LbState {
        &self.lb_state
    }

    /// Apply WRED/ECN marking configuration to every port.
    pub fn set_ecn_all_ports(&mut self, f: impl Fn(&EgressPort) -> Option<EcnConfig>) {
        for p in &mut self.ports {
            p.ecn = f(p);
        }
    }

    /// Schedule the data packet `(qp, psn)` to be dropped when it next
    /// traverses this switch (deterministic loss injection for tests).
    pub fn inject_targeted_drop(&mut self, qp: QpId, psn: u32) {
        self.targeted_drops.insert((qp, psn));
    }

    /// Set a random loss rate on port `idx`.
    pub fn set_port_loss_rate(&mut self, idx: usize, rate: f64) {
        self.ports[idx].loss_rate = rate;
    }

    /// Administratively take port `idx` down (blackhole) or up.
    pub fn set_port_down(&mut self, idx: usize, down: bool) {
        self.ports[idx].down = down;
    }

    /// Add extra propagation delay on port `idx` (delay-jitter spike).
    pub fn set_port_extra_delay(&mut self, idx: usize, extra: TimeDelta) {
        self.ports[idx].extra_delay = extra;
    }

    /// Drop reverse-direction packets (ACK/NACK/CNP) with the given
    /// probability in parts per million (reverse-path corruption).
    pub fn set_reverse_corrupt_rate(&mut self, rate_ppm: u32) {
        self.reverse_corrupt_ppm = rate_ppm;
    }

    /// Every drop this switch performed, in order, with its cause — the
    /// conformance oracle's ground truth.
    pub fn drop_log(&self) -> &[DropRecord] {
        &self.drop_log
    }

    fn log_drop(&mut self, at: simcore::time::Nanos, pkt: &Packet, cause: DropCause) {
        let psn = match pkt.kind {
            PacketKind::Data { psn, .. } => psn,
            PacketKind::Ack { epsn, .. } | PacketKind::Nack { epsn, .. } => epsn,
            _ => 0,
        };
        self.drop_log.push(DropRecord {
            at,
            qp: pkt.qp,
            psn,
            data: pkt.is_data(),
            cause,
        });
    }

    /// Immutable port access (stats, tests).
    pub fn port(&self, idx: usize) -> &EgressPort {
        &self.ports[idx]
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// The uplink group.
    pub fn uplinks(&self) -> &[usize] {
        &self.uplinks
    }

    /// Shared buffer state.
    pub fn buffer(&self) -> &SharedBuffer {
        &self.buffer
    }

    /// The installed hook, if any (downcast for stats extraction).
    pub fn hook(&self) -> Option<&dyn TorHook> {
        self.hook.as_deref()
    }

    /// Mutable access to the installed hook (runtime reconfiguration).
    pub fn hook_mut(&mut self) -> Option<&mut (dyn TorHook + 'static)> {
        self.hook.as_deref_mut()
    }

    /// Attach a packet tap (tcpdump-style capture of forwarding
    /// decisions); replaces any previous tap.
    pub fn set_tap(&mut self, tap: Box<dyn crate::trace::PacketTap>) {
        self.tap = Some(tap);
    }

    /// The attached tap, if any (downcast for extraction).
    pub fn tap(&self) -> Option<&dyn crate::trace::PacketTap> {
        self.tap.as_deref()
    }

    /// Install a telemetry handle; drop/ECN/hook counters and drop
    /// events are reported into it live alongside [`SwitchStats`].
    /// The packet pool backing this switch's port queues.
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    /// Attach the shared per-switch telemetry handles (counters + drop
    /// ring); installed by the cluster builders after construction.
    pub fn set_telemetry(&mut self, telem: crate::telem::SwitchTelem) {
        self.telem = Some(telem);
    }

    /// Sum of buffer-full drops across ports plus pool-level drops.
    pub fn total_drops(&self) -> u64 {
        self.stats.drops_buffer + self.stats.drops_targeted + self.stats.drops_no_route
    }

    fn forward(&mut self, mut pkt: Packet, in_port: PortId, ctx: &mut Ctx<'_>) {
        self.stats.rx_packets += 1;

        // Targeted loss injection (tests / failure studies).
        if let PacketKind::Data { psn, .. } = pkt.kind {
            if !self.targeted_drops.is_empty() && self.targeted_drops.remove(&(pkt.qp, psn)) {
                self.stats.drops_targeted += 1;
                if let Some(t) = &self.telem {
                    t.on_targeted_drop(pkt.qp.0 as u64, psn as u64);
                }
                self.log_drop(ctx.now(), &pkt, DropCause::Targeted);
                self.notify_oracle_loss(&pkt, ctx);
                return;
            }
        }

        // Reverse-path corruption (fault injection): ACK/NACK/CNP lost
        // to bit errors before the switch can process them.
        if self.reverse_corrupt_ppm > 0
            && matches!(
                pkt.kind,
                PacketKind::Ack { .. } | PacketKind::Nack { .. } | PacketKind::Cnp
            )
            && self.rng.next_below(1_000_000) < self.reverse_corrupt_ppm as u64
        {
            self.stats.drops_targeted += 1;
            if let Some(t) = &self.telem {
                let seq = match pkt.kind {
                    PacketKind::Ack { epsn, .. } | PacketKind::Nack { epsn, .. } => epsn,
                    _ => 0,
                };
                t.on_targeted_drop(pkt.qp.0 as u64, seq as u64);
            }
            self.log_drop(ctx.now(), &pkt, DropCause::ReverseCorrupt);
            return;
        }

        let from_host = self
            .host_facing
            .get(in_port.index())
            .copied()
            .unwrap_or(false);

        // --- ToR hook pipeline ---------------------------------------
        let mut uplink_override = None;
        if self.hook.is_some() && from_host {
            match pkt.kind {
                PacketKind::Data { .. } => {
                    let n_uplinks = self.uplinks.len();
                    let hook = self.hook.as_mut().expect("checked above");
                    let mut hctx = HookCtx {
                        now: ctx.now(),
                        emit: &mut self.emit_scratch,
                    };
                    uplink_override = hook.on_upstream_data(&mut pkt, n_uplinks, &mut hctx);
                }
                PacketKind::Ack { .. } | PacketKind::Nack { .. } | PacketKind::Cnp => {
                    let hook = self.hook.as_mut().expect("checked above");
                    let mut hctx = HookCtx {
                        now: ctx.now(),
                        emit: &mut self.emit_scratch,
                    };
                    let action = hook.on_reverse(&pkt, &mut hctx);
                    if action == ReverseAction::Block {
                        self.stats.hook_blocked += 1;
                        if let Some(t) = &self.telem {
                            t.on_hook_blocked();
                        }
                        self.flush_emitted(ctx);
                        return;
                    }
                }
                PacketKind::Handshake => {}
            }
        }

        self.route_and_enqueue(pkt, uplink_override, true, in_port, ctx);
        self.flush_emitted(ctx);
    }

    /// Route `pkt` and enqueue it on the chosen egress port.
    ///
    /// `run_downstream_hook` is false for hook-emitted packets to prevent
    /// hook recursion.
    fn route_and_enqueue(
        &mut self,
        pkt: Packet,
        uplink_override: Option<usize>,
        run_downstream_hook: bool,
        in_port: PortId,
        ctx: &mut Ctx<'_>,
    ) {
        let entry = self.routes.lookup(pkt.dst.index());
        let egress = match entry {
            RouteEntry::Port(p) => p as usize,
            RouteEntry::Uplinks => {
                let idx = match uplink_override {
                    Some(i) if i < self.uplinks.len() => i,
                    Some(_) => {
                        debug_assert!(false, "hook returned out-of-range uplink");
                        0
                    }
                    None => {
                        let switches_before = self.lb_state.flowlet_switches;
                        let idx = self.lb.select(
                            &pkt,
                            &self.uplinks,
                            &self.ports,
                            ctx.now(),
                            &mut self.lb_state,
                        );
                        if self.lb_state.flowlet_switches > switches_before {
                            if let Some(t) = &self.telem {
                                t.on_flowlet_switch(pkt.qp.0 as u64, idx as u64);
                            }
                        }
                        idx
                    }
                };
                self.uplinks[idx]
            }
            RouteEntry::None => {
                self.stats.drops_no_route += 1;
                if let Some(t) = &self.telem {
                    t.on_no_route_drop(pkt.qp.0 as u64);
                }
                self.log_drop(ctx.now(), &pkt, DropCause::NoRoute);
                return;
            }
        };

        // Last-hop hook: Themis-D observes packets in FIFO-egress order,
        // which equals their arrival order at the NIC.
        if run_downstream_hook && self.host_facing[egress] {
            if let Some(hook) = self.hook.as_mut() {
                let mut hctx = HookCtx {
                    now: ctx.now(),
                    emit: &mut self.emit_scratch,
                };
                hook.on_downstream(&pkt, &mut hctx);
            }
        }

        if let Some(tap) = self.tap.as_mut() {
            tap.on_forward(ctx.now(), &pkt, in_port, PortId(egress as u16));
        }
        let ecn_before = self.ports[egress].stats.ecn_marked;
        let qp = pkt.qp.0 as u64;
        let psn = pkt.data_psn().unwrap_or(0) as u64;
        let outcome = self.ports[egress].enqueue(
            pkt,
            PortId(egress as u16),
            ctx,
            Some(&mut self.buffer),
            &mut self.rng,
            &mut self.arena,
        );
        match outcome {
            EnqueueOutcome::TxStarted | EnqueueOutcome::Queued => {
                self.stats.forwarded += 1;
                if let Some(t) = &self.telem {
                    let marked = self.ports[egress].stats.ecn_marked - ecn_before;
                    if marked > 0 {
                        t.on_ecn_marked(marked);
                    }
                }
                self.check_pfc(ctx);
            }
            EnqueueOutcome::DroppedInjected => {
                // Injected losses (random per-port loss, down ports) are
                // deliberate faults, not congestion: they count with the
                // targeted drops, never as buffer drops.
                self.stats.drops_targeted += 1;
                if let Some(t) = &self.telem {
                    t.on_targeted_drop(qp, psn);
                }
                let cause = if self.ports[egress].down {
                    DropCause::PortDown
                } else {
                    DropCause::Injected
                };
                self.log_drop(ctx.now(), &pkt, cause);
                self.notify_oracle_loss(&pkt, ctx);
            }
            EnqueueOutcome::DroppedBuffer => {
                self.stats.drops_buffer += 1;
                if let Some(t) = &self.telem {
                    t.on_buffer_drop(qp, psn);
                }
                self.log_drop(ctx.now(), &pkt, DropCause::Buffer);
                self.notify_oracle_loss(&pkt, ctx);
            }
        }
    }

    fn flush_emitted(&mut self, ctx: &mut Ctx<'_>) {
        // Hook-emitted packets skip hooks themselves, so one pass cannot
        // produce new emissions; the loop guards the invariant anyway.
        while !self.emit_scratch.is_empty() {
            let mut batch = std::mem::take(&mut self.emit_scratch);
            for p in batch.drain(..) {
                self.stats.hook_emitted += 1;
                if let Some(t) = &self.telem {
                    t.on_hook_emitted();
                }
                // Hook-originated packets have no real ingress port.
                self.route_and_enqueue(p, None, false, PortId(u16::MAX), ctx);
            }
            if self.emit_scratch.is_empty() {
                // Hand the drained buffer back so its capacity is reused
                // instead of reallocated on the next hook emission.
                self.emit_scratch = batch;
            }
        }
    }

    fn notify_oracle_loss(&self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        if !self.oracle_loss_notify {
            return;
        }
        if let PacketKind::Data { psn, .. } = pkt.kind {
            // Node-id convention: host h is entity h.
            ctx.control(
                NodeId(pkt.dst.0),
                ControlMsg::OracleLoss { qp: pkt.qp, psn },
            );
        }
    }
}

impl Entity for Switch {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Packet { pkt, in_port } => self.forward(pkt, in_port, ctx),
            Event::TxDone { port } => {
                let idx = port.index();
                // Split borrow: take the port out to satisfy the borrow
                // checker cheaply (ports are small).
                let _departed = {
                    let (ports, buffer, arena) =
                        (&mut self.ports, &mut self.buffer, &mut self.arena);
                    ports[idx].on_tx_done(port, ctx, Some(buffer), arena)
                };
                self.check_pfc(ctx);
            }
            Event::Pfc { in_port, pause } => {
                if let Some(p) = self.ports.get_mut(in_port.index()) {
                    p.set_paused(pause, in_port, ctx, &mut self.arena);
                }
            }
            Event::Control(ControlMsg::TorLinkFailure) => {
                // §6: revert to ECMP and stop the hook's spraying until
                // the monitor reports recovery.
                self.lb = LbPolicy::Ecmp;
                if let Some(h) = self.hook.as_mut() {
                    h.on_link_event(true);
                }
            }
            Event::Control(ControlMsg::TorLinkRecovery { lb }) => {
                self.lb = lb;
                if let Some(h) = self.hook.as_mut() {
                    h.on_link_event(false);
                }
            }
            Event::Control(ControlMsg::SetPortDown { port, down }) => {
                if let Some(p) = self.ports.get_mut(port as usize) {
                    p.down = down;
                }
            }
            Event::Control(ControlMsg::SetPortLossRate { port, rate_ppm }) => {
                if let Some(p) = self.ports.get_mut(port as usize) {
                    p.loss_rate = rate_ppm as f64 / 1e6;
                }
            }
            Event::Control(ControlMsg::SetPortExtraDelay { port, extra_ns }) => {
                if let Some(p) = self.ports.get_mut(port as usize) {
                    p.extra_delay = TimeDelta::from_nanos(extra_ns);
                }
            }
            Event::Control(ControlMsg::SetReverseCorruptRate { rate_ppm }) => {
                self.reverse_corrupt_ppm = rate_ppm;
            }
            Event::Control(ControlMsg::SetSprayEnabled { on }) => {
                if let Some(h) = self.hook.as_mut() {
                    h.on_admin_spray(on);
                }
            }
            Event::Timer { .. } | Event::Control(_) => {
                // Switches arm no timers and receive no other control
                // messages.
                debug_assert!(false, "unexpected event at switch");
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::LinkSpec;
    use crate::world::World;
    use simcore::time::Nanos;

    /// Sink entity that records arriving packets with timestamps.
    pub(crate) struct Sink {
        pub got: Vec<(Nanos, Packet)>,
    }

    impl Entity for Sink {
        fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            if let Event::Packet { pkt, .. } = ev {
                self.got.push((ctx.now(), pkt));
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn data(qp: u32, dst: u32, psn: u32) -> Packet {
        Packet::data(
            QpId(qp),
            HostId(0),
            HostId(dst),
            100,
            psn,
            0,
            false,
            1436,
            false,
        )
    }

    /// World with: sink host at node 0 (HostId 0 unused), a switch, and a
    /// sink at node 1 reachable via port 0.
    fn one_switch_world() -> (World, NodeId, NodeId) {
        let mut w = World::new();
        let sink = w.add(Box::new(Sink { got: vec![] }));
        let mut sw = Switch::new(&SwitchConfig::default());
        sw.add_port(
            EgressPort::new(sink, PortId(0), LinkSpec::gbps(100, 1)),
            true,
        );
        sw.set_route(HostId(1), RouteEntry::Port(0));
        let swid = w.add(Box::new(sw));
        (w, swid, sink)
    }

    #[test]
    fn forwards_by_route() {
        let (mut w, swid, sink) = one_switch_world();
        w.seed_event(
            Nanos::ZERO,
            swid,
            Event::Packet {
                pkt: data(0, 1, 0),
                in_port: PortId(9),
            },
        );
        w.run();
        let s: &Sink = w.get(sink).unwrap();
        assert_eq!(s.got.len(), 1);
        // 1500B at 100G = 120ns ser + 1us prop.
        assert_eq!(s.got[0].0, Nanos(1_120));
        let sw: &Switch = w.get(swid).unwrap();
        assert_eq!(sw.stats.forwarded, 1);
    }

    #[test]
    fn no_route_drops() {
        let (mut w, swid, sink) = one_switch_world();
        w.seed_event(
            Nanos::ZERO,
            swid,
            Event::Packet {
                pkt: data(0, 55, 0),
                in_port: PortId(9),
            },
        );
        w.run();
        let s: &Sink = w.get(sink).unwrap();
        assert!(s.got.is_empty());
        let sw: &Switch = w.get(swid).unwrap();
        assert_eq!(sw.stats.drops_no_route, 1);
    }

    #[test]
    fn fifo_order_preserved_on_one_port() {
        let (mut w, swid, sink) = one_switch_world();
        for psn in 0..50 {
            w.seed_event(
                Nanos(psn as u64),
                swid,
                Event::Packet {
                    pkt: data(0, 1, psn),
                    in_port: PortId(9),
                },
            );
        }
        w.run();
        let s: &Sink = w.get(sink).unwrap();
        let psns: Vec<u32> = s.got.iter().filter_map(|(_, p)| p.data_psn()).collect();
        assert_eq!(psns, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn targeted_drop_removes_exactly_one_packet() {
        let (mut w, swid, sink) = one_switch_world();
        w.get_mut::<Switch>(swid)
            .unwrap()
            .inject_targeted_drop(QpId(0), 3);
        for psn in 0..6 {
            w.seed_event(
                Nanos(psn as u64 * 10),
                swid,
                Event::Packet {
                    pkt: data(0, 1, psn),
                    in_port: PortId(9),
                },
            );
        }
        w.run();
        let s: &Sink = w.get(sink).unwrap();
        let psns: Vec<u32> = s.got.iter().filter_map(|(_, p)| p.data_psn()).collect();
        assert_eq!(psns, vec![0, 1, 2, 4, 5]);
        let sw: &Switch = w.get(swid).unwrap();
        assert_eq!(sw.stats.drops_targeted, 1);
        // Retransmission of psn 3 would pass (entry consumed).
        assert!(sw.targeted_drops.is_empty());
    }

    #[test]
    fn buffer_exhaustion_drops_and_counts() {
        let mut w = World::new();
        let sink = w.add(Box::new(Sink { got: vec![] }));
        let mut sw = Switch::new(&SwitchConfig {
            buffer_bytes: 3_200, // fits ~2 packets of 1500B
            ..SwitchConfig::default()
        });
        sw.add_port(EgressPort::new(sink, PortId(0), LinkSpec::gbps(1, 1)), true);
        sw.set_route(HostId(1), RouteEntry::Port(0));
        let swid = w.add(Box::new(sw));
        for psn in 0..10 {
            w.seed_event(
                Nanos(psn as u64),
                swid,
                Event::Packet {
                    pkt: data(0, 1, psn),
                    in_port: PortId(9),
                },
            );
        }
        w.run();
        let sw: &Switch = w.get(swid).unwrap();
        assert!(sw.stats.drops_buffer > 0, "expected buffer drops");
        let s: &Sink = w.get(sink).unwrap();
        assert_eq!(
            s.got.len() as u64 + sw.stats.drops_buffer,
            10,
            "every packet either arrives or is dropped"
        );
    }

    #[test]
    fn uplink_group_spreads_with_round_robin() {
        let mut w = World::new();
        let sink_a = w.add(Box::new(Sink { got: vec![] }));
        let sink_b = w.add(Box::new(Sink { got: vec![] }));
        let mut sw = Switch::new(&SwitchConfig {
            lb: LbPolicy::RoundRobin,
            ..SwitchConfig::default()
        });
        let pa = sw.add_port(
            EgressPort::new(sink_a, PortId(0), LinkSpec::gbps(100, 1)),
            false,
        );
        let pb = sw.add_port(
            EgressPort::new(sink_b, PortId(0), LinkSpec::gbps(100, 1)),
            false,
        );
        sw.set_uplinks(vec![pa, pb]);
        sw.set_route(HostId(1), RouteEntry::Uplinks);
        let swid = w.add(Box::new(sw));
        for psn in 0..10 {
            w.seed_event(
                Nanos(psn as u64 * 1000),
                swid,
                Event::Packet {
                    pkt: data(0, 1, psn),
                    in_port: PortId(9),
                },
            );
        }
        w.run();
        let a: &Sink = w.get(sink_a).unwrap();
        let b: &Sink = w.get(sink_b).unwrap();
        assert_eq!(a.got.len(), 5);
        assert_eq!(b.got.len(), 5);
    }

    /// Hook that blocks every NACK and emits a CNP marker per block.
    struct BlockAllNacks;
    impl TorHook for BlockAllNacks {
        fn on_reverse(&mut self, pkt: &Packet, ctx: &mut HookCtx<'_>) -> ReverseAction {
            if pkt.is_nack() {
                ctx.emit
                    .push(Packet::cnp(pkt.qp, pkt.src, pkt.dst, pkt.udp_sport));
                ReverseAction::Block
            } else {
                ReverseAction::Forward
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn pfc_watermarks_pause_and_resume_upstream() {
        // A switch with a tiny buffer and a slow egress link: filling it
        // past the pause watermark must broadcast pauses to its peers,
        // draining below the resume watermark must broadcast resumes.
        let mut w = World::new();
        let sink = w.add(Box::new(Sink { got: vec![] }));
        let mut sw = Switch::new(&SwitchConfig {
            buffer_bytes: 20_000,
            pfc: Some(PfcConfig {
                pause_bytes: 10_000,
                resume_bytes: 5_000,
            }),
            ..SwitchConfig::default()
        });
        // Slow link so the queue builds.
        sw.add_port(EgressPort::new(sink, PortId(0), LinkSpec::gbps(1, 1)), true);
        sw.set_route(HostId(1), RouteEntry::Port(0));
        let swid = w.add(Box::new(sw));
        for psn in 0..12 {
            w.seed_event(
                Nanos(psn as u64),
                swid,
                Event::Packet {
                    pkt: data(0, 1, psn),
                    in_port: PortId(9),
                },
            );
        }
        w.run();
        let sw: &Switch = w.get(swid).unwrap();
        assert!(sw.stats.pfc_pauses >= 1, "pause watermark crossed");
        assert!(sw.stats.pfc_resumes >= 1, "queue drained -> resume");
        assert_eq!(sw.stats.drops_buffer, 0, "12x1.5KB fits in 20KB");
        // The sink (a non-port entity here) received the PFC frames as
        // events; a real NIC would pause — covered by integration tests.
        let s: &Sink = w.get(sink).unwrap();
        assert_eq!(s.got.len(), 12, "all data eventually forwarded");
    }

    #[test]
    fn pfc_event_pauses_the_addressed_port() {
        let (mut w, swid, sink) = one_switch_world();
        // Pause port 0 via a PFC event, then send data: it must be held.
        w.seed_event(
            Nanos::ZERO,
            swid,
            Event::Pfc {
                in_port: PortId(0),
                pause: true,
            },
        );
        w.seed_event(
            Nanos(10),
            swid,
            Event::Packet {
                pkt: data(0, 1, 0),
                in_port: PortId(9),
            },
        );
        w.run_until(Nanos::from_micros(100));
        {
            let s: &Sink = w.get(sink).unwrap();
            assert!(s.got.is_empty(), "paused port must hold the packet");
        }
        // Resume: the packet flows.
        w.seed_event(
            w.now(),
            swid,
            Event::Pfc {
                in_port: PortId(0),
                pause: false,
            },
        );
        w.run_until(Nanos::from_millis(1));
        let s: &Sink = w.get(sink).unwrap();
        assert_eq!(s.got.len(), 1);
    }

    #[test]
    fn telemetry_mirrors_switch_stats() {
        let sink = telemetry::Sink::new(8);
        let mut w = World::new();
        w.engine.attach_clock(sink.clock());
        let dst = w.add(Box::new(Sink { got: vec![] }));
        let mut sw = Switch::new(&SwitchConfig {
            buffer_bytes: 3_200, // fits ~2 packets of 1500B
            ..SwitchConfig::default()
        });
        sw.add_port(EgressPort::new(dst, PortId(0), LinkSpec::gbps(1, 1)), true);
        sw.set_route(HostId(1), RouteEntry::Port(0));
        sw.set_telemetry(crate::telem::SwitchTelem::register(&sink));
        let swid = w.add(Box::new(sw));
        for psn in 0..10 {
            w.seed_event(
                Nanos(psn as u64),
                swid,
                Event::Packet {
                    pkt: data(0, 1, psn),
                    in_port: PortId(9),
                },
            );
        }
        // One packet with no route.
        w.seed_event(
            Nanos(100),
            swid,
            Event::Packet {
                pkt: data(0, 55, 0),
                in_port: PortId(9),
            },
        );
        w.run();
        let sw: &Switch = w.get(swid).unwrap();
        let snap = sink.snapshot();
        assert_eq!(
            snap.counter("fabric.drops.buffer"),
            Some(sw.stats.drops_buffer)
        );
        assert_eq!(snap.counter("fabric.drops.no_route"), Some(1));
        // Every drop left a PacketDrop record stamped with simulated time.
        assert_eq!(
            snap.events.total,
            sw.stats.drops_buffer + sw.stats.drops_no_route
        );
        assert!(snap.events.ring.iter().all(|e| e.kind == "packet_drop"));
    }

    #[test]
    fn hook_blocks_reverse_and_emits() {
        let mut w = World::new();
        let sink = w.add(Box::new(Sink { got: vec![] }));
        let mut sw = Switch::new(&SwitchConfig::default());
        // Port 0: host-facing (where the NACK comes from); port 1: upstream.
        sw.add_port(
            EgressPort::new(sink, PortId(0), LinkSpec::gbps(100, 1)),
            true,
        );
        let up = sw.add_port(
            EgressPort::new(sink, PortId(0), LinkSpec::gbps(100, 1)),
            false,
        );
        sw.set_route(HostId(5), RouteEntry::Port(up as u16));
        sw.set_hook(Box::new(BlockAllNacks));
        let swid = w.add(Box::new(sw));
        // NACK from local host (in_port 0 is host-facing) toward host 5.
        let nack = Packet::nack(QpId(0), HostId(1), HostId(5), 7, 10, false);
        w.seed_event(
            Nanos::ZERO,
            swid,
            Event::Packet {
                pkt: nack,
                in_port: PortId(0),
            },
        );
        w.run();
        let sw: &Switch = w.get(swid).unwrap();
        assert_eq!(sw.stats.hook_blocked, 1);
        assert_eq!(sw.stats.hook_emitted, 1);
        let s: &Sink = w.get(sink).unwrap();
        // Only the emitted CNP arrives; the NACK was blocked.
        assert_eq!(s.got.len(), 1);
        assert_eq!(s.got[0].1.kind.label(), "CNP");
    }

    #[test]
    fn hook_not_applied_to_fabric_ingress() {
        // A NACK arriving from the fabric (non host-facing in_port) must
        // not be filtered: Themis-D only validates NACKs generated by
        // *local* receivers.
        let mut w = World::new();
        let sink = w.add(Box::new(Sink { got: vec![] }));
        let mut sw = Switch::new(&SwitchConfig::default());
        let down = sw.add_port(
            EgressPort::new(sink, PortId(0), LinkSpec::gbps(100, 1)),
            true,
        );
        sw.set_route(HostId(1), RouteEntry::Port(down as u16));
        sw.set_hook(Box::new(BlockAllNacks));
        let swid = w.add(Box::new(sw));
        let nack = Packet::nack(QpId(0), HostId(9), HostId(1), 7, 10, false);
        w.seed_event(
            Nanos::ZERO,
            swid,
            Event::Packet {
                pkt: nack,
                in_port: PortId(5), // unknown port -> not host-facing
            },
        );
        w.run();
        let s: &Sink = w.get(sink).unwrap();
        assert_eq!(s.got.len(), 1, "fabric NACK must pass through");
    }
}
