//! Fabric-side telemetry ids.
//!
//! One [`SwitchTelem`] is registered per *sink* (not per switch): every
//! switch of a fabric shares the same fabric-wide counters, mirroring
//! how `trace::fabric_summary` aggregates at snapshot time — but live,
//! so experiments can watch drops and hook activity as they happen and
//! the event ring captures the exact simulated time of each drop.

use telemetry::{CounterId, EventKind, Sink};

/// Telemetry handle installed into every [`crate::switch::Switch`].
#[derive(Debug, Clone)]
pub struct SwitchTelem {
    sink: Sink,
    drops_buffer: CounterId,
    drops_no_route: CounterId,
    drops_targeted: CounterId,
    ecn_marked: CounterId,
    hook_blocked: CounterId,
    hook_emitted: CounterId,
    flowlet_switches: CounterId,
}

impl SwitchTelem {
    /// Register the fabric counter set on `sink`. Idempotent: every
    /// switch of a fabric can call this and they all share ids.
    pub fn register(sink: &Sink) -> SwitchTelem {
        SwitchTelem {
            drops_buffer: sink.counter("fabric.drops.buffer"),
            drops_no_route: sink.counter("fabric.drops.no_route"),
            drops_targeted: sink.counter("fabric.drops.targeted"),
            ecn_marked: sink.counter("fabric.ecn_marked"),
            hook_blocked: sink.counter("fabric.hook_blocked"),
            hook_emitted: sink.counter("fabric.hook_emitted"),
            flowlet_switches: sink.counter("fabric.flowlet_switches"),
            sink: sink.clone(),
        }
    }

    /// A data packet was dropped because the shared buffer was full.
    #[inline]
    pub fn on_buffer_drop(&self, qp: u64, psn: u64) {
        self.sink.inc(self.drops_buffer);
        self.sink.event(EventKind::PacketDrop, qp, psn);
    }

    /// A packet had no route to its destination.
    #[inline]
    pub fn on_no_route_drop(&self, qp: u64) {
        self.sink.inc(self.drops_no_route);
        self.sink.event(EventKind::PacketDrop, qp, 0);
    }

    /// A packet was removed by targeted loss injection.
    #[inline]
    pub fn on_targeted_drop(&self, qp: u64, psn: u64) {
        self.sink.inc(self.drops_targeted);
        self.sink.event(EventKind::PacketDrop, qp, psn);
    }

    /// `n` packets were ECN-CE marked on an egress port.
    #[inline]
    pub fn on_ecn_marked(&self, n: u64) {
        self.sink.add(self.ecn_marked, n);
    }

    /// A ToR hook blocked a reverse-direction packet.
    #[inline]
    pub fn on_hook_blocked(&self) {
        self.sink.inc(self.hook_blocked);
    }

    /// A ToR hook originated a packet (e.g. a compensated NACK).
    #[inline]
    pub fn on_hook_emitted(&self) {
        self.sink.inc(self.hook_emitted);
    }

    /// The load balancer placed a flow on a new uplink (flowlet start
    /// or switch); `arg` is the chosen uplink index.
    #[inline]
    pub fn on_flowlet_switch(&self, qp: u64, uplink: u64) {
        self.sink.inc(self.flowlet_switches);
        self.sink.event(EventKind::FlowletSwitch, qp, uplink);
    }
}
