//! Topology builders.
//!
//! * [`build_leaf_spine`] — the 2-tier Clos fabrics used throughout the
//!   paper's evaluation: the 16×16 leaf-spine of §5 and the 8-host
//!   motivation topology of Fig 1a.
//! * [`FatTreeDims`] — arithmetic for the 3-tier fat-tree of the §4 memory
//!   example (k = 32 → 512 ToRs, 8192 NICs, 256 equal-cost paths).
//!
//! Builders create and wire all switches, reserve entity slots for host
//! NICs (the `rnic` crate installs them), and return a [`FabricPlan`]
//! describing every attachment point.
//!
//! ## Path-index convention
//!
//! Uplink `i` of every leaf connects to spine `i`. Since a 2-tier Clos has
//! exactly one path per spine between any two leaves, *path index = spine
//! index* — the concrete realization of the paper's path indices
//! `0..N-1` (§3.2).

use crate::lb::LbPolicy;
use crate::port::{EcnConfig, EgressPort, LinkSpec};
use crate::switch::{PfcConfig, RouteEntry, Switch, SwitchConfig};
use crate::types::{HostId, NodeId, PortId};
use crate::world::World;

/// Leaf-spine fabric parameters.
#[derive(Debug, Clone)]
pub struct LeafSpineConfig {
    /// Number of leaf (ToR) switches.
    pub n_leaves: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Number of spine switches (= number of equal-cost paths).
    pub n_spines: usize,
    /// Host-to-leaf link.
    pub host_link: LinkSpec,
    /// Leaf-to-spine link.
    pub fabric_link: LinkSpec,
    /// Per-switch shared buffer (paper: 64 MB).
    pub buffer_bytes: u64,
    /// Uplink load-balancing policy installed on every leaf.
    pub lb: LbPolicy,
    /// Enable WRED/ECN marking on all switch ports.
    pub ecn: bool,
    /// Enable the loss oracle (Ideal baseline of Fig 1d).
    pub oracle_loss_notify: bool,
    /// Hop-by-hop PFC on every switch; `None` = lossy fabric.
    pub pfc: Option<PfcConfig>,
    /// Strict control-packet priority on every switch port.
    pub ctrl_priority: bool,
    /// Root seed; each switch gets an independent substream.
    pub seed: u64,
}

impl LeafSpineConfig {
    /// The §5 evaluation fabric: 16 leaves × 16 hosts, 16 spines,
    /// 400 Gbps links with 1 µs delay, 64 MB buffers.
    pub fn paper_eval() -> LeafSpineConfig {
        LeafSpineConfig {
            n_leaves: 16,
            hosts_per_leaf: 16,
            n_spines: 16,
            host_link: LinkSpec::gbps(400, 1),
            fabric_link: LinkSpec::gbps(400, 1),
            buffer_bytes: 64 * 1024 * 1024,
            lb: LbPolicy::Ecmp,
            ecn: true,
            oracle_loss_notify: false,
            pfc: None,
            ctrl_priority: false,
            seed: 1,
        }
    }

    /// The Fig 1a motivation fabric: 8 hosts on 4 leaves, 2 spines,
    /// 100 Gbps everywhere. Ring neighbours within each group land on
    /// different leaves, so every flow crosses the spine layer.
    pub fn motivation() -> LeafSpineConfig {
        LeafSpineConfig {
            n_leaves: 4,
            hosts_per_leaf: 2,
            n_spines: 2,
            host_link: LinkSpec::gbps(100, 1),
            fabric_link: LinkSpec::gbps(100, 1),
            buffer_bytes: 64 * 1024 * 1024,
            lb: LbPolicy::RandomSpray,
            ecn: true,
            oracle_loss_notify: false,
            pfc: None,
            ctrl_priority: false,
            seed: 1,
        }
    }

    /// Total number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.n_leaves * self.hosts_per_leaf
    }
}

/// Where one host NIC plugs into the fabric.
#[derive(Debug, Clone, Copy)]
pub struct HostAttachment {
    /// The host.
    pub host: HostId,
    /// Its entity slot (== `NodeId(host.0)` by convention).
    pub node: NodeId,
    /// The ToR switch it connects to.
    pub tor: NodeId,
    /// The ToR's port towards this host (the NIC's packets arrive there).
    pub tor_port: PortId,
    /// The access link (same spec in both directions).
    pub link: LinkSpec,
}

/// A built fabric: all switches installed, host slots reserved.
pub struct FabricPlan {
    /// The world holding the switches (host slots still empty).
    pub world: World,
    /// One attachment per host, indexed by host id.
    pub hosts: Vec<HostAttachment>,
    /// Leaf switch entity ids, by leaf index.
    pub leaves: Vec<NodeId>,
    /// Spine switch entity ids, by spine index.
    pub spines: Vec<NodeId>,
    /// Number of equal-cost paths between hosts on different leaves.
    pub n_paths: usize,
}

impl FabricPlan {
    /// Leaf index of `host`.
    pub fn leaf_of(&self, host: HostId) -> usize {
        let hpl = self.hosts.len() / self.leaves.len();
        host.index() / hpl
    }

    /// The ToR entity of `host`.
    pub fn tor_of(&self, host: HostId) -> NodeId {
        self.hosts[host.index()].tor
    }
}

/// Build a leaf-spine fabric per `cfg`.
///
/// Host `h` lives on leaf `h / hosts_per_leaf` and occupies entity slot
/// `NodeId(h)`; switches occupy the following slots.
pub fn build_leaf_spine(cfg: &LeafSpineConfig) -> FabricPlan {
    assert!(cfg.n_leaves > 0 && cfg.hosts_per_leaf > 0 && cfg.n_spines > 0);
    let n_hosts = cfg.n_hosts();
    let mut world = World::new();

    // Reserve host slots first so NodeId(h) == HostId(h).
    let host_nodes: Vec<NodeId> = (0..n_hosts).map(|_| world.reserve()).collect();
    for (h, node) in host_nodes.iter().enumerate() {
        assert_eq!(node.0 as usize, h, "host node-id convention violated");
    }

    // Create switches (empty; ports wired below).
    let leaf_ids: Vec<NodeId> = (0..cfg.n_leaves)
        .map(|l| {
            world.add(Box::new(Switch::new(&SwitchConfig {
                buffer_bytes: cfg.buffer_bytes,
                lb: cfg.lb,
                oracle_loss_notify: cfg.oracle_loss_notify,
                seed: cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(l as u64),
                ecmp_shift: 0,
                pfc: cfg.pfc,
                ctrl_priority: cfg.ctrl_priority,
            })))
        })
        .collect();
    let spine_ids: Vec<NodeId> = (0..cfg.n_spines)
        .map(|s| {
            world.add(Box::new(Switch::new(&SwitchConfig {
                buffer_bytes: cfg.buffer_bytes,
                lb: cfg.lb,
                oracle_loss_notify: cfg.oracle_loss_notify,
                seed: cfg
                    .seed
                    .wrapping_mul(0x85EB_CA6B)
                    .wrapping_add(1_000_000 + s as u64),
                ecmp_shift: 0,
                pfc: cfg.pfc,
                ctrl_priority: cfg.ctrl_priority,
            })))
        })
        .collect();

    let mut hosts = Vec::with_capacity(n_hosts);

    // Wire leaves: ports [0..hpl) host-facing, ports [hpl..hpl+n_spines) uplinks.
    for (l, &leaf) in leaf_ids.iter().enumerate() {
        // Temporarily move the switch out to mutate it.
        let mut sw = Switch::new(&SwitchConfig::default());
        std::mem::swap(world.get_mut::<Switch>(leaf).expect("leaf exists"), &mut sw);

        for j in 0..cfg.hosts_per_leaf {
            let h = l * cfg.hosts_per_leaf + j;
            let host_node = host_nodes[h];
            let idx = sw.add_port(EgressPort::new(host_node, PortId(0), cfg.host_link), true);
            debug_assert_eq!(idx, j);
            hosts.push(HostAttachment {
                host: HostId(h as u32),
                node: host_node,
                tor: leaf,
                tor_port: PortId(j as u16),
                link: cfg.host_link,
            });
        }
        let mut uplinks = Vec::with_capacity(cfg.n_spines);
        for (s, &spine) in spine_ids.iter().enumerate() {
            // Our packets arrive at the spine on its port `l`.
            let idx = sw.add_port(
                EgressPort::new(spine, PortId(l as u16), cfg.fabric_link),
                false,
            );
            debug_assert_eq!(idx, cfg.hosts_per_leaf + s);
            uplinks.push(idx);
        }
        sw.set_uplinks(uplinks);

        // Routes: local hosts to their port; everyone else via uplinks.
        for h in 0..n_hosts {
            let entry = if h / cfg.hosts_per_leaf == l {
                RouteEntry::Port((h % cfg.hosts_per_leaf) as u16)
            } else {
                RouteEntry::Uplinks
            };
            sw.set_route(HostId(h as u32), entry);
        }
        if cfg.ecn {
            sw.set_ecn_all_ports(|p| Some(EcnConfig::for_bandwidth(p.link.bandwidth_bps)));
        }
        std::mem::swap(world.get_mut::<Switch>(leaf).expect("leaf exists"), &mut sw);
    }

    // Wire spines: port l towards leaf l (arriving on the leaf's uplink
    // port for this spine).
    for (s, &spine) in spine_ids.iter().enumerate() {
        let mut sw = Switch::new(&SwitchConfig::default());
        std::mem::swap(
            world.get_mut::<Switch>(spine).expect("spine exists"),
            &mut sw,
        );
        for (l, &leaf) in leaf_ids.iter().enumerate() {
            let leaf_in_port = PortId((cfg.hosts_per_leaf + s) as u16);
            let idx = sw.add_port(EgressPort::new(leaf, leaf_in_port, cfg.fabric_link), false);
            debug_assert_eq!(idx, l);
        }
        for h in 0..n_hosts {
            sw.set_route(
                HostId(h as u32),
                RouteEntry::Port((h / cfg.hosts_per_leaf) as u16),
            );
        }
        if cfg.ecn {
            sw.set_ecn_all_ports(|p| Some(EcnConfig::for_bandwidth(p.link.bandwidth_bps)));
        }
        std::mem::swap(
            world.get_mut::<Switch>(spine).expect("spine exists"),
            &mut sw,
        );
    }

    FabricPlan {
        world,
        hosts,
        leaves: leaf_ids,
        spines: spine_ids,
        n_paths: cfg.n_spines,
    }
}

/// Dimensions of a 3-tier fat-tree built from `k`-port switches
/// (Al-Fares et al. \[9\]), as used by the §4 memory example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTreeDims {
    /// Switch radix.
    pub k: usize,
}

impl FatTreeDims {
    /// Dimensions for radix `k` (must be even).
    pub fn new(k: usize) -> FatTreeDims {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree radix must be even");
        FatTreeDims { k }
    }

    /// Number of ToR (edge/leaf) switches: k²/2.
    pub fn n_tors(&self) -> usize {
        self.k * self.k / 2
    }

    /// Number of aggregation (spine) switches: k²/2.
    pub fn n_spines(&self) -> usize {
        self.k * self.k / 2
    }

    /// Number of core switches: k²/4.
    pub fn n_cores(&self) -> usize {
        self.k * self.k / 4
    }

    /// Number of hosts (GPUs/NICs): k³/4.
    pub fn n_hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Hosts (NICs) per ToR: k/2.
    pub fn hosts_per_tor(&self) -> usize {
        self.k / 2
    }

    /// Maximum number of equal-cost paths between hosts in different pods:
    /// (k/2)² (one per core switch reachable via k/2 aggregation choices).
    pub fn max_equal_cost_paths(&self) -> usize {
        (self.k / 2) * (self.k / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_eval_dimensions() {
        let cfg = LeafSpineConfig::paper_eval();
        assert_eq!(cfg.n_hosts(), 256);
        let plan = build_leaf_spine(&cfg);
        assert_eq!(plan.hosts.len(), 256);
        assert_eq!(plan.leaves.len(), 16);
        assert_eq!(plan.spines.len(), 16);
        assert_eq!(plan.n_paths, 16);
        assert_eq!(plan.world.len(), 256 + 32);
    }

    #[test]
    fn motivation_dimensions() {
        let plan = build_leaf_spine(&LeafSpineConfig::motivation());
        assert_eq!(plan.hosts.len(), 8);
        assert_eq!(plan.n_paths, 2);
        // Ring neighbours h -> h+2 are always on different leaves
        // (2 hosts per leaf).
        for h in 0..8u32 {
            let next = (h + 2) % 8;
            assert_ne!(
                plan.leaf_of(HostId(h)),
                plan.leaf_of(HostId(next)),
                "ring hop {h}->{next} must cross racks"
            );
        }
    }

    #[test]
    fn node_id_convention_holds() {
        let plan = build_leaf_spine(&LeafSpineConfig::motivation());
        for att in &plan.hosts {
            assert_eq!(att.node.0, att.host.0);
        }
    }

    #[test]
    fn leaf_ports_are_wired_consistently() {
        let plan = build_leaf_spine(&LeafSpineConfig::motivation());
        let leaf0: &Switch = plan.world.get(plan.leaves[0]).unwrap();
        // 2 host ports + 2 uplinks.
        assert_eq!(leaf0.num_ports(), 4);
        assert_eq!(leaf0.uplinks(), &[2, 3]);
        // Uplink s goes to spine s.
        assert_eq!(leaf0.port(2).peer, plan.spines[0]);
        assert_eq!(leaf0.port(3).peer, plan.spines[1]);
        // Host port 0 goes to host entity 0.
        assert_eq!(leaf0.port(0).peer, NodeId(0));
    }

    #[test]
    fn spine_ports_point_back_at_leaf_uplinks() {
        let cfg = LeafSpineConfig::motivation();
        let plan = build_leaf_spine(&cfg);
        let spine1: &Switch = plan.world.get(plan.spines[1]).unwrap();
        // Spine 1 port l -> leaf l, arriving on leaf port hpl+1.
        for l in 0..cfg.n_leaves {
            assert_eq!(spine1.port(l).peer, plan.leaves[l]);
            assert_eq!(
                spine1.port(l).peer_in_port,
                PortId((cfg.hosts_per_leaf + 1) as u16)
            );
        }
    }

    #[test]
    fn fat_tree_k32_matches_paper() {
        let ft = FatTreeDims::new(32);
        assert_eq!(ft.n_tors(), 512);
        assert_eq!(ft.n_spines(), 512);
        assert_eq!(ft.n_cores(), 256);
        assert_eq!(ft.n_hosts(), 8192);
        assert_eq!(ft.hosts_per_tor(), 16);
        assert_eq!(ft.max_equal_cost_paths(), 256);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_odd_radix_rejected() {
        FatTreeDims::new(3);
    }
}
