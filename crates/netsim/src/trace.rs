//! Fabric-wide statistics aggregation and packet capture.
//!
//! [`fabric_summary`] collects per-switch counters into a
//! [`FabricSummary`] after a run — the raw material for the
//! drop/mark/block columns of the experiment reports.
//!
//! [`RingTap`] is a bounded packet-capture buffer a test or debugging
//! session can attach to any switch ([`Switch::set_tap`]): every
//! forwarded packet is recorded (time, 5-tuple summary, ingress/egress
//! ports), oldest-first eviction. Think `tcpdump -c N` on one switch.

use crate::packet::{Packet, PacketKind};
use crate::switch::Switch;
use crate::types::{NodeId, PortId};
use crate::world::World;
use simcore::time::Nanos;
use std::collections::VecDeque;

/// One captured forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapRecord {
    /// When the switch forwarded the packet.
    pub at: Nanos,
    /// Connection.
    pub qp: crate::types::QpId,
    /// PSN for data packets, the carried ePSN for ACK/NACK, 0 otherwise.
    pub seq: u32,
    /// Compact packet-kind label.
    pub kind: &'static str,
    /// Ingress port.
    pub in_port: PortId,
    /// Chosen egress port.
    pub egress: PortId,
}

/// Why a switch dropped a packet (one entry per [`DropRecord`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Shared buffer exhausted.
    Buffer,
    /// No route for the destination.
    NoRoute,
    /// Targeted `(qp, psn)` loss injection.
    Targeted,
    /// Random per-port loss injection.
    Injected,
    /// Egress port administratively down (link-failure blackhole).
    PortDown,
    /// Reverse-path (ACK/NACK/CNP) corruption loss injection.
    ReverseCorrupt,
}

/// One dropped packet, as recorded in a switch's always-on drop log.
///
/// The log is the ground truth the conformance oracle checks loss
/// recovery and packet conservation against: every drop of any cause
/// appends exactly one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRecord {
    /// When the packet was dropped.
    pub at: Nanos,
    /// Connection.
    pub qp: crate::types::QpId,
    /// PSN for data packets, carried ePSN for ACK/NACK, 0 otherwise.
    pub psn: u32,
    /// Whether the dropped packet was a data packet.
    pub data: bool,
    /// Why it was dropped.
    pub cause: DropCause,
}

/// Observer invoked for every packet a switch forwards.
pub trait PacketTap {
    /// `pkt` is about to leave via `egress` after arriving on `in_port`.
    fn on_forward(&mut self, at: Nanos, pkt: &Packet, in_port: PortId, egress: PortId);

    /// Downcast support for post-run extraction.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A bounded capture buffer (oldest records evicted first).
#[derive(Debug)]
pub struct RingTap {
    records: VecDeque<TapRecord>,
    capacity: usize,
    /// Total packets observed (including evicted ones).
    pub total_seen: u64,
}

impl RingTap {
    /// A tap holding at most `capacity` records.
    pub fn new(capacity: usize) -> RingTap {
        RingTap {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            total_seen: 0,
        }
    }

    /// The captured records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TapRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl PacketTap for RingTap {
    fn on_forward(&mut self, at: Nanos, pkt: &Packet, in_port: PortId, egress: PortId) {
        self.total_seen += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        let seq = match pkt.kind {
            PacketKind::Data { psn, .. } => psn,
            PacketKind::Ack { epsn, .. } | PacketKind::Nack { epsn, .. } => epsn,
            _ => 0,
        };
        self.records.push_back(TapRecord {
            at,
            qp: pkt.qp,
            seq,
            kind: pkt.kind.label(),
            in_port,
            egress,
        });
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Aggregated counters across a set of switches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricSummary {
    /// Packets received by all switches.
    pub rx_packets: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Drops due to full shared buffers.
    pub drops_buffer: u64,
    /// Drops from targeted loss injection.
    pub drops_targeted: u64,
    /// Drops due to missing routes (should be zero in healthy runs).
    pub drops_no_route: u64,
    /// Data packets ECN-marked.
    pub ecn_marked: u64,
    /// Reverse-direction packets blocked by ToR hooks (invalid NACKs).
    pub hook_blocked: u64,
    /// Packets originated by ToR hooks (compensated NACKs).
    pub hook_emitted: u64,
    /// Peak shared-buffer usage over all switches, in bytes.
    pub peak_buffer_bytes: u64,
}

impl FabricSummary {
    /// Total packet drops of any cause.
    pub fn total_drops(&self) -> u64 {
        self.drops_buffer + self.drops_targeted + self.drops_no_route
    }
}

/// Aggregate counters from the given switches.
pub fn fabric_summary(world: &World, switches: &[NodeId]) -> FabricSummary {
    let mut sum = FabricSummary::default();
    for &id in switches {
        let Some(sw) = world.get::<Switch>(id) else {
            continue;
        };
        sum.rx_packets += sw.stats.rx_packets;
        sum.forwarded += sw.stats.forwarded;
        sum.drops_buffer += sw.stats.drops_buffer;
        sum.drops_targeted += sw.stats.drops_targeted;
        sum.drops_no_route += sw.stats.drops_no_route;
        sum.hook_blocked += sw.stats.hook_blocked;
        sum.hook_emitted += sw.stats.hook_emitted;
        sum.peak_buffer_bytes = sum.peak_buffer_bytes.max(sw.buffer().peak_used);
        for p in 0..sw.num_ports() {
            sum.ecn_marked += sw.port(p).stats.ecn_marked;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_leaf_spine, LeafSpineConfig};

    #[test]
    fn summary_over_idle_fabric_is_zero() {
        let plan = build_leaf_spine(&LeafSpineConfig::motivation());
        let all: Vec<NodeId> = plan
            .leaves
            .iter()
            .chain(plan.spines.iter())
            .copied()
            .collect();
        let s = fabric_summary(&plan.world, &all);
        assert_eq!(s, FabricSummary::default());
        assert_eq!(s.total_drops(), 0);
    }

    #[test]
    fn ring_tap_captures_and_evicts() {
        use crate::packet::Packet;
        use crate::types::{HostId, QpId};
        let mut tap = RingTap::new(3);
        assert!(tap.is_empty());
        for psn in 0..5u32 {
            let pkt = Packet::data(QpId(1), HostId(0), HostId(1), 7, psn, 0, false, 100, false);
            tap.on_forward(Nanos(psn as u64), &pkt, PortId(0), PortId(2));
        }
        assert_eq!(tap.total_seen, 5);
        assert_eq!(tap.len(), 3);
        let seqs: Vec<u32> = tap.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted");
        assert!(tap
            .records()
            .all(|r| r.kind == "DATA" && r.egress == PortId(2)));
    }

    #[test]
    fn tap_on_live_switch_sees_forwarded_traffic() {
        use crate::event::Event;
        use crate::packet::Packet;
        use crate::port::{EgressPort, LinkSpec};
        use crate::switch::{RouteEntry, Switch, SwitchConfig};
        use crate::types::{HostId, QpId};
        use crate::world::{Ctx, Entity};

        struct Sink;
        impl Entity for Sink {
            fn handle(&mut self, _ev: Event, _ctx: &mut Ctx<'_>) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let mut w = World::new();
        let sink = w.add(Box::new(Sink));
        let mut sw = Switch::new(&SwitchConfig::default());
        sw.add_port(
            EgressPort::new(sink, PortId(0), LinkSpec::gbps(100, 1)),
            true,
        );
        sw.set_route(HostId(1), RouteEntry::Port(0));
        sw.set_tap(Box::new(RingTap::new(16)));
        let swid = w.add(Box::new(sw));
        for psn in 0..4u32 {
            let pkt = Packet::data(QpId(9), HostId(0), HostId(1), 7, psn, 0, false, 100, false);
            w.seed_event(
                Nanos(psn as u64),
                swid,
                Event::Packet {
                    pkt,
                    in_port: PortId(5),
                },
            );
        }
        w.run();
        let sw: &Switch = w.get(swid).unwrap();
        let tap = sw
            .tap()
            .unwrap()
            .as_any()
            .downcast_ref::<RingTap>()
            .unwrap();
        assert_eq!(tap.total_seen, 4);
        assert!(tap.records().all(|r| r.in_port == PortId(5)));
    }

    #[test]
    fn missing_entities_are_skipped() {
        let plan = build_leaf_spine(&LeafSpineConfig::motivation());
        // Host slots are reserved but empty; including them must not panic.
        let mut ids: Vec<NodeId> = (0..plan.world.len() as u32).map(NodeId).collect();
        ids.push(NodeId(9999)); // out of range: also skipped
        let s = fabric_summary(&plan.world, &ids);
        assert_eq!(s.total_drops(), 0);
    }
}
