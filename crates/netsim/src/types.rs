//! Identifier newtypes shared across the simulator.
//!
//! Hosts, switches and the workload driver are all *entities* addressed by
//! [`NodeId`]. Hosts additionally have a dense [`HostId`] used for routing
//! tables and as the synthetic IP address. Reliable connections (RDMA queue
//! pairs) are addressed by a globally unique [`QpId`].

use core::fmt;

/// Index of an entity (host NIC, switch, driver) in the [`crate::World`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense host index; doubles as the host's synthetic IP address for
/// ECMP hashing and routing-table lookup.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

impl HostId {
    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A port index within one entity. Switch radix in this repo is ≤ 64k.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u16);

impl PortId {
    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Globally unique reliable-connection (queue pair) identifier.
///
/// Real RoCE QPs are identified by a (GIDs, QPN) tuple of about 13 bytes —
/// the figure the §4 memory model charges per flow-table entry. The
/// simulator uses a dense `u32` and keeps the 13-byte accounting in
/// `themis_core::memory`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QpId(pub u32);

impl QpId {
    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for QpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(format!("{}", HostId(7)), "host7");
        assert_eq!(format!("{}", QpId(9)), "qp9");
        assert_eq!(PortId(4).index(), 4);
    }
}
