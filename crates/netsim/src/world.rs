//! Entity registry and event dispatch.
//!
//! A [`World`] owns every simulated component (switches, NICs, workload
//! drivers) behind the [`Entity`] trait and a [`simcore::Engine`] that
//! orders their events. Entities never hold references to each other —
//! all interaction flows through scheduled events — which keeps ownership
//! simple and the simulation deterministic.
//!
//! ## Node-id convention
//!
//! Host NICs occupy entity slots `0..n_hosts`, so `HostId(h)` lives at
//! `NodeId(h)`. Topology builders rely on this to route packets and oracle
//! notifications to hosts without a lookup table; [`World::reserve`] hands
//! out ids in order, and the builders assert the convention holds.

use crate::event::{ControlMsg, Event, Routed};
use crate::packet::Packet;
use crate::types::{NodeId, PortId};
use simcore::engine::{Engine, StopReason};
use simcore::time::{Nanos, TimeDelta};
use std::any::Any;

/// A simulated component: switch, NIC, or workload driver.
pub trait Entity: Any {
    /// Handle one event. `ctx` allows scheduling follow-up events.
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>);

    /// Downcast support (stats collection, test inspection).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Scheduling context handed to an entity while it processes an event.
pub struct Ctx<'a> {
    /// Id of the entity currently handling the event.
    pub self_id: NodeId,
    now: Nanos,
    engine: &'a mut Engine<Routed>,
}

impl<'a> Ctx<'a> {
    /// A context for driving components directly in unit tests, outside
    /// the [`World`] dispatch loop.
    pub fn for_tests(self_id: NodeId, now: Nanos, engine: &'a mut Engine<Routed>) -> Ctx<'a> {
        Ctx {
            self_id,
            now,
            engine,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Deliver `pkt` to `to` (arriving on `in_port`) after `delay`.
    #[inline]
    pub fn send_packet(&mut self, to: NodeId, in_port: PortId, pkt: Packet, delay: TimeDelta) {
        self.engine.schedule_in(
            delay,
            Routed {
                node: to,
                ev: Event::Packet { pkt, in_port },
            },
        );
    }

    /// Schedule a TxDone for one of the caller's own ports after `delay`.
    #[inline]
    pub fn tx_done_in(&mut self, delay: TimeDelta, port: PortId) {
        let node = self.self_id;
        self.engine.schedule_in(
            delay,
            Routed {
                node,
                ev: Event::TxDone { port },
            },
        );
    }

    /// Arm a timer on the caller itself.
    #[inline]
    pub fn timer_in(&mut self, delay: TimeDelta, token: u64) {
        let node = self.self_id;
        self.engine.schedule_in(
            delay,
            Routed {
                node,
                ev: Event::Timer { token },
            },
        );
    }

    /// Deliver a PFC pause/resume frame to `to` (arriving for its port
    /// `in_port`) after the link latency `delay`.
    #[inline]
    pub fn send_pfc(&mut self, to: NodeId, in_port: PortId, pause: bool, delay: TimeDelta) {
        self.engine.schedule_in(
            delay,
            Routed {
                node: to,
                ev: Event::Pfc { in_port, pause },
            },
        );
    }

    /// Deliver a control message to `to` after `delay`.
    #[inline]
    pub fn control_in(&mut self, delay: TimeDelta, to: NodeId, msg: ControlMsg) {
        self.engine.schedule_in(
            delay,
            Routed {
                node: to,
                ev: Event::Control(msg),
            },
        );
    }

    /// Deliver a control message to `to` at the current instant
    /// (ordered after already-pending events at this time).
    #[inline]
    pub fn control(&mut self, to: NodeId, msg: ControlMsg) {
        self.control_in(TimeDelta::ZERO, to, msg);
    }
}

/// The simulation world: all entities plus the event engine.
pub struct World {
    /// The discrete-event engine. Exposed for horizon / budget tuning.
    pub engine: Engine<Routed>,
    slots: Vec<Option<Box<dyn Entity>>>,
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl World {
    /// An empty world at time zero.
    pub fn new() -> World {
        World {
            engine: Engine::new(),
            slots: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.engine.now()
    }

    /// Number of entity slots (reserved or installed).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the world has no entities.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Add an entity, returning its id.
    pub fn add(&mut self, e: Box<dyn Entity>) -> NodeId {
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(Some(e));
        id
    }

    /// Reserve an empty slot (e.g. for a host NIC built later).
    pub fn reserve(&mut self) -> NodeId {
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(None);
        id
    }

    /// Install an entity into a previously reserved slot.
    ///
    /// # Panics
    /// Panics if the slot is already occupied — that is a wiring bug.
    pub fn install(&mut self, id: NodeId, e: Box<dyn Entity>) {
        let slot = &mut self.slots[id.index()];
        assert!(slot.is_none(), "slot {id} already occupied");
        *slot = Some(e);
    }

    /// Immutable typed access to an entity.
    pub fn get<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.slots
            .get(id.index())?
            .as_deref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable typed access to an entity.
    pub fn get_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.slots
            .get_mut(id.index())?
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Iterate over installed entities.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &dyn Entity)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|e| (NodeId(i as u32), e)))
    }

    /// Schedule an initial event before running.
    pub fn seed_event(&mut self, at: Nanos, node: NodeId, ev: Event) {
        self.engine.schedule_at(at, Routed { node, ev });
    }

    /// Run until the event queue drains, the horizon passes, or the event
    /// budget is exhausted.
    pub fn run(&mut self) -> StopReason {
        loop {
            let Some(scheduled) = self.engine.step() else {
                return if self.engine.pending() == 0 {
                    StopReason::QueueEmpty
                } else if self.engine.dispatched() >= self.engine.max_events {
                    StopReason::EventBudgetExhausted
                } else {
                    StopReason::HorizonReached
                };
            };
            let Routed { node, ev } = scheduled.payload;
            let mut entity = self.slots[node.index()]
                .take()
                .unwrap_or_else(|| panic!("event for missing entity {node}"));
            let mut ctx = Ctx {
                self_id: node,
                now: self.engine.now(),
                engine: &mut self.engine,
            };
            entity.handle(ev, &mut ctx);
            self.slots[node.index()] = Some(entity);
        }
    }

    /// Run with a time horizon.
    pub fn run_until(&mut self, horizon: Nanos) -> StopReason {
        self.engine.horizon = horizon;
        self.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::types::{HostId, QpId};

    /// A test entity that counts events and ping-pongs a packet `n` times.
    struct PingPong {
        peer: NodeId,
        remaining: u32,
        received: u32,
    }

    impl Entity for PingPong {
        fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            if let Event::Packet { pkt, .. } = ev {
                self.received += 1;
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send_packet(self.peer, PortId(0), pkt, TimeDelta::from_micros(1));
                }
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn ping_pong_terminates_and_counts() {
        let mut w = World::new();
        let a = w.reserve();
        let b = w.reserve();
        w.install(
            a,
            Box::new(PingPong {
                peer: b,
                remaining: 5,
                received: 0,
            }),
        );
        w.install(
            b,
            Box::new(PingPong {
                peer: a,
                remaining: 5,
                received: 0,
            }),
        );
        let pkt = Packet::cnp(QpId(0), HostId(0), HostId(1), 1);
        w.seed_event(
            Nanos::ZERO,
            a,
            Event::Packet {
                pkt,
                in_port: PortId(0),
            },
        );
        let reason = w.run();
        assert_eq!(reason, StopReason::QueueEmpty);
        let ea: &PingPong = w.get(a).unwrap();
        let eb: &PingPong = w.get(b).unwrap();
        // a receives the seed + 5 returns from b minus... total exchanges:
        // a(seed) -> b -> a -> b ... each side forwards up to 5 times.
        assert_eq!(ea.received + eb.received, 11);
        // 10 forwards at 1us each.
        assert_eq!(w.now(), Nanos::from_micros(10));
    }

    #[test]
    fn timers_address_self() {
        struct T {
            fired: Vec<u64>,
        }
        impl Entity for T {
            fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
                match ev {
                    Event::Timer { token } => {
                        self.fired.push(token);
                        if token < 3 {
                            ctx.timer_in(TimeDelta::from_micros(1), token + 1);
                        }
                    }
                    _ => panic!("unexpected event"),
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut w = World::new();
        let id = w.add(Box::new(T { fired: vec![] }));
        w.seed_event(Nanos::ZERO, id, Event::Timer { token: 0 });
        w.run();
        let t: &T = w.get(id).unwrap();
        assert_eq!(t.fired, vec![0, 1, 2, 3]);
    }

    #[test]
    fn horizon_stops_the_world() {
        struct Forever;
        impl Entity for Forever {
            fn handle(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
                ctx.timer_in(TimeDelta::from_micros(10), 0);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut w = World::new();
        let id = w.add(Box::new(Forever));
        w.seed_event(Nanos::ZERO, id, Event::Timer { token: 0 });
        let reason = w.run_until(Nanos::from_micros(100));
        assert_eq!(reason, StopReason::HorizonReached);
        assert!(w.now() <= Nanos::from_micros(100));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_install_panics() {
        let mut w = World::new();
        let id = w.add(Box::new(PingPong {
            peer: NodeId(0),
            remaining: 0,
            received: 0,
        }));
        w.install(
            id,
            Box::new(PingPong {
                peer: NodeId(0),
                remaining: 0,
                received: 0,
            }),
        );
    }

    #[test]
    fn typed_access_checks_type() {
        let mut w = World::new();
        let id = w.add(Box::new(PingPong {
            peer: NodeId(0),
            remaining: 0,
            received: 0,
        }));
        assert!(w.get::<PingPong>(id).is_some());
        struct Other;
        impl Entity for Other {
            fn handle(&mut self, _: Event, _: &mut Ctx<'_>) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        assert!(w.get::<Other>(id).is_none());
    }
}
