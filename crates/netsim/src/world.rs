//! Entity registry and event dispatch.
//!
//! A [`World`] owns every simulated component (switches, NICs, workload
//! drivers) behind the [`Entity`] trait and a [`simcore::Engine`] that
//! orders their events. Entities never hold references to each other —
//! all interaction flows through scheduled events — which keeps ownership
//! simple and the simulation deterministic.
//!
//! ## Node-id convention
//!
//! Host NICs occupy entity slots `0..n_hosts`, so `HostId(h)` lives at
//! `NodeId(h)`. Topology builders rely on this to route packets and oracle
//! notifications to hosts without a lookup table; [`World::reserve`] hands
//! out ids in order, and the builders assert the convention holds.
//!
//! ## Canonical event order
//!
//! Every event carries a `(time, seq, lane)` key: `lane` is the entity
//! that scheduled it and `seq` a per-lane Lamport counter bumped past the
//! key of the event being handled. Dispatch strictly follows this key
//! order, which is *independent of which engine an event was pushed
//! into* — the property that lets `World::run_sharded` partition the
//! world across threads ([`ShardPlan`]) and still replay the exact serial
//! schedule, bit for bit.

use crate::event::{ControlMsg, Event, Routed};
use crate::packet::Packet;
use crate::types::{NodeId, PortId};
use simcore::engine::{Engine, StopReason};
use simcore::event::Scheduled;
use simcore::time::{Nanos, TimeDelta};
use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Delivery latency of the "control plane" edges ([`Ctx::control`]):
/// workload-driver commands to NICs, NIC completion notifications back to
/// the driver, and oracle loss notifications. A real control plane (PCIe
/// doorbells, driver queues) is never literally instantaneous; modelling
/// it as a small fixed latency also gives every cross-entity edge a
/// nonzero delay, which is exactly the lookahead a conservative parallel
/// engine needs (see [`ShardPlan::lookahead`]).
pub const CONTROL_PLANE_LATENCY: TimeDelta = TimeDelta(500);

/// The `lane` used for events seeded from outside the dispatch loop
/// ([`World::seed_event`]); distinct from every entity lane so seed keys
/// can never collide with entity-scheduled keys.
pub const SEED_LANE: u32 = u32::MAX;

/// A simulated component: switch, NIC, or workload driver.
pub trait Entity: Any {
    /// Handle one event. `ctx` allows scheduling follow-up events.
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>);

    /// Downcast support (stats collection, test inspection).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Where a [`Ctx`] routes the events an entity schedules.
enum SchedHandle<'a> {
    /// Serial run: everything lands in the one engine.
    Serial(&'a mut Engine<Routed>),
    /// Sharded run: local events land in this shard's engine, events for
    /// entities owned by another shard are staged in a worker-local
    /// per-destination buffer (`stage[dst]`), flushed into the shared
    /// outboxes once per window so the hot path never takes a lock.
    Shard {
        engine: &'a mut Engine<Routed>,
        owner: &'a [u16],
        me: u16,
        stage: &'a mut [Vec<Scheduled<Routed>>],
    },
}

/// Scheduling context handed to an entity while it processes an event.
pub struct Ctx<'a> {
    /// Id of the entity currently handling the event.
    pub self_id: NodeId,
    now: Nanos,
    /// Per-lane Lamport counter: seeded from
    /// `max(lane_seq[self], handled.seq + 1)` so every key scheduled here
    /// strictly exceeds the key being handled; written back by the
    /// dispatch loop afterwards.
    lane_seq: u64,
    sched: SchedHandle<'a>,
}

impl<'a> Ctx<'a> {
    /// A context for driving components directly in unit tests, outside
    /// the [`World`] dispatch loop.
    pub fn for_tests(self_id: NodeId, now: Nanos, engine: &'a mut Engine<Routed>) -> Ctx<'a> {
        Ctx {
            self_id,
            now,
            lane_seq: 0,
            sched: SchedHandle::Serial(engine),
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `ev` for `to` after `delay`, keyed with this lane's next
    /// Lamport sequence number. In a sharded run, events for entities on
    /// another shard divert to that shard's inbox.
    #[inline]
    fn schedule(&mut self, delay: TimeDelta, to: NodeId, ev: Event) {
        let at = self.now + delay;
        let seq = self.lane_seq;
        self.lane_seq += 1;
        let lane = self.self_id.0;
        let payload = Routed { node: to, ev };
        match &mut self.sched {
            SchedHandle::Serial(engine) => engine.schedule_keyed(at, seq, lane, payload),
            SchedHandle::Shard {
                engine,
                owner,
                me,
                stage,
            } => {
                let dest = owner[to.index()];
                if dest == *me {
                    engine.schedule_keyed(at, seq, lane, payload);
                } else {
                    stage[dest as usize].push(Scheduled {
                        at,
                        seq,
                        lane,
                        payload,
                    });
                }
            }
        }
    }

    /// Deliver `pkt` to `to` (arriving on `in_port`) after `delay`.
    #[inline]
    pub fn send_packet(&mut self, to: NodeId, in_port: PortId, pkt: Packet, delay: TimeDelta) {
        self.schedule(delay, to, Event::Packet { pkt, in_port });
    }

    /// Schedule a TxDone for one of the caller's own ports after `delay`.
    #[inline]
    pub fn tx_done_in(&mut self, delay: TimeDelta, port: PortId) {
        let node = self.self_id;
        self.schedule(delay, node, Event::TxDone { port });
    }

    /// Arm a timer on the caller itself.
    #[inline]
    pub fn timer_in(&mut self, delay: TimeDelta, token: u64) {
        let node = self.self_id;
        self.schedule(delay, node, Event::Timer { token });
    }

    /// Deliver a PFC pause/resume frame to `to` (arriving for its port
    /// `in_port`) after the link latency `delay`.
    #[inline]
    pub fn send_pfc(&mut self, to: NodeId, in_port: PortId, pause: bool, delay: TimeDelta) {
        self.schedule(delay, to, Event::Pfc { in_port, pause });
    }

    /// Deliver a control message to `to` after `delay`.
    #[inline]
    pub fn control_in(&mut self, delay: TimeDelta, to: NodeId, msg: ControlMsg) {
        self.schedule(delay, to, Event::Control(msg));
    }

    /// Deliver a control message to `to` over the control plane, i.e.
    /// after [`CONTROL_PLANE_LATENCY`].
    #[inline]
    pub fn control(&mut self, to: NodeId, msg: ControlMsg) {
        self.control_in(CONTROL_PLANE_LATENCY, to, msg);
    }
}

/// One lookahead-safety violation observed by the sharded engine: a
/// cross-shard event arrived with a timestamp below the window barrier
/// its receiver had already dispatched through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookaheadViolation {
    /// Timestamp of the late event.
    pub at_ns: u64,
    /// The receiver's window barrier it should have cleared
    /// (`min_k(next_k + reach[k][receiver])`).
    pub window_end_ns: u64,
    /// Shard that sent the event.
    pub from_shard: u16,
    /// Shard that should have received it earlier.
    pub to_shard: u16,
}

/// Partition description for `World::run_sharded`.
///
/// `owner[i]` names the shard that owns entity slot `i`; each shard runs
/// on its own thread with its own engine, synchronized by conservative
/// time windows of width [`ShardPlan::lookahead`].
pub struct ShardPlan {
    /// Shard owning each entity slot (`owner.len() == world.len()`).
    pub owner: Vec<u16>,
    /// Number of shards (threads).
    pub n_shards: usize,
    /// Conservative window width: a lower bound on the delivery latency
    /// of *every* cross-shard edge. Partition builders derive it from
    /// `min(link latency, CONTROL_PLANE_LATENCY)` over cut edges;
    /// declaring it larger than the true minimum is unsound and is caught
    /// by the always-on lookahead-safety check. Used as a uniform λ
    /// matrix unless [`Self::set_lookahead_matrix`] installed a sharper
    /// per-pair one.
    pub lookahead: TimeDelta,
    /// Per-pair direct lookahead matrix, row-major `n_shards × n_shards`:
    /// `λ[i * n + j]` lower-bounds the latency of every edge crossing
    /// shard `i` → shard `j` (`u64::MAX` when no such edge exists).
    lookahead_matrix: Option<Vec<u64>>,
    /// Per-shard telemetry attachments `(clock, stamp)`, mirrored into
    /// each shard engine so per-shard sinks stamp records correctly.
    pub telem: Vec<(telemetry::SharedClock, telemetry::SharedStamp)>,
    /// When set, lookahead violations are recorded here and the run
    /// aborts cleanly instead of panicking (used by the property tests to
    /// observe the invariant checker itself).
    pub violations: Option<Arc<Mutex<Vec<LookaheadViolation>>>>,
}

impl ShardPlan {
    /// A plan assigning each entity slot to `owner[slot]`, with no
    /// telemetry attachments.
    ///
    /// # Panics
    /// Panics if an owner is out of range or `lookahead` is zero.
    pub fn new(owner: Vec<u16>, n_shards: usize, lookahead: TimeDelta) -> ShardPlan {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(
            owner.iter().all(|&o| (o as usize) < n_shards),
            "shard owner out of range"
        );
        assert!(
            lookahead.as_nanos() > 0,
            "conservative windows need a positive lookahead"
        );
        ShardPlan {
            owner,
            n_shards,
            lookahead,
            lookahead_matrix: None,
            telem: Vec::new(),
            violations: None,
        }
    }

    /// Install a per-pair direct lookahead matrix (row-major
    /// `n_shards × n_shards` nanoseconds): `λ[i][j]` must lower-bound the
    /// delivery latency of every edge crossing shard `i` → shard `j`;
    /// use `u64::MAX` for pairs with no crossing edge. Sharper than the
    /// uniform [`Self::lookahead`]: each shard's window extends to
    /// `min_k(next_k + reach[k][me])` where `reach` is the min-plus
    /// closure of `λ`, instead of `global_min + uniform_lookahead`.
    ///
    /// # Panics
    /// Panics if the matrix is not `n_shards²` entries or contains a zero
    /// (a zero-latency cross-shard edge admits no conservative window).
    pub fn set_lookahead_matrix(&mut self, matrix: Vec<u64>) {
        assert_eq!(
            matrix.len(),
            self.n_shards * self.n_shards,
            "lookahead matrix must be n_shards x n_shards"
        );
        assert!(
            matrix.iter().all(|&l| l > 0),
            "cross-shard lookahead entries must be positive"
        );
        self.lookahead_matrix = Some(matrix);
    }

    /// The installed per-pair direct lookahead matrix, if any.
    pub fn lookahead_matrix(&self) -> Option<&[u64]> {
        self.lookahead_matrix.as_deref()
    }

    /// The min-plus closure of the effective lookahead matrix: `B[k][i]`
    /// is the smallest total latency of any ≥1-edge path of cross-shard
    /// hops from shard `k` to shard `i` (diagonal = shortest cycle). The
    /// window bound must use this closure rather than the direct matrix:
    /// an idle shard can be woken by a neighbor next round and relay a
    /// low-latency event the round after, so shard `i` may only dispatch
    /// below `min_k(next_k + B[k][i])`.
    fn reachability(&self) -> Vec<u64> {
        let n = self.n_shards;
        let mut b = match &self.lookahead_matrix {
            Some(m) => m.clone(),
            None => vec![self.lookahead.as_nanos(); n * n],
        };
        // Floyd–Warshall in the (min, +) semiring without zeroing the
        // diagonal, which yields min-weight non-empty walks (all entries
        // are positive, so these equal simple paths / simple cycles).
        for via in 0..n {
            for src in 0..n {
                let through = b[src * n + via];
                if through == u64::MAX {
                    continue;
                }
                for dst in 0..n {
                    let cand = through.saturating_add(b[via * n + dst]);
                    if cand < b[src * n + dst] {
                        b[src * n + dst] = cand;
                    }
                }
            }
        }
        b
    }
}

/// One shard's private state while a partitioned run is in flight.
struct ShardState {
    engine: Engine<Routed>,
    slots: Vec<Option<Box<dyn Entity>>>,
    lane_seq: Vec<u64>,
    /// Worker-local cross-shard staging, one buffer per destination
    /// shard; flushed into the shared outboxes once per window.
    stage: Vec<Vec<Scheduled<Routed>>>,
}

/// Wrapper that moves a [`ShardState`] onto a worker thread.
///
/// SAFETY: `ShardState` is not `Send` because entities and the engine's
/// telemetry attachments hold `Rc`/`Cell` handles. Every such handle
/// reachable from one shard's state points either (a) into that same
/// shard — the partition builder gives each shard its own sink, shared
/// only by that shard's entities and engine — or (b) at main-thread
/// clones (e.g. the harness keeps a `Sink` per shard) which are never
/// touched while the workers run: the spawning thread blocks in
/// `thread::scope` until every worker has been joined, and spawn/join
/// establish happens-before edges around each worker's accesses. So no
/// `Rc` count or `Cell` content is ever accessed from two threads
/// without synchronization.
struct ShardCell(ShardState);
unsafe impl Send for ShardCell {}

impl ShardCell {
    /// Unwrap on the worker thread. A method (rather than destructuring
    /// at the capture site) so the closure captures the whole `ShardCell`
    /// — edition-2021 precise capture would otherwise capture the inner,
    /// non-`Send` `ShardState` field directly.
    fn into_inner(self) -> ShardState {
        self.0
    }
}

/// Everything a shard worker shares with its peers.
struct ShardCtx<'a> {
    me: usize,
    n: usize,
    horizon: Nanos,
    /// Min-plus closure of the lookahead matrix
    /// ([`ShardPlan::reachability`]), row-major `n × n`.
    reach: &'a [u64],
    /// Each shard's next-event time (u64::MAX = idle), published before
    /// the window barrier.
    mins: &'a [AtomicU64],
    /// `outboxes[src][dst]`: events scheduled by `src` for entities owned
    /// by `dst`, drained by `dst` at the window boundary.
    outboxes: &'a [Vec<Mutex<Vec<Scheduled<Routed>>>>],
    barrier: &'a Barrier,
    owner: &'a [u16],
    /// Cooperative shutdown flag: set on entity panic or lookahead
    /// violation so every worker leaves the barrier protocol together
    /// (a unilateral panic would deadlock the others at the barrier).
    abort: &'a AtomicBool,
    violations: &'a Mutex<Vec<LookaheadViolation>>,
    panics: &'a Mutex<Vec<Box<dyn Any + Send>>>,
}

/// The simulation world: all entities plus the event engine.
pub struct World {
    /// The discrete-event engine. Exposed for horizon / budget tuning.
    pub engine: Engine<Routed>,
    slots: Vec<Option<Box<dyn Entity>>>,
    /// Per-entity Lamport counters for canonical event keys.
    lane_seq: Vec<u64>,
    /// Insertion counter for [`Self::seed_event`] keys (lane [`SEED_LANE`]).
    seed_seq: u64,
    shard_plan: Option<ShardPlan>,
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl World {
    /// An empty world at time zero.
    pub fn new() -> World {
        World {
            engine: Engine::new(),
            slots: Vec::new(),
            lane_seq: Vec::new(),
            seed_seq: 0,
            shard_plan: None,
        }
    }

    /// Install a partition: subsequent [`Self::run`] / [`Self::run_until`]
    /// calls execute sharded when the plan has more than one shard (and no
    /// event budget is set — budget accounting is inherently serial).
    ///
    /// # Panics
    /// Panics if the plan does not cover every entity slot.
    pub fn set_shard_plan(&mut self, plan: ShardPlan) {
        assert_eq!(
            plan.owner.len(),
            self.slots.len(),
            "shard plan covers {} slots but world has {}",
            plan.owner.len(),
            self.slots.len()
        );
        self.shard_plan = Some(plan);
    }

    /// The installed shard plan, if any (partition inspection / tests).
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard_plan.as_ref()
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.engine.now()
    }

    /// Number of entity slots (reserved or installed).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the world has no entities.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Add an entity, returning its id.
    pub fn add(&mut self, e: Box<dyn Entity>) -> NodeId {
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(Some(e));
        self.lane_seq.push(0);
        id
    }

    /// Reserve an empty slot (e.g. for a host NIC built later).
    pub fn reserve(&mut self) -> NodeId {
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(None);
        self.lane_seq.push(0);
        id
    }

    /// Install an entity into a previously reserved slot.
    ///
    /// # Panics
    /// Panics if the slot is already occupied — that is a wiring bug.
    pub fn install(&mut self, id: NodeId, e: Box<dyn Entity>) {
        let slot = &mut self.slots[id.index()];
        assert!(slot.is_none(), "slot {id} already occupied");
        *slot = Some(e);
    }

    /// Immutable typed access to an entity.
    pub fn get<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.slots
            .get(id.index())?
            .as_deref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable typed access to an entity.
    pub fn get_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.slots
            .get_mut(id.index())?
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Iterate over installed entities.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &dyn Entity)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|e| (NodeId(i as u32), e)))
    }

    /// Schedule an initial event before running, keyed on [`SEED_LANE`]
    /// in installation order so seeds dispatch identically in serial and
    /// sharded runs.
    pub fn seed_event(&mut self, at: Nanos, node: NodeId, ev: Event) {
        let seq = self.seed_seq;
        self.seed_seq += 1;
        self.engine
            .schedule_keyed(at, seq, SEED_LANE, Routed { node, ev });
    }

    /// Run until the event queue drains, the horizon passes, or the event
    /// budget is exhausted.
    ///
    /// Executes sharded when a multi-shard [`ShardPlan`] is installed and
    /// no event budget is set; the result is bit-identical either way.
    pub fn run(&mut self) -> StopReason {
        let sharded = self
            .shard_plan
            .as_ref()
            .is_some_and(|p| p.n_shards > 1 && self.engine.max_events == u64::MAX);
        if sharded {
            return self.run_sharded();
        }
        loop {
            let Some(scheduled) = self.engine.step() else {
                return if self.engine.pending() == 0 {
                    StopReason::QueueEmpty
                } else if self.engine.dispatched() >= self.engine.max_events {
                    StopReason::EventBudgetExhausted
                } else {
                    StopReason::HorizonReached
                };
            };
            let Routed { node, ev } = scheduled.payload;
            let idx = node.index();
            let mut entity = self.slots[idx]
                .take()
                .unwrap_or_else(|| panic!("event for missing entity {node}"));
            let mut ctx = Ctx {
                self_id: node,
                now: self.engine.now(),
                lane_seq: self.lane_seq[idx].max(scheduled.seq + 1),
                sched: SchedHandle::Serial(&mut self.engine),
            };
            entity.handle(ev, &mut ctx);
            self.lane_seq[idx] = ctx.lane_seq;
            self.slots[idx] = Some(entity);
        }
    }

    /// Run with a time horizon.
    pub fn run_until(&mut self, horizon: Nanos) -> StopReason {
        self.engine.horizon = horizon;
        self.run()
    }

    /// Execute the run partitioned across threads per the installed
    /// [`ShardPlan`], using conservative time windows.
    ///
    /// Protocol, per round: every shard publishes its next event time and
    /// meets at a barrier; shard `i` then dispatches its local events
    /// strictly below its own window barrier
    /// `min_k(next_k + reach[k][i])`, where `reach` is the min-plus
    /// closure of the per-pair lookahead matrix (uniform
    /// [`ShardPlan::lookahead`] when no matrix is installed). Cross-shard
    /// sends stage in worker-local buffers, flush to per-destination
    /// outboxes at a second barrier, and are drained by their receiver
    /// (such events provably land at or beyond the receiver's window
    /// barrier; the always-on check here is the lookahead-safety
    /// invariant). Because every event carries its canonical
    /// `(time, seq, lane)` key, the union of all shard dispatches replays
    /// the serial order exactly, independent of window shapes.
    fn run_sharded(&mut self) -> StopReason {
        let plan = self.shard_plan.take().expect("caller checked plan");
        let n = plan.n_shards;
        let horizon = self.engine.horizon;
        let n_slots = self.slots.len();
        assert_eq!(plan.owner.len(), n_slots, "shard plan out of date");

        // Split: each entity, its Lamport counter, and every pending
        // event move to the owning shard's private engine.
        let mut shards: Vec<ShardState> = (0..n)
            .map(|i| {
                let mut engine = self.engine.fork();
                if let Some((clock, stamp)) = plan.telem.get(i) {
                    engine.attach_clock(clock.clone());
                    engine.attach_stamp(stamp.clone());
                }
                ShardState {
                    engine,
                    slots: (0..n_slots).map(|_| None).collect(),
                    lane_seq: self.lane_seq.clone(),
                    stage: (0..n).map(|_| Vec::new()).collect(),
                }
            })
            .collect();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(e) = slot.take() {
                shards[plan.owner[i] as usize].slots[i] = Some(e);
            }
        }
        for ev in self.engine.take_pending() {
            let dest = plan.owner[ev.payload.node.index()] as usize;
            shards[dest].engine.restore(ev);
        }

        let mins: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let outboxes: Vec<Vec<Mutex<Vec<Scheduled<Routed>>>>> = (0..n)
            .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let barrier = Barrier::new(n);
        let abort = AtomicBool::new(false);
        let violation_log: Mutex<Vec<LookaheadViolation>> = Mutex::new(Vec::new());
        let panic_log: Mutex<Vec<Box<dyn Any + Send>>> = Mutex::new(Vec::new());
        let owner: &[u16] = &plan.owner;
        let reach = plan.reachability();

        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .drain(..)
                .enumerate()
                .map(|(me, state)| {
                    let cell = ShardCell(state);
                    let sc = ShardCtx {
                        me,
                        n,
                        horizon,
                        reach: &reach,
                        mins: &mins,
                        outboxes: &outboxes,
                        barrier: &barrier,
                        owner,
                        abort: &abort,
                        violations: &violation_log,
                        panics: &panic_log,
                    };
                    scope.spawn(move || {
                        let mut state = cell.into_inner();
                        shard_worker(&mut state, &sc);
                        ShardCell(state)
                    })
                })
                .collect();
            shards = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(ShardCell(state)) => state,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect();
        });

        // Merge: entities and Lamport counters return to their slots,
        // shard engines fold into the main one (clock to the max,
        // dispatch counts add, leftover events keep their keys).
        for (me, shard) in shards.into_iter().enumerate() {
            for (i, slot) in shard.slots.into_iter().enumerate() {
                if let Some(e) = slot {
                    self.slots[i] = Some(e);
                }
            }
            for (i, seq) in shard.lane_seq.into_iter().enumerate() {
                if plan.owner[i] as usize == me {
                    self.lane_seq[i] = seq;
                }
            }
            self.engine.absorb(shard.engine);
        }

        if let Some(payload) = panic_log
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
        {
            std::panic::resume_unwind(payload);
        }
        let found = violation_log
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        let recording = plan.violations.clone();
        self.shard_plan = Some(plan);
        if !found.is_empty() {
            match recording {
                Some(sink) => sink.lock().expect("violation sink poisoned").extend(found),
                None => {
                    let v = found[0];
                    panic!(
                        "lookahead violation: cross-shard event at {} ns delivered below \
                         window barrier {} ns (shard {} -> shard {})",
                        v.at_ns, v.window_end_ns, v.from_shard, v.to_shard
                    );
                }
            }
        }
        if self.engine.pending() == 0 {
            StopReason::QueueEmpty
        } else {
            StopReason::HorizonReached
        }
    }
}

/// Idle marker in the published-minimum slots.
const IDLE: u64 = u64::MAX;

/// One shard's thread: the conservative window loop described on
/// `World::run_sharded`.
fn shard_worker(state: &mut ShardState, sc: &ShardCtx<'_>) {
    let mut nexts = vec![0u64; sc.n];
    loop {
        let next = state
            .engine
            .next_event_time()
            .map_or(IDLE, |t| t.as_nanos());
        sc.mins[sc.me].store(next, Ordering::SeqCst);
        sc.barrier.wait();
        if sc.abort.load(Ordering::SeqCst) {
            return;
        }
        for (slot, a) in nexts.iter_mut().zip(sc.mins) {
            *slot = a.load(Ordering::SeqCst);
        }
        let m = *nexts.iter().min().expect("at least one shard");
        if m == IDLE || m > sc.horizon.as_nanos() {
            return;
        }
        // This shard's conservative window: any event that can still
        // reach it originates from some shard k's current queue (time
        // >= next_k) and crosses >= 1 cut edges totalling >= reach[k][me]
        // — including k == me via the shortest cycle, covering replies
        // provoked by our own sends. Always > m since reach > 0, so the
        // globally-minimal shard makes progress every round.
        let window_end = nexts
            .iter()
            .enumerate()
            .map(|(k, &t)| t.saturating_add(sc.reach[k * sc.n + sc.me]))
            .min()
            .expect("at least one shard");
        state.engine.horizon = Nanos(window_end - 1).min(sc.horizon);
        let dispatched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch_window(state, sc);
        }));
        if let Err(payload) = dispatched {
            sc.panics.lock().expect("panic log poisoned").push(payload);
            sc.abort.store(true, Ordering::SeqCst);
        }
        state.engine.horizon = sc.horizon;
        // Flush the window's staged cross-shard sends: one lock per
        // destination instead of one per event.
        for (dst, staged) in state.stage.iter_mut().enumerate() {
            if !staged.is_empty() {
                sc.outboxes[sc.me][dst]
                    .lock()
                    .expect("shard outbox poisoned")
                    .append(staged);
            }
        }
        sc.barrier.wait();
        for src in 0..sc.n {
            let mut inbox = sc.outboxes[src][sc.me]
                .lock()
                .expect("shard inbox poisoned");
            for ev in inbox.drain(..) {
                if ev.at.as_nanos() < window_end {
                    // Lookahead-safety invariant: a conservative window
                    // only dispatches up to `window_end` because no
                    // cross-shard event can land before it. Seeing one
                    // means the declared lookahead exceeded the true
                    // minimum cross-shard latency.
                    sc.violations.lock().expect("violation log poisoned").push(
                        LookaheadViolation {
                            at_ns: ev.at.as_nanos(),
                            window_end_ns: window_end,
                            from_shard: src as u16,
                            to_shard: sc.me as u16,
                        },
                    );
                    sc.abort.store(true, Ordering::SeqCst);
                    continue;
                }
                state.engine.restore(ev);
            }
        }
    }
}

/// Dispatch every local event inside the current window.
fn dispatch_window(state: &mut ShardState, sc: &ShardCtx<'_>) {
    let ShardState {
        engine,
        slots,
        lane_seq,
        stage,
    } = state;
    while let Some(scheduled) = engine.step() {
        let Routed { node, ev } = scheduled.payload;
        let idx = node.index();
        let mut entity = slots[idx]
            .take()
            .unwrap_or_else(|| panic!("event for entity {node} missing from shard {}", sc.me));
        let mut ctx = Ctx {
            self_id: node,
            now: engine.now(),
            lane_seq: lane_seq[idx].max(scheduled.seq + 1),
            sched: SchedHandle::Shard {
                engine: &mut *engine,
                owner: sc.owner,
                me: sc.me as u16,
                stage: &mut *stage,
            },
        };
        entity.handle(ev, &mut ctx);
        lane_seq[idx] = ctx.lane_seq;
        slots[idx] = Some(entity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::types::{HostId, QpId};

    /// A test entity that counts events and ping-pongs a packet `n` times.
    struct PingPong {
        peer: NodeId,
        remaining: u32,
        received: u32,
    }

    impl Entity for PingPong {
        fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            if let Event::Packet { pkt, .. } = ev {
                self.received += 1;
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send_packet(self.peer, PortId(0), pkt, TimeDelta::from_micros(1));
                }
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn ping_pong_terminates_and_counts() {
        let mut w = World::new();
        let a = w.reserve();
        let b = w.reserve();
        w.install(
            a,
            Box::new(PingPong {
                peer: b,
                remaining: 5,
                received: 0,
            }),
        );
        w.install(
            b,
            Box::new(PingPong {
                peer: a,
                remaining: 5,
                received: 0,
            }),
        );
        let pkt = Packet::cnp(QpId(0), HostId(0), HostId(1), 1);
        w.seed_event(
            Nanos::ZERO,
            a,
            Event::Packet {
                pkt,
                in_port: PortId(0),
            },
        );
        let reason = w.run();
        assert_eq!(reason, StopReason::QueueEmpty);
        let ea: &PingPong = w.get(a).unwrap();
        let eb: &PingPong = w.get(b).unwrap();
        // a receives the seed + 5 returns from b minus... total exchanges:
        // a(seed) -> b -> a -> b ... each side forwards up to 5 times.
        assert_eq!(ea.received + eb.received, 11);
        // 10 forwards at 1us each.
        assert_eq!(w.now(), Nanos::from_micros(10));
    }

    #[test]
    fn timers_address_self() {
        struct T {
            fired: Vec<u64>,
        }
        impl Entity for T {
            fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
                match ev {
                    Event::Timer { token } => {
                        self.fired.push(token);
                        if token < 3 {
                            ctx.timer_in(TimeDelta::from_micros(1), token + 1);
                        }
                    }
                    _ => panic!("unexpected event"),
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut w = World::new();
        let id = w.add(Box::new(T { fired: vec![] }));
        w.seed_event(Nanos::ZERO, id, Event::Timer { token: 0 });
        w.run();
        let t: &T = w.get(id).unwrap();
        assert_eq!(t.fired, vec![0, 1, 2, 3]);
    }

    #[test]
    fn horizon_stops_the_world() {
        struct Forever;
        impl Entity for Forever {
            fn handle(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
                ctx.timer_in(TimeDelta::from_micros(10), 0);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut w = World::new();
        let id = w.add(Box::new(Forever));
        w.seed_event(Nanos::ZERO, id, Event::Timer { token: 0 });
        let reason = w.run_until(Nanos::from_micros(100));
        assert_eq!(reason, StopReason::HorizonReached);
        assert!(w.now() <= Nanos::from_micros(100));
    }

    fn ping_pong_world(rounds: u32) -> (World, NodeId, NodeId) {
        let mut w = World::new();
        let a = w.reserve();
        let b = w.reserve();
        w.install(
            a,
            Box::new(PingPong {
                peer: b,
                remaining: rounds,
                received: 0,
            }),
        );
        w.install(
            b,
            Box::new(PingPong {
                peer: a,
                remaining: rounds,
                received: 0,
            }),
        );
        let pkt = Packet::cnp(QpId(0), HostId(0), HostId(1), 1);
        w.seed_event(
            Nanos::ZERO,
            a,
            Event::Packet {
                pkt,
                in_port: PortId(0),
            },
        );
        (w, a, b)
    }

    #[test]
    fn sharded_run_matches_serial() {
        let (mut serial, a, b) = ping_pong_world(50);
        serial.run();

        let (mut sharded, _, _) = ping_pong_world(50);
        sharded.set_shard_plan(ShardPlan::new(vec![0, 1], 2, TimeDelta::from_micros(1)));
        let reason = sharded.run();
        assert_eq!(reason, StopReason::QueueEmpty);

        assert_eq!(sharded.now(), serial.now());
        assert_eq!(sharded.engine.dispatched(), serial.engine.dispatched());
        for id in [a, b] {
            let s: &PingPong = serial.get(id).unwrap();
            let p: &PingPong = sharded.get(id).unwrap();
            assert_eq!(s.received, p.received);
        }
    }

    #[test]
    fn per_pair_matrix_matches_serial() {
        let (mut serial, a, b) = ping_pong_world(50);
        serial.run();

        let (mut sharded, _, _) = ping_pong_world(50);
        // Honest direct matrix: 1 us each way, no self-edges.
        let mut plan = ShardPlan::new(vec![0, 1], 2, TimeDelta::from_micros(1));
        plan.set_lookahead_matrix(vec![u64::MAX, 1_000, 1_000, u64::MAX]);
        sharded.set_shard_plan(plan);
        let reason = sharded.run();
        assert_eq!(reason, StopReason::QueueEmpty);

        assert_eq!(sharded.now(), serial.now());
        assert_eq!(sharded.engine.dispatched(), serial.engine.dispatched());
        for id in [a, b] {
            let s: &PingPong = serial.get(id).unwrap();
            let p: &PingPong = sharded.get(id).unwrap();
            assert_eq!(s.received, p.received);
        }
    }

    #[test]
    fn reachability_closes_over_multi_hop_paths() {
        // 3 shards: 0->1 is 5 ns, 1->2 is 5 ns, 0->2 direct is 1000 ns.
        // The closure must discover the 10 ns relay path 0->1->2, and the
        // diagonal must become the shortest cycle through each shard.
        let mut plan = ShardPlan::new(vec![0, 1, 2], 3, TimeDelta(1));
        let x = u64::MAX;
        plan.set_lookahead_matrix(vec![
            x, 5, 1000, //
            x, x, 5, //
            7, x, x,
        ]);
        let b = plan.reachability();
        assert_eq!(b[2], 10, "0->2 must relay through 1");
        assert_eq!(b[0], 17, "cycle 0->1->2->0");
        assert_eq!(b[4], 17, "cycle 1->2->0->1");
        assert_eq!(b[3 + 2], 5, "direct 1->2 survives");
    }

    #[test]
    fn lying_matrix_is_caught() {
        let (mut w, _, _) = ping_pong_world(5);
        // True cross-shard latency is 1 us; declare 5 us pairwise.
        let mut plan = ShardPlan::new(vec![0, 1], 2, TimeDelta::from_micros(1));
        plan.set_lookahead_matrix(vec![u64::MAX, 5_000, 5_000, u64::MAX]);
        let log = Arc::new(Mutex::new(Vec::new()));
        plan.violations = Some(log.clone());
        w.set_shard_plan(plan);
        w.run();
        let found = log.lock().unwrap();
        assert!(!found.is_empty(), "expected a lookahead violation");
        assert!(found.iter().all(|v| v.at_ns < v.window_end_ns));
    }

    #[test]
    fn lying_lookahead_is_caught() {
        let (mut w, _, _) = ping_pong_world(5);
        // True cross-shard latency is 1 us; declare 5 us. The first
        // cross-shard send (at 1 us, window barrier 5 us) must trip the
        // lookahead-safety check.
        let mut plan = ShardPlan::new(vec![0, 1], 2, TimeDelta::from_micros(5));
        let log = Arc::new(Mutex::new(Vec::new()));
        plan.violations = Some(log.clone());
        w.set_shard_plan(plan);
        w.run();
        let found = log.lock().unwrap();
        assert!(!found.is_empty(), "expected a lookahead violation");
        assert!(found.iter().all(|v| v.at_ns < v.window_end_ns));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_install_panics() {
        let mut w = World::new();
        let id = w.add(Box::new(PingPong {
            peer: NodeId(0),
            remaining: 0,
            received: 0,
        }));
        w.install(
            id,
            Box::new(PingPong {
                peer: NodeId(0),
                remaining: 0,
                received: 0,
            }),
        );
    }

    #[test]
    fn typed_access_checks_type() {
        let mut w = World::new();
        let id = w.add(Box::new(PingPong {
            peer: NodeId(0),
            remaining: 0,
            received: 0,
        }));
        assert!(w.get::<PingPong>(id).is_some());
        struct Other;
        impl Entity for Other {
            fn handle(&mut self, _: Event, _: &mut Ctx<'_>) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        assert!(w.get::<Other>(id).is_none());
    }
}
