//! Receiver-side out-of-order bitmap.
//!
//! NIC-SR receivers track packets that arrived ahead of the expected PSN
//! in a bitmap (§2.2). [`OooBitmap`] is a sliding window anchored at the
//! current ePSN: bit `i` says whether `epsn + i` has been received. When
//! the expected packet arrives, [`OooBitmap::advance`] slides the anchor
//! past the contiguous received prefix — this is exactly the RNIC rule
//! "the ePSN advances to the smallest PSN not yet received".

use std::collections::VecDeque;

const WORD_BITS: u64 = 64;

/// Sliding out-of-order reception window.
#[derive(Debug, Clone, Default)]
pub struct OooBitmap {
    /// Bit `i` of the window corresponds to `anchor + i`; bit 0 is the
    /// (by definition un-received) expected PSN itself.
    words: VecDeque<u64>,
    /// Number of bits currently set.
    set_count: usize,
}

impl OooBitmap {
    /// An empty window.
    pub fn new() -> OooBitmap {
        OooBitmap::default()
    }

    /// Number of PSNs marked received ahead of the anchor.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Mark `offset` (distance from the expected PSN) as received.
    /// Returns false if the bit was already set (duplicate arrival).
    ///
    /// `offset` must be ≥ 1: offset 0 is the expected packet, which is
    /// consumed by [`OooBitmap::advance`] instead.
    pub fn set(&mut self, offset: u64) -> bool {
        debug_assert!(offset >= 1, "offset 0 is the expected packet");
        let word = (offset / WORD_BITS) as usize;
        let bit = offset % WORD_BITS;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.set_count += 1;
        true
    }

    /// Whether `offset` is marked received.
    pub fn is_set(&self, offset: u64) -> bool {
        let word = (offset / WORD_BITS) as usize;
        let bit = offset % WORD_BITS;
        self.words.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// The expected packet arrived: consume it plus the contiguous run of
    /// already-received successors. Returns how many PSNs the ePSN
    /// advances by (≥ 1).
    pub fn advance(&mut self) -> u64 {
        // Position 0 (the expected packet itself) counts as received now;
        // find the first hole at offset ≥ 1.
        let mut advanced: u64 = 1;
        loop {
            if !self.is_set(advanced) {
                break;
            }
            advanced += 1;
        }
        self.shift(advanced);
        advanced
    }

    /// Slide the window down by `n` positions.
    fn shift(&mut self, n: u64) {
        // Cheap path: drop whole words.
        let whole_words = (n / WORD_BITS) as usize;
        for _ in 0..whole_words.min(self.words.len()) {
            let w = self.words.pop_front().expect("len checked");
            self.set_count -= w.count_ones() as usize;
        }
        let rem = n % WORD_BITS;
        if rem == 0 || self.words.is_empty() {
            return;
        }
        // Shift the remaining bits down by `rem`.
        let dropped = (self.words[0] & ((1u64 << rem) - 1)).count_ones() as usize;
        self.set_count -= dropped;
        let len = self.words.len();
        for i in 0..len {
            let lo = self.words[i] >> rem;
            let hi = if i + 1 < len {
                self.words[i + 1] << (WORD_BITS - rem)
            } else {
                0
            };
            self.words[i] = lo | hi;
        }
        while self.words.back() == Some(&0) {
            self.words.pop_back();
        }
    }

    /// Reset to empty (connection teardown).
    pub fn clear(&mut self) {
        self.words.clear();
        self.set_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_with_no_ooo_moves_by_one() {
        let mut b = OooBitmap::new();
        assert_eq!(b.advance(), 1);
        assert_eq!(b.set_count(), 0);
    }

    #[test]
    fn advance_consumes_contiguous_run() {
        let mut b = OooBitmap::new();
        // Received psn+1, psn+2, psn+4 out of order.
        assert!(b.set(1));
        assert!(b.set(2));
        assert!(b.set(4));
        assert_eq!(b.set_count(), 3);
        // Expected packet arrives: advance past 0,1,2 -> 3.
        assert_eq!(b.advance(), 3);
        // Window now anchored at old+3: old offset 4 is now offset 1.
        assert!(b.is_set(1));
        assert_eq!(b.set_count(), 1);
        // Next expected (old+3) arrives: consume it and old+4.
        assert_eq!(b.advance(), 2);
        assert_eq!(b.set_count(), 0);
    }

    #[test]
    fn duplicate_set_reports_false() {
        let mut b = OooBitmap::new();
        assert!(b.set(5));
        assert!(!b.set(5));
        assert_eq!(b.set_count(), 1);
    }

    #[test]
    fn large_offsets_cross_words() {
        let mut b = OooBitmap::new();
        for off in [1u64, 63, 64, 65, 127, 128, 1000] {
            assert!(b.set(off));
        }
        assert_eq!(b.set_count(), 7);
        assert!(b.is_set(64));
        assert!(b.is_set(1000));
        assert!(!b.is_set(999));
        // Advance once: consumes offset 0 and 1 only (2 is a hole).
        assert_eq!(b.advance(), 2);
        // Old offsets shift down by 2.
        assert!(b.is_set(61));
        assert!(b.is_set(62));
        assert!(b.is_set(63));
        assert!(b.is_set(125));
        assert!(b.is_set(998));
    }

    #[test]
    fn shift_by_multiple_words() {
        let mut b = OooBitmap::new();
        for off in 1..=200u64 {
            b.set(off);
        }
        // Expected arrives: consume 0..=200 -> advance 201.
        assert_eq!(b.advance(), 201);
        assert_eq!(b.set_count(), 0);
    }

    #[test]
    fn simulated_reorder_stream_matches_reference() {
        // Feed a permuted stream into the bitmap and check the ePSN
        // advance pattern against a simple reference set-based model.
        let mut b = OooBitmap::new();
        let mut epsn: u64 = 0;
        let mut reference: std::collections::BTreeSet<u64> = (0..64u64).collect();
        let order = [3u64, 0, 1, 5, 2, 4, 7, 6, 10, 8, 9, 11];
        let mut ref_epsn = 0u64;
        let mut received = std::collections::BTreeSet::new();
        for psn in order {
            received.insert(psn);
            // Reference: advance ref_epsn through received.
            if psn == ref_epsn {
                while received.contains(&ref_epsn) {
                    ref_epsn += 1;
                }
            }
            // Model under test.
            if psn == epsn {
                epsn += b.advance();
            } else if psn > epsn {
                b.set(psn - epsn);
            }
            assert_eq!(epsn, ref_epsn, "after psn {psn}");
        }
        reference.clear();
    }

    #[test]
    fn clear_resets() {
        let mut b = OooBitmap::new();
        b.set(3);
        b.clear();
        assert_eq!(b.set_count(), 0);
        assert!(!b.is_set(3));
    }
}
