//! NIC and congestion-control configuration.

use crate::reaction::TransportReaction;
use simcore::time::TimeDelta;

/// Which reliable-transport generation the NIC models (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Previous-generation RNICs (CX-4/5): receiver drops out-of-order
    /// packets; sender rewinds to the NACKed ePSN.
    GoBackN,
    /// Current-generation commodity RNICs (CX-6/7, BF3): out-of-order
    /// reception into a bitmap, NACK once per ePSN, selective retransmit.
    /// This is the "NIC-SR" the paper builds on.
    SelectiveRepeat,
    /// The Fig 1d upper bound: selective repeat whose receiver NACKs only
    /// packets the simulator's loss oracle reported as actually dropped,
    /// and whose NACKs never reduce the sending rate.
    IdealOracle,
}

/// DCQCN parameters (Zhu et al., SIGCOMM'15), exposing the paper's
/// evaluation knobs `T_I` (rate-increase timer) and `T_D` (rate-decrease
/// interval).
#[derive(Debug, Clone, Copy)]
pub struct CcConfig {
    /// Master switch; disabled = fixed line rate (Ideal baseline).
    pub enabled: bool,
    /// Rate-increase timer T_I: period of recovery events at the sender.
    pub ti: TimeDelta,
    /// Rate-decrease interval T_D: minimum spacing between rate cuts.
    pub td: TimeDelta,
    /// EWMA gain `g` for the congestion-extent estimate alpha.
    pub g: f64,
    /// Alpha-update timer (55 µs in the DCQCN paper).
    pub alpha_timer: TimeDelta,
    /// Additive-increase step in bits/s.
    pub rai_bps: f64,
    /// Hyper-increase step in bits/s.
    pub rhai_bps: f64,
    /// Number of fast-recovery iterations before additive increase.
    pub fast_recovery_threshold: u32,
    /// Byte counter: every this many transmitted bytes also triggers an
    /// increase event.
    pub byte_counter: u64,
    /// Rate floor in bits/s.
    pub min_rate_bps: f64,
    /// Notification-point minimum CNP spacing per QP (50 µs typical).
    pub cnp_interval: TimeDelta,
    /// Whether a NACK triggers a rate cut — the "unnecessary slow start"
    /// of §2.2. True for commodity NIC-SR; false for the Ideal baseline.
    pub nack_slowdown: bool,
    /// Multiplicative factor applied to the current rate on a NACK cut.
    pub nack_cut_factor: f64,
}

impl CcConfig {
    /// DCQCN with the recommended parameters of HPCC/DCQCN deployments,
    /// scaled to `line_rate_bps`: T_I = 900 µs, T_D = 4 µs (the leftmost
    /// configuration of Fig 5).
    pub fn recommended(line_rate_bps: u64) -> CcConfig {
        CcConfig {
            enabled: true,
            ti: TimeDelta::from_micros(900),
            td: TimeDelta::from_micros(4),
            g: 1.0 / 256.0,
            alpha_timer: TimeDelta::from_micros(55),
            rai_bps: line_rate_bps as f64 / 2000.0,
            rhai_bps: line_rate_bps as f64 / 200.0,
            fast_recovery_threshold: 5,
            byte_counter: 10 * 1024 * 1024,
            min_rate_bps: line_rate_bps as f64 / 1000.0,
            cnp_interval: TimeDelta::from_micros(50),
            nack_slowdown: true,
            nack_cut_factor: 0.5,
        }
    }

    /// The paper's Fig 5 sweep points: `(T_I, T_D)` in microseconds.
    pub fn paper_sweep() -> [(u64, u64); 5] {
        [(900, 4), (300, 4), (10, 4), (10, 50), (10, 200)]
    }

    /// A configuration with explicit `(T_I, T_D)` microsecond values,
    /// other parameters as [`CcConfig::recommended`].
    pub fn with_ti_td(line_rate_bps: u64, ti_us: u64, td_us: u64) -> CcConfig {
        CcConfig {
            ti: TimeDelta::from_micros(ti_us),
            td: TimeDelta::from_micros(td_us),
            ..CcConfig::recommended(line_rate_bps)
        }
    }

    /// Congestion control disabled (fixed line rate, no NACK slowdown).
    pub fn disabled(line_rate_bps: u64) -> CcConfig {
        CcConfig {
            enabled: false,
            nack_slowdown: false,
            ..CcConfig::recommended(line_rate_bps)
        }
    }
}

/// Host NIC configuration.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Payload bytes per full data packet (the paper's MTU row: 1500 B).
    pub mtu_payload: u32,
    /// Reliable-transport generation.
    pub transport: TransportMode,
    /// Send a cumulative ACK after this many in-order arrivals (1 = every
    /// packet). Message-completing and ePSN-jumping arrivals always ACK.
    pub ack_coalescing: u32,
    /// Retransmission timeout: last-resort recovery when no NACK can
    /// arrive (e.g. tail loss, or a blocked NACK that was never
    /// compensated).
    pub rto: TimeDelta,
    /// Line rate of the NIC's port in bits/s.
    pub line_rate_bps: u64,
    /// Congestion-control parameters.
    pub cc: CcConfig,
    /// RNG seed (sport selection etc.).
    pub seed: u64,
    /// Sender entropy + receiver OOO-escalation policies (the scheme
    /// zoo's transport half; commodity NIC-SR by default).
    pub reaction: TransportReaction,
}

impl NicConfig {
    /// NIC-SR + DCQCN defaults at the given line rate.
    pub fn nic_sr(line_rate_bps: u64) -> NicConfig {
        NicConfig {
            mtu_payload: 1500,
            transport: TransportMode::SelectiveRepeat,
            ack_coalescing: 1,
            rto: TimeDelta::from_millis(1),
            line_rate_bps,
            cc: CcConfig::recommended(line_rate_bps),
            seed: 7,
            reaction: TransportReaction::COMMODITY,
        }
    }

    /// The Ideal transport of Fig 1d: oracle-filtered NACKs, fixed rate.
    pub fn ideal(line_rate_bps: u64) -> NicConfig {
        NicConfig {
            transport: TransportMode::IdealOracle,
            cc: CcConfig::disabled(line_rate_bps),
            ..NicConfig::nic_sr(line_rate_bps)
        }
    }

    /// Packets needed for a message of `bytes`.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mtu_payload as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_matches_paper_defaults() {
        let cc = CcConfig::recommended(400_000_000_000);
        assert_eq!(cc.ti, TimeDelta::from_micros(900));
        assert_eq!(cc.td, TimeDelta::from_micros(4));
        assert!(cc.enabled);
        assert!(cc.nack_slowdown);
    }

    #[test]
    fn sweep_matches_figure_5_axis() {
        assert_eq!(
            CcConfig::paper_sweep(),
            [(900, 4), (300, 4), (10, 4), (10, 50), (10, 200)]
        );
    }

    #[test]
    fn with_ti_td_overrides_only_timers() {
        let a = CcConfig::recommended(100_000_000_000);
        let b = CcConfig::with_ti_td(100_000_000_000, 10, 200);
        assert_eq!(b.ti, TimeDelta::from_micros(10));
        assert_eq!(b.td, TimeDelta::from_micros(200));
        assert_eq!(a.g, b.g);
        assert_eq!(a.rai_bps, b.rai_bps);
    }

    #[test]
    fn ideal_disables_slowdowns() {
        let n = NicConfig::ideal(100_000_000_000);
        assert_eq!(n.transport, TransportMode::IdealOracle);
        assert!(!n.cc.enabled);
        assert!(!n.cc.nack_slowdown);
    }

    #[test]
    fn packets_for_rounds_up() {
        let n = NicConfig::nic_sr(100_000_000_000);
        assert_eq!(n.packets_for(1), 1);
        assert_eq!(n.packets_for(1500), 1);
        assert_eq!(n.packets_for(1501), 2);
        assert_eq!(n.packets_for(3000), 2);
        assert_eq!(n.packets_for(0), 1);
    }
}
