//! DCQCN reaction-point state machine (sender side).
//!
//! Implements the rate-control algorithm of Zhu et al. (SIGCOMM'15) as
//! deployed on commodity RNICs, with the two knobs the paper sweeps in
//! Fig 5:
//!
//! * **T_D** (`td`): the *rate-decrease interval* — a cut (whether from a
//!   CNP or a NACK) is applied at most once per T_D.
//! * **T_I** (`ti`): the *rate-increase timer* — every T_I without a cut,
//!   the sender runs one recovery iteration (fast recovery → additive
//!   increase → hyper increase).
//!
//! A **byte counter** provides a second stream of increase events, and an
//! **alpha timer** decays the congestion estimate `alpha` when no CNPs
//! arrive. On commodity NIC-SR, *NACKs also cut the rate* — the paper's
//! "unnecessary slow start" (§2.2) — modeled by [`Dcqcn::on_nack`].

use crate::config::CcConfig;
use simcore::time::Nanos;

/// Per-QP DCQCN reaction-point state.
///
/// ```
/// use rnic::{CcConfig, Dcqcn};
/// use simcore::time::Nanos;
/// const LINE: u64 = 100_000_000_000;
/// let mut cc = Dcqcn::new(CcConfig::recommended(LINE), LINE);
/// assert_eq!(cc.rate_bps(), LINE as f64);
/// cc.on_cnp(Nanos::from_micros(10));       // congestion -> cut
/// assert!(cc.rate_bps() < LINE as f64);
/// for _ in 0..10 {
///     cc.on_increase_timer();              // T_I-paced recovery
/// }
/// assert!(cc.rate_bps() > 0.9 * LINE as f64);
/// ```
#[derive(Debug, Clone)]
pub struct Dcqcn {
    cfg: CcConfig,
    line_rate: f64,
    /// Current sending rate (bits/s).
    rc: f64,
    /// Target rate for recovery (bits/s).
    rt: f64,
    /// Congestion-extent estimate in [0, 1].
    alpha: f64,
    /// Increase events seen from the timer since the last cut.
    timer_events: u32,
    /// Increase events seen from the byte counter since the last cut.
    byte_events: u32,
    /// Bytes transmitted since the last byte-counter event.
    bytes_accum: u64,
    /// Time of the last applied rate cut.
    last_cut: Option<Nanos>,
    /// Whether a CNP arrived since the last alpha-timer tick.
    cnp_since_alpha_tick: bool,
    /// Statistics: cuts applied from CNPs.
    pub cnp_cuts: u64,
    /// Statistics: cuts applied from NACKs ("slow starts").
    pub nack_cuts: u64,
}

impl Dcqcn {
    /// Fresh state at line rate.
    pub fn new(cfg: CcConfig, line_rate_bps: u64) -> Dcqcn {
        let line = line_rate_bps as f64;
        Dcqcn {
            cfg,
            line_rate: line,
            rc: line,
            rt: line,
            alpha: 1.0,
            timer_events: 0,
            byte_events: 0,
            bytes_accum: 0,
            last_cut: None,
            cnp_since_alpha_tick: false,
            cnp_cuts: 0,
            nack_cuts: 0,
        }
    }

    /// Current sending rate in bits/s.
    #[inline]
    pub fn rate_bps(&self) -> f64 {
        if self.cfg.enabled {
            self.rc
        } else {
            self.line_rate
        }
    }

    /// Current alpha (tests / tracing).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether a cut is permitted at `now` (T_D gate).
    fn cut_allowed(&self, now: Nanos) -> bool {
        match self.last_cut {
            None => true,
            Some(t) => now.since(t) >= self.cfg.td,
        }
    }

    fn after_cut(&mut self, now: Nanos) {
        self.rc = self.rc.max(self.cfg.min_rate_bps);
        self.rt = self.rt.max(self.cfg.min_rate_bps);
        self.timer_events = 0;
        self.byte_events = 0;
        self.bytes_accum = 0;
        self.last_cut = Some(now);
    }

    /// A CNP arrived. Returns true if a cut was applied.
    pub fn on_cnp(&mut self, now: Nanos) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        self.cnp_since_alpha_tick = true;
        // Alpha rises on every CNP regardless of the T_D gate.
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
        if !self.cut_allowed(now) {
            return false;
        }
        self.rt = self.rc;
        self.rc *= 1.0 - self.alpha / 2.0;
        self.after_cut(now);
        self.cnp_cuts += 1;
        true
    }

    /// A NACK arrived — commodity NIC-SR treats this as congestion and
    /// slows down (§2.2). Returns true if a cut was applied.
    pub fn on_nack(&mut self, now: Nanos) -> bool {
        if !self.cfg.enabled || !self.cfg.nack_slowdown {
            return false;
        }
        if !self.cut_allowed(now) {
            return false;
        }
        self.rt = self.rc;
        self.rc *= self.cfg.nack_cut_factor;
        self.after_cut(now);
        self.nack_cuts += 1;
        true
    }

    /// Alpha-update timer tick: decay alpha if no CNP arrived since the
    /// previous tick.
    pub fn on_alpha_timer(&mut self) {
        if !self.cfg.enabled {
            return;
        }
        if !self.cnp_since_alpha_tick {
            self.alpha *= 1.0 - self.cfg.g;
        }
        self.cnp_since_alpha_tick = false;
    }

    /// Rate-increase timer (T_I) tick.
    pub fn on_increase_timer(&mut self) {
        if !self.cfg.enabled {
            return;
        }
        self.timer_events += 1;
        self.increase();
    }

    /// Account `bytes` of transmitted data; may trigger byte-counter
    /// increase events.
    pub fn on_bytes_sent(&mut self, bytes: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.bytes_accum += bytes;
        while self.bytes_accum >= self.cfg.byte_counter {
            self.bytes_accum -= self.cfg.byte_counter;
            self.byte_events += 1;
            self.increase();
        }
    }

    /// One recovery iteration: fast recovery until either event counter
    /// passes the threshold, then additive increase, then hyper increase
    /// when both counters pass it.
    fn increase(&mut self) {
        let f = self.cfg.fast_recovery_threshold;
        let timer_past = self.timer_events > f;
        let byte_past = self.byte_events > f;
        if timer_past && byte_past {
            self.rt += self.cfg.rhai_bps;
        } else if timer_past || byte_past {
            self.rt += self.cfg.rai_bps;
        }
        // Fast recovery (and every phase): close half the gap to target.
        self.rt = self.rt.min(self.line_rate);
        self.rc = (self.rt + self.rc) / 2.0;
        self.rc = self.rc.clamp(self.cfg.min_rate_bps, self.line_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::TimeDelta;

    const LINE: u64 = 100_000_000_000;

    fn mk() -> Dcqcn {
        Dcqcn::new(CcConfig::recommended(LINE), LINE)
    }

    #[test]
    fn starts_at_line_rate() {
        let d = mk();
        assert_eq!(d.rate_bps(), LINE as f64);
    }

    #[test]
    fn cnp_cuts_by_half_alpha() {
        let mut d = mk();
        // alpha starts at 1.0, rises slightly on the CNP itself, so the
        // first cut is close to halving.
        assert!(d.on_cnp(Nanos::from_micros(100)));
        let r = d.rate_bps();
        assert!(r < 0.51 * LINE as f64 && r > 0.45 * LINE as f64, "r={r}");
        assert_eq!(d.cnp_cuts, 1);
    }

    #[test]
    fn td_gates_cut_frequency() {
        let mut d = mk(); // td = 4us
        assert!(d.on_cnp(Nanos::from_micros(100)));
        let r1 = d.rate_bps();
        // 1us later: inside T_D, no cut.
        assert!(!d.on_cnp(Nanos::from_micros(101)));
        assert_eq!(d.rate_bps(), r1);
        // 4us later: allowed again.
        assert!(d.on_cnp(Nanos::from_micros(104)));
        assert!(d.rate_bps() < r1);
    }

    #[test]
    fn nack_cut_respects_td_and_factor() {
        let mut d = mk();
        assert!(d.on_nack(Nanos::from_micros(10)));
        assert!((d.rate_bps() - 0.5 * LINE as f64).abs() < 1.0);
        assert!(!d.on_nack(Nanos::from_micros(11)));
        assert_eq!(d.nack_cuts, 1);
    }

    #[test]
    fn nack_slowdown_can_be_disabled() {
        let cfg = CcConfig {
            nack_slowdown: false,
            ..CcConfig::recommended(LINE)
        };
        let mut d = Dcqcn::new(cfg, LINE);
        assert!(!d.on_nack(Nanos::from_micros(10)));
        assert_eq!(d.rate_bps(), LINE as f64);
    }

    #[test]
    fn disabled_cc_never_moves() {
        let mut d = Dcqcn::new(CcConfig::disabled(LINE), LINE);
        d.on_cnp(Nanos::from_micros(5));
        d.on_nack(Nanos::from_micros(50));
        d.on_increase_timer();
        d.on_bytes_sent(1 << 30);
        assert_eq!(d.rate_bps(), LINE as f64);
    }

    #[test]
    fn fast_recovery_halves_gap_to_target() {
        let mut d = mk();
        d.on_cnp(Nanos::from_micros(10));
        let target = d.rt;
        let r0 = d.rc;
        d.on_increase_timer();
        let r1 = d.rc;
        assert!((r1 - (target + r0) / 2.0).abs() < 1.0);
        // Five iterations converge most of the way to target.
        for _ in 0..4 {
            d.on_increase_timer();
        }
        assert!((d.rc - target).abs() / target < 0.05);
    }

    #[test]
    fn additive_then_hyper_increase_raises_target() {
        let mut d = mk();
        // Two spaced cuts bring the target rate well below line rate so
        // increases are observable (rt is clamped at line rate otherwise).
        d.on_cnp(Nanos::from_micros(10));
        d.on_cnp(Nanos::from_micros(20));
        let t0 = d.rt;
        assert!(t0 < LINE as f64);
        // Exceed fast-recovery threshold on the timer path only.
        for _ in 0..6 {
            d.on_increase_timer();
        }
        assert!(d.rt > t0, "additive increase raises rt");
        let before_hyper = d.rt;
        // Now push the byte counter past the threshold too -> hyper.
        d.on_bytes_sent(d.cfg.byte_counter * 7);
        assert!(d.rt >= before_hyper);
        assert!(d.rc <= LINE as f64 + 1.0);
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut d = mk();
        d.on_cnp(Nanos::from_micros(10));
        let a0 = d.alpha();
        d.on_alpha_timer(); // CNP seen since tick -> no decay, flag cleared
        assert_eq!(d.alpha(), a0);
        d.on_alpha_timer(); // no CNP since -> decay
        assert!(d.alpha() < a0);
    }

    #[test]
    fn rate_never_below_floor_nor_above_line() {
        let mut d = mk();
        let mut t = 0u64;
        for _ in 0..200 {
            t += 10;
            d.on_cnp(Nanos::from_micros(t));
        }
        assert!(d.rate_bps() >= d.cfg.min_rate_bps);
        for _ in 0..100_000 {
            d.on_increase_timer();
        }
        assert!(d.rate_bps() <= LINE as f64);
    }

    #[test]
    fn recovery_time_scales_with_ti() {
        // With T_I = 900us, recovering most of a halved rate takes about
        // 5 * 900us of fast recovery; with T_I = 10us it takes ~50us.
        // Here we only verify event-count equivalence: the same number of
        // timer events produces the same rate trajectory regardless of
        // wall spacing (the NIC schedules them at T_I intervals).
        let mut a = mk();
        let mut b = Dcqcn::new(CcConfig::with_ti_td(LINE, 10, 4), LINE);
        a.on_nack(Nanos::from_micros(10));
        b.on_nack(Nanos::from_micros(10));
        for _ in 0..5 {
            a.on_increase_timer();
            b.on_increase_timer();
        }
        assert!((a.rate_bps() - b.rate_bps()).abs() < 1.0);
        let _ = TimeDelta::ZERO;
    }
}
