//! # rnic — commodity RNIC model
//!
//! Models the behaviour of current-generation commodity RNICs
//! (Mellanox CX-6/CX-7 class) that the paper targets (§2.2):
//!
//! * **NIC-SR** ([`config::TransportMode::SelectiveRepeat`]): the receiver
//!   keeps an expected PSN (ePSN) and a bitmap of out-of-order arrivals.
//!   A packet with PSN > ePSN triggers a NACK carrying *only the ePSN*,
//!   **at most once per ePSN value**. The sender retransmits exactly the
//!   ePSN packet — and, crucially for the paper, also *slows down* ("the
//!   unnecessary slow start").
//! * **Go-Back-N** ([`config::TransportMode::GoBackN`]): previous-generation
//!   behaviour (CX-4/5): out-of-order packets are dropped and the sender
//!   rewinds to the ePSN.
//! * **Ideal oracle** ([`config::TransportMode::IdealOracle`]): the Fig 1d
//!   upper bound — NACKs are generated only for packets the simulator
//!   knows were really dropped, and never reduce the rate.
//!
//! Congestion control is DCQCN ([`dcqcn`]) with the paper's (T_I, T_D)
//! knobs. The NIC itself ([`nic::Nic`]) is a [`netsim::world::Entity`]:
//! it owns one port to its ToR, paces each QP at its DCQCN rate, and
//! arbitrates QPs round-robin at line rate.

#![warn(missing_docs)]

pub mod bitmap;
pub mod config;
pub mod dcqcn;
pub mod nic;
pub mod psn;
pub mod qp;
pub mod reaction;
pub mod telem;

pub use config::{CcConfig, NicConfig, TransportMode};
pub use dcqcn::Dcqcn;
pub use nic::Nic;
pub use psn::{extend24, wire_psn};
pub use reaction::{
    EntropyStats, OooReaction, OooReactionKind, OooReactionStats, SenderEntropy, SenderEntropyKind,
    TransportReaction,
};
pub use telem::NicTelem;
