//! The host NIC entity.
//!
//! A [`Nic`] owns one egress port towards its ToR, a set of sender and
//! receiver QPs, and the timer machinery for DCQCN (alpha + rate-increase
//! timers), retransmission timeouts, and rate pacing.
//!
//! ## Arbitration and pacing
//!
//! Each sender QP is paced at its DCQCN rate ([`SendQp::next_allowed`]).
//! Whenever the port is idle the NIC transmits, preferring control packets
//! (ACK/NACK/CNP responses), then data from ready QPs in round-robin
//! order. If no QP is ready but work exists, a wake-up timer is armed at
//! the earliest pacing deadline. The port itself serializes at line rate,
//! so aggregate throughput is capped by the link while per-QP rates follow
//! DCQCN — the same split as real RNIC hardware.

use crate::config::{NicConfig, TransportMode};
use crate::dcqcn::Dcqcn;
use crate::qp::{RecvQp, SendQp, SendTrace};
use netsim::arena::PacketArena;
use netsim::event::{ControlMsg, Event};
use netsim::packet::{Packet, PacketKind};
use netsim::port::EgressPort;
use netsim::types::{HostId, NodeId, PortId, QpId};
use netsim::world::{Ctx, Entity};
use simcore::fx::FxHashMap;
use simcore::rng::Xoshiro256;
use simcore::time::{Nanos, TimeDelta};
use std::collections::VecDeque;

/// Timer token kinds (low 3 bits of the token).
const TIMER_ALPHA: u64 = 0;
const TIMER_INCREASE: u64 = 1;
const TIMER_RTO: u64 = 2;
const TIMER_WAKEUP: u64 = 3;

#[inline]
fn token(kind: u64, qp_idx: usize) -> u64 {
    (qp_idx as u64) << 3 | kind
}

/// NIC-level statistics (beyond per-QP stats).
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Packets received for QPs this NIC does not know.
    pub unknown_qp: u64,
    /// Handshake packets received.
    pub handshakes_rx: u64,
    /// Control packets (ACK/NACK/CNP) transmitted.
    pub ctrl_tx: u64,
    /// Received ACK/NACK/CNP packets discarded by injected receive-path
    /// corruption ([`ControlMsg::SetRxCorruptRate`]).
    pub corrupted_rx: u64,
}

/// A host NIC.
pub struct Nic {
    /// This NIC's host identity.
    pub host: HostId,
    cfg: NicConfig,
    port: EgressPort,
    send_qps: Vec<SendQp>,
    recv_qps: Vec<RecvQp>,
    send_index: FxHashMap<QpId, usize>,
    recv_index: FxHashMap<QpId, usize>,
    alpha_armed: Vec<bool>,
    increase_armed: Vec<bool>,
    driver: Option<NodeId>,
    rr_cursor: usize,
    ctrl_queue: VecDeque<Packet>,
    wakeup_at: Option<Nanos>,
    rng: Xoshiro256,
    rx_corrupt_ppm: u32,
    telem: Option<crate::telem::NicTelem>,
    /// Pool backing the uplink port queue.
    arena: PacketArena,
    /// NIC-level statistics.
    pub stats: NicStats,
}

impl Nic {
    /// A NIC with the given uplink port (towards its ToR or peer).
    pub fn new(host: HostId, cfg: NicConfig, port: EgressPort) -> Nic {
        debug_assert_eq!(
            port.link.bandwidth_bps, cfg.line_rate_bps,
            "NIC line rate must match its access link"
        );
        Nic {
            host,
            cfg,
            port,
            send_qps: Vec::new(),
            recv_qps: Vec::new(),
            send_index: FxHashMap::default(),
            recv_index: FxHashMap::default(),
            alpha_armed: Vec::new(),
            increase_armed: Vec::new(),
            driver: None,
            rr_cursor: 0,
            ctrl_queue: VecDeque::new(),
            wakeup_at: None,
            rng: Xoshiro256::seeded(cfg.seed ^ (host.0 as u64) << 32),
            rx_corrupt_ppm: 0,
            telem: None,
            arena: PacketArena::new(),
            stats: NicStats::default(),
        }
    }

    /// Register the workload driver to receive completion notifications.
    pub fn set_driver(&mut self, driver: NodeId) {
        self.driver = Some(driver);
    }

    /// Install a telemetry handle; NACK/RTO/rate-cut counters, the
    /// out-of-order-gap histogram, and their events report into it.
    pub fn set_telemetry(&mut self, telem: crate::telem::NicTelem) {
        self.telem = Some(telem);
    }

    /// Create the sender half of a connection towards `dst`.
    pub fn create_send_qp(&mut self, qp: QpId, dst: HostId, sport: u16) {
        let cc = Dcqcn::new(self.cfg.cc, self.cfg.line_rate_bps);
        let mut sqp = SendQp::new(
            qp,
            self.host,
            dst,
            sport,
            self.cfg.mtu_payload,
            self.cfg.transport,
            cc,
        );
        if self.cfg.reaction.entropy != crate::reaction::SenderEntropyKind::Fixed {
            // Each QP draws its own deterministic stream, derived from
            // the NIC seed so serial and sharded runs agree.
            let seed = self.cfg.seed ^ 0x5EED_E4780 ^ ((self.host.0 as u64) << 32) ^ qp.0 as u64;
            sqp.set_entropy(self.cfg.reaction.entropy.build(seed));
        }
        self.send_index.insert(qp, self.send_qps.len());
        self.send_qps.push(sqp);
        self.alpha_armed.push(false);
        self.increase_armed.push(false);
    }

    /// Create the receiver half of a connection from `peer`.
    ///
    /// `reverse_sport` is the entropy value stamped on ACK/NACK/CNP
    /// packets flowing back to the sender.
    pub fn create_recv_qp(&mut self, qp: QpId, peer: HostId, reverse_sport: u16) {
        let mut rqp = RecvQp::new(
            qp,
            self.host,
            peer,
            reverse_sport,
            self.cfg.transport,
            self.cfg.ack_coalescing,
            self.cfg.cc.cnp_interval,
        );
        if self.cfg.reaction.ooo != crate::reaction::OooReactionKind::Eager {
            rqp.set_ooo_reaction(self.cfg.reaction.ooo.build());
        }
        self.recv_index.insert(qp, self.recv_qps.len());
        self.recv_qps.push(rqp);
    }

    /// Enable per-flow tracing on a sender QP (Fig 1b/1c series).
    pub fn enable_send_trace(&mut self, qp: QpId, bin: TimeDelta) {
        if let Some(&i) = self.send_index.get(&qp) {
            self.send_qps[i].trace = Some(Box::new(SendTrace::new(bin)));
        }
    }

    /// Sender QP state (stats extraction).
    pub fn send_qp(&self, qp: QpId) -> Option<&SendQp> {
        self.send_index.get(&qp).map(|&i| &self.send_qps[i])
    }

    /// Receiver QP state (stats extraction).
    pub fn recv_qp(&self, qp: QpId) -> Option<&RecvQp> {
        self.recv_index.get(&qp).map(|&i| &self.recv_qps[i])
    }

    /// All sender QPs.
    pub fn send_qps(&self) -> &[SendQp] {
        &self.send_qps
    }

    /// All receiver QPs.
    pub fn recv_qps(&self) -> &[RecvQp] {
        &self.recv_qps
    }

    /// The NIC configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// The uplink egress port (towards the ToR).
    pub fn uplink(&self) -> &EgressPort {
        &self.port
    }

    /// The packet pool backing the uplink port queue.
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    // ------------------------------------------------------------------
    // Sending machinery
    // ------------------------------------------------------------------

    fn try_send(&mut self, ctx: &mut Ctx<'_>) {
        while !self.port.is_busy() && !self.port.is_paused() {
            if let Some(p) = self.ctrl_queue.pop_front() {
                self.stats.ctrl_tx += 1;
                let _ = self
                    .port
                    .enqueue(p, PortId(0), ctx, None, &mut self.rng, &mut self.arena);
                continue;
            }
            let now = ctx.now();
            let n = self.send_qps.len();
            if n == 0 {
                break;
            }
            let mut found = None;
            for k in 0..n {
                let i = (self.rr_cursor + k) % n;
                if self.send_qps[i].ready(now) {
                    found = Some(i);
                    break;
                }
            }
            let Some(i) = found else {
                self.arm_wakeup(ctx);
                break;
            };
            let pkt = self.send_qps[i].next_packet(now);
            if self.send_qps[i].rto_deadline.is_none() {
                self.arm_rto(i, ctx);
            }
            self.rr_cursor = (i + 1) % n;
            let _ = self
                .port
                .enqueue(pkt, PortId(0), ctx, None, &mut self.rng, &mut self.arena);
        }
    }

    fn arm_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let next = self
            .send_qps
            .iter()
            .filter(|q| q.has_work())
            .map(|q| q.next_allowed)
            .min();
        let Some(t) = next else {
            return;
        };
        let t = t.max(Nanos(now.as_nanos() + 1));
        let stale = self.wakeup_at.is_none_or(|w| w <= now || t < w);
        if stale {
            self.wakeup_at = Some(t);
            ctx.timer_in(t - now, token(TIMER_WAKEUP, 0));
        }
    }

    fn arm_rto(&mut self, i: usize, ctx: &mut Ctx<'_>) {
        let deadline = ctx.now() + self.cfg.rto;
        self.send_qps[i].rto_deadline = Some(deadline);
        ctx.timer_in(self.cfg.rto, token(TIMER_RTO, i));
    }

    fn arm_cc_timers(&mut self, i: usize, ctx: &mut Ctx<'_>) {
        if !self.cfg.cc.enabled {
            return;
        }
        if !self.alpha_armed[i] {
            self.alpha_armed[i] = true;
            ctx.timer_in(self.cfg.cc.alpha_timer, token(TIMER_ALPHA, i));
        }
        if !self.increase_armed[i] {
            self.increase_armed[i] = true;
            ctx.timer_in(self.cfg.cc.ti, token(TIMER_INCREASE, i));
        }
    }

    fn qp_active(&self, i: usize) -> bool {
        let q = &self.send_qps[i];
        q.has_work() || q.has_unacked()
    }

    // ------------------------------------------------------------------
    // Receive paths
    // ------------------------------------------------------------------

    fn on_data_packet(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        let PacketKind::Data {
            psn,
            msg_tag,
            last,
            payload,
            ..
        } = pkt.kind
        else {
            unreachable!("on_data_packet called with non-data");
        };
        let Some(&i) = self.recv_index.get(&pkt.qp) else {
            self.stats.unknown_qp += 1;
            return;
        };
        // Remember the entropy this packet travelled on so the ACK it
        // may trigger can echo it (REPS feedback loop).
        self.recv_qps[i].note_data_sport(pkt.udp_sport);
        if let Some(t) = &self.telem {
            // Out-of-order arrival depth: how far ahead of the expected
            // PSN this packet landed (0 for in-order arrivals).
            let epsn = self.recv_qps[i].epsn();
            let ext = crate::psn::extend24(psn, epsn);
            if ext > epsn {
                t.on_ooo_gap(ext - epsn);
            }
        }
        let out = self.recv_qps[i].on_data(psn, msg_tag, last, payload, pkt.ecn_ce, ctx.now());
        for resp in out.responses {
            if let Some(t) = &self.telem {
                if let PacketKind::Nack { epsn, .. } = resp.kind {
                    t.on_nack_issued(resp.qp.0 as u64, epsn as u64);
                }
            }
            self.ctrl_queue.push_back(resp);
        }
        if let Some(driver) = self.driver {
            for tag in out.delivered {
                ctx.control(
                    driver,
                    ControlMsg::MessageDelivered {
                        qp: pkt.qp,
                        msg_tag: tag,
                    },
                );
            }
        }
    }

    /// `echo` carries the ACK-echoed entropy value for ACKs and is
    /// `None` for NACKs.
    fn on_ack_packet(&mut self, qp: QpId, epsn: u32, echo: Option<u16>, ctx: &mut Ctx<'_>) {
        let Some(&i) = self.send_index.get(&qp) else {
            self.stats.unknown_qp += 1;
            return;
        };
        let now = ctx.now();
        let completed = match echo {
            None => {
                let (completed, cut) = self.send_qps[i].on_nack(epsn, now);
                if cut {
                    self.record_rate_cut(i);
                }
                completed
            }
            Some(echo_sport) => {
                self.send_qps[i].on_ack_echo(echo_sport);
                self.send_qps[i].on_ack(epsn)
            }
        };
        // Progress (or explicit loss signal) re-arms the RTO.
        if self.send_qps[i].has_unacked() {
            self.send_qps[i].rto_deadline = Some(now + self.cfg.rto);
        } else {
            self.send_qps[i].rto_deadline = None;
        }
        if let Some(driver) = self.driver {
            for tag in completed {
                ctx.control(driver, ControlMsg::MessageAcked { qp, msg_tag: tag });
            }
        }
        self.arm_cc_timers(i, ctx);
    }

    fn record_rate_cut(&self, i: usize) {
        if let Some(t) = &self.telem {
            let q = &self.send_qps[i];
            t.on_rate_cut(q.qp.0 as u64, (q.cc.rate_bps() / 1e6) as u64);
        }
    }

    fn on_timer(&mut self, tok: u64, ctx: &mut Ctx<'_>) {
        let kind = tok & 0x7;
        let i = (tok >> 3) as usize;
        match kind {
            TIMER_WAKEUP => {
                self.wakeup_at = None;
                self.try_send(ctx);
            }
            TIMER_ALPHA => {
                if i >= self.send_qps.len() {
                    return;
                }
                self.send_qps[i].cc.on_alpha_timer();
                if self.qp_active(i) {
                    ctx.timer_in(self.cfg.cc.alpha_timer, token(TIMER_ALPHA, i));
                } else {
                    self.alpha_armed[i] = false;
                }
            }
            TIMER_INCREASE => {
                if i >= self.send_qps.len() {
                    return;
                }
                self.send_qps[i].cc.on_increase_timer();
                if self.qp_active(i) {
                    ctx.timer_in(self.cfg.cc.ti, token(TIMER_INCREASE, i));
                } else {
                    self.increase_armed[i] = false;
                }
                self.try_send(ctx);
            }
            TIMER_RTO => {
                if i >= self.send_qps.len() {
                    return;
                }
                let now = ctx.now();
                match self.send_qps[i].rto_deadline {
                    None => {}
                    Some(d) if d <= now => {
                        if self.send_qps[i].has_unacked() {
                            self.send_qps[i].on_rto();
                            if let Some(t) = &self.telem {
                                t.on_rto_fired(self.send_qps[i].qp.0 as u64);
                            }
                            self.arm_rto(i, ctx);
                            self.try_send(ctx);
                        } else {
                            self.send_qps[i].rto_deadline = None;
                        }
                    }
                    Some(d) => {
                        // Deadline was pushed out by progress; chase it.
                        ctx.timer_in(d - now, token(TIMER_RTO, i));
                    }
                }
            }
            _ => debug_assert!(false, "unknown timer kind {kind}"),
        }
    }

    fn on_control(&mut self, msg: ControlMsg, ctx: &mut Ctx<'_>) {
        match msg {
            ControlMsg::PostSend { qp, bytes, msg_tag } => {
                let Some(&i) = self.send_index.get(&qp) else {
                    self.stats.unknown_qp += 1;
                    return;
                };
                if let Some(hs) = self.send_qps[i].take_handshake() {
                    self.ctrl_queue.push_back(hs);
                }
                self.send_qps[i].post(bytes, msg_tag);
                self.arm_cc_timers(i, ctx);
                self.try_send(ctx);
            }
            ControlMsg::OracleLoss { qp, psn } => {
                if self.cfg.transport != TransportMode::IdealOracle {
                    return;
                }
                if let Some(&i) = self.recv_index.get(&qp) {
                    if let Some(nack) = self.recv_qps[i].on_oracle_loss(psn) {
                        self.ctrl_queue.push_back(nack);
                        self.try_send(ctx);
                    }
                }
            }
            ControlMsg::MessageDelivered { .. } | ControlMsg::MessageAcked { .. } => {
                debug_assert!(false, "completion notification delivered to a NIC");
            }
            ControlMsg::SetRxCorruptRate { rate_ppm } => {
                self.rx_corrupt_ppm = rate_ppm;
            }
            ControlMsg::TorLinkFailure
            | ControlMsg::TorLinkRecovery { .. }
            | ControlMsg::SetPortDown { .. }
            | ControlMsg::SetPortLossRate { .. }
            | ControlMsg::SetPortExtraDelay { .. }
            | ControlMsg::SetReverseCorruptRate { .. }
            | ControlMsg::SetSprayEnabled { .. } => {
                // Switch-directed notifications; NICs take no action.
            }
        }
    }
}

impl Entity for Nic {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev {
            Event::Packet { pkt, .. } => {
                // Injected receive-path corruption: control packets that
                // fail the (modeled) ICRC check are discarded before any
                // QP processing, exactly as a real RNIC drops them.
                if self.rx_corrupt_ppm > 0
                    && matches!(
                        pkt.kind,
                        PacketKind::Ack { .. } | PacketKind::Nack { .. } | PacketKind::Cnp
                    )
                    && self.rng.next_below(1_000_000) < self.rx_corrupt_ppm as u64
                {
                    self.stats.corrupted_rx += 1;
                    return;
                }
                match pkt.kind {
                    PacketKind::Data { .. } => self.on_data_packet(&pkt, ctx),
                    PacketKind::Ack { epsn, echo_sport } => {
                        self.on_ack_packet(pkt.qp, epsn, Some(echo_sport), ctx)
                    }
                    PacketKind::Nack { epsn, .. } => self.on_ack_packet(pkt.qp, epsn, None, ctx),
                    PacketKind::Cnp => {
                        if let Some(&i) = self.send_index.get(&pkt.qp) {
                            if self.send_qps[i].on_cnp(ctx.now()) {
                                self.record_rate_cut(i);
                            }
                        } else {
                            self.stats.unknown_qp += 1;
                        }
                    }
                    PacketKind::Handshake => {
                        self.stats.handshakes_rx += 1;
                    }
                }
                self.try_send(ctx);
            }
            Event::TxDone { port } => {
                debug_assert_eq!(port, PortId(0), "NIC has a single port");
                let _ = self.port.on_tx_done(PortId(0), ctx, None, &mut self.arena);
                self.try_send(ctx);
            }
            Event::Timer { token } => self.on_timer(token, ctx),
            Event::Control(msg) => self.on_control(msg, ctx),
            Event::Pfc { pause, .. } => {
                // Single-port NIC: the frame always addresses port 0.
                self.port.set_paused(pause, PortId(0), ctx, &mut self.arena);
                if !pause {
                    self.try_send(ctx);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::port::LinkSpec;
    use netsim::world::World;
    use simcore::engine::StopReason;

    const GBPS100: u64 = 100_000_000_000;

    /// Two NICs wired back-to-back (no switch): host 0 at node 0, host 1
    /// at node 1, plus a driver-sink at node 2 recording completions.
    struct Harness {
        world: World,
        a: NodeId,
        b: NodeId,
        driver: NodeId,
    }

    struct DriverSink {
        delivered: Vec<(QpId, u64)>,
        acked: Vec<(QpId, u64)>,
        last_delivery: Nanos,
    }

    impl Entity for DriverSink {
        fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            if let Event::Control(msg) = ev {
                match msg {
                    ControlMsg::MessageDelivered { qp, msg_tag } => {
                        self.delivered.push((qp, msg_tag));
                        self.last_delivery = ctx.now();
                    }
                    ControlMsg::MessageAcked { qp, msg_tag } => self.acked.push((qp, msg_tag)),
                    _ => {}
                }
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn build(cfg_a: NicConfig, cfg_b: NicConfig) -> Harness {
        let mut world = World::new();
        let a = world.reserve();
        let b = world.reserve();
        let link = LinkSpec::gbps(100, 1);
        let mut nic_a = Nic::new(HostId(0), cfg_a, EgressPort::new(b, PortId(0), link));
        let mut nic_b = Nic::new(HostId(1), cfg_b, EgressPort::new(a, PortId(0), link));
        let driver = world.reserve();
        nic_a.set_driver(driver);
        nic_b.set_driver(driver);
        nic_a.create_send_qp(QpId(5), HostId(1), 4242);
        nic_b.create_recv_qp(QpId(5), HostId(0), 4242);
        world.install(a, Box::new(nic_a));
        world.install(b, Box::new(nic_b));
        world.install(
            driver,
            Box::new(DriverSink {
                delivered: vec![],
                acked: vec![],
                last_delivery: Nanos::ZERO,
            }),
        );
        Harness {
            world,
            a,
            b,
            driver,
        }
    }

    fn post(h: &mut Harness, bytes: u64, tag: u64) {
        h.world.seed_event(
            Nanos::ZERO,
            h.a,
            Event::Control(ControlMsg::PostSend {
                qp: QpId(5),
                bytes,
                msg_tag: tag,
            }),
        );
    }

    #[test]
    fn single_message_delivers_and_completes() {
        let mut h = build(NicConfig::nic_sr(GBPS100), NicConfig::nic_sr(GBPS100));
        post(&mut h, 1_000_000, 77);
        let reason = h.world.run_until(Nanos::from_millis(100));
        assert_eq!(reason, StopReason::QueueEmpty, "simulation must drain");
        let d: &DriverSink = h.world.get(h.driver).unwrap();
        assert_eq!(d.delivered, vec![(QpId(5), 77)]);
        assert_eq!(d.acked, vec![(QpId(5), 77)]);
        let nic_b: &Nic = h.world.get(h.b).unwrap();
        let r = nic_b.recv_qp(QpId(5)).unwrap();
        assert_eq!(r.stats.bytes_delivered, 1_000_000);
        assert_eq!(r.stats.nacks_sent, 0, "in-order path must not NACK");
        let nic_a: &Nic = h.world.get(h.a).unwrap();
        let s = nic_a.send_qp(QpId(5)).unwrap();
        assert_eq!(s.stats.retx_packets, 0);
        assert_eq!(s.stats.data_packets, 1_000_000_u64.div_ceil(1500));
    }

    #[test]
    fn throughput_close_to_line_rate() {
        let mut h = build(NicConfig::nic_sr(GBPS100), NicConfig::nic_sr(GBPS100));
        // 10 MB at ~100 Gbps ≈ 800 µs + small overheads.
        post(&mut h, 10_000_000, 1);
        h.world.run_until(Nanos::from_millis(50));
        let d: &DriverSink = h.world.get(h.driver).unwrap();
        let t = d.last_delivery.as_secs_f64();
        let gbps = 10_000_000.0 * 8.0 / t / 1e9;
        assert!(gbps > 85.0, "goodput {gbps:.1} Gbps too low");
        assert!(gbps <= 100.0, "goodput {gbps:.1} Gbps impossible");
    }

    #[test]
    fn multiple_messages_complete_in_order() {
        let mut h = build(NicConfig::nic_sr(GBPS100), NicConfig::nic_sr(GBPS100));
        for tag in 0..5 {
            post(&mut h, 100_000, tag);
        }
        h.world.run_until(Nanos::from_millis(100));
        let d: &DriverSink = h.world.get(h.driver).unwrap();
        let tags: Vec<u64> = d.delivered.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handshake_precedes_data() {
        let mut h = build(NicConfig::nic_sr(GBPS100), NicConfig::nic_sr(GBPS100));
        post(&mut h, 1500, 1);
        h.world.run_until(Nanos::from_millis(10));
        let nic_b: &Nic = h.world.get(h.b).unwrap();
        assert_eq!(nic_b.stats.handshakes_rx, 1);
    }

    #[test]
    fn two_qps_share_line_rate_fairly() {
        let mut world = World::new();
        let a = world.reserve();
        let b = world.reserve();
        let link = LinkSpec::gbps(100, 1);
        let mut nic_a = Nic::new(
            HostId(0),
            NicConfig::nic_sr(GBPS100),
            EgressPort::new(b, PortId(0), link),
        );
        let mut nic_b = Nic::new(
            HostId(1),
            NicConfig::nic_sr(GBPS100),
            EgressPort::new(a, PortId(0), link),
        );
        nic_a.create_send_qp(QpId(1), HostId(1), 100);
        nic_a.create_send_qp(QpId(2), HostId(1), 200);
        nic_b.create_recv_qp(QpId(1), HostId(0), 100);
        nic_b.create_recv_qp(QpId(2), HostId(0), 200);
        world.install(a, Box::new(nic_a));
        world.install(b, Box::new(nic_b));
        for qp in [QpId(1), QpId(2)] {
            world.seed_event(
                Nanos::ZERO,
                a,
                Event::Control(ControlMsg::PostSend {
                    qp,
                    bytes: 3_000_000,
                    msg_tag: 0,
                }),
            );
        }
        world.run_until(Nanos::from_millis(10));
        let nic_b: &Nic = world.get(b).unwrap();
        let d1 = nic_b.recv_qp(QpId(1)).unwrap().stats.bytes_delivered;
        let d2 = nic_b.recv_qp(QpId(2)).unwrap().stats.bytes_delivered;
        assert_eq!(d1, 3_000_000);
        assert_eq!(d2, 3_000_000);
    }

    #[test]
    fn unknown_qp_counted_not_crashed() {
        let mut h = build(NicConfig::nic_sr(GBPS100), NicConfig::nic_sr(GBPS100));
        let stray = Packet::data(QpId(99), HostId(0), HostId(1), 1, 0, 0, false, 100, false);
        h.world.seed_event(
            Nanos::ZERO,
            h.b,
            Event::Packet {
                pkt: stray,
                in_port: PortId(0),
            },
        );
        h.world.run_until(Nanos::from_millis(1));
        let nic_b: &Nic = h.world.get(h.b).unwrap();
        assert_eq!(nic_b.stats.unknown_qp, 1);
    }
}
