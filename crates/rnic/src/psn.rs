//! 24-bit packet-sequence-number arithmetic.
//!
//! RoCE carries a 3-byte PSN on the wire (the BTH PSN field). The
//! simulator keeps *extended* 64-bit PSNs internally — monotonically
//! increasing, never wrapping — and converts at the "wire" boundary:
//! outgoing packets truncate ([`wire_psn`]), incoming packets are
//! re-extended against a local reference ([`extend24`]), exactly as real
//! endpoint implementations reconstruct sequence numbers from a window.

use netsim::packet::PSN_MODULUS;

/// Half the PSN space; the disambiguation window for [`extend24`].
const HALF: u64 = (PSN_MODULUS as u64) / 2;

/// Truncate an extended PSN to its 24-bit wire representation.
#[inline]
pub fn wire_psn(ext: u64) -> u32 {
    (ext % PSN_MODULUS as u64) as u32
}

/// Re-extend a 24-bit wire PSN to the 64-bit value closest to `reference`.
///
/// Correct as long as the true value lies within ±2²³ of `reference`,
/// which holds whenever in-flight data is below 2²³ packets — far beyond
/// any realistic bandwidth-delay product.
#[inline]
pub fn extend24(wire: u32, reference: u64) -> u64 {
    debug_assert!(wire < PSN_MODULUS);
    let modulus = PSN_MODULUS as u64;
    let base = reference & !(modulus - 1);
    let candidate = base | wire as u64;
    // Pick candidate, candidate ± modulus — whichever is nearest reference.
    let mut best = candidate;
    let mut best_dist = candidate.abs_diff(reference);
    if candidate >= modulus {
        let lower = candidate - modulus;
        let d = lower.abs_diff(reference);
        if d < best_dist {
            best = lower;
            best_dist = d;
        }
    }
    let upper = candidate + modulus;
    let d = upper.abs_diff(reference);
    if d < best_dist {
        best = upper;
    }
    debug_assert!(best.abs_diff(reference) <= HALF, "PSN window exceeded");
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_wraps() {
        assert_eq!(wire_psn(0), 0);
        assert_eq!(wire_psn(PSN_MODULUS as u64 - 1), PSN_MODULUS - 1);
        assert_eq!(wire_psn(PSN_MODULUS as u64), 0);
        assert_eq!(wire_psn(PSN_MODULUS as u64 + 5), 5);
    }

    #[test]
    fn extend_identity_within_window() {
        for ext in [0u64, 1, 100, 1 << 20, (1 << 24) - 1] {
            assert_eq!(extend24(wire_psn(ext), ext), ext);
        }
    }

    #[test]
    fn extend_across_wrap_forward() {
        // Reference just below a wrap boundary; wire value just past it.
        let reference = (1u64 << 24) - 3;
        let true_val = (1u64 << 24) + 5;
        assert_eq!(extend24(wire_psn(true_val), reference), true_val);
    }

    #[test]
    fn extend_across_wrap_backward() {
        // Reference just past a wrap; wire value slightly behind it.
        let reference = (1u64 << 24) + 2;
        let true_val = (1u64 << 24) - 4;
        assert_eq!(extend24(wire_psn(true_val), reference), true_val);
    }

    #[test]
    fn extend_many_wraps() {
        let reference = 10 * (1u64 << 24) + 12345;
        for delta in [-5000i64, -1, 0, 1, 5000] {
            let true_val = (reference as i64 + delta) as u64;
            assert_eq!(extend24(wire_psn(true_val), reference), true_val);
        }
    }

    #[test]
    fn round_trip_exhaustive_near_boundaries() {
        for boundary in 1u64..4 {
            let b = boundary << 24;
            for r in (b - 100)..(b + 100) {
                for d in 0..50u64 {
                    let t = r + d;
                    assert_eq!(extend24(wire_psn(t), r), t, "r={r} t={t}");
                    if r >= d {
                        let t = r - d;
                        assert_eq!(extend24(wire_psn(t), r), t, "r={r} t={t}");
                    }
                }
            }
        }
    }
}
