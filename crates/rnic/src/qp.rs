//! Queue-pair state machines.
//!
//! [`SendQp`] and [`RecvQp`] are pure state machines — they consume packet
//! fields and produce response packets / completion tags, with no access to
//! the event engine. The [`crate::nic::Nic`] entity drives them and owns
//! all scheduling. This split keeps the NIC-SR rules of §2.2 directly
//! unit-testable:
//!
//! * the receiver generates **at most one NACK per ePSN value**;
//! * NACKs carry **only the ePSN**;
//! * the ePSN advances to the smallest not-yet-received PSN;
//! * the Go-Back-N receiver discards out-of-order packets outright;
//! * the oracle receiver NACKs only real losses.

use crate::bitmap::OooBitmap;
use crate::config::TransportMode;
use crate::dcqcn::Dcqcn;
use crate::psn::{extend24, wire_psn};
use crate::reaction::{
    EagerNack, EntropyStats, FixedEntropy, OooReaction, OooReactionStats, SenderEntropy,
};
use netsim::packet::Packet;
use netsim::types::{HostId, QpId};
use simcore::stats::{RateMeter, TimeSeries};
use simcore::time::{Nanos, TimeDelta};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A message posted for transmission, occupying a contiguous PSN range.
#[derive(Debug, Clone, Copy)]
pub struct PostedMsg {
    /// Caller-chosen completion tag.
    pub tag: u64,
    /// First PSN of the message.
    pub first_psn: u64,
    /// Last PSN of the message (inclusive).
    pub last_psn: u64,
    /// Message length in bytes.
    pub bytes: u64,
}

/// Sender-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendQpStats {
    /// First-transmission data packets sent.
    pub data_packets: u64,
    /// Retransmitted data packets sent.
    pub retx_packets: u64,
    /// ACKs received.
    pub acks_received: u64,
    /// NACKs received.
    pub nacks_received: u64,
    /// CNPs received.
    pub cnps_received: u64,
    /// RTO expirations.
    pub rto_fires: u64,
    /// Stale NACKs ignored (ePSN already acknowledged past).
    pub stale_nacks: u64,
    /// Total data payload bytes sent (including retransmissions).
    pub bytes_sent: u64,
}

/// Optional per-flow tracing (Fig 1b / Fig 1c series).
#[derive(Debug, Clone)]
pub struct SendTrace {
    /// Wire sending rate over time (data packets, incl. retransmissions).
    pub rate: RateMeter,
    /// Per-bin retransmission ratio: each sent data packet records 1.0 if
    /// it was a retransmission and 0.0 otherwise, so bin means are the
    /// retransmission ratio of that bin (Fig 1b).
    pub retx_ratio: TimeSeries,
}

impl SendTrace {
    /// A trace with the given bin width.
    pub fn new(bin: TimeDelta) -> SendTrace {
        SendTrace {
            rate: RateMeter::new(bin),
            retx_ratio: TimeSeries::new(bin),
        }
    }
}

/// Sender side of a reliable connection.
#[derive(Debug)]
pub struct SendQp {
    /// Connection id.
    pub qp: QpId,
    /// Local host.
    pub me: HostId,
    /// Remote host.
    pub dst: HostId,
    /// UDP source port of this flow (ECMP entropy; Themis-S may rewrite
    /// it in flight, which does not change this stored base value).
    pub sport: u16,
    mtu: u32,
    transport: TransportMode,
    /// Everything below this extended PSN is cumulatively acknowledged.
    snd_una: u64,
    /// Next never-sent extended PSN.
    snd_nxt: u64,
    /// High-water mark: one past the highest PSN ever transmitted. Used
    /// to classify Go-Back-N rewound sends as retransmissions.
    snd_max: u64,
    /// End of allocated PSN space (exclusive).
    snd_end: u64,
    msgs: VecDeque<PostedMsg>,
    retx: BTreeSet<u64>,
    /// DCQCN reaction point.
    pub cc: Dcqcn,
    /// Earliest time the pacer allows the next packet.
    pub next_allowed: Nanos,
    /// RTO deadline while unacknowledged data exists.
    pub rto_deadline: Option<Nanos>,
    /// Statistics.
    pub stats: SendQpStats,
    /// Optional tracing, boxed to keep the always-scanned hot QP array
    /// slim (the trace payload is ~90 bytes and rarely enabled).
    pub trace: Option<Box<SendTrace>>,
    handshake_sent: bool,
    /// Per-packet entropy policy (scheme zoo); [`FixedEntropy`] = the
    /// commodity behaviour of using `sport` on every packet.
    entropy: Box<dyn SenderEntropy>,
}

impl SendQp {
    /// A fresh sender QP.
    pub fn new(
        qp: QpId,
        me: HostId,
        dst: HostId,
        sport: u16,
        mtu: u32,
        transport: TransportMode,
        cc: Dcqcn,
    ) -> SendQp {
        SendQp {
            qp,
            me,
            dst,
            sport,
            mtu,
            transport,
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            snd_end: 0,
            msgs: VecDeque::new(),
            retx: BTreeSet::new(),
            cc,
            next_allowed: Nanos::ZERO,
            rto_deadline: None,
            stats: SendQpStats::default(),
            trace: None,
            handshake_sent: false,
            entropy: Box::new(FixedEntropy),
        }
    }

    /// Install a sender entropy policy (default: [`FixedEntropy`]).
    pub fn set_entropy(&mut self, entropy: Box<dyn SenderEntropy>) {
        self.entropy = entropy;
    }

    /// Feed an ACK-echoed entropy value to the entropy policy.
    pub fn on_ack_echo(&mut self, echo: u16) {
        self.entropy.on_ack_echo(echo);
    }

    /// Entropy-policy counters (`scheme.*` telemetry).
    pub fn entropy_stats(&self) -> EntropyStats {
        self.entropy.stats()
    }

    /// Allocate PSN space for a message; returns the range.
    pub fn post(&mut self, bytes: u64, tag: u64) -> (u64, u64) {
        let n = bytes.div_ceil(self.mtu as u64).max(1);
        let first = self.snd_end;
        let last = first + n - 1;
        self.snd_end = last + 1;
        self.msgs.push_back(PostedMsg {
            tag,
            first_psn: first,
            last_psn: last,
            bytes,
        });
        (first, last)
    }

    /// Whether any transmission work remains (new or retransmissions).
    #[inline]
    pub fn has_work(&self) -> bool {
        !self.retx.is_empty() || self.snd_nxt < self.snd_end
    }

    /// Whether unacknowledged data is outstanding.
    #[inline]
    pub fn has_unacked(&self) -> bool {
        self.snd_una < self.snd_nxt
    }

    /// Whether this QP may transmit at `now`.
    #[inline]
    pub fn ready(&self, now: Nanos) -> bool {
        self.has_work() && self.next_allowed <= now
    }

    /// Cumulative acknowledged PSN (tests).
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next new PSN (tests).
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Pending retransmissions (tests).
    pub fn retx_pending(&self) -> usize {
        self.retx.len()
    }

    /// Whether the one-time handshake packet still needs to be sent.
    pub fn take_handshake(&mut self) -> Option<Packet> {
        if self.handshake_sent {
            return None;
        }
        self.handshake_sent = true;
        Some(Packet::handshake(self.qp, self.me, self.dst, self.sport))
    }

    fn msg_for(&self, psn: u64) -> &PostedMsg {
        self.msgs
            .iter()
            .find(|m| m.first_psn <= psn && psn <= m.last_psn)
            .expect("PSN outside any live message: retx/ack accounting bug")
    }

    fn payload_for(&self, psn: u64) -> (u32, bool, u64) {
        let m = self.msg_for(psn);
        let _idx = psn - m.first_psn;
        let n = m.last_psn - m.first_psn + 1;
        let last = psn == m.last_psn;
        let payload = if last {
            (m.bytes - (n - 1) * self.mtu as u64) as u32
        } else {
            self.mtu
        };
        (payload.max(1), last, m.tag)
    }

    /// Build the next packet to transmit and update pacing/CC/stats.
    ///
    /// Caller must have checked [`SendQp::ready`]. Retransmissions take
    /// priority over first transmissions, like real NICs.
    pub fn next_packet(&mut self, now: Nanos) -> Packet {
        debug_assert!(self.ready(now));
        let (psn, from_retx_queue) = match self.retx.iter().next().copied() {
            Some(p) => {
                self.retx.remove(&p);
                (p, true)
            }
            None => {
                let p = self.snd_nxt;
                self.snd_nxt += 1;
                (p, false)
            }
        };
        // A send below the high-water mark is a retransmission whether it
        // came from the SR retransmit queue or a Go-Back-N rewind.
        let retransmission = from_retx_queue || psn < self.snd_max;
        self.snd_max = self.snd_max.max(psn + 1);
        let (payload, last, tag) = self.payload_for(psn);
        let sport = self.entropy.sport_for(self.sport, psn, retransmission);
        let pkt = Packet::data(
            self.qp,
            self.me,
            self.dst,
            sport,
            wire_psn(psn),
            tag,
            last,
            payload,
            retransmission,
        );
        // Pacing: the next transmission may start after this packet's
        // serialization time at the *current DCQCN rate*.
        let rate = self.cc.rate_bps().max(1.0);
        let gap_ns = (pkt.wire_bytes as f64 * 8.0 / rate * 1e9).ceil() as u64;
        self.next_allowed = now + TimeDelta::from_nanos(gap_ns);
        self.cc.on_bytes_sent(pkt.wire_bytes as u64);
        if retransmission {
            self.stats.retx_packets += 1;
        } else {
            self.stats.data_packets += 1;
        }
        self.stats.bytes_sent += payload as u64;
        if let Some(t) = &mut self.trace {
            t.rate.record(now, pkt.wire_bytes as u64);
            t.retx_ratio
                .record(now, if retransmission { 1.0 } else { 0.0 });
        }
        pkt
    }

    /// Process a cumulative ACK; returns tags of fully acked messages.
    pub fn on_ack(&mut self, wire_epsn: u32) -> Vec<u64> {
        self.stats.acks_received += 1;
        let ext = extend24(wire_epsn, self.snd_una.max(1));
        self.advance_una(ext)
    }

    /// Process a NACK; returns (completed tags, whether a rate cut fired).
    ///
    /// A *stale* NACK — whose ePSN the sender has already cumulatively
    /// acknowledged past — is ignored entirely (no retransmission, no
    /// rate cut), as real RNICs discard out-of-window NACKs. Late
    /// compensated NACKs for packets that did arrive land here.
    pub fn on_nack(&mut self, wire_epsn: u32, now: Nanos) -> (Vec<u64>, bool) {
        self.stats.nacks_received += 1;
        let ext = extend24(wire_epsn, self.snd_una.max(1));
        if ext < self.snd_una {
            self.stats.stale_nacks += 1;
            return (Vec::new(), false);
        }
        // An accepted NACK is a loss signal: cached path knowledge
        // (e.g. the REPS entropy pool) may be stale.
        self.entropy.on_path_trouble();
        let completed = self.advance_una(ext);
        match self.transport {
            TransportMode::SelectiveRepeat | TransportMode::IdealOracle => {
                // Retransmit exactly the ePSN packet (§2.2). A stale NACK
                // (ePSN already cumulatively acknowledged — e.g. a late
                // compensated NACK for a packet that did arrive) is
                // ignored, as on real RNICs.
                if ext >= self.snd_una && ext < self.snd_nxt {
                    self.retx.insert(ext);
                }
            }
            TransportMode::GoBackN => {
                // Rewind: resend everything from the ePSN.
                self.snd_nxt = self.snd_nxt.min(ext.max(self.snd_una));
                self.retx.clear();
            }
        }
        let cut = self.cc.on_nack(now);
        (completed, cut)
    }

    /// Process a CNP.
    pub fn on_cnp(&mut self, now: Nanos) -> bool {
        self.stats.cnps_received += 1;
        self.cc.on_cnp(now)
    }

    /// RTO fired: retransmit the oldest unacknowledged packet.
    pub fn on_rto(&mut self) {
        if !self.has_unacked() {
            return;
        }
        self.stats.rto_fires += 1;
        self.entropy.on_path_trouble();
        match self.transport {
            TransportMode::SelectiveRepeat | TransportMode::IdealOracle => {
                self.retx.insert(self.snd_una);
            }
            TransportMode::GoBackN => {
                self.snd_nxt = self.snd_una;
                self.retx.clear();
            }
        }
    }

    fn advance_una(&mut self, ext: u64) -> Vec<u64> {
        if ext > self.snd_una {
            self.snd_una = ext.min(self.snd_nxt);
        }
        // Drop retransmissions that are now acknowledged.
        while let Some(&p) = self.retx.iter().next() {
            if p < self.snd_una {
                self.retx.remove(&p);
            } else {
                break;
            }
        }
        let mut done = Vec::new();
        while let Some(m) = self.msgs.front() {
            if m.last_psn < self.snd_una {
                done.push(m.tag);
                self.msgs.pop_front();
            } else {
                break;
            }
        }
        done
    }
}

/// Receiver-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecvQpStats {
    /// Data packets received (all).
    pub data_packets: u64,
    /// Out-of-order arrivals (PSN > ePSN).
    pub ooo_packets: u64,
    /// Duplicates (PSN < ePSN, or bitmap bit already set).
    pub dup_packets: u64,
    /// ACKs sent.
    pub acks_sent: u64,
    /// NACKs sent.
    pub nacks_sent: u64,
    /// NACKs suppressed because the transport is the loss oracle and the
    /// expected packet was not actually lost.
    pub nacks_suppressed: u64,
    /// CNPs sent.
    pub cnps_sent: u64,
    /// Messages delivered in order.
    pub msgs_delivered: u64,
    /// Payload bytes delivered (first copies only).
    pub bytes_delivered: u64,
    /// Go-Back-N receiver discards of out-of-order packets.
    pub gbn_discards: u64,
}

/// Receiver side of a reliable connection.
#[derive(Debug)]
pub struct RecvQp {
    /// Connection id.
    pub qp: QpId,
    /// Local host.
    pub me: HostId,
    /// Remote (sending) host.
    pub peer: HostId,
    /// Entropy value used on reverse-direction packets (ACK/NACK/CNP).
    pub reverse_sport: u16,
    transport: TransportMode,
    ack_coalescing: u32,
    cnp_interval: TimeDelta,
    epsn: u64,
    bitmap: OooBitmap,
    last_nacked: Option<u64>,
    inorder_since_ack: u32,
    msg_ends: BTreeMap<u64, u64>,
    oracle_lost: BTreeSet<u64>,
    last_cnp: Option<Nanos>,
    /// Statistics.
    pub stats: RecvQpStats,
    /// OOO-escalation policy (scheme zoo); [`EagerNack`] = commodity
    /// NIC-SR "every OOO arrival warrants a NACK".
    ooo: Box<dyn OooReaction>,
    /// Entropy value of the most recent data packet; echoed on ACKs.
    last_data_sport: u16,
}

/// Result of processing one incoming data packet.
#[derive(Debug, Default)]
pub struct RecvOutcome {
    /// Response packets to transmit (ACK/NACK/CNP), in order.
    pub responses: Vec<Packet>,
    /// Tags of messages that completed in-order delivery.
    pub delivered: Vec<u64>,
}

impl RecvQp {
    /// A fresh receiver QP.
    pub fn new(
        qp: QpId,
        me: HostId,
        peer: HostId,
        reverse_sport: u16,
        transport: TransportMode,
        ack_coalescing: u32,
        cnp_interval: TimeDelta,
    ) -> RecvQp {
        RecvQp {
            qp,
            me,
            peer,
            reverse_sport,
            transport,
            ack_coalescing: ack_coalescing.max(1),
            cnp_interval,
            epsn: 0,
            bitmap: OooBitmap::new(),
            last_nacked: None,
            inorder_since_ack: 0,
            msg_ends: BTreeMap::new(),
            oracle_lost: BTreeSet::new(),
            last_cnp: None,
            stats: RecvQpStats::default(),
            ooo: Box::new(EagerNack::default()),
            last_data_sport: reverse_sport,
        }
    }

    /// Install an OOO-escalation policy (default: [`EagerNack`]).
    pub fn set_ooo_reaction(&mut self, ooo: Box<dyn OooReaction>) {
        self.ooo = ooo;
    }

    /// OOO-reaction counters (`scheme.*` telemetry).
    pub fn ooo_stats(&self) -> OooReactionStats {
        self.ooo.stats()
    }

    /// Record the entropy value an incoming data packet travelled on,
    /// so subsequent ACKs can echo it. Called by the NIC before
    /// [`RecvQp::on_data`].
    pub fn note_data_sport(&mut self, sport: u16) {
        self.last_data_sport = sport;
    }

    /// Current expected PSN (extended).
    pub fn epsn(&self) -> u64 {
        self.epsn
    }

    /// Record an oracle loss notification (Ideal transport only).
    ///
    /// If the lost packet is the expected one, a NACK is produced
    /// immediately; otherwise the loss is remembered and NACKed when the
    /// ePSN reaches it.
    pub fn on_oracle_loss(&mut self, wire_psn_v: u32) -> Option<Packet> {
        let ext = extend24(wire_psn_v, self.epsn.max(1));
        if ext < self.epsn {
            return None; // already received or recovered
        }
        self.oracle_lost.insert(ext);
        self.maybe_oracle_nack()
    }

    fn maybe_oracle_nack(&mut self) -> Option<Packet> {
        if self.transport != TransportMode::IdealOracle {
            return None;
        }
        if self.oracle_lost.contains(&self.epsn) && self.last_nacked != Some(self.epsn) {
            self.last_nacked = Some(self.epsn);
            self.stats.nacks_sent += 1;
            return Some(Packet::nack(
                self.qp,
                self.me,
                self.peer,
                self.reverse_sport,
                wire_psn(self.epsn),
                false,
            ));
        }
        None
    }

    /// Process an incoming data packet.
    #[allow(clippy::too_many_arguments)]
    pub fn on_data(
        &mut self,
        wire_psn_v: u32,
        msg_tag: u64,
        last: bool,
        payload: u32,
        ecn_ce: bool,
        now: Nanos,
    ) -> RecvOutcome {
        let mut out = RecvOutcome::default();
        self.stats.data_packets += 1;

        // Notification point: CE-marked data may trigger a CNP, paced at
        // one per cnp_interval per QP.
        if ecn_ce {
            let due = match self.last_cnp {
                None => true,
                Some(t) => now.since(t) >= self.cnp_interval,
            };
            if due {
                self.last_cnp = Some(now);
                self.stats.cnps_sent += 1;
                out.responses
                    .push(Packet::cnp(self.qp, self.me, self.peer, self.reverse_sport));
            }
        }

        let ext = extend24(wire_psn_v, self.epsn.max(1));

        if ext < self.epsn {
            // Duplicate of an already-delivered packet (spurious
            // retransmission): re-ACK so the sender can clean up.
            self.stats.dup_packets += 1;
            self.push_ack(&mut out);
            return out;
        }

        if ext == self.epsn {
            if last {
                self.msg_ends.insert(ext, msg_tag);
            }
            self.stats.bytes_delivered += payload as u64;
            let adv = self.bitmap.advance();
            self.epsn += adv;
            self.ooo.on_advance();
            self.oracle_lost = self.oracle_lost.split_off(&self.epsn);
            self.inorder_since_ack += 1;

            // Deliver completed messages.
            let remaining = self.msg_ends.split_off(&self.epsn);
            for (_, tag) in std::mem::replace(&mut self.msg_ends, remaining) {
                self.stats.msgs_delivered += 1;
                out.delivered.push(tag);
            }

            let ack_due = self.inorder_since_ack >= self.ack_coalescing
                || adv > 1
                || !out.delivered.is_empty();
            if ack_due {
                self.push_ack(&mut out);
            }
            // Ideal transport: the new ePSN may be a known loss.
            if let Some(nack) = self.maybe_oracle_nack() {
                out.responses.push(nack);
            }
            return out;
        }

        // Out-of-order arrival: PSN > ePSN.
        self.stats.ooo_packets += 1;
        match self.transport {
            TransportMode::GoBackN => {
                // Discard; request resume from ePSN (once per ePSN value).
                self.stats.gbn_discards += 1;
                if self.last_nacked != Some(self.epsn) {
                    self.last_nacked = Some(self.epsn);
                    self.push_nack(&mut out);
                }
            }
            TransportMode::SelectiveRepeat => {
                if last {
                    self.msg_ends.insert(ext, msg_tag);
                }
                if self.bitmap.set(ext - self.epsn) {
                    self.stats.bytes_delivered += payload as u64;
                } else {
                    self.stats.dup_packets += 1;
                }
                // Commodity NIC-SR blindly assumes the expected packet was
                // lost; patient policies (Eunomia) buffer instead. Either
                // way: at most one NACK per ePSN value on the wire (§2.2).
                let due = self.ooo.nack_due(ext - self.epsn, now);
                if due && self.last_nacked != Some(self.epsn) {
                    self.last_nacked = Some(self.epsn);
                    self.push_nack(&mut out);
                }
            }
            TransportMode::IdealOracle => {
                if last {
                    self.msg_ends.insert(ext, msg_tag);
                }
                if self.bitmap.set(ext - self.epsn) {
                    self.stats.bytes_delivered += payload as u64;
                } else {
                    self.stats.dup_packets += 1;
                }
                // NACK only when the expected packet is a *known* loss.
                if self.oracle_lost.contains(&self.epsn) {
                    if let Some(nack) = self.maybe_oracle_nack() {
                        out.responses.push(nack);
                    }
                } else {
                    self.stats.nacks_suppressed += 1;
                }
            }
        }
        out
    }

    fn push_ack(&mut self, out: &mut RecvOutcome) {
        self.inorder_since_ack = 0;
        self.stats.acks_sent += 1;
        out.responses.push(Packet::ack(
            self.qp,
            self.me,
            self.peer,
            self.reverse_sport,
            wire_psn(self.epsn),
            self.last_data_sport,
        ));
    }

    fn push_nack(&mut self, out: &mut RecvOutcome) {
        self.stats.nacks_sent += 1;
        out.responses.push(Packet::nack(
            self.qp,
            self.me,
            self.peer,
            self.reverse_sport,
            wire_psn(self.epsn),
            false,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CcConfig;
    use netsim::packet::PacketKind;

    const LINE: u64 = 100_000_000_000;

    fn send_qp(transport: TransportMode) -> SendQp {
        SendQp::new(
            QpId(1),
            HostId(0),
            HostId(1),
            4000,
            1000,
            transport,
            Dcqcn::new(CcConfig::recommended(LINE), LINE),
        )
    }

    fn recv_qp(transport: TransportMode) -> RecvQp {
        RecvQp::new(
            QpId(1),
            HostId(1),
            HostId(0),
            4000,
            transport,
            1,
            TimeDelta::from_micros(50),
        )
    }

    #[test]
    fn post_allocates_contiguous_psns() {
        let mut s = send_qp(TransportMode::SelectiveRepeat);
        assert_eq!(s.post(2500, 1), (0, 2)); // 3 packets of mtu 1000
        assert_eq!(s.post(1000, 2), (3, 3));
        assert_eq!(s.post(1, 3), (4, 4));
        assert!(s.has_work());
    }

    #[test]
    fn next_packet_sizes_and_last_flags() {
        let mut s = send_qp(TransportMode::SelectiveRepeat);
        s.post(2500, 9);
        let p0 = s.next_packet(Nanos::ZERO);
        let p1 = s.next_packet(s.next_allowed);
        let p2 = s.next_packet(s.next_allowed);
        match (p0.kind, p1.kind, p2.kind) {
            (
                PacketKind::Data {
                    psn: 0,
                    payload: 1000,
                    last: false,
                    msg_tag: 9,
                    ..
                },
                PacketKind::Data {
                    psn: 1,
                    payload: 1000,
                    last: false,
                    ..
                },
                PacketKind::Data {
                    psn: 2,
                    payload: 500,
                    last: true,
                    ..
                },
            ) => {}
            other => panic!("unexpected packets: {other:?}"),
        }
        assert!(!s.has_work());
        assert!(s.has_unacked());
    }

    #[test]
    fn pacing_spaces_packets_by_rate() {
        let mut s = send_qp(TransportMode::SelectiveRepeat);
        s.post(10_000, 1);
        let t0 = Nanos::ZERO;
        let _ = s.next_packet(t0);
        // 1064B wire at 100G = 85.12ns -> ceil 86ns.
        assert_eq!(s.next_allowed.as_nanos(), 86);
        assert!(!s.ready(Nanos(50)));
        assert!(s.ready(Nanos(86)));
    }

    #[test]
    fn ack_advances_and_completes() {
        let mut s = send_qp(TransportMode::SelectiveRepeat);
        s.post(2500, 42);
        for _ in 0..3 {
            let t = s.next_allowed;
            s.next_packet(t);
        }
        assert!(s.on_ack(2).is_empty()); // epsn 2: packets 0,1 acked
        assert_eq!(s.snd_una(), 2);
        let done = s.on_ack(3);
        assert_eq!(done, vec![42]);
        assert!(!s.has_unacked());
    }

    #[test]
    fn sr_nack_retransmits_only_epsn_packet() {
        let mut s = send_qp(TransportMode::SelectiveRepeat);
        s.post(5000, 1);
        for _ in 0..5 {
            let t = s.next_allowed;
            s.next_packet(t);
        }
        let (_, _cut) = s.on_nack(2, Nanos::from_micros(10));
        assert_eq!(s.retx_pending(), 1);
        let p = s.next_packet(s.next_allowed.max(Nanos::from_micros(10)));
        match p.kind {
            PacketKind::Data {
                psn,
                retransmission,
                ..
            } => {
                assert_eq!(psn, 2);
                assert!(retransmission);
            }
            _ => panic!(),
        }
        assert_eq!(s.stats.retx_packets, 1);
        assert_eq!(s.snd_nxt(), 5, "SR must not rewind");
    }

    #[test]
    fn stale_nack_below_snd_una_is_ignored() {
        // A late compensated NACK can carry an ePSN the sender has
        // already completed past; it must not resurrect dead PSNs.
        let mut s = send_qp(TransportMode::SelectiveRepeat);
        s.post(3000, 1);
        for _ in 0..3 {
            let t = s.next_allowed;
            s.next_packet(t);
        }
        let done = s.on_ack(3); // message fully acknowledged and popped
        assert_eq!(done, vec![1]);
        let (completed, _) = s.on_nack(1, Nanos::from_micros(50));
        assert!(completed.is_empty());
        assert_eq!(s.retx_pending(), 0, "stale NACK ignored");
        // Sender remains usable for the next message.
        s.post(1000, 2);
        let p = s.next_packet(s.next_allowed.max(Nanos::from_micros(50)));
        assert_eq!(p.data_psn(), Some(3));
    }

    #[test]
    fn gbn_nack_rewinds() {
        let mut s = send_qp(TransportMode::GoBackN);
        s.post(5000, 1);
        for _ in 0..5 {
            let t = s.next_allowed;
            s.next_packet(t);
        }
        s.on_nack(2, Nanos::from_micros(10));
        assert_eq!(s.snd_nxt(), 2, "GBN rewinds to the NACKed ePSN");
        assert_eq!(s.retx_pending(), 0);
    }

    #[test]
    fn nack_cuts_rate_when_slowdown_enabled() {
        let mut s = send_qp(TransportMode::SelectiveRepeat);
        s.post(5000, 1);
        for _ in 0..5 {
            let t = s.next_allowed;
            s.next_packet(t);
        }
        let r0 = s.cc.rate_bps();
        let (_, cut) = s.on_nack(2, Nanos::from_micros(100));
        assert!(cut);
        assert!(s.cc.rate_bps() < r0);
    }

    #[test]
    fn rto_requeues_oldest_unacked() {
        let mut s = send_qp(TransportMode::SelectiveRepeat);
        s.post(3000, 1);
        for _ in 0..3 {
            let t = s.next_allowed;
            s.next_packet(t);
        }
        s.on_ack(1);
        s.on_rto();
        assert_eq!(s.retx_pending(), 1);
        let p = s.next_packet(s.next_allowed);
        assert_eq!(p.data_psn(), Some(1));
        assert_eq!(s.stats.rto_fires, 1);
    }

    #[test]
    fn handshake_emitted_once() {
        let mut s = send_qp(TransportMode::SelectiveRepeat);
        assert!(s.take_handshake().is_some());
        assert!(s.take_handshake().is_none());
    }

    // ---------------- receiver ----------------

    #[test]
    fn in_order_stream_acks_and_delivers() {
        let mut r = recv_qp(TransportMode::SelectiveRepeat);
        let mut delivered = Vec::new();
        for psn in 0..3u32 {
            let out = r.on_data(psn, 7, psn == 2, 1000, false, Nanos(psn as u64));
            delivered.extend(out.delivered);
            // ack_coalescing = 1 -> every packet ACKs.
            assert_eq!(out.responses.len(), 1);
            match out.responses[0].kind {
                PacketKind::Ack { epsn, .. } => assert_eq!(epsn, psn + 1),
                _ => panic!("expected ACK"),
            }
        }
        assert_eq!(delivered, vec![7]);
        assert_eq!(r.epsn(), 3);
        assert_eq!(r.stats.nacks_sent, 0);
    }

    #[test]
    fn ooo_triggers_exactly_one_nack_per_epsn() {
        let mut r = recv_qp(TransportMode::SelectiveRepeat);
        // psn 1, 2, 3 arrive while epsn = 0.
        let o1 = r.on_data(1, 0, false, 1000, false, Nanos(0));
        assert_eq!(o1.responses.len(), 1);
        match o1.responses[0].kind {
            PacketKind::Nack { epsn, .. } => assert_eq!(epsn, 0),
            _ => panic!("expected NACK"),
        }
        let o2 = r.on_data(2, 0, false, 1000, false, Nanos(1));
        let o3 = r.on_data(3, 0, false, 1000, false, Nanos(2));
        assert!(o2.responses.is_empty(), "at most one NACK per ePSN");
        assert!(o3.responses.is_empty());
        assert_eq!(r.stats.nacks_sent, 1);
        assert_eq!(r.stats.ooo_packets, 3);
    }

    #[test]
    fn epsn_jumps_over_bitmap_and_acks() {
        let mut r = recv_qp(TransportMode::SelectiveRepeat);
        r.on_data(1, 0, false, 1000, false, Nanos(0));
        r.on_data(2, 0, false, 1000, false, Nanos(1));
        let out = r.on_data(0, 0, false, 1000, false, Nanos(2));
        assert_eq!(r.epsn(), 3);
        // ACK with the jumped epsn.
        assert!(out
            .responses
            .iter()
            .any(|p| matches!(p.kind, PacketKind::Ack { epsn: 3, .. })));
    }

    #[test]
    fn new_epsn_allows_new_nack() {
        let mut r = recv_qp(TransportMode::SelectiveRepeat);
        r.on_data(1, 0, false, 1000, false, Nanos(0)); // NACK for epsn 0
        r.on_data(0, 0, false, 1000, false, Nanos(1)); // epsn -> 2
        let out = r.on_data(3, 0, false, 1000, false, Nanos(2)); // OOO again
        assert!(out
            .responses
            .iter()
            .any(|p| matches!(p.kind, PacketKind::Nack { epsn: 2, .. })));
        assert_eq!(r.stats.nacks_sent, 2);
    }

    #[test]
    fn duplicate_below_epsn_reacks() {
        let mut r = recv_qp(TransportMode::SelectiveRepeat);
        r.on_data(0, 0, false, 1000, false, Nanos(0));
        let out = r.on_data(0, 0, false, 1000, false, Nanos(1));
        assert_eq!(r.stats.dup_packets, 1);
        assert!(matches!(
            out.responses[0].kind,
            PacketKind::Ack { epsn: 1, .. }
        ));
    }

    #[test]
    fn gbn_discards_ooo_without_buffering() {
        let mut r = recv_qp(TransportMode::GoBackN);
        r.on_data(1, 0, false, 1000, false, Nanos(0));
        assert_eq!(r.stats.gbn_discards, 1);
        // Delivering 0 must advance epsn only to 1 (psn 1 was discarded).
        r.on_data(0, 0, false, 1000, false, Nanos(1));
        assert_eq!(r.epsn(), 1);
    }

    #[test]
    fn ideal_suppresses_nacks_without_loss() {
        let mut r = recv_qp(TransportMode::IdealOracle);
        let out = r.on_data(1, 0, false, 1000, false, Nanos(0));
        assert!(out.responses.is_empty());
        assert_eq!(r.stats.nacks_suppressed, 1);
        assert_eq!(r.stats.nacks_sent, 0);
    }

    #[test]
    fn ideal_nacks_oracle_reported_loss() {
        let mut r = recv_qp(TransportMode::IdealOracle);
        // Packet 0 dropped; oracle reports it while epsn == 0.
        let nack = r.on_oracle_loss(0);
        assert!(nack.is_some());
        match nack.unwrap().kind {
            PacketKind::Nack { epsn: 0, .. } => {}
            _ => panic!(),
        }
        // Subsequent OOO arrival does not duplicate the NACK.
        let out = r.on_data(1, 0, false, 1000, false, Nanos(1));
        assert!(out.responses.is_empty());
        assert_eq!(r.stats.nacks_sent, 1);
    }

    #[test]
    fn ideal_nacks_loss_discovered_after_advance() {
        let mut r = recv_qp(TransportMode::IdealOracle);
        // Loss of psn 1 reported while epsn = 0.
        assert!(r.on_oracle_loss(1).is_none(), "not yet the expected PSN");
        // psn 0 arrives -> epsn becomes 1, which is a known loss -> NACK.
        let out = r.on_data(0, 0, false, 1000, false, Nanos(1));
        assert!(out
            .responses
            .iter()
            .any(|p| matches!(p.kind, PacketKind::Nack { epsn: 1, .. })));
    }

    #[test]
    fn cnp_paced_by_interval() {
        let mut r = recv_qp(TransportMode::SelectiveRepeat);
        let o0 = r.on_data(0, 0, false, 1000, true, Nanos::from_micros(0));
        assert!(o0
            .responses
            .iter()
            .any(|p| matches!(p.kind, PacketKind::Cnp)));
        let o1 = r.on_data(1, 0, false, 1000, true, Nanos::from_micros(10));
        assert!(!o1
            .responses
            .iter()
            .any(|p| matches!(p.kind, PacketKind::Cnp)));
        let o2 = r.on_data(2, 0, false, 1000, true, Nanos::from_micros(60));
        assert!(o2
            .responses
            .iter()
            .any(|p| matches!(p.kind, PacketKind::Cnp)));
        assert_eq!(r.stats.cnps_sent, 2);
    }

    #[test]
    fn ack_coalescing_batches_acks() {
        let mut r = RecvQp::new(
            QpId(1),
            HostId(1),
            HostId(0),
            4000,
            TransportMode::SelectiveRepeat,
            4,
            TimeDelta::from_micros(50),
        );
        let mut acks = 0;
        for psn in 0..8u32 {
            let out = r.on_data(psn, 0, false, 1000, false, Nanos(psn as u64));
            acks += out
                .responses
                .iter()
                .filter(|p| matches!(p.kind, PacketKind::Ack { .. }))
                .count();
        }
        assert_eq!(acks, 2, "8 in-order packets at coalescing 4 -> 2 ACKs");
    }

    #[test]
    fn message_delivery_requires_in_order_completion() {
        let mut r = recv_qp(TransportMode::SelectiveRepeat);
        // Two messages: psn 0..=1 (tag 10) and psn 2..=3 (tag 11).
        // The last packet of msg 10 arrives out of order; delivery of both
        // messages must wait for the hole at psn 0 to fill, then complete
        // in posting order.
        r.on_data(1, 10, true, 500, false, Nanos(0));
        r.on_data(2, 11, false, 1000, false, Nanos(1));
        r.on_data(3, 11, true, 500, false, Nanos(2));
        let out = r.on_data(0, 10, false, 1000, false, Nanos(3));
        assert_eq!(out.delivered, vec![10, 11]);
        assert_eq!(r.epsn(), 4);
        assert_eq!(r.stats.msgs_delivered, 2);
    }
}
