//! The transport-reaction half of the scheme boundary.
//!
//! A load-balancing *scheme* is the product of two orthogonal choices
//! (see DESIGN.md "Scheme zoo"):
//!
//! * **Path choice** — which uplink each packet takes. Lives in the
//!   switches ([`netsim::lb::LbPolicy`]) or, for sender-driven schemes,
//!   in the entropy the NIC stamps on each packet (the UDP source port
//!   that ECMP hashes on).
//! * **Transport reaction** — how the endpoints react to the
//!   out-of-order arrivals and losses that path choice produces.
//!
//! This module is the second half: a [`TransportReaction`] bundles a
//! [`SenderEntropy`] policy (per-packet entropy choice plus reaction to
//! ACK-carried path feedback and loss signals) with an [`OooReaction`]
//! (when the receiver escalates an out-of-order gap to a NACK). The
//! default pair — [`FixedEntropy`] + [`EagerNack`] — reproduces the
//! commodity NIC-SR behaviour of §2.2 exactly; the rival schemes of
//! SCHEMES.md plug in here:
//!
//! * **REPS** (arXiv 2407.21625) — [`RepsEntropy`]: cache the entropy
//!   values echoed back by ACKs (proof the path worked) and recycle
//!   them on subsequent sends; fall back to fresh random entropy when
//!   the cache is empty and flush it on any loss signal.
//! * **Sprinklers** (arXiv 1407.0006) — [`SprinklersEntropy`]: spray at
//!   flowcell granularity — randomized variable-size stripes of
//!   consecutive packets share one entropy value, bounding reordering
//!   to stripe boundaries.
//! * **Eunomia** (arXiv 2412.08540) — [`EunomiaReaction`]: an in-NIC
//!   per-QP ordering buffer with a bounded window. Out-of-order
//!   arrivals are buffered silently; a NACK is generated only when the
//!   window overflows or the head gap stays open past a timeout.
//!
//! All policy state is per-QP and driven in the canonical dispatch
//! order, so every policy is bit-identical between the serial and
//! sharded engines. Randomized policies derive their stream from the
//! NIC seed (no global RNG).

use simcore::rng::Xoshiro256;
use simcore::time::{Nanos, TimeDelta};
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// Configuration kinds (plain `Copy` data; the boxed policies are built
// from these at QP-creation time).
// ---------------------------------------------------------------------

/// Which [`SenderEntropy`] policy a NIC installs on its sender QPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderEntropyKind {
    /// One fixed entropy value per flow (commodity default): the path is
    /// chosen by the switches, not the sender.
    Fixed,
    /// REPS recycled-entropy spraying.
    Reps {
        /// Capacity of the recycled-entropy cache (ACK echoes beyond
        /// this evict the oldest credit).
        pool: u16,
    },
    /// Sprinklers randomized variable-size striping.
    Sprinklers {
        /// Minimum stripe length in packets (inclusive).
        min_stripe: u16,
        /// Maximum stripe length in packets (inclusive).
        max_stripe: u16,
    },
}

/// Which [`OooReaction`] policy a NIC installs on its receiver QPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OooReactionKind {
    /// Commodity NIC-SR: every out-of-order arrival immediately warrants
    /// a NACK (at most one per ePSN value, enforced by the QP).
    Eager,
    /// Eunomia bounded ordering buffer: hold NACKs while the gap is
    /// young and the buffered window small.
    Eunomia {
        /// Ordering-buffer capacity in packets: a gap wider than this
        /// overflows the buffer and forces a NACK.
        window: u64,
        /// How long the head gap may stay open before a NACK is forced
        /// (checked on arrivals; the sender RTO is the backstop when no
        /// further packets arrive).
        gap_timeout: TimeDelta,
    },
}

/// A complete transport reaction: the sender and receiver halves that,
/// together with the switch-level [`netsim::lb::LbPolicy`], make up a
/// scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportReaction {
    /// Sender-side per-packet entropy policy.
    pub entropy: SenderEntropyKind,
    /// Receiver-side out-of-order escalation policy.
    pub ooo: OooReactionKind,
}

impl TransportReaction {
    /// The commodity NIC-SR reaction: fixed entropy, eager NACKs.
    pub const COMMODITY: TransportReaction = TransportReaction {
        entropy: SenderEntropyKind::Fixed,
        ooo: OooReactionKind::Eager,
    };
}

impl Default for TransportReaction {
    fn default() -> TransportReaction {
        TransportReaction::COMMODITY
    }
}

impl SenderEntropyKind {
    /// Build the boxed policy. `seed` must be unique per QP so
    /// randomized policies draw independent deterministic streams.
    pub fn build(self, seed: u64) -> Box<dyn SenderEntropy> {
        match self {
            SenderEntropyKind::Fixed => Box::new(FixedEntropy),
            SenderEntropyKind::Reps { pool } => Box::new(RepsEntropy::new(pool as usize, seed)),
            SenderEntropyKind::Sprinklers {
                min_stripe,
                max_stripe,
            } => Box::new(SprinklersEntropy::new(min_stripe, max_stripe, seed)),
        }
    }
}

impl OooReactionKind {
    /// Build the boxed policy.
    pub fn build(self) -> Box<dyn OooReaction> {
        match self {
            OooReactionKind::Eager => Box::new(EagerNack::default()),
            OooReactionKind::Eunomia {
                window,
                gap_timeout,
            } => Box::new(EunomiaReaction::new(window, gap_timeout)),
        }
    }
}

// ---------------------------------------------------------------------
// Sender half
// ---------------------------------------------------------------------

/// Counters every [`SenderEntropy`] policy reports (exported as the
/// `scheme.*` telemetry namespace by the harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct EntropyStats {
    /// Sends that reused an ACK-echoed ("known good") entropy value.
    pub recycled_sends: u64,
    /// Sends that drew a fresh random entropy value.
    pub fresh_sends: u64,
    /// Times the recycled-entropy cache was flushed by a loss signal.
    pub pool_clears: u64,
    /// ACK echoes dropped because the cache was full.
    pub pool_evictions: u64,
    /// Stripes started (Sprinklers).
    pub stripes_started: u64,
}

impl EntropyStats {
    /// Field-wise sum (cluster-level aggregation).
    pub fn add(&mut self, other: &EntropyStats) {
        self.recycled_sends += other.recycled_sends;
        self.fresh_sends += other.fresh_sends;
        self.pool_clears += other.pool_clears;
        self.pool_evictions += other.pool_evictions;
        self.stripes_started += other.stripes_started;
    }
}

/// Sender-side per-packet entropy policy.
///
/// Implementations are pure per-QP state machines: they see the PSN
/// stream, the ACK-echoed entropy feedback, and loss signals, and decide
/// the UDP source port of every outgoing data packet.
pub trait SenderEntropy: std::fmt::Debug {
    /// Choose the UDP source port for the data packet carrying `psn`.
    /// `base_sport` is the flow's allocator-assigned port (the value a
    /// fixed-entropy flow would always use).
    fn sport_for(&mut self, base_sport: u16, psn: u64, retransmission: bool) -> u16;

    /// An ACK arrived echoing the entropy value its triggering data
    /// packet travelled on — proof that path currently works.
    fn on_ack_echo(&mut self, _echo: u16) {}

    /// A loss signal arrived (NACK accepted or RTO fired): cached path
    /// knowledge may be stale.
    fn on_path_trouble(&mut self) {}

    /// Counter snapshot.
    fn stats(&self) -> EntropyStats;
}

/// The commodity policy: always the flow's base entropy.
#[derive(Debug, Default, Clone, Copy)]
pub struct FixedEntropy;

impl SenderEntropy for FixedEntropy {
    fn sport_for(&mut self, base_sport: u16, _psn: u64, _retransmission: bool) -> u16 {
        base_sport
    }

    fn stats(&self) -> EntropyStats {
        EntropyStats::default()
    }
}

/// Ephemeral-range random entropy: 0xC000..=0xFFFF, the range the QP
/// allocator draws from, so sender-chosen values are indistinguishable
/// from allocator-chosen ones on the wire.
#[inline]
fn fresh_sport(rng: &mut Xoshiro256) -> u16 {
    0xC000 | (rng.next_below(1 << 14) as u16)
}

/// REPS: recycle ACK-echoed entropy values, fresh entropy otherwise.
///
/// The cache is a queue of *credits*: every ACK echo deposits one (the
/// echoed path just proved it can deliver), every data send withdraws
/// one. In steady state each delivered packet funds the entropy of one
/// future packet, so the flow keeps circulating over paths that work.
/// Any loss signal (accepted NACK or RTO) flushes the cache — the
/// failure-mitigation rule of the paper — after which the flow explores
/// with fresh random entropy until ACKs refill it.
#[derive(Debug)]
pub struct RepsEntropy {
    pool: VecDeque<u16>,
    cap: usize,
    rng: Xoshiro256,
    stats: EntropyStats,
}

impl RepsEntropy {
    /// A REPS policy with the given cache capacity.
    pub fn new(cap: usize, seed: u64) -> RepsEntropy {
        RepsEntropy {
            pool: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            rng: Xoshiro256::seeded(seed),
            stats: EntropyStats::default(),
        }
    }

    /// Entropy credits currently cached.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }
}

impl SenderEntropy for RepsEntropy {
    fn sport_for(&mut self, _base_sport: u16, _psn: u64, retransmission: bool) -> u16 {
        // Retransmissions always explore a fresh path: the old one just
        // failed to deliver this packet.
        if !retransmission {
            if let Some(ev) = self.pool.pop_front() {
                self.stats.recycled_sends += 1;
                return ev;
            }
        }
        self.stats.fresh_sends += 1;
        fresh_sport(&mut self.rng)
    }

    fn on_ack_echo(&mut self, echo: u16) {
        if self.pool.len() == self.cap {
            self.pool.pop_front();
            self.stats.pool_evictions += 1;
        }
        self.pool.push_back(echo);
    }

    fn on_path_trouble(&mut self) {
        if !self.pool.is_empty() {
            self.pool.clear();
        }
        self.stats.pool_clears += 1;
    }

    fn stats(&self) -> EntropyStats {
        self.stats
    }
}

/// Sprinklers: randomized variable-size striping.
///
/// Consecutive packets share one entropy value for the length of a
/// *stripe*; stripe lengths are drawn uniformly from
/// `[min_stripe, max_stripe]` so stripe boundaries of competing flows
/// decorrelate. Reordering is confined to stripe boundaries — a fraction
/// `~1/stripe_len` of packets — instead of every packet as in uniform
/// spraying.
#[derive(Debug)]
pub struct SprinklersEntropy {
    min_stripe: u64,
    max_stripe: u64,
    current: u16,
    remaining: u64,
    rng: Xoshiro256,
    stats: EntropyStats,
}

impl SprinklersEntropy {
    /// A Sprinklers policy with stripe lengths in
    /// `[min_stripe, max_stripe]` packets.
    pub fn new(min_stripe: u16, max_stripe: u16, seed: u64) -> SprinklersEntropy {
        let lo = min_stripe.max(1) as u64;
        let hi = (max_stripe as u64).max(lo);
        SprinklersEntropy {
            min_stripe: lo,
            max_stripe: hi,
            current: 0,
            remaining: 0,
            rng: Xoshiro256::seeded(seed),
            stats: EntropyStats::default(),
        }
    }
}

impl SenderEntropy for SprinklersEntropy {
    fn sport_for(&mut self, _base_sport: u16, _psn: u64, _retransmission: bool) -> u16 {
        if self.remaining == 0 {
            self.current = fresh_sport(&mut self.rng);
            let span = self.max_stripe - self.min_stripe + 1;
            self.remaining = self.min_stripe + self.rng.next_below(span);
            self.stats.stripes_started += 1;
            self.stats.fresh_sends += 1;
        } else {
            self.stats.recycled_sends += 1;
        }
        self.remaining -= 1;
        self.current
    }

    fn stats(&self) -> EntropyStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// Receiver half
// ---------------------------------------------------------------------

/// Counters every [`OooReaction`] policy reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct OooReactionStats {
    /// Out-of-order arrivals whose NACK the policy allowed.
    pub nacks_allowed: u64,
    /// Out-of-order arrivals silently buffered (NACK withheld).
    pub nacks_held: u64,
    /// NACKs forced by ordering-buffer overflow.
    pub window_overflow_nacks: u64,
    /// NACKs forced by the head gap outliving the timeout.
    pub gap_timeout_nacks: u64,
}

impl OooReactionStats {
    /// Field-wise sum (cluster-level aggregation).
    pub fn add(&mut self, other: &OooReactionStats) {
        self.nacks_allowed += other.nacks_allowed;
        self.nacks_held += other.nacks_held;
        self.window_overflow_nacks += other.window_overflow_nacks;
        self.gap_timeout_nacks += other.gap_timeout_nacks;
    }
}

/// Receiver-side out-of-order escalation policy: decides *whether* an
/// out-of-order arrival warrants a NACK right now. The QP still enforces
/// the wire rule of at most one NACK per ePSN value on top.
pub trait OooReaction: std::fmt::Debug {
    /// A data packet landed `gap` PSNs ahead of the expected PSN at
    /// `now`. Returns true when the transport should NACK.
    fn nack_due(&mut self, gap: u64, now: Nanos) -> bool;

    /// The expected PSN advanced — the head gap (if any) closed.
    fn on_advance(&mut self);

    /// Counter snapshot.
    fn stats(&self) -> OooReactionStats;
}

/// Commodity NIC-SR reaction: every out-of-order arrival warrants a
/// NACK immediately (§2.2 — the blind "expected packet must be lost"
/// assumption whose consequences motivate the paper).
#[derive(Debug, Default, Clone, Copy)]
pub struct EagerNack {
    stats: OooReactionStats,
}

impl OooReaction for EagerNack {
    fn nack_due(&mut self, _gap: u64, _now: Nanos) -> bool {
        self.stats.nacks_allowed += 1;
        true
    }

    fn on_advance(&mut self) {}

    fn stats(&self) -> OooReactionStats {
        self.stats
    }
}

/// Eunomia: bounded in-NIC ordering buffer with patient NACKs.
///
/// Out-of-order arrivals are buffered silently while (a) the gap fits
/// the ordering window and (b) the head gap has been open for less than
/// `gap_timeout`. Either bound breaking forces a NACK. The timeout is
/// checked on arrivals (the model adds no new timers); a gap with no
/// subsequent arrivals is recovered by the sender's RTO — a documented
/// divergence from the published design, which runs a receiver-side
/// ordering timer.
#[derive(Debug)]
pub struct EunomiaReaction {
    window: u64,
    gap_timeout: TimeDelta,
    gap_open_since: Option<Nanos>,
    stats: OooReactionStats,
}

impl EunomiaReaction {
    /// An Eunomia reaction with the given window and gap timeout.
    pub fn new(window: u64, gap_timeout: TimeDelta) -> EunomiaReaction {
        EunomiaReaction {
            window: window.max(1),
            gap_timeout,
            gap_open_since: None,
            stats: OooReactionStats::default(),
        }
    }
}

impl OooReaction for EunomiaReaction {
    fn nack_due(&mut self, gap: u64, now: Nanos) -> bool {
        let opened = *self.gap_open_since.get_or_insert(now);
        if gap > self.window {
            self.stats.window_overflow_nacks += 1;
            self.stats.nacks_allowed += 1;
            return true;
        }
        if now.since(opened) >= self.gap_timeout {
            self.stats.gap_timeout_nacks += 1;
            self.stats.nacks_allowed += 1;
            return true;
        }
        self.stats.nacks_held += 1;
        false
    }

    fn on_advance(&mut self) {
        self.gap_open_since = None;
    }

    fn stats(&self) -> OooReactionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_entropy_is_the_identity() {
        let mut e = FixedEntropy;
        assert_eq!(e.sport_for(4242, 0, false), 4242);
        assert_eq!(e.sport_for(4242, 99, true), 4242);
        e.on_ack_echo(1); // ignored
        assert_eq!(e.stats().fresh_sends, 0);
    }

    #[test]
    fn reps_recycles_echoed_entropy_in_fifo_order() {
        let mut e = RepsEntropy::new(8, 7);
        // No credits yet: fresh entropy.
        let first = e.sport_for(4242, 0, false);
        assert!(first >= 0xC000);
        assert_eq!(e.stats().fresh_sends, 1);
        // Two echoes, recycled in arrival order.
        e.on_ack_echo(0xCAAA);
        e.on_ack_echo(0xCBBB);
        assert_eq!(e.sport_for(4242, 1, false), 0xCAAA);
        assert_eq!(e.sport_for(4242, 2, false), 0xCBBB);
        assert_eq!(e.stats().recycled_sends, 2);
        // Pool drained: fresh again.
        let _ = e.sport_for(4242, 3, false);
        assert_eq!(e.stats().fresh_sends, 2);
    }

    #[test]
    fn reps_flushes_pool_on_trouble_and_retransmits_fresh() {
        let mut e = RepsEntropy::new(8, 7);
        e.on_ack_echo(0xCAAA);
        e.on_path_trouble();
        assert_eq!(e.pool_len(), 0);
        assert_eq!(e.stats().pool_clears, 1);
        // A retransmission never reuses a cached value.
        e.on_ack_echo(0xCBBB);
        let s = e.sport_for(4242, 5, true);
        assert_ne!(s, 0xCBBB);
        assert_eq!(e.pool_len(), 1, "credit kept for the next first-send");
    }

    #[test]
    fn reps_pool_is_bounded() {
        let mut e = RepsEntropy::new(2, 7);
        for ev in [0xC001, 0xC002, 0xC003] {
            e.on_ack_echo(ev);
        }
        assert_eq!(e.pool_len(), 2);
        assert_eq!(e.stats().pool_evictions, 1);
        assert_eq!(e.sport_for(0, 0, false), 0xC002, "oldest was evicted");
    }

    #[test]
    fn sprinklers_holds_entropy_within_a_stripe() {
        let mut e = SprinklersEntropy::new(4, 4, 11); // fixed stripe of 4
        let s0 = e.sport_for(4242, 0, false);
        for psn in 1..4 {
            assert_eq!(e.sport_for(4242, psn, false), s0, "same stripe");
        }
        let s1 = e.sport_for(4242, 4, false);
        assert_eq!(e.stats().stripes_started, 2);
        // 16k-value space: a collision is possible but not for this seed.
        assert_ne!(s0, s1, "new stripe re-rolls entropy");
    }

    #[test]
    fn sprinklers_stripe_lengths_stay_in_range() {
        let mut e = SprinklersEntropy::new(2, 5, 3);
        let mut lens = Vec::new();
        let mut cur = e.sport_for(0, 0, false);
        let mut len = 1u64;
        for psn in 1..200 {
            let s = e.sport_for(0, psn, false);
            if s == cur {
                len += 1;
            } else {
                lens.push(len);
                cur = s;
                len = 1;
            }
        }
        assert!(lens.iter().all(|&l| (2..=5).contains(&l)), "{lens:?}");
        assert!(lens.len() > 10, "many stripes over 200 packets");
    }

    #[test]
    fn eager_always_nacks() {
        let mut r = EagerNack::default();
        assert!(r.nack_due(1, Nanos::ZERO));
        assert!(r.nack_due(500, Nanos(5)));
        assert_eq!(r.stats().nacks_allowed, 2);
        assert_eq!(r.stats().nacks_held, 0);
    }

    #[test]
    fn eunomia_holds_young_small_gaps() {
        let mut r = EunomiaReaction::new(16, TimeDelta::from_micros(100));
        assert!(!r.nack_due(3, Nanos::ZERO));
        assert!(!r.nack_due(10, Nanos::from_micros(50)));
        assert_eq!(r.stats().nacks_held, 2);
    }

    #[test]
    fn eunomia_nacks_on_window_overflow() {
        let mut r = EunomiaReaction::new(16, TimeDelta::from_micros(100));
        assert!(r.nack_due(17, Nanos::ZERO));
        assert_eq!(r.stats().window_overflow_nacks, 1);
    }

    #[test]
    fn eunomia_nacks_when_gap_outlives_timeout() {
        let mut r = EunomiaReaction::new(16, TimeDelta::from_micros(100));
        assert!(!r.nack_due(2, Nanos::ZERO));
        assert!(r.nack_due(2, Nanos::from_micros(100)));
        assert_eq!(r.stats().gap_timeout_nacks, 1);
    }

    #[test]
    fn eunomia_advance_resets_the_gap_clock() {
        let mut r = EunomiaReaction::new(16, TimeDelta::from_micros(100));
        assert!(!r.nack_due(2, Nanos::ZERO));
        r.on_advance();
        // A new gap opening at t=100µs is young again.
        assert!(!r.nack_due(2, Nanos::from_micros(100)));
        assert_eq!(r.stats().gap_timeout_nacks, 0);
    }

    #[test]
    fn kinds_build_the_matching_policy() {
        let mut f = SenderEntropyKind::Fixed.build(1);
        assert_eq!(f.sport_for(99, 0, false), 99);
        let mut reps = SenderEntropyKind::Reps { pool: 4 }.build(1);
        reps.on_ack_echo(0xC123);
        assert_eq!(reps.sport_for(99, 0, false), 0xC123);
        let mut spr = SenderEntropyKind::Sprinklers {
            min_stripe: 3,
            max_stripe: 3,
        }
        .build(1);
        let a = spr.sport_for(99, 0, false);
        assert_eq!(spr.sport_for(99, 1, false), a);
        let mut eager = OooReactionKind::Eager.build();
        assert!(eager.nack_due(1, Nanos::ZERO));
        let mut eu = OooReactionKind::Eunomia {
            window: 8,
            gap_timeout: TimeDelta::from_micros(10),
        }
        .build();
        assert!(!eu.nack_due(1, Nanos::ZERO));
    }
}
