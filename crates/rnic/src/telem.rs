//! NIC-side telemetry ids.
//!
//! One [`NicTelem`] is registered per sink and cloned into every NIC of
//! a cluster, so the counters are cluster-wide aggregates (per-QP
//! detail stays in [`crate::qp::SendQpStats`] / [`crate::qp::RecvQpStats`];
//! telemetry adds the *when* via time-bucketed histograms and the event
//! ring).

use telemetry::{CounterId, EventKind, HistId, Sink};

/// Telemetry handle installed into every [`crate::Nic`].
#[derive(Debug, Clone)]
pub struct NicTelem {
    sink: Sink,
    nacks_issued: CounterId,
    rto_fired: CounterId,
    rate_cuts: CounterId,
    ooo_gap: HistId,
}

impl NicTelem {
    /// Time-bin width of the `rnic.ooo_gap` histogram.
    pub const OOO_GAP_BIN_NS: u64 = 1_000_000; // 1 ms
    /// Number of time bins of the `rnic.ooo_gap` histogram.
    pub const OOO_GAP_BINS: usize = 512;

    /// Register the NIC counter set on `sink`. Idempotent: every NIC of
    /// a cluster can call this and they all share ids.
    pub fn register(sink: &Sink) -> NicTelem {
        NicTelem {
            nacks_issued: sink.counter("rnic.nacks_issued"),
            rto_fired: sink.counter("rnic.rto_fired"),
            rate_cuts: sink.counter("rnic.rate_cuts"),
            ooo_gap: sink.time_hist("rnic.ooo_gap", Self::OOO_GAP_BIN_NS, Self::OOO_GAP_BINS),
            sink: sink.clone(),
        }
    }

    /// A receiver QP generated a NACK for expected PSN `epsn`.
    #[inline]
    pub fn on_nack_issued(&self, qp: u64, epsn: u64) {
        self.sink.inc(self.nacks_issued);
        self.sink.event(EventKind::NackIssued, qp, epsn);
    }

    /// A sender QP's retransmission timeout fired.
    #[inline]
    pub fn on_rto_fired(&self, qp: u64) {
        self.sink.inc(self.rto_fired);
        self.sink.event(EventKind::RtoFired, qp, 0);
    }

    /// DCQCN cut a sender QP's rate; `rate_mbps` is the new rate.
    #[inline]
    pub fn on_rate_cut(&self, qp: u64, rate_mbps: u64) {
        self.sink.inc(self.rate_cuts);
        self.sink.event(EventKind::RateChange, qp, rate_mbps);
    }

    /// A data packet arrived `gap` PSNs ahead of the receiver's expected
    /// PSN (out-of-order arrival depth).
    #[inline]
    pub fn on_ooo_gap(&self, gap: u64) {
        self.sink.observe(self.ooo_gap, gap);
    }
}
