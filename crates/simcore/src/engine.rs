//! The simulation run loop.
//!
//! [`Engine`] owns the clock and the event queue and hands events to a
//! dispatcher closure one at a time. Higher layers (the network `World`)
//! decide what an event *means*; the engine only guarantees ordering,
//! monotonic time, and the stopping conditions (horizon / event budget /
//! queue exhaustion).

use crate::event::{EventQueue, Scheduled};
use crate::time::{Nanos, TimeDelta};

/// Why [`Engine::run_with`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained completely.
    QueueEmpty,
    /// The next event lay beyond the configured time horizon.
    HorizonReached,
    /// The configured maximum number of events was dispatched.
    EventBudgetExhausted,
    /// The dispatcher requested an early stop.
    DispatcherStopped,
}

/// Flow-control decision returned by the dispatcher for each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep running.
    Continue,
    /// Stop after this event (e.g. the workload completed).
    Stop,
}

/// A discrete-event engine over payload type `T`.
///
/// ```
/// use simcore::engine::{Control, Engine};
/// use simcore::time::Nanos;
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule_at(Nanos(20), "second");
/// engine.schedule_at(Nanos(10), "first");
/// let mut seen = Vec::new();
/// engine.run_with(|_, ev| {
///     seen.push(ev.payload);
///     Control::Continue
/// });
/// assert_eq!(seen, ["first", "second"]);
/// assert_eq!(engine.now(), Nanos(20));
/// ```
#[derive(Debug)]
pub struct Engine<T> {
    queue: EventQueue<T>,
    now: Nanos,
    dispatched: u64,
    clock: Option<telemetry::SharedClock>,
    stamp: Option<telemetry::SharedStamp>,
    /// Events at or beyond this time are not dispatched.
    pub horizon: Nanos,
    /// Maximum number of events to dispatch (guard against runaway loops).
    pub max_events: u64,
}

impl<T> Default for Engine<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Engine<T> {
    /// A fresh engine at time zero with no limits.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: Nanos::ZERO,
            dispatched: 0,
            clock: None,
            stamp: None,
            horizon: Nanos::MAX,
            max_events: u64::MAX,
        }
    }

    /// Mirror the engine clock into a telemetry [`telemetry::SharedClock`]
    /// after every advance, so instrumented components can stamp metric
    /// observations without being handed a timestamp explicitly.
    pub fn attach_clock(&mut self, clock: telemetry::SharedClock) {
        clock.set(self.now.as_nanos());
        self.clock = Some(clock);
    }

    /// Mirror the `(seq, lane)` key of the event being dispatched into a
    /// telemetry [`telemetry::SharedStamp`], so structured event records
    /// carry the canonical dispatch key. Together with the clock this lets
    /// per-shard event rings be merged back into the exact serial order.
    pub fn attach_stamp(&mut self, stamp: telemetry::SharedStamp) {
        self.stamp = Some(stamp);
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `payload` `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: TimeDelta, payload: T) {
        self.queue.push(self.now + delay, payload);
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// `at` is clamped to the current time: scheduling into the past would
    /// break causality, so such requests are delivered "now" instead (this
    /// can only arise from caller arithmetic bugs; a debug assertion flags
    /// them in test builds).
    #[inline]
    pub fn schedule_at(&mut self, at: Nanos, payload: T) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.push(at.max(self.now), payload);
    }

    /// Schedule `payload` at absolute time `at` with a caller-assigned
    /// `(seq, lane)` tie-break key (see [`EventQueue::push_keyed`]).
    #[inline]
    pub fn schedule_keyed(&mut self, at: Nanos, seq: u64, lane: u32, payload: T) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.push_keyed(at.max(self.now), seq, lane, payload);
    }

    /// Delivery time of the earliest pending event, ignoring the horizon.
    #[inline]
    pub fn next_event_time(&self) -> Option<Nanos> {
        self.queue.peek_time()
    }

    /// Drain every pending event in key order, resetting the queue.
    /// Used to split a run across shards (and to merge it back).
    pub fn take_pending(&mut self) -> Vec<Scheduled<T>> {
        self.queue.drain_all()
    }

    /// Re-insert an event with its key preserved (counterpart of
    /// [`Self::take_pending`]).
    #[inline]
    pub fn restore(&mut self, ev: Scheduled<T>) {
        debug_assert!(ev.at >= self.now, "restoring into the past");
        self.queue.restore(ev);
    }

    /// A fresh engine sharing this engine's clock position, horizon and
    /// event budget, but with an empty queue, zero dispatch count, and no
    /// telemetry attachments. Shards are forked off the main engine at the
    /// start of a partitioned run.
    pub fn fork(&self) -> Engine<T> {
        Engine {
            queue: EventQueue::new(),
            now: self.now,
            dispatched: 0,
            clock: None,
            stamp: None,
            horizon: self.horizon,
            max_events: self.max_events,
        }
    }

    /// Fold a finished shard engine back into this one: the clock advances
    /// to the later of the two, dispatch counts add, and any still-pending
    /// events (e.g. beyond the horizon) return with their keys intact.
    pub fn absorb(&mut self, mut other: Engine<T>) {
        self.now = self.now.max(other.now);
        if let Some(clock) = &self.clock {
            clock.set(self.now.as_nanos());
        }
        self.dispatched += other.dispatched;
        for ev in other.queue.drain_all() {
            self.queue.restore(ev);
        }
    }

    /// Pop the next event and advance the clock to it.
    ///
    /// Returns `None` when the queue is empty, the horizon is reached, or
    /// the event budget is exhausted. This is the primitive [`Self::run_with`]
    /// is built on; exposed so callers can interleave other work.
    pub fn step(&mut self) -> Option<Scheduled<T>> {
        if self.dispatched >= self.max_events {
            return None;
        }
        match self.queue.peek_time() {
            Some(t) if t <= self.horizon => {
                let ev = self.queue.pop().expect("peek/pop mismatch");
                debug_assert!(ev.at >= self.now, "event queue went backwards");
                self.now = ev.at;
                if let Some(clock) = &self.clock {
                    clock.set(ev.at.as_nanos());
                }
                if let Some(stamp) = &self.stamp {
                    stamp.set(ev.seq, ev.lane);
                }
                self.dispatched += 1;
                Some(ev)
            }
            _ => None,
        }
    }

    /// Run until a stopping condition, calling `dispatch` for each event.
    pub fn run_with(
        &mut self,
        mut dispatch: impl FnMut(&mut Engine<T>, Scheduled<T>) -> Control,
    ) -> StopReason {
        loop {
            if self.dispatched >= self.max_events {
                return StopReason::EventBudgetExhausted;
            }
            let ev = match self.queue.peek_time() {
                None => return StopReason::QueueEmpty,
                Some(t) if t > self.horizon => return StopReason::HorizonReached,
                Some(_) => self.queue.pop().expect("peek/pop mismatch"),
            };
            self.now = ev.at;
            if let Some(clock) = &self.clock {
                clock.set(ev.at.as_nanos());
            }
            if let Some(stamp) = &self.stamp {
                stamp.set(ev.seq, ev.lane);
            }
            self.dispatched += 1;
            if let Control::Stop = dispatch(self, ev) {
                return StopReason::DispatcherStopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(Nanos(100), 1);
        e.schedule_at(Nanos(50), 2);
        let ev = e.step().unwrap();
        assert_eq!(ev.payload, 2);
        assert_eq!(e.now(), Nanos(50));
        let ev = e.step().unwrap();
        assert_eq!(ev.payload, 1);
        assert_eq!(e.now(), Nanos(100));
        assert!(e.step().is_none());
    }

    #[test]
    fn attached_clock_tracks_engine_time() {
        let mut e: Engine<u32> = Engine::new();
        let clock = telemetry::SharedClock::new();
        e.attach_clock(clock.clone());
        assert_eq!(clock.now(), 0);
        e.schedule_at(Nanos(75), 1);
        e.step().unwrap();
        assert_eq!(clock.now(), 75);
        e.schedule_at(Nanos(90), 2);
        e.run_with(|_, _| Control::Continue);
        assert_eq!(clock.now(), 90);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(Nanos(10), "first");
        e.step();
        e.schedule_in(TimeDelta(5), "second");
        let ev = e.step().unwrap();
        assert_eq!(ev.at, Nanos(15));
        assert_eq!(ev.payload, "second");
    }

    #[test]
    fn run_with_drains_queue() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..10 {
            e.schedule_at(Nanos(i as u64), i);
        }
        let mut seen = Vec::new();
        let reason = e.run_with(|_, ev| {
            seen.push(ev.payload);
            Control::Continue
        });
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn dispatcher_can_reschedule() {
        // A self-perpetuating timer that stops after 5 firings.
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(Nanos(0), 0);
        let mut count = 0;
        let reason = e.run_with(|eng, ev| {
            count += 1;
            if ev.payload < 4 {
                eng.schedule_in(TimeDelta(10), ev.payload + 1);
            }
            Control::Continue
        });
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(count, 5);
        assert_eq!(e.now(), Nanos(40));
    }

    #[test]
    fn horizon_stops_run() {
        let mut e: Engine<u32> = Engine::new();
        e.horizon = Nanos(100);
        e.schedule_at(Nanos(50), 1);
        e.schedule_at(Nanos(150), 2);
        let mut seen = Vec::new();
        let reason = e.run_with(|_, ev| {
            seen.push(ev.payload);
            Control::Continue
        });
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(seen, vec![1]);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn event_budget_stops_run() {
        let mut e: Engine<u32> = Engine::new();
        e.max_events = 3;
        for i in 0..10 {
            e.schedule_at(Nanos(i as u64), i);
        }
        let reason = e.run_with(|_, _| Control::Continue);
        assert_eq!(reason, StopReason::EventBudgetExhausted);
        assert_eq!(e.dispatched(), 3);
    }

    #[test]
    fn dispatcher_stop_is_honored() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..10 {
            e.schedule_at(Nanos(i as u64), i);
        }
        let reason = e.run_with(|_, ev| {
            if ev.payload == 4 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(reason, StopReason::DispatcherStopped);
        assert_eq!(e.dispatched(), 5);
    }
}
