//! Time-ordered event queue with deterministic tie-breaking.
//!
//! The queue is a binary min-heap keyed on `(time, seq)`, where `seq` is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same instant are therefore delivered in the order they were scheduled,
//! which makes whole-simulation replays bit-identical — a property the test
//! suite checks end-to-end.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event plus its delivery metadata, as stored in the queue.
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// Delivery time.
    pub at: Nanos,
    /// Insertion sequence number; breaks ties deterministically.
    pub seq: u64,
    /// The payload delivered to the dispatcher.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` for delivery at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: Nanos, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop()
    }

    /// Delivery time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), "c");
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Nanos(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Nanos(5), 5);
        q.push(Nanos(1), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.push(Nanos(3), 3);
        q.push(Nanos(2), 2);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 5);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Nanos(7), ());
        q.push(Nanos(3), ());
        assert_eq!(q.peek_time(), Some(Nanos(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Nanos(7)));
    }

    #[test]
    fn len_and_totals() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Nanos(1), ());
        q.push(Nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
