//! Time-ordered event queue with deterministic tie-breaking.
//!
//! The queue is keyed on `(time, seq, lane)`. For plainly [`EventQueue::push`]ed
//! events `seq` is a monotonically increasing insertion counter (and `lane`
//! is 0), so two events scheduled for the same instant are delivered in the
//! order they were scheduled, which makes whole-simulation replays
//! bit-identical — a property the test suite checks end-to-end.
//!
//! [`EventQueue::push_keyed`] lets a higher layer assign the full key
//! itself. The sharded parallel engine uses this: each scheduling entity
//! (a `lane`) carries its own Lamport-style `seq` counter, which makes the
//! key independent of *which engine* an event was pushed into — the
//! property that lets a partitioned run dispatch in exactly the same
//! canonical order as a serial run. The two push flavors must not be mixed
//! on one queue unless the caller guarantees key uniqueness across both.
//!
//! ## Implementation: a paged timer wheel
//!
//! A discrete-event network simulation pushes and pops millions of events
//! whose delivery times cluster tightly around "now" (serialization at
//! 100–400 Gbps spaces packet events tens of nanoseconds apart). A global
//! binary heap pays `O(log n)` per operation over the *whole* event
//! population; the calendar/timer-wheel layout below pays near-`O(1)` by
//! bucketing the near future:
//!
//! * **active** — a small binary heap holding the earliest bucket's
//!   events (plus any same-window insertions). All pops come from here,
//!   so exact `(time, seq)` ordering is preserved by the heap compare.
//! * **wheel** — one page of `WHEEL_BUCKETS` buckets of
//!   `BUCKET_GRANULARITY_NS` each (unsorted `Vec`s, found via a bitmap).
//!   Covers ~2 ms past the active window.
//! * **overflow** — a binary heap for events beyond the page (RTO-scale
//!   timers). Drained into the wheel page by page.
//!
//! Events migrate overflow → wheel → active carrying their original
//! `seq`, and equal timestamps always land in the same bucket, so pop
//! order is bit-identical to the reference heap (a randomized
//! equivalence test in `tests/` checks exactly this).

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the bucket width in nanoseconds (256 ns per bucket).
const GRAN_BITS: u32 = 8;
/// log2 of the bucket count per page (8192 buckets ≈ 2.1 ms per page).
const WHEEL_BITS: u32 = 13;
const WHEEL_BUCKETS: usize = 1 << WHEEL_BITS;
/// Nanoseconds covered by one wheel page.
const PAGE_SPAN: u64 = (WHEEL_BUCKETS as u64) << GRAN_BITS;
/// Words in the occupancy bitmap.
const BITMAP_WORDS: usize = WHEEL_BUCKETS / 64;

/// An event plus its delivery metadata, as stored in the queue.
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// Delivery time.
    pub at: Nanos,
    /// Sequence number; breaks same-time ties deterministically. Plain
    /// pushes draw it from a per-queue insertion counter; keyed pushes
    /// carry a per-lane counter assigned by the caller.
    pub seq: u64,
    /// Scheduling lane (the entity that pushed the event, in keyed mode).
    /// Breaks (time, seq) ties across lanes; 0 for plain pushes.
    pub lane: u32,
    /// The payload delivered to the dispatcher.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq && self.lane == other.lane
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
            .then_with(|| other.lane.cmp(&self.lane))
    }
}

/// A deterministic future-event list (paged timer wheel).
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Earliest-window events; every pop comes from this heap.
    active: BinaryHeap<Scheduled<T>>,
    /// Inclusive upper bound on delivery times routed to `active`.
    /// (Inclusive so a page ending at `u64::MAX` is representable.)
    active_last: u64,
    /// The current page's buckets (`None`-free; empty `Vec`s cost nothing).
    wheel: Vec<Vec<Scheduled<T>>>,
    /// One bit per bucket: does it hold any events?
    occupied: [u64; BITMAP_WORDS],
    /// Events currently in wheel buckets.
    wheel_count: usize,
    /// Inclusive lower time bound of the current page.
    page_start: u64,
    /// Inclusive upper time bound of the current page.
    page_last: u64,
    /// Next bucket index to load into `active`.
    cursor: usize,
    /// Events at or beyond `page_end`.
    overflow: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    /// Events ever inserted (plain or keyed).
    total: u64,
    len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            active: BinaryHeap::new(),
            active_last: 0,
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            wheel_count: 0,
            page_start: 0,
            page_last: PAGE_SPAN - 1,
            cursor: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            total: 0,
            len: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` for delivery at absolute time `at`, drawing the
    /// tie-break key from the queue's own insertion counter (lane 0).
    #[inline]
    pub fn push(&mut self, at: Nanos, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Scheduled {
            at,
            seq,
            lane: 0,
            payload,
        });
    }

    /// Schedule `payload` with a caller-assigned `(seq, lane)` tie-break
    /// key. The caller owns key uniqueness; the queue only orders.
    #[inline]
    pub fn push_keyed(&mut self, at: Nanos, seq: u64, lane: u32, payload: T) {
        self.insert(Scheduled {
            at,
            seq,
            lane,
            payload,
        });
    }

    /// Re-insert an event popped or drained from a queue, preserving its
    /// original key. Used when redistributing events between the serial
    /// engine and per-shard engines.
    #[inline]
    pub fn restore(&mut self, ev: Scheduled<T>) {
        self.insert(ev);
    }

    /// Pop every pending event (in key order) and reset the paging state
    /// so the queue accepts arbitrary future timestamps again. The
    /// insertion counter survives, keeping later plain pushes unique.
    pub fn drain_all(&mut self) -> Vec<Scheduled<T>> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        let next_seq = self.next_seq;
        let total = self.total;
        *self = Self::default();
        self.next_seq = next_seq;
        self.total = total;
        out
    }

    #[inline]
    fn insert(&mut self, ev: Scheduled<T>) {
        self.len += 1;
        self.total += 1;
        let t = ev.at.as_nanos();
        if self.len == 1 && t > self.active_last && t <= self.page_last {
            // Empty queue: make this event the active window's upper
            // bound so it skips the wheel entirely. Safe because there
            // is nothing to order against, and any later push below `t`
            // joins the active heap, which keeps exact (time, seq)
            // order. Keeps a lone self-rescheduling timer on the cheap
            // heap path instead of paying a bucket migration per event.
            // Capped at the page boundary so one far-future push can't
            // widen the active window into a de-facto global heap.
            self.active_last = t;
        }
        if t <= self.active_last {
            // Same (or earlier) window as the events being drained now:
            // the heap keeps (time, seq) order exact.
            self.active.push(ev);
        } else if t <= self.page_last {
            let b = ((t - self.page_start) >> GRAN_BITS) as usize;
            debug_assert!(b >= self.cursor && b < WHEEL_BUCKETS);
            self.wheel[b].push(ev);
            self.occupied[b >> 6] |= 1u64 << (b & 63);
            self.wheel_count += 1;
        } else {
            self.overflow.push(ev);
        }
        if self.active.is_empty() && self.needs_settle() {
            self.settle();
        }
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        let ev = self.active.pop()?;
        self.len -= 1;
        if self.active.is_empty() && self.needs_settle() {
            self.settle();
        }
        Some(ev)
    }

    /// True when events are waiting outside the active heap. Gates the
    /// (non-inlined) `settle` call so the common lone-timer pattern —
    /// pop the only event, push its successor — never leaves the heap
    /// fast path.
    #[inline]
    fn needs_settle(&self) -> bool {
        self.wheel_count > 0 || !self.overflow.is_empty()
    }

    /// Delivery time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Nanos> {
        // `settle` maintains: queue non-empty ⇒ `active` non-empty.
        self.active.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.total
    }

    /// Restore the invariant that `active` holds the earliest events
    /// whenever the queue is non-empty: load the next occupied bucket,
    /// opening a fresh page from `overflow` if the current one is spent.
    #[cold]
    fn settle(&mut self) {
        debug_assert!(self.active.is_empty());
        loop {
            if self.wheel_count > 0 {
                let b = self.next_occupied_bucket();
                let bucket = std::mem::take(&mut self.wheel[b]);
                self.wheel_count -= bucket.len();
                self.occupied[b >> 6] &= !(1u64 << (b & 63));
                self.cursor = b + 1;
                self.active_last = self
                    .page_start
                    .saturating_add((((b + 1) as u64) << GRAN_BITS) - 1);
                // O(k) heapify of the bucket.
                self.active = BinaryHeap::from(bucket);
                return;
            }
            if self.overflow.is_empty() {
                return;
            }
            // Open the page containing the earliest overflow event.
            let min = self
                .overflow
                .peek()
                .expect("checked non-empty")
                .at
                .as_nanos();
            self.page_start = min & !((1u64 << GRAN_BITS) - 1);
            self.page_last = self.page_start.saturating_add(PAGE_SPAN - 1);
            self.cursor = 0;
            while let Some(s) = self.overflow.peek() {
                if s.at.as_nanos() > self.page_last {
                    break;
                }
                let ev = self.overflow.pop().expect("peeked");
                let b = ((ev.at.as_nanos() - self.page_start) >> GRAN_BITS) as usize;
                self.wheel[b].push(ev);
                self.occupied[b >> 6] |= 1u64 << (b & 63);
                self.wheel_count += 1;
            }
        }
    }

    /// Index of the first occupied bucket at or after `cursor`.
    #[inline]
    fn next_occupied_bucket(&self) -> usize {
        let mut w = self.cursor >> 6;
        // Mask off bits below the cursor within its word.
        let mut word = self.occupied[w] & (!0u64 << (self.cursor & 63));
        loop {
            if word != 0 {
                return (w << 6) + word.trailing_zeros() as usize;
            }
            w += 1;
            debug_assert!(w < BITMAP_WORDS, "wheel_count > 0 but no bucket set");
            word = self.occupied[w];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), "c");
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Nanos(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Nanos(5), 5);
        q.push(Nanos(1), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.push(Nanos(3), 3);
        q.push(Nanos(2), 2);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 5);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Nanos(7), ());
        q.push(Nanos(3), ());
        assert_eq!(q.peek_time(), Some(Nanos(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Nanos(7)));
    }

    #[test]
    fn len_and_totals() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Nanos(1), ());
        q.push(Nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn events_beyond_one_page_still_ordered() {
        // Mix events inside the first page, several pages out, and at
        // extreme timestamps; pop order must be globally sorted.
        let mut q = EventQueue::new();
        let times = [
            0u64,
            100,
            PAGE_SPAN - 1,
            PAGE_SPAN,
            PAGE_SPAN + 1,
            3 * PAGE_SPAN + 17,
            10 * PAGE_SPAN,
            u64::MAX - 1,
            u64::MAX,
        ];
        // Push in reverse so insertion order disagrees with time order.
        for &t in times.iter().rev() {
            q.push(Nanos(t), t);
        }
        let mut got = Vec::new();
        while let Some(ev) = q.pop() {
            assert_eq!(ev.at.as_nanos(), ev.payload);
            got.push(ev.payload);
        }
        assert_eq!(got, times);
    }

    #[test]
    fn sparse_far_future_timers_cross_pages() {
        // A lone self-rescheduling timer with a period far beyond one
        // page (the RTO pattern) must keep firing in order.
        let mut q = EventQueue::new();
        let period = 5 * PAGE_SPAN + 123;
        q.push(Nanos(0), 0u64);
        let mut fired = 0u64;
        let mut last = 0u64;
        while let Some(ev) = q.pop() {
            assert!(ev.at.as_nanos() >= last);
            last = ev.at.as_nanos();
            fired += 1;
            if fired < 50 {
                q.push(Nanos(last + period), fired);
            }
        }
        assert_eq!(fired, 50);
    }

    #[test]
    fn keyed_events_order_by_at_seq_lane() {
        let mut q = EventQueue::new();
        // Push in scrambled order; expect (at, seq, lane) pop order.
        q.push_keyed(Nanos(10), 2, 0, "c");
        q.push_keyed(Nanos(10), 1, 9, "b2");
        q.push_keyed(Nanos(10), 1, 3, "b1");
        q.push_keyed(Nanos(5), 7, 7, "a");
        q.push_keyed(Nanos(20), 0, 0, "d");
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(got, ["a", "b1", "b2", "c", "d"]);
    }

    #[test]
    fn drain_all_returns_key_order_and_resets() {
        let mut q = EventQueue::new();
        q.push(Nanos(3 * PAGE_SPAN), 30);
        q.push(Nanos(5), 5);
        q.push(Nanos(PAGE_SPAN + 1), 10);
        // Advance paging state past the first bucket before draining.
        assert_eq!(q.pop().unwrap().payload, 5);
        let drained = q.drain_all();
        assert_eq!(
            drained.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![10, 30]
        );
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 3);
        // A reset queue must accept timestamps below the old cursor again.
        for ev in drained {
            q.restore(ev);
        }
        q.push(Nanos(1), 1);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(got, vec![1, 10, 30]);
    }

    #[test]
    fn same_time_ties_across_migration_boundaries() {
        // Ties scheduled before and after an event migrates from
        // overflow into the wheel must still pop in seq order.
        let mut q = EventQueue::new();
        let t = 2 * PAGE_SPAN + 500;
        q.push(Nanos(t), 0); // lands in overflow
        q.push(Nanos(0), 100);
        assert_eq!(q.pop().unwrap().payload, 100); // opens page 0 then page 2
        q.push(Nanos(t), 1); // queue settled onto t's page: lands in active/wheel
        q.push(Nanos(t), 2);
        assert_eq!(q.pop().unwrap().payload, 0);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
    }
}
