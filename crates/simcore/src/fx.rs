//! A fast, non-cryptographic hasher for dense integer keys.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs ~1 ns per word — noticeable when the key is a
//! 4-byte QP or host id looked up once per simulated packet. Simulation
//! state is never attacker-controlled, so we trade that resistance for a
//! single multiply-rotate per word (the "Fx" scheme popularized by the
//! Firefox and rustc codebases, re-derived here so the workspace stays
//! dependency-free).
//!
//! Use the [`FxHashMap`]/[`FxHashSet`] aliases for hot-path tables keyed
//! on ids; keep the std default for anything configuration-sized.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiplicative mixing constant (2^64 / φ, forced odd).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const ROTATE: u32 = 26;

/// Multiply-rotate hasher; one multiply per 8 bytes of input.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (deterministic: no per-map seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn dense_small_keys_spread() {
        // Sequential ids must not collide into a few buckets: check the
        // low bits (what HashMap uses for bucket selection) look spread.
        let mut low_bits = FxHashSet::default();
        for i in 0..256u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0xFF);
        }
        assert!(low_bits.len() > 150, "only {} distinct", low_bits.len());
    }

    #[test]
    fn tuple_keys_work() {
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }
}
