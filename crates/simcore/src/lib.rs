//! # simcore — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the Themis reproduction: a small,
//! allocation-lean, fully deterministic discrete-event simulation (DES)
//! kernel. Everything above it (links, switches, RNICs, collective
//! workloads) is expressed as events scheduled on the [`engine::Engine`].
//!
//! Design goals:
//!
//! * **Determinism.** Two runs with the same configuration and seed produce
//!   bit-identical results. The event heap breaks time ties by insertion
//!   sequence number, and randomness comes from explicit, per-component
//!   [`rng::Xoshiro256`] streams derived from a root seed.
//! * **Throughput.** Figure-5 experiments schedule tens of millions of
//!   events; the hot path is a paged timer-wheel push/pop of a small POD
//!   struct (see [`event`]), and hot id-keyed tables use the SipHash-free
//!   [`fx`] hasher.
//! * **No global state.** The engine is a plain value owned by the caller;
//!   there are no thread-locals or singletons, so tests can run many
//!   simulations in parallel.
//!
//! The crate deliberately knows nothing about networking — it provides time
//! ([`time::Nanos`]), ordered event delivery ([`event::EventQueue`]),
//! pseudo-randomness ([`rng`]) and measurement utilities ([`stats`]).

pub mod engine;
pub mod event;
pub mod fx;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::Engine;
pub use event::{EventQueue, Scheduled};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet};
pub use rng::{SplitMix64, Xoshiro256};
pub use time::{Nanos, TimeDelta};
