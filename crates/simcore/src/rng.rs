//! Deterministic pseudo-random number generation.
//!
//! The simulator derives one [`Xoshiro256`] stream per component (switch,
//! NIC, workload driver, ...) from a single root seed via [`SplitMix64`].
//! Per-component substreams mean that adding or removing one randomness
//! consumer never perturbs the draws seen by the others, which keeps A/B
//! comparisons between load-balancing schemes noise-free.
//!
//! xoshiro256** is the reference general-purpose generator of Blackman &
//! Vigna; SplitMix64 is the recommended seeder for it. Both are implemented
//! here directly (≈40 lines) rather than pulled from a crate so the hot path
//! stays inlineable and the exact sequence is pinned by our own tests.

/// SplitMix64: a tiny, well-distributed 64-bit generator used for seeding.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a seeder from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the simulator's workhorse generator.
///
/// ```
/// use simcore::rng::Xoshiro256;
/// let mut a = Xoshiro256::seeded(42);
/// let mut b = Xoshiro256::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// assert!(a.next_below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 as recommended by the xoshiro authors.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is a fixed point; SplitMix64 cannot produce four
        // consecutive zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x1;
        }
        Xoshiro256 { s }
    }

    /// Derive the `index`-th independent substream of this generator's seed
    /// space. Substreams with different indices are statistically
    /// independent for simulation purposes.
    pub fn substream(root_seed: u64, index: u64) -> Self {
        // Mix the index through SplitMix64 so substreams 0,1,2... do not
        // start in correlated states.
        let mut sm = SplitMix64::new(root_seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        let mixed = sm.next_u64();
        Xoshiro256::seeded(mixed)
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below(0)");
        // Fast path for powers of two.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform value in `[lo, hi)`. `lo < hi` required.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "next_range({lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    #[inline]
    pub fn next_exponential(&mut self, mean: f64) -> f64 {
        // Inverse CDF; guard the log argument away from 0.
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same sequence.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent_of_sibling_count() {
        // Substream k must not depend on how many other substreams exist.
        let s3 = Xoshiro256::substream(99, 3).next_u64();
        let s3_again = Xoshiro256::substream(99, 3).next_u64();
        assert_eq!(s3, s3_again);
        let s4 = Xoshiro256::substream(99, 4).next_u64();
        assert_ne!(s3, s4);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256::seeded(7);
        for bound in [1u64, 2, 3, 5, 7, 10, 100, 1000, 1 << 20] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_range_respects_bounds() {
        let mut r = Xoshiro256::seeded(17);
        for _ in 0..1000 {
            let v = r.next_range(50, 75);
            assert!((50..75).contains(&v));
        }
        // Degenerate single-value range.
        assert_eq!(r.next_range(9, 10), 9);
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = Xoshiro256::seeded(11);
        let bound = 8u64;
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.next_below(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for c in counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket deviates {dev}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::seeded(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_bool_matches_probability() {
        let mut r = Xoshiro256::seeded(9);
        let hits = (0..100_000).filter(|_| r.next_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = Xoshiro256::seeded(13);
        let n = 100_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| r.next_exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() / mean < 0.03, "mean {got}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seeded(21);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved something (astronomically unlikely not to).
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
