//! Measurement utilities: counters, binned time series, rate meters and
//! log-bucket histograms.
//!
//! These are the building blocks for reproducing the paper's figures:
//! Fig 1b (retransmission ratio over time) and Fig 1c (sending rate over
//! time) are [`TimeSeries`] of ratios/rates binned on simulated time;
//! Fig 1d and Fig 5 are scalar summaries.

use crate::time::{Nanos, TimeDelta};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A time series that accumulates samples into fixed-width time bins.
///
/// Each bin stores a sum and a sample count, so the caller can extract
/// per-bin means (e.g. average sending rate per 10 µs window).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bin_width: TimeDelta,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// A series with the given bin width.
    pub fn new(bin_width: TimeDelta) -> Self {
        assert!(bin_width.as_nanos() > 0, "bin width must be positive");
        TimeSeries {
            bin_width,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Record `value` at time `at`.
    pub fn record(&mut self, at: Nanos, value: f64) {
        let bin = (at.as_nanos() / self.bin_width.as_nanos()) as usize;
        if bin >= self.sums.len() {
            self.sums.resize(bin + 1, 0.0);
            self.counts.resize(bin + 1, 0);
        }
        self.sums[bin] += value;
        self.counts[bin] += 1;
    }

    /// Bin width.
    pub fn bin_width(&self) -> TimeDelta {
        self.bin_width
    }

    /// Number of bins (including empty interior bins).
    pub fn num_bins(&self) -> usize {
        self.sums.len()
    }

    /// Mean of samples in bin `i`, or `None` for empty bins.
    pub fn bin_mean(&self, i: usize) -> Option<f64> {
        match self.counts.get(i) {
            Some(&c) if c > 0 => Some(self.sums[i] / c as f64),
            _ => None,
        }
    }

    /// Sum of samples in bin `i` (0.0 for empty bins).
    pub fn bin_sum(&self, i: usize) -> f64 {
        self.sums.get(i).copied().unwrap_or(0.0)
    }

    /// `(bin_start_time, mean)` pairs for all non-empty bins.
    pub fn means(&self) -> Vec<(Nanos, f64)> {
        (0..self.num_bins())
            .filter_map(|i| {
                self.bin_mean(i)
                    .map(|m| (Nanos(i as u64 * self.bin_width.as_nanos()), m))
            })
            .collect()
    }

    /// Overall mean across all samples.
    pub fn overall_mean(&self) -> Option<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return None;
        }
        Some(self.sums.iter().sum::<f64>() / total as f64)
    }
}

/// Converts byte deliveries over time into a throughput series (bits/s).
///
/// Bytes recorded in each bin are divided by the bin duration, yielding the
/// average rate within that bin — the standard way throughput-over-time
/// plots (Fig 1c) are produced.
#[derive(Debug, Clone)]
pub struct RateMeter {
    bin_width: TimeDelta,
    bytes: Vec<u64>,
    total_bytes: u64,
    first: Option<Nanos>,
    last: Nanos,
}

impl RateMeter {
    /// A meter with the given bin width.
    pub fn new(bin_width: TimeDelta) -> Self {
        assert!(bin_width.as_nanos() > 0, "bin width must be positive");
        RateMeter {
            bin_width,
            bytes: Vec::new(),
            total_bytes: 0,
            first: None,
            last: Nanos::ZERO,
        }
    }

    /// Record `n` bytes delivered at time `at`.
    pub fn record(&mut self, at: Nanos, n: u64) {
        let bin = (at.as_nanos() / self.bin_width.as_nanos()) as usize;
        if bin >= self.bytes.len() {
            self.bytes.resize(bin + 1, 0);
        }
        self.bytes[bin] += n;
        self.total_bytes += n;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = self.last.max(at);
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// `(bin_start_time, gbps)` for every bin in range (empty bins are 0).
    pub fn series_gbps(&self) -> Vec<(Nanos, f64)> {
        let width_s = self.bin_width.as_secs_f64();
        self.bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                (
                    Nanos(i as u64 * self.bin_width.as_nanos()),
                    (b as f64 * 8.0) / width_s / 1e9,
                )
            })
            .collect()
    }

    /// Mean throughput in Gbit/s between the first and last record.
    pub fn mean_gbps(&self) -> f64 {
        match self.first {
            None => 0.0,
            Some(first) => {
                let span = self.last.since(first).as_secs_f64();
                if span <= 0.0 {
                    0.0
                } else {
                    (self.total_bytes as f64 * 8.0) / span / 1e9
                }
            }
        }
    }
}

/// A histogram with logarithmic buckets, good enough for latency tails.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; values are `u64` (e.g. nanoseconds).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile `q` in `[0,1]`: upper bound of the bucket that
    /// contains the q-th sample.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper edge of bucket i, clamped to observed max.
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn timeseries_bins_and_means() {
        let mut ts = TimeSeries::new(TimeDelta::from_micros(10));
        ts.record(Nanos::from_micros(1), 2.0);
        ts.record(Nanos::from_micros(9), 4.0);
        ts.record(Nanos::from_micros(15), 10.0);
        assert_eq!(ts.num_bins(), 2);
        assert_eq!(ts.bin_mean(0), Some(3.0));
        assert_eq!(ts.bin_mean(1), Some(10.0));
        assert_eq!(ts.overall_mean(), Some(16.0 / 3.0));
    }

    #[test]
    fn timeseries_empty_bins_are_none() {
        let mut ts = TimeSeries::new(TimeDelta::from_micros(1));
        ts.record(Nanos::from_micros(5), 1.0);
        assert_eq!(ts.bin_mean(0), None);
        assert_eq!(ts.bin_mean(5), Some(1.0));
        assert_eq!(ts.means().len(), 1);
    }

    #[test]
    fn rate_meter_gbps() {
        let mut rm = RateMeter::new(TimeDelta::from_micros(1));
        // 12500 bytes in 1 us = 100 Gbps.
        rm.record(Nanos(100), 12_500);
        let series = rm.series_gbps();
        assert_eq!(series.len(), 1);
        assert!((series[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rate_meter_mean_spans_first_to_last() {
        let mut rm = RateMeter::new(TimeDelta::from_micros(1));
        rm.record(Nanos::ZERO, 12_500);
        rm.record(Nanos::from_micros(1), 12_500);
        // 25 KB over 1 us -> 200 Gbps (span is first..last).
        assert!((rm.mean_gbps() - 200.0).abs() < 1e-9);
        assert_eq!(rm.total_bytes(), 25_000);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.quantile(0.5).unwrap();
        assert!((256..=1023).contains(&p50), "p50 bucket edge {p50}");
        assert_eq!(h.quantile(1.0), Some(1000));
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_zero_value() {
        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.quantile(0.5), Some(0));
    }
}
