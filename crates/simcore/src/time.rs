//! Simulation time.
//!
//! Time is a monotonically non-decreasing count of simulated nanoseconds
//! ([`Nanos`]); intervals are [`TimeDelta`]. Both are thin `u64` newtypes so
//! they are free to copy and cannot be confused with byte counts or other
//! integers in the packet-processing hot path.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute simulation timestamp in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

/// A non-negative time interval in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(pub u64);

impl Nanos {
    /// Time zero (simulation start).
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable timestamp; used as an "infinite" horizon.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// This timestamp expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This timestamp expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This timestamp expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Interval from `earlier` to `self`.
    ///
    /// Saturates to zero if `earlier` is in the future, which keeps callers
    /// robust against re-ordered bookkeeping (the simulation itself never
    /// moves backwards).
    #[inline]
    pub fn since(self, earlier: Nanos) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }
}

impl TimeDelta {
    /// Zero-length interval.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> TimeDelta {
        TimeDelta(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> TimeDelta {
        TimeDelta(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> TimeDelta {
        TimeDelta(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> TimeDelta {
        TimeDelta(s * 1_000_000_000)
    }

    /// Interval in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Interval in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The time needed to serialize `bytes` onto a link of `bits_per_sec`,
    /// rounded up to the next whole nanosecond so back-to-back packets never
    /// overlap on the wire.
    #[inline]
    pub fn serialization(bytes: u64, bits_per_sec: u64) -> TimeDelta {
        debug_assert!(bits_per_sec > 0, "link bandwidth must be positive");
        let bits = bytes * 8;
        // ceil(bits * 1e9 / bps) without overflow for realistic values:
        // bytes <= 9000, bps <= 800e9 easily fits in u128.
        let ns = ((bits as u128) * 1_000_000_000u128).div_ceil(bits_per_sec as u128);
        TimeDelta(ns as u64)
    }

    /// Scale this interval by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(k))
    }
}

impl Add<TimeDelta> for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<TimeDelta> for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Nanos> for Nanos {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: Nanos) -> TimeDelta {
        self.since(rhs)
    }
}

impl Add<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<TimeDelta> for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Nanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Nanos::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Nanos::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(TimeDelta::from_micros(1).as_nanos(), 1_000);
    }

    #[test]
    fn add_and_subtract() {
        let t = Nanos::from_micros(10) + TimeDelta::from_micros(5);
        assert_eq!(t.as_nanos(), 15_000);
        assert_eq!((t - Nanos::from_micros(10)).as_nanos(), 5_000);
    }

    #[test]
    fn since_saturates() {
        let early = Nanos(100);
        let late = Nanos(300);
        assert_eq!(late.since(early).as_nanos(), 200);
        assert_eq!(early.since(late).as_nanos(), 0);
    }

    #[test]
    fn serialization_time_100g() {
        // 1500B at 100 Gbps = 120 ns exactly.
        let d = TimeDelta::serialization(1500, 100_000_000_000);
        assert_eq!(d.as_nanos(), 120);
    }

    #[test]
    fn serialization_time_400g() {
        // 1500B at 400 Gbps = 30 ns exactly.
        let d = TimeDelta::serialization(1500, 400_000_000_000);
        assert_eq!(d.as_nanos(), 30);
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps = 8/3 * 1e9 ns, must round up.
        let d = TimeDelta::serialization(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(5)), "5ns");
        assert_eq!(format!("{}", Nanos(5_000)), "5.000us");
        assert_eq!(format!("{}", Nanos(5_000_000)), "5.000ms");
        assert_eq!(format!("{}", Nanos(5_000_000_000)), "5.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Nanos(1) < Nanos(2));
        assert!(TimeDelta(1) < TimeDelta(2));
        assert_eq!(Nanos::ZERO.as_nanos(), 0);
    }
}
