//! Telemetry: a zero-allocation-on-hot-path metric registry, a bounded
//! structured event ring, and a versioned JSON report format shared by
//! every layer of the simulation stack.
//!
//! The crate is dependency-free (it does not even depend on `simcore`)
//! so any crate in the workspace can report into it. Simulated time
//! enters through a [`SharedClock`] that the simulation engine updates
//! on every event dispatch; components never pass timestamps
//! explicitly on the hot path.
//!
//! # Architecture
//!
//! * [`Registry`] — counters, gauges and time-bucketed histograms.
//!   Registration by name happens at assembly time and allocates ids;
//!   recording afterwards is an indexed store (see the id-allocation
//!   rules in [`registry`]).
//! * [`EventRing`] — fixed-capacity, overwrite-oldest buffer of
//!   structured events ([`EventKind`]), for post-mortem `--trace-last`
//!   dumps.
//! * [`Sink`] — the shared handle components hold. Cloning a sink is
//!   cheap (two `Rc` bumps) and all clones report into the same
//!   registry and ring. Sinks are deliberately **not** `Send`: a sink
//!   belongs to one simulated world, and worlds never cross threads —
//!   sweep workers return plain-data [`RunReport`] snapshots instead.
//! * [`RunReport`] / [`Report`] — `Send + Clone` snapshots and the
//!   versioned `themis-telemetry` JSON document (see [`report`]).
//!
//! # Example
//!
//! ```
//! use telemetry::{EventKind, Report, Sink};
//!
//! let sink = Sink::new(16);
//! let drops = sink.counter("fabric.drops.buffer");
//! let gap = sink.time_hist("rnic.ooo_gap", 1_000, 8);
//!
//! sink.clock().set(2_500); // the engine does this on every dispatch
//! sink.inc(drops);
//! sink.observe(gap, 3);
//! sink.event(EventKind::PacketDrop, 7, 42);
//!
//! let mut report = Report::new();
//! report.add_run("demo", sink.snapshot());
//! let json = report.to_json();
//! assert!(json.contains("\"fabric.drops.buffer\": 1"));
//! assert!(json.contains("\"packet_drop\""));
//! ```

#![warn(missing_docs)]

pub mod registry;
pub mod report;
pub mod ring;

pub use registry::{BinStat, CounterId, GaugeId, HistId, Registry, TimeHist};
pub use report::{
    BinSnapshot, EventSnapshot, EventsSnapshot, HistSnapshot, Report, RunReport, SCHEMA_NAME,
    SCHEMA_VERSION,
};
pub use ring::{EventKind, EventRecord, EventRing};

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A shared simulated-time clock (nanoseconds).
///
/// The simulation engine owns the authoritative clock and mirrors it
/// into this cell after each advance; every [`Sink`] clone reads it
/// when stamping observations and events. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct SharedClock(Rc<Cell<u64>>);

impl SharedClock {
    /// A clock starting at 0 ns.
    pub fn new() -> SharedClock {
        SharedClock::default()
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.get()
    }

    /// Set the simulated time (called by the engine).
    #[inline]
    pub fn set(&self, ns: u64) {
        self.0.set(ns);
    }
}

/// The `(seq, lane)` canonical key of the event currently being
/// dispatched, mirrored by the engine alongside the [`SharedClock`].
///
/// Structured event records are stamped with it so rings recorded by
/// different shards of a partitioned run can be merged back into the
/// exact serial dispatch order: `(at_ns, seq, lane)` is a total order
/// over dispatches. The stamp never reaches the JSON schema — it is
/// merge metadata only.
#[derive(Debug, Clone, Default)]
pub struct SharedStamp(Rc<Cell<(u64, u32)>>);

impl SharedStamp {
    /// A stamp starting at `(0, 0)`.
    pub fn new() -> SharedStamp {
        SharedStamp::default()
    }

    /// The `(seq, lane)` key of the current dispatch.
    #[inline]
    pub fn get(&self) -> (u64, u32) {
        self.0.get()
    }

    /// Set the current dispatch key (called by the engine).
    #[inline]
    pub fn set(&self, seq: u64, lane: u32) {
        self.0.set((seq, lane));
    }
}

#[derive(Debug)]
struct SinkInner {
    registry: Registry,
    ring: EventRing,
}

/// The shared telemetry handle held by every instrumented component.
///
/// All clones of a sink share one [`Registry`], one [`EventRing`] and
/// one [`SharedClock`]. Recording operations borrow the shared state
/// for the duration of one indexed store — zero allocation, no event
/// scheduling, no effect on simulation determinism.
#[derive(Debug, Clone)]
pub struct Sink {
    clock: SharedClock,
    stamp: SharedStamp,
    inner: Rc<RefCell<SinkInner>>,
}

impl Sink {
    /// A fresh sink with an event ring of `ring_capacity` entries.
    pub fn new(ring_capacity: usize) -> Sink {
        Sink {
            clock: SharedClock::new(),
            stamp: SharedStamp::new(),
            inner: Rc::new(RefCell::new(SinkInner {
                registry: Registry::new(),
                ring: EventRing::new(ring_capacity),
            })),
        }
    }

    /// The clock all observations are stamped with. Hand this to the
    /// simulation engine so it can mirror its time into it.
    pub fn clock(&self) -> SharedClock {
        self.clock.clone()
    }

    /// The dispatch-key stamp event records carry (see [`SharedStamp`]).
    /// Hand this to the simulation engine alongside the clock.
    pub fn stamp(&self) -> SharedStamp {
        self.stamp.clone()
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&self, name: &str) -> CounterId {
        self.inner.borrow_mut().registry.counter(name)
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&self, name: &str) -> GaugeId {
        self.inner.borrow_mut().registry.gauge(name)
    }

    /// Register (or look up) a time-bucketed histogram by name.
    pub fn time_hist(&self, name: &str, bin_width_ns: u64, bins: usize) -> HistId {
        self.inner
            .borrow_mut()
            .registry
            .time_hist(name, bin_width_ns, bins)
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.inner.borrow_mut().registry.inc(id);
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.inner.borrow_mut().registry.add(id, n);
    }

    /// Set a gauge.
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, v: f64) {
        self.inner.borrow_mut().registry.set(id, v);
    }

    /// Record `value` in a histogram at the current simulated time.
    #[inline]
    pub fn observe(&self, id: HistId, value: u64) {
        let now = self.clock.now();
        self.inner.borrow_mut().registry.observe(id, now, value);
    }

    /// Record a structured event at the current simulated time.
    #[inline]
    pub fn event(&self, kind: EventKind, qp: u64, arg: u64) {
        let at_ns = self.clock.now();
        let (seq, lane) = self.stamp.get();
        self.inner.borrow_mut().ring.push(EventRecord {
            at_ns,
            seq,
            lane,
            kind,
            qp,
            arg,
        });
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.inner.borrow().registry.counter_value(id)
    }

    /// Events recorded over the run (including overwritten ones).
    pub fn events_total(&self) -> u64 {
        self.inner.borrow().ring.total_seen()
    }

    /// The most recent `n` events, oldest of those first.
    pub fn last_events(&self, n: usize) -> Vec<EventRecord> {
        self.inner.borrow().ring.last(n)
    }

    /// Snapshot the registry and ring into a `Send + Clone` report.
    pub fn snapshot(&self) -> RunReport {
        let inner = self.inner.borrow();
        RunReport::from_parts(&inner.registry, &inner.ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state_and_clock() {
        let sink = Sink::new(4);
        let other = sink.clone();
        let c = sink.counter("shared");
        let c2 = other.counter("shared");
        assert_eq!(c, c2);
        other.inc(c2);
        sink.add(c, 2);
        assert_eq!(sink.counter_value(c), 3);

        sink.clock().set(777);
        other.event(EventKind::RtoFired, 9, 0);
        let evs = sink.last_events(1);
        assert_eq!(evs[0].at_ns, 777);
        assert_eq!(evs[0].qp, 9);
    }

    #[test]
    fn observe_stamps_with_clock_time() {
        let sink = Sink::new(4);
        let h = sink.time_hist("h", 100, 4);
        sink.clock().set(250);
        sink.observe(h, 5);
        let snap = sink.snapshot();
        assert_eq!(snap.hists[0].1.bins[0].start_ns, 200);
    }

    #[test]
    fn empty_sink_snapshot_is_empty() {
        let sink = Sink::new(4);
        let snap = sink.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.hists.is_empty());
        assert_eq!(snap.events.total, 0);
        assert!(snap.events.ring.is_empty());
    }
}
