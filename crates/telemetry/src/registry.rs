//! The metric registry: counters, gauges and time-bucketed histograms
//! keyed by small integer ids.
//!
//! Registration (by name) happens once at assembly time and may
//! allocate; every recording operation afterwards is an indexed store
//! into pre-allocated vectors — **zero allocation on the hot path**.
//!
//! Id-allocation rules:
//!
//! * ids are dense `u16` indices, allocated in registration order;
//! * registration is idempotent: registering an existing name returns
//!   the id it already has (so every switch/NIC of a fabric can call
//!   the same `register` helper and share one set of fabric-wide ids);
//! * ids are only meaningful within the [`Registry`] that issued them —
//!   never mix ids across sinks;
//! * counters saturate at `u64::MAX` instead of wrapping, so a
//!   corrupted-looking zero can never be produced by overflow.

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u16);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u16);

/// Handle to a registered time-bucketed histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) u16);

/// Per-time-bin value statistics of a [`TimeHist`].
#[derive(Debug, Clone, Copy)]
pub struct BinStat {
    /// Values recorded in this bin.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest recorded value (0 while empty).
    pub max: u64,
}

impl BinStat {
    const EMPTY: BinStat = BinStat {
        count: 0,
        sum: 0,
        min: u64::MAX,
        max: 0,
    };

    #[inline]
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// A histogram whose buckets are **simulated-time bins**: each
/// observation lands in the bin of the time it was recorded at, and the
/// bin accumulates count/sum/min/max of the observed values.
///
/// All bins are pre-allocated; observations past the last bin are
/// clamped into it (recorded in `clamped` so reports can flag
/// truncation), keeping the record path allocation-free.
#[derive(Debug, Clone)]
pub struct TimeHist {
    bin_width_ns: u64,
    bins: Vec<BinStat>,
    count: u64,
    sum: u64,
    clamped: u64,
}

impl TimeHist {
    /// A histogram covering `bins * bin_width_ns` nanoseconds of
    /// simulated time.
    pub fn new(bin_width_ns: u64, bins: usize) -> TimeHist {
        assert!(bin_width_ns > 0, "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        TimeHist {
            bin_width_ns,
            bins: vec![BinStat::EMPTY; bins],
            count: 0,
            sum: 0,
            clamped: 0,
        }
    }

    /// Record `value` at simulated time `at_ns`.
    #[inline]
    pub fn record(&mut self, at_ns: u64, value: u64) {
        let bin = (at_ns / self.bin_width_ns) as usize;
        let last = self.bins.len() - 1;
        if bin > last {
            self.clamped += 1;
        }
        self.bins[bin.min(last)].record(value);
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Bin width in nanoseconds.
    pub fn bin_width_ns(&self) -> u64 {
        self.bin_width_ns
    }

    /// All bins (including empty ones).
    pub fn bins(&self) -> &[BinStat] {
        &self.bins
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Observations that fell past the last bin and were clamped into it.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Mean observed value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The id-keyed metric store. See the module docs for the allocation
/// rules.
#[derive(Debug, Default)]
pub struct Registry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<f64>,
    hist_names: Vec<String>,
    hists: Vec<TimeHist>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i as u16);
        }
        assert!(
            self.counters.len() < u16::MAX as usize,
            "counter space full"
        );
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId((self.counters.len() - 1) as u16)
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i as u16);
        }
        assert!(self.gauges.len() < u16::MAX as usize, "gauge space full");
        self.gauge_names.push(name.to_string());
        self.gauges.push(0.0);
        GaugeId((self.gauges.len() - 1) as u16)
    }

    /// Register (or look up) a time-bucketed histogram by name. The
    /// shape (`bin_width_ns`, `bins`) is fixed by the first
    /// registration; later registrations of the same name return the
    /// existing histogram unchanged.
    pub fn time_hist(&mut self, name: &str, bin_width_ns: u64, bins: usize) -> HistId {
        if let Some(i) = self.hist_names.iter().position(|n| n == name) {
            return HistId(i as u16);
        }
        assert!(self.hists.len() < u16::MAX as usize, "histogram space full");
        self.hist_names.push(name.to_string());
        self.hists.push(TimeHist::new(bin_width_ns, bins));
        HistId((self.hists.len() - 1) as u16)
    }

    /// Add `n` to a counter (saturating).
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        let c = &mut self.counters[id.0 as usize];
        *c = c.saturating_add(n);
    }

    /// Increment a counter by one (saturating).
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Set a gauge to `v`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize] = v;
    }

    /// Record `value` at simulated time `at_ns` in a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, at_ns: u64, value: u64) {
        self.hists[id.0 as usize].record(at_ns, value);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize]
    }

    /// Read access to a histogram.
    pub fn hist(&self, id: HistId) -> &TimeHist {
        &self.hists[id.0 as usize]
    }

    /// `(name, value)` for every registered counter, registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .map(|n| n.as_str())
            .zip(self.counters.iter().copied())
    }

    /// `(name, value)` for every registered gauge, registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_names
            .iter()
            .map(|n| n.as_str())
            .zip(self.gauges.iter().copied())
    }

    /// `(name, hist)` for every registered histogram, registration order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &TimeHist)> {
        self.hist_names
            .iter()
            .map(|n| n.as_str())
            .zip(self.hists.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_register_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("y");
        let a2 = r.counter("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        r.inc(a);
        r.add(a2, 4);
        assert_eq!(r.counter_value(a), 5);
        assert_eq!(r.counter_value(b), 0);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut r = Registry::new();
        let c = r.counter("sat");
        r.add(c, u64::MAX - 1);
        r.add(c, 10);
        assert_eq!(r.counter_value(c), u64::MAX);
        r.inc(c);
        assert_eq!(r.counter_value(c), u64::MAX);
    }

    #[test]
    fn gauge_set_and_read() {
        let mut r = Registry::new();
        let g = r.gauge("rate");
        assert_eq!(r.gauge_value(g), 0.0);
        r.set(g, 99.5);
        assert_eq!(r.gauge_value(g), 99.5);
    }

    #[test]
    fn time_hist_bins_by_time_and_clamps_overflow() {
        let mut h = TimeHist::new(100, 4); // covers [0, 400) ns
        h.record(0, 10);
        h.record(150, 20);
        h.record(399, 30);
        h.record(1_000_000, 40); // beyond last bin -> clamped into bin 3
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.clamped(), 1);
        assert_eq!(h.bins()[0].count, 1);
        assert_eq!(h.bins()[1].count, 1);
        assert_eq!(h.bins()[2].count, 0);
        assert_eq!(h.bins()[3].count, 2);
        assert_eq!(h.bins()[3].min, 30);
        assert_eq!(h.bins()[3].max, 40);
        assert!((h.mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn time_hist_sum_saturates() {
        let mut h = TimeHist::new(1, 1);
        h.record(0, u64::MAX);
        h.record(0, u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.bins()[0].sum, u64::MAX);
    }

    #[test]
    fn empty_registry_iterates_nothing() {
        let r = Registry::new();
        assert_eq!(r.counters().count(), 0);
        assert_eq!(r.gauges().count(), 0);
        assert_eq!(r.hists().count(), 0);
    }
}
