//! Snapshot types and the versioned JSON report writer.
//!
//! A [`RunReport`] is a plain-data snapshot of one run's metrics —
//! unlike [`crate::Sink`] it is `Send + Clone`, so sweep workers can
//! return it across threads. A [`Report`] maps run labels to snapshots
//! and serializes to the `themis-telemetry` JSON schema:
//!
//! ```json
//! {
//!   "schema": "themis-telemetry",
//!   "version": 1,
//!   "runs": {
//!     "<label>": {
//!       "counters": { "<name>": 0 },
//!       "gauges": { "<name>": 0.0 },
//!       "histograms": {
//!         "<name>": {
//!           "bin_width_ns": 1,
//!           "count": 0,
//!           "sum": 0,
//!           "clamped": 0,
//!           "bins": [ { "start_ns": 0, "count": 0, "sum": 0, "min": 0, "max": 0 } ]
//!         }
//!       },
//!       "events": {
//!         "total": 0,
//!         "capacity": 0,
//!         "ring": [ { "at_ns": 0, "kind": "packet_drop", "qp": 0, "arg": 0 } ]
//!       }
//!     }
//!   }
//! }
//! ```
//!
//! All maps are emitted with sorted keys and numbers are formatted
//! deterministically, so the output is byte-stable for a fixed seed.

use crate::ring::{EventRecord, EventRing};
use crate::{Registry, TimeHist};

/// One non-empty time bin of a histogram snapshot.
#[derive(Debug, Clone, Copy)]
pub struct BinSnapshot {
    /// Start of the bin in simulated nanoseconds.
    pub start_ns: u64,
    /// Observations in the bin.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

/// Plain-data snapshot of a [`TimeHist`]; empty bins are elided.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Bin width in nanoseconds.
    pub bin_width_ns: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Observations clamped into the last bin.
    pub clamped: u64,
    /// Non-empty bins, ascending by `start_ns`.
    pub bins: Vec<BinSnapshot>,
}

impl HistSnapshot {
    /// Snapshot a live histogram.
    pub fn from_hist(h: &TimeHist) -> HistSnapshot {
        HistSnapshot {
            bin_width_ns: h.bin_width_ns(),
            count: h.count(),
            sum: h.sum(),
            clamped: h.clamped(),
            bins: h
                .bins()
                .iter()
                .enumerate()
                .filter(|(_, b)| b.count > 0)
                .map(|(i, b)| BinSnapshot {
                    start_ns: i as u64 * h.bin_width_ns(),
                    count: b.count,
                    sum: b.sum,
                    min: b.min,
                    max: b.max,
                })
                .collect(),
        }
    }
}

/// One retained event, with the kind resolved to its stable label.
#[derive(Debug, Clone)]
pub struct EventSnapshot {
    /// Simulated time of the event.
    pub at_ns: u64,
    /// Dispatch-key `seq` (merge metadata; never serialized).
    pub seq: u64,
    /// Dispatch-key `lane` (merge metadata; never serialized).
    pub lane: u32,
    /// Stable snake_case event label.
    pub kind: &'static str,
    /// QP / flow identifier (0 when not applicable).
    pub qp: u64,
    /// Kind-specific argument.
    pub arg: u64,
}

/// Snapshot of an [`EventRing`].
#[derive(Debug, Clone, Default)]
pub struct EventsSnapshot {
    /// Events seen over the run (including overwritten ones).
    pub total: u64,
    /// Ring capacity.
    pub capacity: u64,
    /// Retained events, oldest first.
    pub ring: Vec<EventSnapshot>,
}

/// A `Send + Clone` snapshot of one run's metrics.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` histograms.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Event-ring snapshot.
    pub events: EventsSnapshot,
}

impl RunReport {
    /// An empty report (useful as a default for schemes without telemetry).
    pub fn new() -> RunReport {
        RunReport::default()
    }

    /// Snapshot a registry and event ring.
    pub fn from_parts(registry: &Registry, ring: &EventRing) -> RunReport {
        RunReport {
            counters: registry
                .counters()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            gauges: registry.gauges().map(|(n, v)| (n.to_string(), v)).collect(),
            hists: registry
                .hists()
                .map(|(n, h)| (n.to_string(), HistSnapshot::from_hist(h)))
                .collect(),
            events: EventsSnapshot {
                total: ring.total_seen(),
                capacity: ring.capacity() as u64,
                ring: ring
                    .iter_in_order()
                    .map(|e: &EventRecord| EventSnapshot {
                        at_ns: e.at_ns,
                        seq: e.seq,
                        lane: e.lane,
                        kind: e.kind.label(),
                        qp: e.qp,
                        arg: e.arg,
                    })
                    .collect(),
            },
        }
    }

    /// Append a counter (used for snapshot-time `agg.*` / `run.*` exports).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
    }

    /// Append a gauge (used for snapshot-time exports).
    pub fn push_gauge(&mut self, name: &str, value: f64) {
        self.gauges.push((name.to_string(), value));
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Sort all metric lists by name (the JSON writer sorts anyway; this
    /// makes programmatic inspection deterministic too).
    pub fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.hists.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Merge per-shard snapshots of one partitioned run into the single
    /// report the serial engine would have produced.
    ///
    /// Every shard sink registers the same instrument names, so the merge
    /// is by name: counters sum, gauges keep their first occurrence (runs
    /// record no gauges; exported gauges are appended after merging),
    /// histograms add bin-wise, and event rings interleave by the
    /// canonical dispatch key `(at_ns, seq, lane)` before re-truncating to
    /// the ring capacity. The result is sorted by name.
    pub fn merge(parts: Vec<RunReport>) -> RunReport {
        let mut parts = parts.into_iter();
        let mut merged = match parts.next() {
            Some(first) => first,
            None => return RunReport::new(),
        };
        for part in parts {
            for (name, v) in part.counters {
                match merged.counters.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, mv)) => *mv = mv.saturating_add(v),
                    None => merged.counters.push((name, v)),
                }
            }
            for (name, v) in part.gauges {
                if !merged.gauges.iter().any(|(n, _)| *n == name) {
                    merged.gauges.push((name, v));
                }
            }
            for (name, h) in part.hists {
                match merged.hists.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, mh)) => merge_hist(mh, h),
                    None => merged.hists.push((name, h)),
                }
            }
            merged.events.total += part.events.total;
            merged.events.capacity = merged.events.capacity.max(part.events.capacity);
            merged.events.ring.extend(part.events.ring);
        }
        // Stable sort: records of one dispatch share a key and stay in
        // their recording order (a dispatch runs on exactly one shard).
        merged.events.ring.sort_by_key(|e| (e.at_ns, e.seq, e.lane));
        let cap = merged.events.capacity as usize;
        if cap > 0 && merged.events.ring.len() > cap {
            let cut = merged.events.ring.len() - cap;
            merged.events.ring.drain(..cut);
        }
        merged.sort();
        merged
    }
}

/// Fold `from` into `into` bin-wise; both must share a bin width.
fn merge_hist(into: &mut HistSnapshot, from: HistSnapshot) {
    assert_eq!(
        into.bin_width_ns, from.bin_width_ns,
        "merging histograms with different bin widths"
    );
    into.count += from.count;
    into.sum += from.sum;
    into.clamped += from.clamped;
    let mut a = std::mem::take(&mut into.bins).into_iter().peekable();
    let mut b = from.bins.into_iter().peekable();
    let mut out = Vec::with_capacity(a.len() + b.len());
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) if x.start_ns == y.start_ns => {
                let mut bin = a.next().expect("peeked");
                let other = b.next().expect("peeked");
                bin.count += other.count;
                bin.sum += other.sum;
                bin.min = bin.min.min(other.min);
                bin.max = bin.max.max(other.max);
                out.push(bin);
            }
            (Some(x), Some(y)) => {
                if x.start_ns < y.start_ns {
                    out.push(a.next().expect("peeked"));
                } else {
                    out.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(a.next().expect("peeked")),
            (None, Some(_)) => out.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    into.bins = out;
}

/// A labelled collection of [`RunReport`]s that serializes to the
/// versioned `themis-telemetry` JSON document.
#[derive(Debug, Clone, Default)]
pub struct Report {
    runs: Vec<(String, RunReport)>,
}

/// Schema identifier emitted in every report.
pub const SCHEMA_NAME: &str = "themis-telemetry";
/// Current schema version.
pub const SCHEMA_VERSION: u32 = 1;

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Add a run under `label` (labels should be unique; duplicates are
    /// all emitted and later ones shadow earlier ones for readers that
    /// build maps).
    pub fn add_run(&mut self, label: &str, run: RunReport) {
        self.runs.push((label.to_string(), run));
    }

    /// Runs added so far.
    pub fn runs(&self) -> &[(String, RunReport)] {
        &self.runs
    }

    /// Serialize to the versioned JSON schema (sorted keys, 2-space
    /// indent, trailing newline; byte-stable for identical input).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str(SCHEMA_NAME)));
        out.push_str(&format!("  \"version\": {SCHEMA_VERSION},\n"));
        out.push_str("  \"runs\": {");
        let mut runs: Vec<&(String, RunReport)> = self.runs.iter().collect();
        runs.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (label, run)) in runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: ", json_str(label)));
            write_run(&mut out, run);
        }
        if !runs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Write the JSON document to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn write_run(out: &mut String, run: &RunReport) {
    out.push_str("{\n");

    out.push_str("      \"counters\": {");
    let mut counters: Vec<&(String, u64)> = run.counters.iter().collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    for (i, (n, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n        {}: {v}", json_str(n)));
    }
    if !counters.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("},\n");

    out.push_str("      \"gauges\": {");
    let mut gauges: Vec<&(String, f64)> = run.gauges.iter().collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    for (i, (n, v)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n        {}: {}", json_str(n), json_f64(*v)));
    }
    if !gauges.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("},\n");

    out.push_str("      \"histograms\": {");
    let mut hists: Vec<&(String, HistSnapshot)> = run.hists.iter().collect();
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    for (i, (n, h)) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {}: {{\"bin_width_ns\": {}, \"count\": {}, \"sum\": {}, \"clamped\": {}, \"bins\": [",
            json_str(n),
            h.bin_width_ns,
            h.count,
            h.sum,
            h.clamped
        ));
        for (j, b) in h.bins.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"start_ns\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                b.start_ns, b.count, b.sum, b.min, b.max
            ));
        }
        out.push_str("]}");
    }
    if !hists.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("},\n");

    out.push_str(&format!(
        "      \"events\": {{\"total\": {}, \"capacity\": {}, \"ring\": [",
        run.events.total, run.events.capacity
    ));
    for (i, e) in run.events.ring.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"at_ns\": {}, \"kind\": {}, \"qp\": {}, \"arg\": {}}}",
            e.at_ns,
            json_str(e.kind),
            e.qp,
            e.arg
        ));
    }
    out.push_str("]}\n    }");
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic JSON number formatting for `f64`: finite values use
/// Rust's shortest round-trip formatting (platform-independent);
/// non-finite values, which JSON cannot express, serialize as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Keep floats recognizably floats ("2" -> "2.0") so readers
        // don't see a field flip between integer and float across runs.
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    #[test]
    fn empty_report_is_stable() {
        let r = Report::new();
        assert_eq!(
            r.to_json(),
            "{\n  \"schema\": \"themis-telemetry\",\n  \"version\": 1,\n  \"runs\": {}\n}\n"
        );
    }

    #[test]
    fn empty_run_flushes_empty_sections() {
        let mut rep = Report::new();
        rep.add_run("empty", RunReport::new());
        let json = rep.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
        assert!(json.contains("\"ring\": []"));
    }

    #[test]
    fn keys_are_sorted_and_floats_stay_floats() {
        let mut run = RunReport::new();
        run.push_counter("z.last", 2);
        run.push_counter("a.first", 1);
        run.push_gauge("g.int_valued", 2.0);
        let mut rep = Report::new();
        rep.add_run("r", run);
        let json = rep.to_json();
        let a = json.find("\"a.first\"").unwrap();
        let z = json.find("\"z.last\"").unwrap();
        assert!(a < z);
        assert!(json.contains("\"g.int_valued\": 2.0"));
    }

    #[test]
    fn snapshot_round_trips_registry_and_ring() {
        let mut reg = Registry::new();
        let c = reg.counter("pkt");
        let h = reg.time_hist("lat", 100, 4);
        reg.add(c, 3);
        reg.observe(h, 150, 7);
        let mut ring = EventRing::new(2);
        ring.push(EventRecord {
            at_ns: 5,
            seq: 0,
            lane: 0,
            kind: EventKind::NackBlocked,
            qp: 1,
            arg: 42,
        });
        let run = RunReport::from_parts(&reg, &ring);
        assert_eq!(run.counter("pkt"), Some(3));
        assert_eq!(run.hists[0].1.bins.len(), 1);
        assert_eq!(run.hists[0].1.bins[0].start_ns, 100);
        assert_eq!(run.events.ring[0].kind, "nack_blocked");
        let mut rep = Report::new();
        rep.add_run("run", run);
        let json = rep.to_json();
        assert!(json.contains("\"nack_blocked\""));
        assert!(json.contains("\"pkt\": 3"));
    }

    #[test]
    fn merge_sums_counters_and_interleaves_rings() {
        let ev = |at_ns, seq, lane, arg| EventSnapshot {
            at_ns,
            seq,
            lane,
            kind: "packet_drop",
            qp: 0,
            arg,
        };
        let mut a = RunReport::new();
        a.push_counter("fabric.drops", 2);
        a.push_counter("only.a", 1);
        a.events.total = 2;
        a.events.capacity = 4;
        a.events.ring = vec![ev(10, 3, 0, 1), ev(30, 1, 2, 3)];
        let mut b = RunReport::new();
        b.push_counter("fabric.drops", 5);
        b.events.total = 2;
        b.events.capacity = 4;
        b.events.ring = vec![ev(10, 3, 1, 2), ev(40, 0, 0, 4)];
        let m = RunReport::merge(vec![a, b]);
        assert_eq!(m.counter("fabric.drops"), Some(7));
        assert_eq!(m.counter("only.a"), Some(1));
        assert_eq!(m.events.total, 4);
        let args: Vec<u64> = m.events.ring.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![1, 2, 3, 4]);
    }

    #[test]
    fn merge_truncates_ring_to_capacity_keeping_latest() {
        let ev = |at_ns| EventSnapshot {
            at_ns,
            seq: 0,
            lane: 0,
            kind: "rto_fired",
            qp: 0,
            arg: at_ns,
        };
        let mut a = RunReport::new();
        a.events.capacity = 3;
        a.events.total = 3;
        a.events.ring = vec![ev(1), ev(3), ev(5)];
        let mut b = RunReport::new();
        b.events.capacity = 3;
        b.events.total = 2;
        b.events.ring = vec![ev(2), ev(4)];
        let m = RunReport::merge(vec![a, b]);
        assert_eq!(m.events.total, 5);
        let at: Vec<u64> = m.events.ring.iter().map(|e| e.at_ns).collect();
        assert_eq!(at, vec![3, 4, 5]);
    }

    #[test]
    fn merge_folds_histogram_bins() {
        let bin = |start_ns, count, sum, min, max| BinSnapshot {
            start_ns,
            count,
            sum,
            min,
            max,
        };
        let mut a = RunReport::new();
        a.hists.push((
            "lat".to_string(),
            HistSnapshot {
                bin_width_ns: 100,
                count: 2,
                sum: 10,
                clamped: 0,
                bins: vec![bin(0, 1, 4, 4, 4), bin(200, 1, 6, 6, 6)],
            },
        ));
        let mut b = RunReport::new();
        b.hists.push((
            "lat".to_string(),
            HistSnapshot {
                bin_width_ns: 100,
                count: 2,
                sum: 9,
                clamped: 1,
                bins: vec![bin(100, 1, 2, 2, 2), bin(200, 1, 7, 7, 7)],
            },
        ));
        let m = RunReport::merge(vec![a, b]);
        let h = &m.hists[0].1;
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 19);
        assert_eq!(h.clamped, 1);
        let starts: Vec<u64> = h.bins.iter().map(|b| b.start_ns).collect();
        assert_eq!(starts, vec![0, 100, 200]);
        assert_eq!(h.bins[2].count, 2);
        assert_eq!(h.bins[2].min, 6);
        assert_eq!(h.bins[2].max, 7);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_gauges_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(3.0), "3.0");
    }
}
