//! Bounded structured event ring.
//!
//! The ring keeps the **last N** notable events (drops, NACK
//! dispositions, RTOs, rate changes, flowlet switches) in a fixed-size
//! buffer that overwrites its oldest entry once full. Capacity is fixed
//! at construction, so recording never allocates; `total_seen` keeps
//! counting past the capacity so a report can say how much history was
//! discarded.

/// What happened. Labels are part of the JSON schema and stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A packet was dropped (buffer overflow, no route, or targeted).
    PacketDrop,
    /// A receiver QP generated a NACK.
    NackIssued,
    /// A Themis-D hook blocked an invalid NACK (Eq. 3 mismatch).
    NackBlocked,
    /// Themis-D issued a compensating NACK after a real loss.
    NackCompensated,
    /// A sender QP's retransmission timeout fired.
    RtoFired,
    /// DCQCN cut or changed a sender's rate.
    RateChange,
    /// A load balancer started a new flowlet on a different uplink.
    FlowletSwitch,
}

impl EventKind {
    /// Stable snake_case label used in JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::PacketDrop => "packet_drop",
            EventKind::NackIssued => "nack_issued",
            EventKind::NackBlocked => "nack_blocked",
            EventKind::NackCompensated => "nack_compensated",
            EventKind::RtoFired => "rto_fired",
            EventKind::RateChange => "rate_change",
            EventKind::FlowletSwitch => "flowlet_switch",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy)]
pub struct EventRecord {
    /// Simulated time the event was recorded at.
    pub at_ns: u64,
    /// `seq` of the dispatch that recorded the event (merge key for
    /// sharded runs; not part of the JSON schema).
    pub seq: u64,
    /// `lane` of the dispatch that recorded the event (merge key for
    /// sharded runs; not part of the JSON schema).
    pub lane: u32,
    /// Event class.
    pub kind: EventKind,
    /// QP / flow identifier, or 0 when not applicable.
    pub qp: u64,
    /// Kind-specific argument (PSN, rate in Mbit/s, port id, ...).
    pub arg: u64,
}

/// Fixed-capacity overwrite-oldest event buffer.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<EventRecord>,
    capacity: usize,
    next: usize,
    total_seen: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (capacity must be > 0).
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total_seen: 0,
        }
    }

    /// Append an event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, ev: EventRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total_seen += 1;
    }

    /// Events recorded over the ring's lifetime (including overwritten).
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Retained events, oldest first.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &EventRecord> {
        let (older, newer) = if self.buf.len() < self.capacity {
            (&self.buf[..0], &self.buf[..])
        } else {
            (&self.buf[self.next..], &self.buf[..self.next])
        };
        older.iter().chain(newer.iter())
    }

    /// The most recent `n` events, oldest of those first.
    pub fn last(&self, n: usize) -> Vec<EventRecord> {
        let events: Vec<EventRecord> = self.iter_in_order().copied().collect();
        let skip = events.len().saturating_sub(n);
        events[skip..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> EventRecord {
        EventRecord {
            at_ns: at,
            seq: 0,
            lane: 0,
            kind: EventKind::PacketDrop,
            qp: 0,
            arg: at,
        }
    }

    #[test]
    fn ring_keeps_insertion_order_before_wrap() {
        let mut r = EventRing::new(4);
        for t in 0..3 {
            r.push(ev(t));
        }
        let order: Vec<u64> = r.iter_in_order().map(|e| e.at_ns).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(r.total_seen(), 3);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ring_overwrites_oldest_after_wrap() {
        let mut r = EventRing::new(3);
        for t in 0..7 {
            r.push(ev(t));
        }
        let order: Vec<u64> = r.iter_in_order().map(|e| e.at_ns).collect();
        assert_eq!(order, vec![4, 5, 6]);
        assert_eq!(r.total_seen(), 7);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn last_n_truncates_and_handles_short_rings() {
        let mut r = EventRing::new(8);
        for t in 0..5 {
            r.push(ev(t));
        }
        let last2: Vec<u64> = r.last(2).iter().map(|e| e.at_ns).collect();
        assert_eq!(last2, vec![3, 4]);
        let all: Vec<u64> = r.last(100).iter().map(|e| e.at_ns).collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_ring() {
        let r = EventRing::new(4);
        assert!(r.is_empty());
        assert_eq!(r.iter_in_order().count(), 0);
        assert!(r.last(3).is_empty());
    }

    #[test]
    fn labels_are_snake_case() {
        assert_eq!(EventKind::NackBlocked.label(), "nack_blocked");
        assert_eq!(EventKind::FlowletSwitch.label(), "flowlet_switch");
    }
}
