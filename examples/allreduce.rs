//! Ring Allreduce on the paper's evaluation fabric: ECMP vs Adaptive
//! Routing vs Themis.
//!
//! Runs 16 simultaneous 16-rank ring Allreduce groups on the 16×16
//! 400 Gbps leaf-spine fabric of §5 and reports each scheme's slowest-
//! group completion time, plus the NACK bookkeeping that explains the
//! gap. Buffer size is scaled down from the paper's 300 MB by default;
//! pass a size in MB as the first argument for bigger runs.
//!
//! Run with: `cargo run --release --example allreduce -- 8`

use themis::harness::report::{fmt_ms, Table};
use themis::harness::{run_collective, Collective, ExperimentConfig, Scheme};

fn main() {
    let mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let bytes = mb << 20;
    println!(
        "Ring Allreduce({mb} MB/group) on 16x16 leaf-spine @400G, DCQCN (T_I=10us, T_D=50us)\n"
    );
    let mut table = Table::new(
        "Allreduce tail completion time",
        &[
            "scheme",
            "ct(ms)",
            "retx",
            "nacks@sender",
            "blocked@tor",
            "goodput(Gbps)",
        ],
    );
    let mut baseline_ar = None;
    for scheme in [Scheme::Ecmp, Scheme::AdaptiveRouting, Scheme::Themis] {
        let cfg = ExperimentConfig::paper_eval(scheme, 10, 50, 7);
        let r = run_collective(&cfg, Collective::Allreduce, bytes);
        if scheme == Scheme::AdaptiveRouting {
            baseline_ar = r.tail_ct;
        }
        table.row(&[
            scheme.label().to_string(),
            fmt_ms(r.tail_ct),
            r.nics.retx_packets.to_string(),
            r.nics.nacks_received.to_string(),
            r.themis.nacks_blocked.to_string(),
            format!("{:.0}", r.aggregate_goodput_gbps()),
        ]);
        if scheme == Scheme::Themis {
            if let (Some(t), Some(ar)) = (r.tail_ct, baseline_ar) {
                let pct =
                    (ar.as_nanos() as f64 - t.as_nanos() as f64) / ar.as_nanos() as f64 * 100.0;
                table.title =
                    format!("Allreduce tail completion time (Themis {pct:.1}% faster than AR)");
            }
        }
    }
    table.print();
}
