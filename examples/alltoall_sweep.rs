//! Alltoall under the paper's DCQCN parameter sweep (the Fig 5b axis).
//!
//! Runs 16 simultaneous 16-rank Alltoall groups on the §5 fabric for
//! each `(T_I, T_D)` configuration and compares ECMP, Adaptive Routing
//! and Themis. Buffer sizes are scaled down from the paper's 300 MB by
//! default; pass a size in MB as the first argument.
//!
//! Run with: `cargo run --release --example alltoall_sweep -- 4`

use themis::harness::fig5::improvement_pct;
use themis::harness::report::{fmt_ms, Table};
use themis::harness::{run_collective, Collective, ExperimentConfig, Scheme};
use themis::rnic::CcConfig;

fn main() {
    let mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let bytes = mb << 20;
    println!("Alltoall({mb} MB/group) on 16x16 leaf-spine @400G\n");
    let mut table = Table::new(
        "Alltoall tail completion time (ms) per DCQCN (T_I, T_D)",
        &["(TI,TD) us", "ECMP", "AR", "Themis", "Themis vs AR"],
    );
    for (ti, td) in CcConfig::paper_sweep() {
        let mut cts = Vec::new();
        for scheme in [Scheme::Ecmp, Scheme::AdaptiveRouting, Scheme::Themis] {
            let cfg = ExperimentConfig::paper_eval(scheme, ti, td, 7);
            let r = run_collective(&cfg, Collective::Alltoall, bytes);
            cts.push(r.tail_ct);
        }
        let vs_ar = match (cts[2], cts[1]) {
            (Some(t), Some(ar)) => format!("{:+.1}%", improvement_pct(t, ar)),
            _ => "-".into(),
        };
        table.row(&[
            format!("({ti},{td})"),
            fmt_ms(cts[0]),
            fmt_ms(cts[1]),
            fmt_ms(cts[2]),
            vs_ar,
        ]);
    }
    table.print();
    println!("\npositive % = Themis faster than Adaptive Routing (paper: 11.5%~40.7%)");
}
