//! §6 link-failure tolerance, live: a transfer survives a failure →
//! ECMP-fallback → recovery episode in the middle of its run.
//!
//! A Pingmesh-style monitor (modeled as scheduled control events) tells
//! every ToR at t = 300 µs that a fabric link failed; they revert to
//! ECMP and stop spraying. At t = 700 µs the link recovers and spraying
//! resumes. The 16 MB flow keeps going throughout.
//!
//! Run with: `cargo run --release --example failure_recovery`

use themis::collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use themis::collectives::schedule::{Schedule, Transfer};
use themis::harness::{build_cluster, ExperimentConfig, Scheme};
use themis::netsim::event::{ControlMsg, Event};
use themis::netsim::switch::Switch;
use themis::simcore::time::Nanos;
use themis::themis_core::ThemisMiddleware;

fn main() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 47);
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
    let src = cluster.hosts[0];
    let dst = cluster.hosts[cfg.fabric.hosts_per_leaf];
    println!("16 MB flow {src} -> {dst} under Themis; failure at 300us, recovery at 700us\n");

    let mut alloc = QpAllocator::new(3);
    let mut driver = Driver::new();
    let spec = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &[src, dst],
        Schedule {
            name: "p2p",
            n_ranks: 2,
            transfers: vec![Transfer {
                src: 0,
                dst: 1,
                bytes: 16 << 20,
                deps: vec![],
            }],
        },
        &mut alloc,
    );
    driver.add_instance(spec);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );

    let restored = Scheme::Themis.lb_policy();
    for &leaf in &cluster.leaves.clone() {
        cluster.world.seed_event(
            Nanos::from_micros(300),
            leaf,
            Event::Control(ControlMsg::TorLinkFailure),
        );
        cluster.world.seed_event(
            Nanos::from_micros(700),
            leaf,
            Event::Control(ControlMsg::TorLinkRecovery { lb: restored }),
        );
    }
    cluster.world.run_until(cfg.horizon);

    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    let ct = d
        .tail_completion()
        .map(|t| t.since(d.started_at().unwrap()).as_micros_f64());
    let nics = themis::harness::experiment::aggregate_nics(&cluster);
    let src_tor: &Switch = cluster.world.get(cluster.leaves[0]).unwrap();
    let m = src_tor
        .hook()
        .unwrap()
        .as_any()
        .downcast_ref::<ThemisMiddleware>()
        .unwrap();

    println!("timeline (source ToR):");
    println!("  [0us, 300us)   PSN spraying over both paths");
    println!("  [300us, 700us) ECMP fallback — single flow-hashed path");
    println!("  [700us, done]  spraying again\n");
    match ct {
        Some(us) => println!("completed in {us:.1} us  (clean-run baseline ~1430 us)"),
        None => println!("DID NOT FINISH"),
    }
    println!(
        "sprayed {} packets, bypassed {} during the failure window",
        m.s.stats.sprayed, m.s.stats.bypassed
    );
    println!(
        "retransmissions {} / RTO fires {} across the transitions",
        nics.retx_packets, nics.rto_fires
    );
    println!(
        "invalid NACKs blocked {} (spraying phases only)",
        cluster.themis_stats().nacks_blocked
    );
}
