//! Multi-tier deployment: Themis on a 3-tier fat-tree via the two-stage
//! PathMap (§3.2).
//!
//! Builds a k=4 fat-tree (16 hosts, 4 pods, 4 equal-cost inter-pod
//! paths), runs an inter-pod ring under ECMP / Adaptive Routing / Themis,
//! and shows that the single UDP-sport rewrite at the edge ToR steers
//! *both* ECMP stages — every core switch carries traffic, no NACK
//! reaches a sender, and only the ToRs needed programmability.
//!
//! Run with: `cargo run --release --example fat_tree`

use themis::collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use themis::collectives::ring::ring_once;
use themis::harness::{build_fat_tree_cluster, Scheme};
use themis::netsim::event::Event;
use themis::netsim::fat_tree::FatTreeConfig;
use themis::netsim::switch::Switch;
use themis::netsim::types::HostId;
use themis::rnic::NicConfig;
use themis::simcore::time::Nanos;

fn main() {
    let fabric = FatTreeConfig::small(4);
    println!(
        "k=4 fat-tree: {} hosts, {} pods, {} equal-cost inter-pod paths\n",
        fabric.n_hosts(),
        fabric.k,
        fabric.n_paths()
    );
    println!(
        "{:<18} {:>9} {:>8} {:>9} {:>8}  per-core packets",
        "scheme", "ct(us)", "retx", "blocked", "nacks"
    );

    for scheme in [Scheme::Ecmp, Scheme::AdaptiveRouting, Scheme::Themis] {
        let mut cluster = build_fat_tree_cluster(
            &fabric,
            NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
            scheme,
        );
        // One host per pod (hosts 0, 4, 8, 12): every ring hop crosses
        // the core layer.
        let hosts: Vec<HostId> = (0..4).map(|p| HostId(p * 4)).collect();
        let mut alloc = QpAllocator::new(5);
        let mut driver = Driver::new();
        let spec = setup_collective(
            &mut cluster.world,
            cluster.driver,
            &hosts,
            ring_once(4, 8 << 20),
            &mut alloc,
        );
        driver.add_instance(spec);
        cluster.world.install(cluster.driver, Box::new(driver));
        cluster.world.seed_event(
            Nanos::ZERO,
            cluster.driver,
            Event::Timer { token: START_TOKEN },
        );
        cluster.world.run_until(Nanos::from_secs(2));

        let driver: &Driver = cluster.world.get(cluster.driver).unwrap();
        let ct = driver
            .tail_completion()
            .map(|t| t.as_micros_f64())
            .unwrap_or(f64::NAN);
        let nics = themis::harness::experiment::aggregate_nics(&cluster);
        let agg = cluster.themis_stats();
        // Core switches are the last 4 entries of `spines` (aggs first).
        let cores: Vec<u64> = cluster.spines[8..]
            .iter()
            .map(|&c| cluster.world.get::<Switch>(c).unwrap().stats.rx_packets)
            .collect();
        println!(
            "{:<18} {:>9.1} {:>8} {:>9} {:>8}  {:?}",
            scheme.label(),
            ct,
            nics.retx_packets,
            agg.nacks_blocked,
            nics.nacks_received,
            cores
        );
    }
    println!("\nECMP pins each flow to one core; Themis spreads every flow's DATA");
    println!("uniformly over all four (agg, core) paths by rewriting the UDP source");
    println!("port once at the edge ToR — bits [0,1) of the hash steer the edge");
    println!("stage, bits [8,9) the aggregation stage. (Per-core counts include the");
    println!("un-sprayed reverse ACK streams, which stay ECMP-pinned by design.)");
}
