//! Incast under tiny buffers: lossy fabric vs PFC-lossless fabric.
//!
//! Three hosts send 8 MB each to one receiver across the spine layer.
//! With 256 KB switch buffers the convergence point overflows; PFC
//! (hop-by-hop pause on shared-buffer watermarks) keeps it lossless.
//! Themis filtering rides on top in both cases.
//!
//! Run with: `cargo run --release --example incast_pfc`

use themis::harness::{Collective, ExperimentConfig, Scheme};
use themis::netsim::switch::PfcConfig;
use themis::netsim::topology::LeafSpineConfig;
use themis::simcore::time::Nanos;

fn main() {
    println!("3-to-1 incast, 8 MB per sender, 256 KB switch buffers\n");
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "fabric", "ct(ms)", "drops", "retx", "rto", "pauses", "blocked"
    );
    for pfc in [false, true] {
        let buffer_bytes = 256 * 1024;
        let fabric = LeafSpineConfig {
            buffer_bytes,
            pfc: pfc.then(|| PfcConfig::for_buffer(buffer_bytes)),
            ..LeafSpineConfig::motivation()
        };
        let cfg = ExperimentConfig {
            nic: themis::rnic::NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
            fabric,
            scheme: Scheme::Themis,
            seed: 77,
            horizon: Nanos::from_secs(5),
            shards: themis::harness::shards_from_env(),
        };
        let (r, cluster) = themis::harness::run_collective_on(&cfg, Collective::Incast, 8 << 20);
        let pauses: u64 = cluster
            .all_switches()
            .iter()
            .filter_map(|&s| {
                cluster
                    .world
                    .get::<themis::netsim::switch::Switch>(s)
                    .map(|sw| sw.stats.pfc_pauses)
            })
            .sum();
        println!(
            "{:<10} {:>9.3} {:>8} {:>8} {:>8} {:>8} {:>8}",
            if pfc { "PFC" } else { "lossy" },
            r.tail_ct
                .map(|t| t.as_nanos() as f64 / 1e6)
                .unwrap_or(f64::NAN),
            r.fabric.drops_buffer,
            r.nics.retx_packets,
            r.nics.rto_fires,
            pauses,
            r.themis.nacks_blocked,
        );
    }
    println!("\nWithout PFC the DCQCN transient overflows the tiny buffer and NIC-SR");
    println!("repairs thousands of real losses; with PFC the fabric pauses upstream");
    println!("instead and nothing is ever dropped.");
}
