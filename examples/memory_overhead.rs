//! §4 memory-overhead calculator.
//!
//! Evaluates the paper's switch-SRAM model at the Table 1 reference
//! point (3-layer fat-tree, k = 32, 400 Gbps last hop) and at a few
//! what-if points, printing every intermediate quantity of Eq. 4.
//!
//! Run with: `cargo run --example memory_overhead`

use themis::netsim::topology::FatTreeDims;
use themis::themis_core::memory::MemoryModel;

fn print_model(name: &str, m: &MemoryModel) {
    println!("— {name} —");
    println!("  N_paths   = {:>8}   (PathMap entries)", m.n_paths);
    println!("  BW        = {:>8} Gbps", m.bw_bps / 1_000_000_000);
    println!("  RTT_last  = {:>8} ns", m.rtt_last.as_nanos());
    println!("  MTU       = {:>8} B", m.mtu);
    println!("  F         = {:>8.2}", m.f_times_100 as f64 / 100.0);
    println!("  N_NIC     = {:>8}   (NICs per ToR)", m.n_nic);
    println!("  N_QP      = {:>8}   (cross-rack QPs per NIC)", m.n_qp);
    println!("  ----------------------------------------");
    println!(
        "  N_entries = {:>8}   (ring PSN queue slots per QP)",
        m.n_entries()
    );
    println!("  M_PathMap = {:>8} B", m.pathmap_bytes());
    println!(
        "  M_QP      = {:>8} B  (20 B entry + 1 B/slot)",
        m.per_qp_bytes()
    );
    println!(
        "  M_total   = {:>8} B  ≈ {:.0} KB",
        m.total_bytes(),
        m.total_bytes() as f64 / 1000.0
    );
    for sram_mb in [32u64, 64] {
        println!(
            "            = {:>7.2}%  of a {sram_mb} MB switch SRAM",
            m.fraction_of_sram(sram_mb * 1024 * 1024) * 100.0
        );
    }
    println!();
}

fn main() {
    let ft = FatTreeDims::new(32);
    println!("Fat-tree k=32 (paper §4 example):");
    println!(
        "  {} ToRs, {} spines, {} cores, {} NICs, {} hosts/ToR, {} equal-cost paths\n",
        ft.n_tors(),
        ft.n_spines(),
        ft.n_cores(),
        ft.n_hosts(),
        ft.hosts_per_tor(),
        ft.max_equal_cost_paths()
    );

    let reference = MemoryModel::table1_reference();
    print_model("Table 1 reference (paper: ≈193 KB)", &reference);

    print_model(
        "100 Gbps fabric",
        &MemoryModel {
            bw_bps: 100_000_000_000,
            ..reference
        },
    );

    print_model(
        "Dense QPs (Alltoall-heavy, 400 QPs/NIC)",
        &MemoryModel {
            n_qp: 400,
            ..reference
        },
    );
}
