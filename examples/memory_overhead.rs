//! §4 memory-overhead calculator.
//!
//! Evaluates the paper's switch-SRAM model at the Table 1 reference
//! point (3-layer fat-tree, k = 32, 400 Gbps last hop) and at a few
//! what-if points, printing every intermediate quantity of Eq. 4.
//!
//! Run with: `cargo run --example memory_overhead`
//!
//! Alongside the analytic model, a live small-k fat-tree simulation is
//! built and run, and its *measured* per-host memory (process RSS plus
//! exact route-table and packet-arena accounting) is printed next to
//! the §4 figures.

use std::collections::HashMap;
use themis::harness::{run_fat_tree_rings, Scheme};
use themis::netsim::fat_tree::FatTreeConfig;
use themis::netsim::switch::{RouteEntry, Switch};
use themis::netsim::topology::FatTreeDims;
use themis::netsim::types::NodeId;
use themis::rnic::{Nic, NicConfig};
use themis::themis_core::memory::MemoryModel;

/// Resident set size from `/proc/self/status`, if the platform has it.
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Build and run a small-k fat-tree, then report measured bytes/host.
fn measure_live(k: usize) {
    let rss_before = rss_bytes();
    let fabric = FatTreeConfig::small(k);
    let nic_cfg = NicConfig::nic_sr(fabric.host_link.bandwidth_bps);
    let n_hosts = fabric.n_hosts();
    let groups = (fabric.hosts_per_pod()).min(4);
    let (result, cluster) = run_fat_tree_rings(
        &fabric,
        nic_cfg,
        Scheme::Themis,
        7,
        1,
        groups,
        256 << 10,
        themis::simcore::time::Nanos::from_secs(2),
    );
    let rss_after = rss_bytes();

    // Exact accounting: route tables (owned + shared, each shared base
    // counted once) and packet arenas across every entity.
    let mut route_owned = 0usize;
    let mut shared: HashMap<*const RouteEntry, usize> = HashMap::new();
    let mut arena_bytes = 0usize;
    let mut arena_peak = 0usize;
    for &sw_id in cluster.leaves.iter().chain(cluster.spines.iter()) {
        let sw: &Switch = cluster.world.get(sw_id).expect("switch");
        route_owned += sw.route_table().owned_heap_bytes();
        if let Some(base) = sw.route_table().shared_table() {
            shared.insert(
                base.as_ptr(),
                base.len() * std::mem::size_of::<RouteEntry>(),
            );
        }
        arena_bytes += sw.arena().heap_bytes();
        arena_peak = arena_peak.max(sw.arena().peak_live());
    }
    for &h in &cluster.hosts {
        let nic: &Nic = cluster.world.get(NodeId(h.0)).expect("nic");
        arena_bytes += nic.arena().heap_bytes();
        arena_peak = arena_peak.max(nic.arena().peak_live());
    }
    let route_shared: usize = shared.values().sum();

    println!("— measured, live k={k} fat-tree ({n_hosts} hosts, {groups} rings) —");
    println!(
        "  completed  = {:>10}   (rings finished: {}/{groups})",
        if result.tail_ct.is_some() {
            "yes"
        } else {
            "no"
        },
        result.group_cts.iter().filter(|c| c.is_some()).count(),
    );
    println!("  events     = {:>10}", result.events);
    println!(
        "  routes     = {:>10} B owned + {} B shared ({} interned tables)",
        route_owned,
        route_shared,
        shared.len()
    );
    println!(
        "  arenas     = {:>10} B  (peak {} live packets in one pool)",
        arena_bytes, arena_peak
    );
    println!(
        "  per host   = {:>10} B  (routes + arenas) / {n_hosts} hosts",
        (route_owned + route_shared + arena_bytes) / n_hosts
    );
    match (rss_before, rss_after) {
        (Some(b), Some(a)) => {
            println!(
                "  RSS        = {:>10} B total, Δ {} B ≈ {} B/host",
                a,
                a.saturating_sub(b),
                a.saturating_sub(b) / n_hosts as u64
            );
        }
        _ => println!("  RSS        =  (unavailable on this platform)"),
    }
    println!();
}

fn print_model(name: &str, m: &MemoryModel) {
    println!("— {name} —");
    println!("  N_paths   = {:>8}   (PathMap entries)", m.n_paths);
    println!("  BW        = {:>8} Gbps", m.bw_bps / 1_000_000_000);
    println!("  RTT_last  = {:>8} ns", m.rtt_last.as_nanos());
    println!("  MTU       = {:>8} B", m.mtu);
    println!("  F         = {:>8.2}", m.f_times_100 as f64 / 100.0);
    println!("  N_NIC     = {:>8}   (NICs per ToR)", m.n_nic);
    println!("  N_QP      = {:>8}   (cross-rack QPs per NIC)", m.n_qp);
    println!("  ----------------------------------------");
    println!(
        "  N_entries = {:>8}   (ring PSN queue slots per QP)",
        m.n_entries()
    );
    println!("  M_PathMap = {:>8} B", m.pathmap_bytes());
    println!(
        "  M_QP      = {:>8} B  (20 B entry + 1 B/slot)",
        m.per_qp_bytes()
    );
    println!(
        "  M_total   = {:>8} B  ≈ {:.0} KB",
        m.total_bytes(),
        m.total_bytes() as f64 / 1000.0
    );
    for sram_mb in [32u64, 64] {
        println!(
            "            = {:>7.2}%  of a {sram_mb} MB switch SRAM",
            m.fraction_of_sram(sram_mb * 1024 * 1024) * 100.0
        );
    }
    println!();
}

fn main() {
    let ft = FatTreeDims::new(32);
    println!("Fat-tree k=32 (paper §4 example):");
    println!(
        "  {} ToRs, {} spines, {} cores, {} NICs, {} hosts/ToR, {} equal-cost paths\n",
        ft.n_tors(),
        ft.n_spines(),
        ft.n_cores(),
        ft.n_hosts(),
        ft.hosts_per_tor(),
        ft.max_equal_cost_paths()
    );

    let reference = MemoryModel::table1_reference();
    print_model("Table 1 reference (paper: ≈193 KB)", &reference);

    print_model(
        "100 Gbps fabric",
        &MemoryModel {
            bw_bps: 100_000_000_000,
            ..reference
        },
    );

    print_model(
        "Dense QPs (Alltoall-heavy, 400 QPs/NIC)",
        &MemoryModel {
            n_qp: 400,
            ..reference
        },
    );

    // Beside the analytic model: what a real (small-k) build of this
    // codebase actually spends per host, measured live.
    measure_live(8);
}
