//! Figure 4 walkthrough: tPSN identification, NACK blocking, and NACK
//! compensation, step by step on a bare Themis-D instance.
//!
//! Reproduces the exact packet orders of Fig 4b and Fig 4c (two paths,
//! PSN mod 2 spraying) and prints each decision the destination ToR
//! makes.
//!
//! Run with: `cargo run --example nack_trace`

use themis::netsim::hooks::ReverseAction;
use themis::netsim::packet::{Packet, PacketKind};
use themis::netsim::types::{HostId, QpId};
use themis::themis_core::themis_d::ThemisD;

const N_PATHS: usize = 2;
const QP: QpId = QpId(7);

fn data(psn: u32) -> Packet {
    Packet::data(QP, HostId(0), HostId(1), 4242, psn, 0, false, 1000, false)
}

fn arrive(t: &mut ThemisD, psn: u32) {
    print!(
        "  data PSN {psn} passes ToR (path {})",
        psn as usize % N_PATHS
    );
    match t.on_downstream_data(&data(psn)) {
        Some(comp) => {
            let PacketKind::Nack { epsn, .. } = comp.kind else {
                unreachable!()
            };
            println!("  -> COMPENSATED NACK for ePSN {epsn} sent to the sender");
        }
        None => println!(),
    }
}

fn nack(t: &mut ThemisD, epsn: u32) {
    print!("  RNIC NACK with ePSN {epsn} reaches ToR");
    match t.on_reverse_nack(QP, epsn) {
        ReverseAction::Forward => println!("  -> FORWARDED (valid: same-path trigger)"),
        ReverseAction::Block => println!("  -> BLOCKED (invalid: cross-path trigger)"),
    }
}

fn main() {
    println!("== Figure 4b: identify tPSN and block the invalid NACK ==");
    println!("Two paths; even PSNs on path 0, odd PSNs on path 1.\n");
    let mut t = ThemisD::new(N_PATHS, 16, true);
    // Packet 2 is slow on path 0; 3 overtakes it on path 1.
    for psn in [0, 1, 3] {
        arrive(&mut t, psn);
    }
    nack(&mut t, 2); // triggered by 3: 3 mod 2 != 2 mod 2 -> invalid
    arrive(&mut t, 2); // the delayed packet shows up: nothing was lost
    arrive(&mut t, 6);
    nack(&mut t, 4); // triggered by 6: 6 mod 2 == 4 mod 2 -> packet 4 lost
    println!(
        "\n  stats: {} blocked, {} forwarded valid\n",
        t.stats.nacks_blocked, t.stats.nacks_forwarded_valid
    );

    println!("== Figure 4c: compensate a blocked NACK when the loss is real ==\n");
    let mut t = ThemisD::new(N_PATHS, 16, true);
    // Packet 2 is LOST on path 0; 3 arrives on path 1 and triggers a NACK.
    for psn in [0, 1, 3] {
        arrive(&mut t, psn);
    }
    nack(&mut t, 2); // invalid by Eq.3 -> blocked, BePSN=2 armed
                     // Packet 4 (path 0, same as the missing 2) overtakes: 2 is provably
                     // lost; the ToR generates the NACK the RNIC can no longer send.
    arrive(&mut t, 4);
    println!(
        "\n  stats: {} blocked, {} compensated, {} cancelled",
        t.stats.nacks_blocked, t.stats.compensations, t.stats.compensation_cancels
    );

    println!("\n== Variation: the blocked NACK that needed no compensation ==\n");
    let mut t = ThemisD::new(N_PATHS, 16, true);
    for psn in [0, 1, 3] {
        arrive(&mut t, psn);
    }
    nack(&mut t, 2);
    arrive(&mut t, 2); // late, not lost -> compensation disarmed
    arrive(&mut t, 4); // same path as 2, but nothing fires
    println!(
        "\n  stats: {} blocked, {} compensated, {} cancelled",
        t.stats.nacks_blocked, t.stats.compensations, t.stats.compensation_cancels
    );
}
