//! Quickstart: the paper's story in one contended scenario.
//!
//! Builds the Fig 1a motivation fabric (8 hosts, 4 ToRs, 2 spine paths,
//! 100 Gbps) and runs its two competing ring groups — every flow
//! cross-rack, all flows simultaneous — under three schemes:
//!
//! * **ECMP** hashes each flow onto one path: collisions serialize them.
//! * **Unfiltered spraying** uses both paths but every reorder makes the
//!   commodity NIC fire a NACK, so senders retransmit spuriously *and*
//!   slow-start.
//! * **Themis** sprays deterministically by PSN and blocks the invalid
//!   NACKs at the destination ToR: both paths, no spurious anything.
//!
//! Run with: `cargo run --release --example quickstart`

use themis::harness::{run_collective, Collective, ExperimentConfig, Scheme};

fn main() {
    let per_flow: u64 = 8 << 20;
    println!(
        "Two 4-node ring groups, {} MB per flow, 2 equal-cost paths\n",
        per_flow >> 20
    );
    println!(
        "{:<18} {:>9} {:>8} {:>12} {:>9} {:>9}",
        "scheme", "ct(us)", "ooo", "nacks@sender", "retx", "blocked"
    );
    for scheme in [Scheme::Ecmp, Scheme::SprayNoFilter, Scheme::Themis] {
        let cfg = ExperimentConfig::motivation_small(scheme, 42);
        let r = run_collective(&cfg, Collective::RingOnce, per_flow);
        assert!(
            r.all_messages_completed(),
            "{} did not finish",
            scheme.label()
        );
        println!(
            "{:<18} {:>9.1} {:>8} {:>12} {:>9} {:>9}",
            scheme.label(),
            r.tail_ct.unwrap().as_micros_f64(),
            r.nics.ooo_packets,
            r.nics.nacks_received,
            r.nics.retx_packets,
            r.themis.nacks_blocked,
        );
    }
    println!();
    println!("ECMP:             flow-hash collisions serialize the rings.");
    println!("Spray(no-filter): both paths, but every reorder NACKs and slow-starts.");
    println!("Themis:           both paths; invalid NACKs die at the destination ToR.");
}
