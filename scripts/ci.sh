#!/usr/bin/env bash
# Tier-1 gate + substrate performance smoke test.
#
# Usage: scripts/ci.sh
#
# Steps:
#   1. cargo fmt --check
#   2. cargo build --release
#   3. cargo test -q            (tier-1 suite)
#   4. cargo doc --no-deps      (rustdoc warnings denied) + doctests
#   5. fixed-seed conformance-fuzz smoke: themis_fuzz runs a bounded
#      budget of fault scenarios under the protocol-invariant oracle.
#   6. <30 s substrate smoke benchmark; fails if events_per_sec drops
#      more than 30 % below the committed BENCH_substrate.json.
#
# The gate is relative to the committed JSON (absolute numbers vary by
# machine); the smoke run uses a scaled-down workload via the
# THEMIS_BENCH_* knobs, which shifts events/sec only a few percent.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== tests (tier 1) =="
cargo test -q

echo "== docs (rustdoc, warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== doctests =="
cargo test --workspace --doc -q

echo "== conformance fuzz smoke (fixed seed) =="
# Deterministic: the default seed + a fixed budget always explores the
# same fault plans, so a failure here is a real protocol regression and
# the printed repro command reproduces it exactly.
./target/release/themis_fuzz --budget 60

echo "== substrate smoke bench =="
SMOKE_JSON=$(mktemp /tmp/bench_substrate_smoke.XXXXXX.json)
trap 'rm -f "$SMOKE_JSON"' EXIT
THEMIS_BENCH_FABRIC=motivation \
THEMIS_BENCH_MB=16 \
THEMIS_BENCH_SWEEP_MB=4 \
THEMIS_BENCH_BUDGET=1 \
THEMIS_BENCH_OUT="$SMOKE_JSON" \
    cargo bench -p themis-bench --bench substrate

# Both files are the flat single-level JSON emitted by
# themis_bench::harness::write_json (one `"key": value` pair per line),
# so a line-oriented read is exact, not heuristic.
read_field() { # read_field FILE KEY
    awk -F': ' -v key="\"$2\"" '$1 ~ key {gsub(/,/, "", $2); print $2}' "$1"
}

baseline=$(read_field BENCH_substrate.json events_per_sec)
current=$(read_field "$SMOKE_JSON" events_per_sec)
if [ -z "$baseline" ] || [ -z "$current" ]; then
    echo "FAIL: could not read events_per_sec (baseline='$baseline', current='$current')"
    exit 1
fi

echo "events_per_sec: committed=$baseline smoke=$current"
awk -v b="$baseline" -v c="$current" 'BEGIN {
    floor = 0.70 * b
    if (c < floor) {
        printf "FAIL: events_per_sec %.0f is below the 70%% regression floor %.0f\n", c, floor
        exit 1
    }
    printf "OK: within the 30%% regression budget (floor %.0f)\n", floor
}'

echo "== ci.sh passed =="
