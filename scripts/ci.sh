#!/usr/bin/env bash
# Tier-1 gate + substrate performance smoke test.
#
# Usage: scripts/ci.sh
#
# Steps:
#   1. cargo fmt --check
#   2. cargo build --release
#   3. cargo test -q            (tier-1 suite)
#   4. THEMIS_SHARDS=2 matrix leg: the model checker, the oracle e2e
#      suites, PFC/failure runs, and the scheme-zoo matrix repeated on
#      the sharded engine — every assertion must hold bit-identically
#      on both engines.
#   5. cargo doc --no-deps      (rustdoc warnings denied) + doctests
#   6. fixed-seed conformance-fuzz smoke: themis_fuzz runs a bounded
#      budget of fault scenarios under the protocol-invariant oracle,
#      then a second bounded budget on the sharded engine.
#   7. <30 s substrate smoke benchmark; fails if events_per_sec or
#      shard_merge_ops_per_sec drops more than 30 % below the committed
#      BENCH_substrate.json. When the committed numbers were taken on
#      >= 4 cores, also requires parallel_speedup_4c >= 2.0.
#   8. paper_fabric_x10 smoke: a short 1024-host k=16 run (all hosts in
#      active rings, oracle-checked) plus the k=32 build smoke; fails if
#      x10_events_per_sec drops more than 30 % below committed or
#      x10_mb_per_host exceeds the 1.5x-plus-slack memory ceiling.
#
# The gate is relative to the committed JSON (absolute numbers vary by
# machine); the smoke run uses a scaled-down workload via the
# THEMIS_BENCH_* knobs, which shifts events/sec only a few percent.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== build (release) =="
# --workspace so member binaries (themis_fuzz, themis_sim, fig1, fig5)
# are built too — the root facade package alone does not pull them in.
cargo build --release --workspace

echo "== tests (tier 1) =="
cargo test -q

echo "== tests (sharded engine matrix leg, THEMIS_SHARDS=2) =="
# The harness threads THEMIS_SHARDS into every ExperimentConfig, so this
# reruns the model checker, the oracle e2e suites, and the PFC/failure
# scenarios on the partitioned engine. Sharding is proven bit-identical
# (tests/parallel_equivalence.rs), so identical assertions must pass.
THEMIS_SHARDS=2 cargo test -q \
    --test model_check --test collectives_e2e --test pfc --test dynamic_failure \
    --test scheme_zoo

echo "== docs (rustdoc, warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== doctests =="
cargo test --workspace --doc -q

echo "== conformance fuzz smoke (fixed seed) =="
# Deterministic: the default seed + a fixed budget always explores the
# same fault plans, so a failure here is a real protocol regression and
# the printed repro command reproduces it exactly.
./target/release/themis_fuzz --budget 60

echo "== conformance fuzz smoke (fixed seed, sharded engine) =="
# Same determinism argument, with every case partitioned over 2 shards:
# exercises cross-shard channels, window barriers, and telemetry merge
# under the full fault model.
./target/release/themis_fuzz --budget 25 --shards 2

echo "== substrate smoke bench =="
SMOKE_JSON=$(mktemp /tmp/bench_substrate_smoke.XXXXXX.json)
trap 'rm -f "$SMOKE_JSON"' EXIT
THEMIS_BENCH_FABRIC=motivation \
THEMIS_BENCH_MB=16 \
THEMIS_BENCH_SWEEP_MB=4 \
THEMIS_BENCH_BUDGET=1 \
THEMIS_BENCH_OUT="$SMOKE_JSON" \
    cargo bench -p themis-bench --bench substrate

# Both files are the flat single-level JSON emitted by
# themis_bench::harness::write_json (one `"key": value` pair per line),
# so a line-oriented read is exact, not heuristic.
read_field() { # read_field FILE KEY
    awk -F': ' -v key="\"$2\"" '$1 ~ key {gsub(/,/, "", $2); print $2}' "$1"
}

baseline=$(read_field BENCH_substrate.json events_per_sec)
current=$(read_field "$SMOKE_JSON" events_per_sec)
if [ -z "$baseline" ] || [ -z "$current" ]; then
    echo "FAIL: could not read events_per_sec (baseline='$baseline', current='$current')"
    exit 1
fi

echo "events_per_sec: committed=$baseline smoke=$current"
awk -v b="$baseline" -v c="$current" 'BEGIN {
    floor = 0.70 * b
    if (c < floor) {
        printf "FAIL: events_per_sec %.0f is below the 70%% regression floor %.0f\n", c, floor
        exit 1
    }
    printf "OK: within the 30%% regression budget (floor %.0f)\n", floor
}'

merge_baseline=$(read_field BENCH_substrate.json shard_merge_ops_per_sec)
merge_current=$(read_field "$SMOKE_JSON" shard_merge_ops_per_sec)
if [ -z "$merge_baseline" ] || [ -z "$merge_current" ]; then
    echo "FAIL: could not read shard_merge_ops_per_sec (baseline='$merge_baseline', current='$merge_current')"
    exit 1
fi

echo "shard_merge_ops_per_sec: committed=$merge_baseline smoke=$merge_current"
awk -v b="$merge_baseline" -v c="$merge_current" 'BEGIN {
    floor = 0.70 * b
    if (c < floor) {
        printf "FAIL: shard_merge_ops_per_sec %.0f is below the 70%% regression floor %.0f\n", c, floor
        exit 1
    }
    printf "OK: within the 30%% regression budget (floor %.0f)\n", floor
}'

# Per-scheme throughput of the SCHEMES.md baselines: a throughput
# collapse in one scheme's entropy/reaction hot path (RNG per send,
# pool bookkeeping, OOO gap tracking) would hide inside the aggregate
# numbers above, so each gets its own 70% floor.
for scheme in reps eunomia sprinklers; do
    key="scheme_${scheme}_events_per_sec"
    s_baseline=$(read_field BENCH_substrate.json "$key")
    s_current=$(read_field "$SMOKE_JSON" "$key")
    if [ -z "$s_baseline" ] || [ -z "$s_current" ]; then
        echo "FAIL: could not read $key (baseline='$s_baseline', current='$s_current')"
        exit 1
    fi
    echo "$key: committed=$s_baseline smoke=$s_current"
    awk -v b="$s_baseline" -v c="$s_current" -v k="$key" 'BEGIN {
        floor = 0.70 * b
        if (c < floor) {
            printf "FAIL: %s %.0f is below the 70%% regression floor %.0f\n", k, c, floor
            exit 1
        }
        printf "OK: within the 30%% regression budget (floor %.0f)\n", floor
    }'
done

echo "== paper_fabric_x10 smoke bench =="
# The 1024-host k=16 fabric with every host in an active ring, run at a
# smoke-sized payload (same event machinery, smaller horizon), plus the
# k=32 build-and-short-run — the x10 section asserts ring completion and
# oracle conformance itself, so this leg doubles as the big-fabric
# correctness smoke.
X10_JSON=$(mktemp /tmp/bench_substrate_x10.XXXXXX.json)
trap 'rm -f "$SMOKE_JSON" "$X10_JSON"' EXIT
THEMIS_BENCH_FABRIC=x10 \
THEMIS_BENCH_X10_KB=64 \
THEMIS_BENCH_BUDGET=1 \
THEMIS_BENCH_OUT="$X10_JSON" \
    cargo bench -p themis-bench --bench substrate

x10_baseline=$(read_field BENCH_substrate.json x10_events_per_sec)
x10_current=$(read_field "$X10_JSON" x10_events_per_sec)
if [ -z "$x10_baseline" ] || [ -z "$x10_current" ]; then
    echo "FAIL: could not read x10_events_per_sec (baseline='$x10_baseline', current='$x10_current')"
    exit 1
fi

echo "x10_events_per_sec: committed=$x10_baseline smoke=$x10_current"
awk -v b="$x10_baseline" -v c="$x10_current" 'BEGIN {
    floor = 0.70 * b
    if (c < floor) {
        printf "FAIL: x10_events_per_sec %.0f is below the 70%% regression floor %.0f\n", c, floor
        exit 1
    }
    printf "OK: within the 30%% regression budget (floor %.0f)\n", floor
}'

# Memory gate is a *ceiling*: the run must not get hungrier. The RSS
# delta rides on allocator state, so allow 1.5x the committed value plus
# a small absolute slack (0.05 MB/host = ~51 MB across 1024 hosts, far
# below any per-packet-copy or dense-route regression).
mem_baseline=$(read_field BENCH_substrate.json x10_mb_per_host)
mem_current=$(read_field "$X10_JSON" x10_mb_per_host)
if [ -z "$mem_baseline" ] || [ -z "$mem_current" ]; then
    echo "FAIL: could not read x10_mb_per_host (baseline='$mem_baseline', current='$mem_current')"
    exit 1
fi

echo "x10_mb_per_host: committed=$mem_baseline smoke=$mem_current"
awk -v b="$mem_baseline" -v c="$mem_current" 'BEGIN {
    ceiling = 1.5 * b + 0.05
    if (c > ceiling) {
        printf "FAIL: x10_mb_per_host %.3f exceeds the memory ceiling %.3f\n", c, ceiling
        exit 1
    }
    printf "OK: within the memory ceiling (%.3f MB/host)\n", ceiling
}'

# The >= 2x parallel-engine target only means anything with cores to
# spend: enforce it against the committed numbers when they were taken
# on a >= 4-core machine, and only report otherwise (this container has
# cpus recorded in BENCH_substrate.json).
cpus=$(read_field BENCH_substrate.json cpus)
speedup=$(read_field BENCH_substrate.json parallel_speedup_4c)
if [ -z "$cpus" ] || [ -z "$speedup" ]; then
    echo "FAIL: could not read cpus/parallel_speedup_4c from BENCH_substrate.json"
    exit 1
fi
awk -v cpus="$cpus" -v s="$speedup" 'BEGIN {
    if (cpus >= 4 && s < 2.0) {
        printf "FAIL: parallel_speedup_4c %.2fx < 2.0x on a %d-core machine\n", s, cpus
        exit 1
    }
    if (cpus >= 4)
        printf "OK: parallel_speedup_4c %.2fx meets the 2x target on %d cores\n", s, cpus
    else
        printf "note: parallel_speedup_4c %.2fx recorded on %d core(s); 2x gate needs >= 4\n", s, cpus
}'

echo "== ci.sh passed =="
