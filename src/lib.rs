//! # Themis — packet spraying for commodity RNICs with in-network support
//!
//! This is the facade crate of the Themis reproduction. It re-exports the
//! full workspace so downstream users can depend on a single crate:
//!
//! * [`telemetry`] — metric registry, event ring and versioned JSON reports.
//! * [`simcore`] — deterministic discrete-event simulation engine.
//! * [`netsim`] — network substrate: links, switches, buffers, ECN, topologies.
//! * [`rnic`] — commodity RNIC model: NIC-SR / Go-Back-N transports, DCQCN.
//! * [`collectives`] — Allreduce / Alltoall / AllGather / ReduceScatter workloads.
//! * [`themis_core`] — the paper's contribution: PSN-based spraying (Themis-S)
//!   and NACK filtering + compensation (Themis-D).
//! * [`themis_harness`] — experiment assembly and the figure-reproduction harness.
//!
//! ## Quickstart
//!
//! ```
//! use themis::harness::{ExperimentConfig, Scheme};
//!
//! // A small two-rack cluster with one sprayed flow, Themis enabled.
//! let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 42);
//! let result = themis::harness::run_point_to_point(&cfg, 1 << 20);
//! assert!(result.all_messages_completed());
//! ```

pub use collectives;
pub use netsim;
pub use rnic;
pub use simcore;
pub use telemetry;
pub use themis_core;
pub use themis_harness as harness;
