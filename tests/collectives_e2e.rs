//! Collectives × schemes matrix on the motivation fabric.
//!
//! Every collective must complete under every scheme with exactly the
//! right number of delivered bytes, and the scheme ordering the paper
//! predicts must hold on the ring workloads.

use themis::harness::oracle::{assert_conformant, OracleConfig};
use themis::harness::{run_collective, run_collective_on, Collective, ExperimentConfig, Scheme};

/// Expected delivered payload bytes for a collective over `groups`
/// groups of `n` ranks with per-group buffer `total`.
fn expected_bytes(c: Collective, groups: u64, n: u64, total: u64) -> u64 {
    let chunk = total / n;
    match c {
        Collective::Allreduce => groups * n * 2 * (n - 1) * chunk,
        Collective::AllGather | Collective::ReduceScatter => groups * n * (n - 1) * chunk,
        Collective::Alltoall => groups * n * (n - 1) * chunk,
        Collective::RingOnce => groups * n * total,
        Collective::Incast => groups * (n - 1) * total,
    }
}

#[test]
fn all_collectives_complete_under_all_schemes() {
    let total: u64 = 1 << 20;
    for collective in [
        Collective::Allreduce,
        Collective::Alltoall,
        Collective::AllGather,
        Collective::ReduceScatter,
        Collective::RingOnce,
        Collective::Incast,
    ] {
        for scheme in [
            Scheme::Ecmp,
            Scheme::AdaptiveRouting,
            Scheme::RandomSpray,
            Scheme::Themis,
            Scheme::ThemisPathMap,
        ] {
            let cfg = ExperimentConfig::motivation_small(scheme, 31);
            let (r, cluster) = run_collective_on(&cfg, collective, total);
            assert!(
                r.all_messages_completed(),
                "{} × {} did not complete",
                collective.label(),
                scheme.label()
            );
            assert_eq!(
                r.nics.bytes_delivered,
                expected_bytes(collective, 2, 4, total),
                "{} × {}: byte accounting",
                collective.label(),
                scheme.label()
            );
            assert_eq!(r.fabric.drops_no_route, 0);
            // Full protocol-invariant audit of the finished run.
            let mut oracle = OracleConfig::for_scheme(scheme)
                .with_expected_bytes(expected_bytes(collective, 2, 4, total));
            oracle.quiesced = r.sim_end < cfg.horizon;
            assert_conformant(&cluster, &oracle);
        }
    }
}

#[test]
fn themis_no_slower_than_ar_and_ecmp_on_ring() {
    // On the motivation fabric with congested ring traffic, the paper's
    // ordering: Themis ≤ AR and Themis ≤ ECMP (ECMP suffers collisions,
    // AR suffers NACK slow-starts).
    let bytes = 4 << 20;
    let ct = |scheme| {
        let cfg = ExperimentConfig::motivation_small(scheme, 11);
        run_collective(&cfg, Collective::RingOnce, bytes)
            .tail_ct
            .expect("completes")
            .as_secs_f64()
    };
    let themis = ct(Scheme::Themis);
    let ar = ct(Scheme::AdaptiveRouting);
    let ecmp = ct(Scheme::Ecmp);
    assert!(
        themis <= ar * 1.02,
        "Themis {themis} must not lose to AR {ar}"
    );
    assert!(
        themis <= ecmp * 1.02,
        "Themis {themis} must not lose to ECMP {ecmp}"
    );
}

#[test]
fn pathmap_mode_is_equivalent_on_two_tier() {
    // On a 2-tier Clos the PathMap rewrite and direct egress selection
    // realize the same path function, so whole-run metrics must match
    // exactly (same seed, deterministic engine).
    let bytes = 2 << 20;
    let a = run_collective(
        &ExperimentConfig::motivation_small(Scheme::Themis, 13),
        Collective::RingOnce,
        bytes,
    );
    let b = run_collective(
        &ExperimentConfig::motivation_small(Scheme::ThemisPathMap, 13),
        Collective::RingOnce,
        bytes,
    );
    assert_eq!(a.tail_ct, b.tail_ct);
    assert_eq!(a.themis.nacks_blocked, b.themis.nacks_blocked);
    assert_eq!(a.nics.ooo_packets, b.nics.ooo_packets);
}

#[test]
fn alltoall_stresses_last_hop_and_still_completes() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 17);
    let (r, cluster) = run_collective_on(&cfg, Collective::Alltoall, 4 << 20);
    assert!(r.all_messages_completed());
    // 4-rank alltoall: every rank receives from 3 peers concurrently —
    // the last hop is oversubscribed 3:1 and must mark or queue.
    assert!(r.sim_end.as_nanos() > 0);
    let mut oracle = OracleConfig::for_scheme(Scheme::Themis);
    oracle.quiesced = r.sim_end < cfg.horizon;
    assert_conformant(&cluster, &oracle);
}

#[test]
fn group_completion_times_are_recorded_per_group() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 19);
    let r = run_collective(&cfg, Collective::RingOnce, 1 << 20);
    assert_eq!(r.group_cts.len(), 2);
    for ct in &r.group_cts {
        assert!(ct.is_some());
    }
    let tail = r.tail_ct.unwrap();
    assert_eq!(
        tail,
        r.group_cts.iter().map(|c| c.unwrap()).max().unwrap(),
        "tail is the slowest group"
    );
}
