//! Whole-simulation determinism.
//!
//! The engine breaks event-time ties by insertion order and all
//! randomness flows from explicit seeds, so identical configurations
//! must produce bit-identical results — the property that makes A/B
//! comparisons between schemes noise-free.

use themis::harness::{run_collective, run_point_to_point, Collective, ExperimentConfig, Scheme};

#[test]
fn identical_seeds_identical_results() {
    for scheme in [Scheme::RandomSpray, Scheme::Themis, Scheme::AdaptiveRouting] {
        let cfg = ExperimentConfig::motivation_small(scheme, 77);
        let a = run_collective(&cfg, Collective::RingOnce, 2 << 20);
        let b = run_collective(&cfg, Collective::RingOnce, 2 << 20);
        assert_eq!(a.tail_ct, b.tail_ct, "{}", scheme.label());
        assert_eq!(a.events, b.events, "{}", scheme.label());
        assert_eq!(a.nics.retx_packets, b.nics.retx_packets);
        assert_eq!(a.nics.nacks_sent, b.nics.nacks_sent);
        assert_eq!(a.themis.nacks_blocked, b.themis.nacks_blocked);
        assert_eq!(a.fabric.ecn_marked, b.fabric.ecn_marked);
        assert_eq!(a.group_cts, b.group_cts);
    }
}

#[test]
fn different_seeds_differ_for_randomized_schemes() {
    let a = run_collective(
        &ExperimentConfig::motivation_small(Scheme::RandomSpray, 1),
        Collective::RingOnce,
        2 << 20,
    );
    let b = run_collective(
        &ExperimentConfig::motivation_small(Scheme::RandomSpray, 2),
        Collective::RingOnce,
        2 << 20,
    );
    // Random spraying draws per-packet random paths: the exact event
    // count is astronomically unlikely to coincide across seeds.
    assert_ne!(
        (a.events, a.nics.nacks_sent),
        (b.events, b.nics.nacks_sent),
        "different seeds should perturb a randomized run"
    );
}

#[test]
fn deterministic_spray_is_seed_invariant_in_shape() {
    // Themis sprays deterministically by PSN; only the ECMP base path
    // (a function of the seeded sport allocation) varies with the seed.
    // Completion must hold regardless of seed.
    for seed in [3, 4, 5] {
        let r = run_point_to_point(
            &ExperimentConfig::motivation_small(Scheme::Themis, seed),
            4 << 20,
        );
        assert!(r.all_messages_completed(), "seed {seed}");
        assert_eq!(r.nics.retx_packets, 0, "seed {seed}");
    }
}
