//! §6 failure handling *during* a run.
//!
//! A monitoring system (Pingmesh-style) notifies ToRs mid-transfer that a
//! fabric link failed; they revert to ECMP and stop spraying. Later the
//! link recovers and spraying resumes. The flow must survive the whole
//! episode — including the transition moments, where in-flight sprayed
//! packets meet an ECMP-forwarding fabric and vice versa.

use themis::collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use themis::collectives::schedule::{Schedule, Transfer};
use themis::harness::oracle::{assert_conformant, OracleConfig};
use themis::harness::{build_cluster, ExperimentConfig, Scheme};
use themis::netsim::event::{ControlMsg, Event};
use themis::netsim::lb::LbPolicy;
use themis::netsim::switch::Switch;
use themis::simcore::time::Nanos;
use themis::themis_core::ThemisMiddleware;

fn p2p(bytes: u64) -> Schedule {
    Schedule {
        name: "p2p",
        n_ranks: 2,
        transfers: vec![Transfer {
            src: 0,
            dst: 1,
            bytes,
            deps: vec![],
        }],
    }
}

#[test]
fn flow_survives_mid_run_failure_and_recovery() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 47);
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
    let src = cluster.hosts[0];
    let dst = cluster.hosts[cfg.fabric.hosts_per_leaf];
    let mut alloc = QpAllocator::new(3);
    let mut driver = Driver::new();
    let spec = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &[src, dst],
        p2p(16 << 20), // ~1.4 ms at line rate
        &mut alloc,
    );
    driver.add_instance(spec);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );

    // Fail at 300 µs, recover at 700 µs — in the middle of the transfer.
    let restored = Scheme::Themis.lb_policy();
    for &leaf in &cluster.leaves.clone() {
        cluster.world.seed_event(
            Nanos::from_micros(300),
            leaf,
            Event::Control(ControlMsg::TorLinkFailure),
        );
        cluster.world.seed_event(
            Nanos::from_micros(700),
            leaf,
            Event::Control(ControlMsg::TorLinkRecovery { lb: restored }),
        );
    }

    cluster.world.run_until(cfg.horizon);

    // Protocol-invariant audit across the failure episode.
    let mut oracle = OracleConfig::for_scheme(Scheme::Themis);
    oracle.quiesced = cluster.world.now() < cfg.horizon;
    assert_conformant(&cluster, &oracle);

    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    assert!(d.all_complete(), "flow must survive the failure episode");

    // Every ToR ended up restored: policy back, sprayer enabled.
    for &leaf in &cluster.leaves {
        let sw: &Switch = cluster.world.get(leaf).unwrap();
        assert_eq!(sw.lb(), restored);
        let m = sw
            .hook()
            .unwrap()
            .as_any()
            .downcast_ref::<ThemisMiddleware>()
            .unwrap();
        assert!(m.s.is_enabled(), "spraying resumed after recovery");
    }
    // The source ToR (only it sees upstream data) both sprayed (outside
    // the failure window) and bypassed (inside it).
    let src_tor: &Switch = cluster.world.get(cluster.leaves[0]).unwrap();
    let m = src_tor
        .hook()
        .unwrap()
        .as_any()
        .downcast_ref::<ThemisMiddleware>()
        .unwrap();
    assert!(m.s.stats.sprayed > 0, "sprayed outside the failure window");
    assert!(
        m.s.stats.bypassed > 0,
        "packets passed un-sprayed during the failure window"
    );

    // The episode may cost a few retransmissions at the transitions (the
    // Eq. 3 modulus is meaningless for packets forwarded by ECMP), but
    // recovery must not rely on timeouts more than once or twice.
    let nics = themis::harness::experiment::aggregate_nics(&cluster);
    assert!(
        nics.rto_fires <= 2,
        "transitions should not degenerate into RTO storms: {}",
        nics.rto_fires
    );
}

#[test]
fn failure_only_episode_degenerates_to_clean_ecmp() {
    // Fail before any traffic: the whole run is ECMP and perfectly clean.
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 47);
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
    for &leaf in &cluster.leaves.clone() {
        cluster.world.seed_event(
            Nanos::ZERO,
            leaf,
            Event::Control(ControlMsg::TorLinkFailure),
        );
    }
    let src = cluster.hosts[0];
    let dst = cluster.hosts[cfg.fabric.hosts_per_leaf];
    let mut alloc = QpAllocator::new(3);
    let mut driver = Driver::new();
    let spec = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &[src, dst],
        p2p(4 << 20),
        &mut alloc,
    );
    driver.add_instance(spec);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::from_micros(1),
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);

    // A pure-ECMP run must be perfectly conformant too.
    let mut oracle = OracleConfig::for_scheme(Scheme::Themis);
    oracle.quiesced = cluster.world.now() < cfg.horizon;
    assert_conformant(&cluster, &oracle);

    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    assert!(d.all_complete());
    let nics = themis::harness::experiment::aggregate_nics(&cluster);
    assert_eq!(nics.ooo_packets, 0, "pure ECMP is in-order");
    assert_eq!(nics.retx_packets, 0);
    for &leaf in &cluster.leaves {
        let sw: &Switch = cluster.world.get(leaf).unwrap();
        assert_eq!(sw.lb(), LbPolicy::Ecmp);
    }
}
