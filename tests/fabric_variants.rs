//! Fabric variants beyond the paper's 1:1 symmetric setups:
//! oversubscription and heterogeneous (faster-core) link rates.

use themis::harness::{run_collective, Collective, ExperimentConfig, Scheme};
use themis::netsim::port::LinkSpec;
use themis::netsim::topology::LeafSpineConfig;
use themis::rnic::NicConfig;
use themis::simcore::time::Nanos;

/// 2:1 oversubscribed fabric: 4 hosts per leaf but only 2 spines at host
/// rate — the uplink tier carries half the access bandwidth.
fn oversubscribed() -> LeafSpineConfig {
    LeafSpineConfig {
        n_leaves: 4,
        hosts_per_leaf: 4,
        n_spines: 2,
        ..LeafSpineConfig::motivation()
    }
}

/// Fast-core fabric: 100 Gbps hosts, 400 Gbps fabric links.
fn fast_core() -> LeafSpineConfig {
    LeafSpineConfig {
        fabric_link: LinkSpec::gbps(400, 1),
        ..LeafSpineConfig::motivation()
    }
}

fn run(fabric: LeafSpineConfig, scheme: Scheme, bytes: u64) -> themis::harness::ExperimentResult {
    let cfg = ExperimentConfig {
        nic: NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
        fabric,
        scheme,
        seed: 71,
        horizon: Nanos::from_secs(2),
        shards: themis::harness::shards_from_env(),
    };
    run_collective(&cfg, Collective::RingOnce, bytes)
}

#[test]
fn oversubscribed_fabric_completes_and_themis_stays_clean() {
    // 4 groups of 4 (one rank per leaf): cross-rack rings over a 2:1
    // oversubscribed core. Core congestion is structural; Themis must
    // still filter everything.
    let bytes = 2 << 20;
    let themis = run(oversubscribed(), Scheme::Themis, bytes);
    assert!(themis.all_messages_completed());
    assert_eq!(themis.nics.retx_packets, 0, "{:?}", themis.themis);
    // Oversubscription forces queueing: ECN fires under any scheme.
    assert!(themis.fabric.ecn_marked > 0, "2:1 core must congest");

    let ecmp = run(oversubscribed(), Scheme::Ecmp, bytes);
    assert!(ecmp.all_messages_completed());
    let (t, e) = (
        themis.tail_ct.unwrap().as_secs_f64(),
        ecmp.tail_ct.unwrap().as_secs_f64(),
    );
    assert!(
        t <= e * 1.05,
        "spraying cannot lose to ECMP on a congested core: {t} vs {e}"
    );
}

#[test]
fn fast_core_absorbs_spray_bursts() {
    // With 4x-faster fabric links, spine queues drain instantly: spraying
    // produces (almost) no reordering, and Themis has (almost) nothing to
    // block — yet everything still completes cleanly.
    let bytes = 4 << 20;
    let r = run(fast_core(), Scheme::Themis, bytes);
    assert!(r.all_messages_completed());
    assert_eq!(r.nics.retx_packets, 0);
    let slow = run(LeafSpineConfig::motivation(), Scheme::Themis, bytes);
    assert!(
        r.nics.ooo_packets < slow.nics.ooo_packets / 2,
        "fast core should reorder far less: {} vs {}",
        r.nics.ooo_packets,
        slow.nics.ooo_packets
    );
}

#[test]
fn mtu_variants_work_end_to_end() {
    // Jumbo frames (4096 B payload) change packetization and the BDP
    // sizing of the PSN queue; everything must still hold together.
    for mtu in [512u32, 1500, 4096] {
        let fabric = LeafSpineConfig::motivation();
        let mut nic = NicConfig::nic_sr(fabric.host_link.bandwidth_bps);
        nic.mtu_payload = mtu;
        let cfg = ExperimentConfig {
            nic,
            fabric,
            scheme: Scheme::Themis,
            seed: 71,
            horizon: Nanos::from_secs(2),
            shards: themis::harness::shards_from_env(),
        };
        let r = run_collective(&cfg, Collective::RingOnce, 2 << 20);
        assert!(r.all_messages_completed(), "mtu {mtu}");
        assert_eq!(r.nics.retx_packets, 0, "mtu {mtu}");
        assert_eq!(r.nics.bytes_delivered, 8 * (2 << 20), "mtu {mtu}");
    }
}

#[test]
fn ack_coalescing_reduces_control_traffic() {
    // Coalescing factor 8: one cumulative ACK per 8 in-order arrivals.
    // Completion and Themis behaviour are unaffected; the reverse path
    // carries ~8x fewer ACKs.
    let mut acks = Vec::new();
    for coalescing in [1u32, 8] {
        let fabric = LeafSpineConfig::motivation();
        let mut nic = NicConfig::nic_sr(fabric.host_link.bandwidth_bps);
        nic.ack_coalescing = coalescing;
        let cfg = ExperimentConfig {
            nic,
            fabric,
            scheme: Scheme::Themis,
            seed: 71,
            horizon: Nanos::from_secs(2),
            shards: themis::harness::shards_from_env(),
        };
        let r = run_collective(&cfg, Collective::RingOnce, 2 << 20);
        assert!(r.all_messages_completed(), "coalescing {coalescing}");
        assert_eq!(r.nics.retx_packets, 0, "coalescing {coalescing}");
        // acks_sent lives in receiver stats; recover via cluster would be
        // heavier — use the delivered-bytes invariant plus relative event
        // counts as the proxy.
        acks.push(r.events);
    }
    assert!(
        acks[1] < acks[0],
        "coalescing must shrink total event count: {} vs {}",
        acks[1],
        acks[0]
    );
}
