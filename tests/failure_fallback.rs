//! §6 link-failure tolerance, end to end.
//!
//! On failure notification a ToR reverts to ECMP and stops spraying;
//! traffic then stays on single flow-hashed paths (no out-of-order
//! arrivals), and recovery restores spraying.

use themis::harness::{build_cluster, ExperimentConfig, Scheme};
use themis::netsim::event::Event;
use themis::netsim::lb::LbPolicy;
use themis::netsim::switch::Switch;
use themis::simcore::time::Nanos;
use themis::themis_core::failure::{apply_failure_fallback, restore_after_repair};
use themis::themis_core::ThemisMiddleware;

use collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use collectives::schedule::{Schedule, Transfer};

fn p2p_schedule(bytes: u64) -> Schedule {
    Schedule {
        name: "p2p",
        n_ranks: 2,
        transfers: vec![Transfer {
            src: 0,
            dst: 1,
            bytes,
            deps: vec![],
        }],
    }
}

#[test]
fn failed_tor_reverts_to_ecmp_and_flow_stays_in_order() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 5);
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);

    // Declare a failure on every ToR before traffic starts.
    for &leaf in &cluster.leaves.clone() {
        let sw = cluster.world.get_mut::<Switch>(leaf).expect("leaf");
        assert!(apply_failure_fallback(sw));
        assert_eq!(sw.lb(), LbPolicy::Ecmp);
    }

    let src = cluster.hosts[0];
    let dst = cluster.hosts[cfg.fabric.hosts_per_leaf];
    let mut alloc = QpAllocator::new(3);
    let mut driver = Driver::new();
    let spec = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &[src, dst],
        p2p_schedule(8 << 20),
        &mut alloc,
    );
    driver.add_instance(spec);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);

    let driver: &Driver = cluster.world.get(cluster.driver).expect("driver");
    assert!(driver.all_complete(), "flow completes in ECMP fallback");
    let nics = themis::harness::experiment::aggregate_nics(&cluster);
    assert_eq!(
        nics.ooo_packets, 0,
        "single ECMP path must deliver in order"
    );
    // Themis-S sprayed nothing.
    let agg = cluster.themis_stats();
    assert_eq!(agg.sprayed, 0, "spraying disabled during failure");
}

#[test]
fn recovery_restores_spraying() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 5);
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
    for &leaf in &cluster.leaves.clone() {
        let sw = cluster.world.get_mut::<Switch>(leaf).expect("leaf");
        apply_failure_fallback(sw);
        assert!(restore_after_repair(sw, Scheme::Themis.lb_policy()));
        let m = sw
            .hook()
            .unwrap()
            .as_any()
            .downcast_ref::<ThemisMiddleware>()
            .unwrap();
        assert!(m.s.is_enabled());
    }

    let src = cluster.hosts[0];
    let dst = cluster.hosts[cfg.fabric.hosts_per_leaf];
    let mut alloc = QpAllocator::new(3);
    let mut driver = Driver::new();
    let spec = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &[src, dst],
        p2p_schedule(4 << 20),
        &mut alloc,
    );
    driver.add_instance(spec);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);

    let agg = cluster.themis_stats();
    assert!(agg.sprayed > 0, "spraying active again after repair");
    let driver: &Driver = cluster.world.get(cluster.driver).expect("driver");
    assert!(driver.all_complete());
}
