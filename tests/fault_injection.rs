//! Fault-injection subsystem: serialization pin, fault effects, and the
//! oracle ↔ telemetry cross-check.
//!
//! The first test pins the v1 `FaultPlan` text form byte-for-byte against
//! `tests/golden/faultplan_v1.txt` — the shrinker prints this format and
//! users paste it back with `themis_fuzz --plan`, so it must stay stable
//! across releases. The rest run real fault plans through the simulator
//! and check both the physical effect (drop records with the right cause)
//! and the bookkeeping (oracle conservation agrees with the `agg.*`
//! telemetry exports).

use themis::harness::faults::{Fault, FaultEvent, FaultPlan};
use themis::harness::oracle::{self, OracleConfig};
use themis::harness::{run_collective_with_faults, Collective, ExperimentConfig, Scheme};
use themis::netsim::switch::Switch;
use themis::netsim::trace::DropCause;
use themis::simcore::time::Nanos;

const GOLDEN: &str = include_str!("golden/faultplan_v1.txt");

/// The plan whose serialization the golden file pins: one event per
/// `Fault` variant (all 13).
fn golden_plan() -> FaultPlan {
    let us = Nanos::from_micros;
    FaultPlan {
        events: vec![
            FaultEvent {
                at: Nanos::ZERO,
                fault: Fault::TargetedDrop {
                    leaf: 0,
                    qp: 3,
                    psn: 17,
                },
            },
            FaultEvent {
                at: us(50),
                fault: Fault::UplinkDown { leaf: 0, uplink: 1 },
            },
            FaultEvent {
                at: us(60),
                fault: Fault::UplinkUp { leaf: 0, uplink: 1 },
            },
            FaultEvent {
                at: us(70),
                fault: Fault::DelaySpike {
                    leaf: 1,
                    uplink: 0,
                    extra_ns: 12_000,
                },
            },
            FaultEvent {
                at: us(90),
                fault: Fault::DelayClear { leaf: 1, uplink: 0 },
            },
            FaultEvent {
                at: us(100),
                fault: Fault::UplinkLoss {
                    leaf: 2,
                    uplink: 1,
                    rate_ppm: 2500,
                },
            },
            FaultEvent {
                at: us(120),
                fault: Fault::UplinkLossClear { leaf: 2, uplink: 1 },
            },
            FaultEvent {
                at: us(130),
                fault: Fault::ReverseCorrupt {
                    leaf: 3,
                    rate_ppm: 800,
                },
            },
            FaultEvent {
                at: us(150),
                fault: Fault::ReverseCorruptClear { leaf: 3 },
            },
            FaultEvent {
                at: us(160),
                fault: Fault::SprayOff { leaf: 0 },
            },
            FaultEvent {
                at: us(170),
                fault: Fault::SprayOn { leaf: 0 },
            },
            FaultEvent {
                at: us(180),
                fault: Fault::TorFail { leaf: 1 },
            },
            FaultEvent {
                at: us(200),
                fault: Fault::TorRecover { leaf: 1 },
            },
        ],
    }
}

#[test]
fn faultplan_text_format_is_pinned_by_the_golden_file() {
    let plan = golden_plan();
    assert_eq!(
        plan.to_text(),
        GOLDEN,
        "FaultPlan v1 text form drifted from tests/golden/faultplan_v1.txt — \
         shrinker output would no longer replay; bump the header version \
         instead of silently changing the format"
    );
    // The golden text parses back to exactly the same plan.
    assert_eq!(FaultPlan::from_text(GOLDEN).unwrap(), plan);
    // And normalization leaves the canonical order untouched.
    let mut renorm = plan.clone();
    renorm.normalize();
    assert_eq!(renorm, golden_plan());
}

#[test]
fn uplink_down_blackholes_with_port_down_drop_records() {
    // Take one uplink of the source leaf down mid-transfer; sprayed
    // packets already committed to that egress die with cause PortDown,
    // the transport recovers them, and the oracle still conserves.
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 23);
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                at: Nanos::from_micros(50),
                fault: Fault::UplinkDown { leaf: 0, uplink: 0 },
            },
            FaultEvent {
                at: Nanos::from_micros(250),
                fault: Fault::UplinkUp { leaf: 0, uplink: 0 },
            },
        ],
    };
    let (r, cluster) = run_collective_with_faults(&cfg, Collective::RingOnce, 2 << 20, &plan);
    assert!(r.all_messages_completed(), "flow must survive the outage");
    let port_down_drops: u64 = cluster
        .all_switches()
        .iter()
        .filter_map(|&n| cluster.world.get::<Switch>(n))
        .flat_map(|sw| sw.drop_log().iter())
        .filter(|d| d.cause == DropCause::PortDown)
        .count() as u64;
    assert!(
        port_down_drops > 0,
        "a downed uplink under line-rate spray must blackhole something"
    );
    // Blackholed packets land in the targeted-drop counter, not buffer.
    assert!(r.fabric.drops_targeted >= port_down_drops);
    assert_eq!(r.fabric.drops_buffer, 0);
    let mut ocfg = OracleConfig::for_scheme(Scheme::Themis).without_rto_bound();
    ocfg.quiesced = r.sim_end < cfg.horizon;
    oracle::assert_conformant(&cluster, &ocfg);
}

#[test]
fn targeted_drop_kills_exactly_the_named_packet_and_is_recovered() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 29);
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at: Nanos::ZERO,
            fault: Fault::TargetedDrop {
                leaf: 0,
                qp: 0,
                psn: 40,
            },
        }],
    };
    let (r, cluster) = run_collective_with_faults(&cfg, Collective::RingOnce, 1 << 20, &plan);
    assert!(r.all_messages_completed());
    let targeted: Vec<_> = cluster
        .all_switches()
        .iter()
        .filter_map(|&n| cluster.world.get::<Switch>(n))
        .flat_map(|sw| sw.drop_log().iter())
        .filter(|d| matches!(d.cause, DropCause::Targeted | DropCause::Injected))
        .map(|d| (d.qp.0, d.psn))
        .collect();
    assert_eq!(targeted, vec![(0, 40)], "exactly the armed (qp, psn) died");
    assert!(r.nics.retx_packets >= 1, "the loss was retransmitted");
    let mut ocfg = OracleConfig::for_scheme(Scheme::Themis);
    ocfg.quiesced = r.sim_end < cfg.horizon;
    oracle::assert_conformant(&cluster, &ocfg);
}

#[test]
fn oracle_conservation_agrees_with_telemetry_exports() {
    // Satellite cross-check: the oracle's packet-conservation ledger and
    // the `agg.fabric.*` counters exported in the telemetry snapshot are
    // two independent views of the same run — they must agree exactly.
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 31);
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                at: Nanos::ZERO,
                fault: Fault::TargetedDrop {
                    leaf: 0,
                    qp: 0,
                    psn: 8,
                },
            },
            FaultEvent {
                at: Nanos::ZERO,
                fault: Fault::TargetedDrop {
                    leaf: 0,
                    qp: 0,
                    psn: 21,
                },
            },
        ],
    };
    let (r, cluster) = run_collective_with_faults(&cfg, Collective::RingOnce, 1 << 20, &plan);
    assert!(r.all_messages_completed());

    let mut ocfg = OracleConfig::for_scheme(Scheme::Themis);
    ocfg.quiesced = r.sim_end < cfg.horizon;
    let report = oracle::audit(&cluster, &ocfg);
    assert!(
        report.violations.is_empty(),
        "conformance violations: {:?}",
        report.violations
    );

    let counter = |name: &str| -> u64 {
        r.telemetry
            .counter(name)
            .unwrap_or_else(|| panic!("telemetry export {name} missing"))
    };
    // The targeted counter carries exactly our two armed kills.
    assert_eq!(counter("agg.fabric.drops_targeted"), 2);
    assert_eq!(
        counter("agg.fabric.drops_targeted"),
        r.fabric.drops_targeted
    );
    assert_eq!(counter("agg.fabric.drops_buffer"), r.fabric.drops_buffer);
    assert_eq!(
        counter("agg.fabric.drops_no_route"),
        r.fabric.drops_no_route
    );
    // Oracle ledger vs exported counters: every dropped data packet the
    // oracle accounted for appears in one of the exported drop classes.
    assert_eq!(
        report.data_dropped,
        counter("agg.fabric.drops_buffer")
            + counter("agg.fabric.drops_targeted")
            + counter("agg.fabric.drops_no_route"),
        "oracle drop ledger and telemetry exports disagree"
    );
    assert_eq!(report.distinct_losses, 2);
    assert_eq!(counter("agg.nic.retx_packets"), r.nics.retx_packets);
    assert!(report.retx_packets >= report.distinct_losses);
}
