//! The §2.3 flowlet argument, demonstrated end to end.
//!
//! Flowlet-based load balancing relies on inter-packet gaps to re-route
//! safely. RNICs pace in hardware at (near) line rate, so a busy flow
//! never pauses long enough to open a gap: each flow gets exactly one
//! flowlet placement, packets stay in order, and load balancing
//! degenerates to per-flow (ECMP-like) placement with the same collision
//! problem.

use themis::harness::{run_collective, Collective, ExperimentConfig, Scheme};
use themis::netsim::switch::Switch;

#[test]
fn busy_rnic_flows_never_open_flowlet_gaps() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Flowlet, 23);
    let (r, cluster) = themis::harness::run_collective_on(&cfg, Collective::RingOnce, 4 << 20);
    assert!(r.all_messages_completed());

    // In-order delivery: flowlets never split a busy flow across paths.
    assert_eq!(r.nics.ooo_packets, 0, "flowlet LB must not reorder");
    assert_eq!(r.nics.retx_packets, 0);

    // Count flowlet re-picks across all ToRs: one placement per
    // cross-rack flow direction and nothing more (no gaps under
    // hardware pacing). 8 data flows + their reverse ACK streams.
    let switches: u64 = cluster
        .leaves
        .iter()
        .filter_map(|&l| cluster.world.get::<Switch>(l))
        .map(|sw| sw.lb_state().flowlet_switches)
        .sum();
    // 8 forward flows and 8 ACK streams -> at most 16 placements, plus a
    // handful of handshake-time placements; crucially NOT thousands
    // (one per packet would be ~11k).
    assert!(
        switches <= 32,
        "expected ~one flowlet per flow, got {switches} re-picks"
    );
}

#[test]
fn flowlet_degenerates_to_per_flow_placement() {
    // With per-flow placement, collisions happen exactly as under ECMP:
    // completion time is far from the sprayed optimum.
    let bytes = 4 << 20;
    let flowlet = run_collective(
        &ExperimentConfig::motivation_small(Scheme::Flowlet, 23),
        Collective::RingOnce,
        bytes,
    );
    let themis = run_collective(
        &ExperimentConfig::motivation_small(Scheme::Themis, 23),
        Collective::RingOnce,
        bytes,
    );
    let f = flowlet.tail_ct.unwrap().as_secs_f64();
    let t = themis.tail_ct.unwrap().as_secs_f64();
    assert!(
        t < f,
        "packet-level spraying ({t:.6}s) must beat flowlet placement ({f:.6}s)"
    );
}
