//! Previous-generation RNICs (Go-Back-N) under packet spraying.
//!
//! The paper's §1 framing: CX-4/5-class RNICs drop out-of-order packets
//! outright and rewind on NACK, so spraying is *catastrophic* for them —
//! which is why Themis targets the NIC-SR generation. These tests pin
//! that generational story end to end:
//!
//! * GBN + ECMP (single path): clean, no discards.
//! * GBN + spraying: every reorder discards packets and rewinds the
//!   sender — goodput collapses far below NIC-SR under the same spray.
//! * GBN + Themis: blocking invalid NACKs helps, but the receiver still
//!   discards OOO arrivals, so Themis cannot rescue the old generation
//!   (discards turn into real holes that *must* be renacked/rewound).

use rnic::{NicConfig, TransportMode};
use themis::harness::{run_collective, Collective, ExperimentConfig, Scheme};

/// Run the contended Fig 1a ring workload (reordering guaranteed by the
/// competing flows) under the given transport generation.
fn run(scheme: Scheme, transport: TransportMode, bytes: u64) -> themis::harness::ExperimentResult {
    let mut cfg = ExperimentConfig::motivation_small(scheme, 33);
    cfg.nic = NicConfig {
        transport,
        ..NicConfig::nic_sr(cfg.fabric.host_link.bandwidth_bps)
    };
    run_collective(&cfg, Collective::RingOnce, bytes)
}

#[test]
fn gbn_on_single_path_is_clean() {
    let r = run(Scheme::Ecmp, TransportMode::GoBackN, 8 << 20);
    assert!(r.all_messages_completed());
    assert_eq!(r.nics.retx_packets, 0);
    assert_eq!(r.nics.ooo_packets, 0);
}

#[test]
fn gbn_under_spraying_wastes_bandwidth_on_rewinds() {
    let bytes = 4 << 20;
    let gbn = run(Scheme::SprayNoFilter, TransportMode::GoBackN, bytes);
    let sr = run(Scheme::SprayNoFilter, TransportMode::SelectiveRepeat, bytes);
    assert!(gbn.all_messages_completed(), "eventually finishes");
    assert!(sr.all_messages_completed());
    // GBN discards every OOO packet and rewinds the whole window:
    // bandwidth waste dwarfs SR's single-packet retransmissions.
    assert!(
        gbn.nics.retx_packets > sr.nics.retx_packets * 3,
        "GBN rewinds must dwarf SR single-packet retransmissions: {} vs {}",
        gbn.nics.retx_packets,
        sr.nics.retx_packets
    );
    // An interesting emergent twist this suite pins deliberately: raw
    // *completion time* under spraying can favour GBN, because each GBN
    // rewind restores in-order arrival for a long stretch (few distinct
    // NACKs -> few rate cuts), while the SR receiver NACKs every new
    // hole and its sender gets slow-started continuously. Unfiltered
    // spraying is bad for both generations in different currencies —
    // waste for GBN, rate collapse for SR — and only NACK filtering
    // (Themis) resolves the SR side.
    assert!(
        gbn.nics.nacks_received < sr.nics.nacks_received,
        "GBN's rewinds self-synchronize: fewer distinct NACKs ({} vs {})",
        gbn.nics.nacks_received,
        sr.nics.nacks_received
    );
}

#[test]
fn gbn_spraying_is_far_worse_than_gbn_ecmp() {
    let bytes = 8 << 20;
    let spray = run(Scheme::SprayNoFilter, TransportMode::GoBackN, bytes);
    let ecmp = run(Scheme::Ecmp, TransportMode::GoBackN, bytes);
    assert!(spray.all_messages_completed() && ecmp.all_messages_completed());
    assert!(
        spray.nics.retx_packets > 100,
        "sprayed GBN rewinds constantly: {}",
        spray.nics.retx_packets
    );
    assert_eq!(ecmp.nics.retx_packets, 0, "single-path GBN never rewinds");
}

#[test]
fn themis_cannot_rescue_go_back_n() {
    // Themis blocks the "invalid" NACKs, but a GBN receiver has already
    // *discarded* the OOO packets those NACKs reported — the holes are
    // real. The flow survives only through compensation/RTO rewinds and
    // stays far slower than NIC-SR + Themis. This pins the paper's
    // motivation for targeting the NIC-SR generation specifically.
    let bytes = 2 << 20;
    let gbn_themis = run(Scheme::Themis, TransportMode::GoBackN, bytes);
    let sr_themis = run(Scheme::Themis, TransportMode::SelectiveRepeat, bytes);
    assert!(gbn_themis.all_messages_completed());
    assert!(sr_themis.all_messages_completed());
    let (g, s) = (
        gbn_themis.tail_ct.unwrap().as_secs_f64(),
        sr_themis.tail_ct.unwrap().as_secs_f64(),
    );
    assert!(
        g > s * 1.5,
        "Themis+GBN ({g:.6}s) cannot approach Themis+NIC-SR ({s:.6}s)"
    );
    assert_eq!(sr_themis.nics.retx_packets, 0, "NIC-SR + Themis is clean");
}
