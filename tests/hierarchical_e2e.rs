//! Hierarchical (rack-aware) Allreduce end to end: all 8 hosts of the
//! motivation fabric as one job (4 racks × 2 local ranks).
//!
//! The two-level algorithm sends only 1/locals of the flat ring's bytes
//! across the core, and Themis keeps the cross-rack phase clean.

use themis::collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use themis::collectives::hierarchical::hierarchical_allreduce;
use themis::collectives::ring::ring_allreduce;
use themis::collectives::schedule::Schedule;
use themis::harness::{build_cluster, ExperimentConfig, Scheme};
use themis::netsim::event::Event;
use themis::netsim::switch::Switch;
use themis::netsim::types::HostId;
use themis::simcore::time::Nanos;

fn run_whole_fabric(
    scheme: Scheme,
    schedule: Schedule,
    interleaved: bool,
) -> (
    themis::harness::Cluster,
    Option<themis::simcore::time::TimeDelta>,
) {
    let cfg = ExperimentConfig::motivation_small(scheme, 83);
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
    // Rack-major rank order (rank = rack * locals + local) for the
    // hierarchical schedule; interleaved order (every ring hop crosses
    // racks, the paper's group construction) for the flat baseline.
    let hosts: Vec<HostId> = if interleaved {
        (0..8).map(|i| HostId((i % 4) * 2 + i / 4)).collect()
    } else {
        (0..8).map(HostId).collect()
    };
    let mut alloc = QpAllocator::new(41);
    let mut driver = Driver::new();
    let spec = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &hosts,
        schedule,
        &mut alloc,
    );
    driver.add_instance(spec);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);
    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    let ct = d
        .tail_completion()
        .map(|t| t.since(d.started_at().unwrap()));
    (cluster, ct)
}

/// Bytes that crossed the spine layer (sum of spine egress bytes).
fn spine_bytes(cluster: &themis::harness::Cluster) -> u64 {
    cluster
        .spines
        .iter()
        .map(|&s| {
            let sw: &Switch = cluster.world.get(s).unwrap();
            (0..sw.num_ports())
                .map(|p| sw.port(p).stats.tx_bytes)
                .sum::<u64>()
        })
        .sum()
}

#[test]
fn hierarchical_allreduce_completes_cleanly_under_themis() {
    let total = 8u64 << 20;
    let (cluster, ct) =
        run_whole_fabric(Scheme::Themis, hierarchical_allreduce(4, 2, total), false);
    assert!(ct.is_some(), "hierarchical allreduce completes");
    let nics = themis::harness::experiment::aggregate_nics(&cluster);
    assert_eq!(nics.retx_packets, 0);
    assert_eq!(nics.rto_fires, 0);
}

#[test]
fn hierarchical_moves_less_over_the_core_than_flat_ring() {
    let total = 8u64 << 20;
    let (hier, hier_ct) =
        run_whole_fabric(Scheme::Themis, hierarchical_allreduce(4, 2, total), false);
    // Flat baseline rides the paper-style interleaved ring: every hop of
    // the 8-rank ring is cross-rack.
    let (flat, flat_ct) = run_whole_fabric(Scheme::Themis, ring_allreduce(8, total), true);
    assert!(hier_ct.is_some() && flat_ct.is_some());
    let (hb, fb) = (spine_bytes(&hier), spine_bytes(&flat));
    assert!(
        hb * 2 <= fb,
        "two local ranks should at least halve core traffic: {hb} vs {fb}"
    );
    // Both deliver the mathematically required volume in the end.
    let hier_nics = themis::harness::experiment::aggregate_nics(&hier);
    let flat_nics = themis::harness::experiment::aggregate_nics(&flat);
    assert!(hier_nics.bytes_delivered > 0 && flat_nics.bytes_delivered > 0);
}

#[test]
fn hierarchical_vs_flat_under_ecmp_collisions() {
    // With fewer, smaller cross-rack flows, hierarchical allreduce is
    // also less exposed to ECMP collisions — both must complete.
    let total = 4u64 << 20;
    let (_, hier_ct) = run_whole_fabric(Scheme::Ecmp, hierarchical_allreduce(4, 2, total), false);
    let (_, flat_ct) = run_whole_fabric(Scheme::Ecmp, ring_allreduce(8, total), true);
    assert!(hier_ct.is_some() && flat_ct.is_some());
}
