//! Exhaustive model checking of the Themis-D decision procedure.
//!
//! For a small window of packets sprayed over **four** paths (the core
//! requires a power-of-two path count so `PSN mod N` survives 24-bit
//! wrap-around) we enumerate **every** arrival interleaving consistent
//! with per-path FIFO order (all merges of the four path subsequences —
//! 2520 for an 8-packet window), each with **up to two concurrently lost
//! packets** (37 loss subsets) and two NACK-return timings, and drive
//! the *real* components: the NIC-SR receiver model generates the NACKs,
//! Themis-D judges them. ~186 000 executions in all, still well under
//! the 5 s budget.
//!
//! Invariants (shared with the run-level oracle via
//! [`themis::harness::oracle::predicates`]) checked in every execution:
//!
//! * **No spurious sender disturbance without loss**: if nothing was
//!   lost, no NACK is forwarded and no compensation fires.
//! * **No collateral damage**: any NACK reaching the sender names a
//!   genuinely lost PSN — never a delivered one.
//! * **Every observable loss is signalled**: the receiver recovers holes
//!   in PSN order, so the guarantee attaches to the *lowest* lost PSN:
//!   once a same-path successor proves it lost after the NACK armed
//!   compensation, the sender is told exactly that PSN (forwarded or
//!   compensated NACK) — the no-timeout property that makes blocking
//!   safe.

use rnic::config::TransportMode;
use rnic::qp::RecvQp;
use themis::harness::oracle::predicates;
use themis::netsim::packet::PacketKind;
use themis::netsim::types::{HostId, QpId};
use themis::simcore::time::{Nanos, TimeDelta};
use themis::themis_core::themis_d::ThemisD;

const N_PATHS: usize = 4;
const WINDOW: u32 = 8; // PSNs 0..8 split across 4 paths (2 each)

/// All merges of the four per-path FIFO subsequences (`psn % 4`).
fn interleavings() -> Vec<Vec<u32>> {
    let paths: Vec<Vec<u32>> = (0..N_PATHS as u32)
        .map(|p| {
            (0..WINDOW)
                .filter(|psn| psn % N_PATHS as u32 == p)
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    fn rec(heads: &mut [usize], paths: &[Vec<u32>], acc: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if acc.len() == paths.iter().map(Vec::len).sum::<usize>() {
            out.push(acc.clone());
            return;
        }
        for i in 0..paths.len() {
            if heads[i] < paths[i].len() {
                acc.push(paths[i][heads[i]]);
                heads[i] += 1;
                rec(heads, paths, acc, out);
                heads[i] -= 1;
                acc.pop();
            }
        }
    }
    rec(&mut vec![0; N_PATHS], &paths, &mut Vec::new(), &mut out);
    out
}

/// Loss subsets of size 0, 1 and 2 over the window.
fn loss_subsets() -> Vec<Vec<u32>> {
    let mut out = vec![vec![]];
    for a in 0..WINDOW {
        out.push(vec![a]);
        for b in a + 1..WINDOW {
            out.push(vec![a, b]);
        }
    }
    out
}

/// Outcome of one modelled execution.
struct Outcome {
    /// ePSNs of NACKs that reached the sender (forwarded or compensated).
    sender_nacks: Vec<u32>,
    compensations: u64,
}

/// Drive receiver + Themis-D for one arrival order with `lost` removed.
/// `nack_delay` = how many further data arrivals pass the ToR before a
/// generated NACK reaches it (models the last-hop round trip).
fn run_case(order: &[u32], lost: &[u32], nack_delay: usize) -> Outcome {
    let mut receiver = RecvQp::new(
        QpId(1),
        HostId(1),
        HostId(0),
        4000,
        TransportMode::SelectiveRepeat,
        1,
        TimeDelta::from_micros(50),
    );
    let mut themis = ThemisD::new(N_PATHS, 64, true);
    let mut sender_nacks = Vec::new();
    // NACKs in flight back to the ToR: (remaining delay, epsn).
    let mut pending: Vec<(usize, u32)> = Vec::new();
    let mut now = 0u64;

    let deliver_pending =
        |pending: &mut Vec<(usize, u32)>, themis: &mut ThemisD, sender_nacks: &mut Vec<u32>| {
            let mut rest = Vec::new();
            for (d, epsn) in pending.drain(..) {
                if d == 0 {
                    if themis.on_reverse_nack(QpId(1), epsn)
                        == themis::netsim::hooks::ReverseAction::Forward
                    {
                        sender_nacks.push(epsn);
                    }
                } else {
                    rest.push((d - 1, epsn));
                }
            }
            *pending = rest;
        };

    for &psn in order {
        if lost.contains(&psn) {
            continue; // vanished in the fabric before the ToR
        }
        // Data passes the ToR (Themis-D observes, may compensate)...
        let pkt = themis::netsim::packet::Packet::data(
            QpId(1),
            HostId(0),
            HostId(1),
            4000,
            psn,
            0,
            false,
            1000,
            false,
        );
        if let Some(comp) = themis.on_downstream_data(&pkt) {
            if let PacketKind::Nack { epsn, .. } = comp.kind {
                sender_nacks.push(epsn);
            }
        }
        // ... then reaches the NIC, which may emit a NACK.
        now += 1;
        let out = receiver.on_data(psn, 0, false, 1000, false, Nanos(now));
        for resp in out.responses {
            if let PacketKind::Nack { epsn, .. } = resp.kind {
                pending.push((nack_delay, epsn));
            }
        }
        deliver_pending(&mut pending, &mut themis, &mut sender_nacks);
    }
    // Flush NACKs still in flight after the last arrival.
    for _ in 0..nack_delay + 1 {
        deliver_pending(&mut pending, &mut themis, &mut sender_nacks);
    }
    Outcome {
        sender_nacks,
        compensations: themis.stats.compensations,
    }
}

#[test]
fn no_loss_never_disturbs_the_sender() {
    for order in interleavings() {
        for delay in [0usize, 2] {
            let o = run_case(&order, &[], delay);
            if let Some(v) = predicates::no_collateral_nacks(&o.sender_nacks, None) {
                panic!("order {order:?} delay {delay}: {v}");
            }
            assert_eq!(o.compensations, 0, "order {order:?} delay {delay}");
        }
    }
}

#[test]
fn every_observable_loss_is_signalled_exactly_for_a_lost_psn() {
    let mut signalled_cases = 0u64;
    let mut silent_cases = 0u64;
    let orders = interleavings();
    let losses = loss_subsets();
    for order in &orders {
        for lost in &losses {
            if lost.is_empty() {
                continue; // covered by no_loss_never_disturbs_the_sender
            }
            // Arrival sequence at the ToR/NIC (lost packets vanish
            // upstream of both).
            let arrivals: Vec<u32> = order
                .iter()
                .copied()
                .filter(|p| !lost.contains(p))
                .collect();
            // The receiver recovers holes in PSN order, so liveness
            // attaches to the lowest lost PSN: its NACK is triggered by
            // the first higher-PSN arrival after every lower PSN landed.
            let l_min = *lost.iter().min().unwrap();
            let ready = if l_min == 0 {
                0
            } else {
                match (0..arrivals.len()).filter(|&i| arrivals[i] < l_min).max() {
                    Some(i) => i + 1,
                    None => 0,
                }
            };
            let trigger = arrivals[ready..].iter().position(|&p| p > l_min);
            for delay in [0usize, 2] {
                let o = run_case(order, lost, delay);
                // Safety in *every* case, shared predicate with the
                // run-level oracle: no collateral retransmission
                // requests — any NACK reaching the sender names a
                // genuinely lost PSN.
                let collateral: Vec<u32> = o
                    .sender_nacks
                    .iter()
                    .copied()
                    .filter(|e| !lost.contains(e))
                    .collect();
                assert!(
                    collateral.is_empty(),
                    "order {order:?} lost {lost:?} delay {delay}: collateral NACKs {collateral:?}"
                );
                let Some(trigger_off) = trigger else {
                    continue; // tail loss: only the sender RTO can recover it
                };
                let trigger_idx = ready + trigger_off;
                // Compensation needs a same-path packet that passes the
                // ToR *after the NACK has arrived there* (arming point):
                // the NACK lands after `delay` further arrivals.
                let compensable = arrivals
                    .iter()
                    .skip(trigger_idx + 1 + delay)
                    .any(|&p| p % N_PATHS as u32 == l_min % N_PATHS as u32);
                if compensable {
                    if let Some(v) = predicates::loss_signalled(true, &o.sender_nacks, l_min) {
                        panic!("order {order:?} lost {lost:?} delay {delay}: {v}");
                    }
                    signalled_cases += 1;
                } else if o.sender_nacks.is_empty() {
                    // Silent is acceptable here: the RTO backstop owns
                    // this corner (shared with the paper's design).
                    silent_cases += 1;
                }
            }
        }
    }
    assert!(
        signalled_cases > 50_000,
        "exhaustiveness sanity: {signalled_cases} signalled"
    );
    // Silent (RTO-backstop) cases cluster at the window edge — an
    // artefact of the tiny 8-packet window, not of the mechanism: with
    // only two packets per path, losing one leaves at most a single
    // same-path successor to prove the loss, so the RTO corner is far
    // larger here than in any long-lived flow. Bound it anyway so a
    // regression that silences the signalling path outright cannot hide.
    assert!(
        silent_cases < 2 * signalled_cases,
        "RTO-corner cases must stay bounded: {silent_cases} vs {signalled_cases}"
    );
}
