//! Exhaustive model checking of the Themis-D decision procedure.
//!
//! For a small window of packets sprayed over two paths we enumerate
//! **every** arrival interleaving consistent with per-path FIFO order
//! (all merges of the two path subsequences), each with zero or one lost
//! packet and two NACK-return timings, and drive the *real* components:
//! the NIC-SR receiver model generates the NACKs, Themis-D judges them.
//!
//! Invariants checked in every execution:
//!
//! * **No spurious sender disturbance without loss**: if nothing was
//!   lost, no NACK is forwarded and no compensation fires.
//! * **Every real loss is signalled**: if a packet was lost and a
//!   same-path successor arrived afterwards, the sender eventually
//!   receives exactly the right retransmission request (a forwarded NACK
//!   or a compensated NACK carrying the lost PSN) — the no-timeout
//!   guarantee that makes blocking safe.

use rnic::config::TransportMode;
use rnic::qp::RecvQp;
use themis::netsim::packet::PacketKind;
use themis::netsim::types::{HostId, QpId};
use themis::simcore::time::{Nanos, TimeDelta};
use themis::themis_core::themis_d::ThemisD;

const N_PATHS: usize = 2;
const WINDOW: u32 = 8; // PSNs 0..8 split across 2 paths (4 each)

/// All merges of the even-PSN and odd-PSN subsequences (per-path FIFO).
fn interleavings() -> Vec<Vec<u32>> {
    let path0: Vec<u32> = (0..WINDOW).filter(|p| p % 2 == 0).collect();
    let path1: Vec<u32> = (0..WINDOW).filter(|p| p % 2 == 1).collect();
    let mut out = Vec::new();
    fn rec(a: &[u32], b: &[u32], acc: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if a.is_empty() && b.is_empty() {
            out.push(acc.clone());
            return;
        }
        if let Some((&h, rest)) = a.split_first() {
            acc.push(h);
            rec(rest, b, acc, out);
            acc.pop();
        }
        if let Some((&h, rest)) = b.split_first() {
            acc.push(h);
            rec(a, rest, acc, out);
            acc.pop();
        }
    }
    rec(&path0, &path1, &mut Vec::new(), &mut out);
    out
}

/// Outcome of one modelled execution.
struct Outcome {
    /// ePSNs of NACKs that reached the sender (forwarded or compensated).
    sender_nacks: Vec<u32>,
    compensations: u64,
}

/// Drive receiver + Themis-D for one arrival order with `lost` removed.
/// `nack_delay` = how many further data arrivals pass the ToR before a
/// generated NACK reaches it (models the last-hop round trip).
fn run_case(order: &[u32], lost: Option<u32>, nack_delay: usize) -> Outcome {
    let mut receiver = RecvQp::new(
        QpId(1),
        HostId(1),
        HostId(0),
        4000,
        TransportMode::SelectiveRepeat,
        1,
        TimeDelta::from_micros(50),
    );
    let mut themis = ThemisD::new(N_PATHS, 64, true);
    let mut sender_nacks = Vec::new();
    // NACKs in flight back to the ToR: (remaining delay, epsn).
    let mut pending: Vec<(usize, u32)> = Vec::new();
    let mut now = 0u64;

    let deliver_pending =
        |pending: &mut Vec<(usize, u32)>, themis: &mut ThemisD, sender_nacks: &mut Vec<u32>| {
            let mut rest = Vec::new();
            for (d, epsn) in pending.drain(..) {
                if d == 0 {
                    if themis.on_reverse_nack(QpId(1), epsn)
                        == themis::netsim::hooks::ReverseAction::Forward
                    {
                        sender_nacks.push(epsn);
                    }
                } else {
                    rest.push((d - 1, epsn));
                }
            }
            *pending = rest;
        };

    for &psn in order {
        if Some(psn) == lost {
            continue; // vanished in the fabric before the ToR
        }
        // Data passes the ToR (Themis-D observes, may compensate)...
        let pkt = themis::netsim::packet::Packet::data(
            QpId(1),
            HostId(0),
            HostId(1),
            4000,
            psn,
            0,
            false,
            1000,
            false,
        );
        if let Some(comp) = themis.on_downstream_data(&pkt) {
            if let PacketKind::Nack { epsn, .. } = comp.kind {
                sender_nacks.push(epsn);
            }
        }
        // ... then reaches the NIC, which may emit a NACK.
        now += 1;
        let out = receiver.on_data(psn, 0, false, 1000, false, Nanos(now));
        for resp in out.responses {
            if let PacketKind::Nack { epsn, .. } = resp.kind {
                pending.push((nack_delay, epsn));
            }
        }
        deliver_pending(&mut pending, &mut themis, &mut sender_nacks);
    }
    // Flush NACKs still in flight after the last arrival.
    for _ in 0..nack_delay + 1 {
        deliver_pending(&mut pending, &mut themis, &mut sender_nacks);
    }
    Outcome {
        sender_nacks,
        compensations: themis.stats.compensations,
    }
}

#[test]
fn no_loss_never_disturbs_the_sender() {
    for order in interleavings() {
        for delay in [0usize, 2] {
            let o = run_case(&order, None, delay);
            assert!(
                o.sender_nacks.is_empty(),
                "order {order:?} delay {delay}: sender saw NACKs {:?}",
                o.sender_nacks
            );
            assert_eq!(o.compensations, 0, "order {order:?} delay {delay}");
        }
    }
}

#[test]
fn every_observable_loss_is_signalled_exactly_for_its_psn() {
    let mut signalled_cases = 0u64;
    let mut silent_cases = 0u64;
    for order in interleavings() {
        for lost in 0..WINDOW {
            // Arrival sequence at the ToR/NIC (the lost packet vanishes
            // upstream of both).
            let arrivals: Vec<u32> = order.iter().copied().filter(|&p| p != lost).collect();
            // The receiver's ePSN reaches `lost` only after every lower
            // PSN has arrived; the NACK for it is triggered by the first
            // higher-PSN arrival after that point.
            let ready = if lost == 0 {
                0
            } else {
                match (0..arrivals.len()).filter(|&i| arrivals[i] < lost).max() {
                    Some(i) => i + 1,
                    None => 0,
                }
            };
            let Some(trigger_off) = arrivals[ready..].iter().position(|&p| p > lost) else {
                continue; // tail loss: only the sender RTO can recover it
            };
            let trigger_idx = ready + trigger_off;
            for delay in [0usize, 2] {
                // Compensation needs a same-path packet that passes the
                // ToR *after the NACK has arrived there* (arming point):
                // the NACK lands after `delay` further arrivals.
                let compensable = arrivals
                    .iter()
                    .skip(trigger_idx + 1 + delay)
                    .any(|&p| p % 2 == lost % 2);
                // Alternatively the scan itself may judge the NACK valid
                // (same-parity tPSN) and forward it — also a signal. We
                // don't predict which; we require a signal whenever
                // compensation is guaranteed possible.
                let o = run_case(&order, Some(lost), delay);
                if compensable {
                    assert!(
                        o.sender_nacks.contains(&lost),
                        "order {order:?} lost {lost} delay {delay}: sender never \
                         told (got {:?})",
                        o.sender_nacks
                    );
                    signalled_cases += 1;
                } else if o.sender_nacks.is_empty() {
                    // Silent is acceptable here: the RTO backstop owns
                    // this corner (shared with the paper's design).
                    silent_cases += 1;
                }
                // Safety in *every* case: no collateral retransmission
                // requests — any NACK reaching the sender names the
                // genuinely lost PSN.
                assert!(
                    o.sender_nacks.iter().all(|&e| e == lost),
                    "order {order:?} lost {lost} delay {delay}: collateral NACKs {:?}",
                    o.sender_nacks
                );
            }
        }
    }
    assert!(
        signalled_cases > 300,
        "exhaustiveness sanity: {signalled_cases} signalled"
    );
    // Silent (RTO-backstop) cases cluster at the window edge — an
    // artefact of the tiny 8-packet window, not of the mechanism: in a
    // long-lived flow a same-path successor almost always follows. They
    // must not dominate even here.
    assert!(
        silent_cases < signalled_cases,
        "RTO-corner cases must stay the minority: {silent_cases} vs {signalled_cases}"
    );
}
